"""Setup shim for environments without PEP 660 editable-wheel support
(offline, no `wheel` package): `pip install -e .` falls back to the
legacy `setup.py develop` path through this file."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("A Python reproduction of 'CCured in the Real World' "
                 "(PLDI 2003)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro.cpp": ["include/*.h"],
                  "repro.workloads": ["programs/*.c"]},
    python_requires=">=3.10",
    install_requires=["pycparser>=2.21"],
    entry_points={
        "console_scripts": ["repro-ccured=repro.cli:main"],
    },
)
