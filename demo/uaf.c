/* The reuse differential: a use-after-free that raw execution
 * survives silently and the temporal cure traps deterministically.
 *
 *   python -m repro run --raw --reuse-freed demo/uaf.c
 *     -> prints 7777 (q's write, read through the dangling p)
 *   python -m repro run --temporal --reuse-freed demo/uaf.c
 *     -> UseAfterFreeError: stale pointer, key/lock mismatch
 */
#include <stdlib.h>
#include <stdio.h>

int main(void) {
    int *p = (int *)malloc(8);
    p[0] = 1111;
    free(p);

    /* same size: the recycling allocator hands back p's address */
    int *q = (int *)malloc(8);
    q[0] = 7777;

    printf("%d\n", p[0]);   /* dangling read */
    free(q);
    return 0;
}
