"""E7 — the compatible (split) representation experiments of
Section 5.

The paper: "To determine the overhead of our compatible
representation, we ran the olden, ptrdist, and ijpeg tests with all
types split.  In most cases, the overhead was negligible (less than 3%
slowdown); however ... em3d was slowed down by 58%, and anagram by 7%.
...  it is important to minimize the number of split types used, which
can be achieved by applying our inference algorithm."  And for the
real programs: bind needed 6% split pointers (31% of those with a
metadata pointer), OpenSSH less than 1%.
"""

from benchutil import run_once

from repro.bench import run_workload
from repro.core import CureOptions
from repro.workloads import get

SPLIT_SUITE = ["olden_bisort", "olden_em3d", "ptrdist_anagram"]

_cache = {}


def _pair(name: str):
    if name not in _cache:
        w = get(name)
        plain = run_workload(w, tools=("ccured",))
        split = run_workload(w, tools=("ccured",),
                             options=CureOptions(all_split=True))
        _cache[name] = (plain, split)
    return _cache[name]


def test_all_split_costs_extra(benchmark):
    def measure():
        return {n: _pair(n) for n in SPLIT_SUITE}

    pairs = run_once(benchmark, measure)
    print()
    for name, (plain, split) in pairs.items():
        extra = split.ccured.cycles / plain.ccured.cycles - 1.0
        print(f"  {name}: all-split adds {extra:+.1%}")
        assert split.ccured.cycles >= plain.ccured.cycles
        # nothing pathological: the paper's worst case was +58%
        assert extra <= 0.80, (name, extra)


def test_em3d_is_the_outlier(benchmark):
    """em3d's hot loop dereferences pointer arrays, so parallel
    metadata hurts it the most (paper: +58% vs +7% for anagram)."""
    def measure():
        out = {}
        for n in SPLIT_SUITE:
            plain, split = _pair(n)
            out[n] = split.ccured.cycles / plain.ccured.cycles - 1.0
        return out

    extras = run_once(benchmark, measure)
    assert extras["olden_em3d"] >= extras["olden_bisort"]
    assert extras["olden_em3d"] >= extras["ptrdist_anagram"]


def test_inference_keeps_split_fraction_small(benchmark):
    """With the inference (no annotations), the daemons need only a
    small fraction of split pointers (paper: bind 6%, OpenSSH <1%)."""
    def measure():
        ssh = run_workload(get("openssh_like"), tools=())
        bind = run_workload(get("bind_like"), tools=())
        return ssh, bind

    ssh, bind = run_once(benchmark, measure)
    print(f"\n  openssh-like: {ssh.split_fraction:.1%} split "
          f"(paper: <1%); bind-like: {bind.split_fraction:.1%} "
          f"(paper: 6%)")
    assert ssh.split_fraction <= 0.25
    assert bind.split_fraction <= 0.25


def test_split_enables_gethostbyname(benchmark):
    """The hostent experiment of Section 4.2: with split metadata the
    cured program uses the library's data in place — no deep copies,
    no wrapper."""
    from repro.core import cure
    from repro.interp import run_cured

    src = """
    #include <string.h>
    struct hostent { char *h_name; char **h_aliases;
                     int h_addrtype; };
    extern struct hostent *gethostbyname(const char *name);
    int main(void) {
      struct hostent *he = gethostbyname("bench.example.org");
      char *p = he->h_name;
      int n = 0;
      while (*p != 0) { n++; p = p + 1; }
      return n;
    }
    """

    def measure():
        cured = cure(src, name="hostent_bench")
        return cured, run_cured(cured)

    cured, res = run_once(benchmark, measure)
    assert res.status == len("bench.example.org")
    assert cured.split_result.split_nodes > 0
