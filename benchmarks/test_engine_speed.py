"""Microbenchmark: closure-compiled engine vs. the tree-walking
oracle on Spec-like workloads.

The interpreter is the measurement instrument, so its raw speed bounds
how much experiment the suite can afford.  This benchmark measures
steps/second of both engines on the same programs, asserts the closure
engine actually pays for itself, and writes the numbers to
``BENCH_interp.json`` at the repo root so engine regressions are
visible in review diffs.
"""

import json
import os

import pytest

from repro.bench import SUITE, measure_cell

from benchutil import run_once

#: the pinned trajectory suite (repro.bench.trajectory.SUITE):
#: pointer-heavy + arithmetic-heavy representatives at reduced scales —
#: the engine comparison is scale-independent, the tree-engine runs are
#: not cheap, and spec_compress at scale 3 shares its cure tree with
#: test_spec_overhead via the harness cache
WORKLOAD_NAMES = tuple(name for name, _scale in SUITE)
SCALES = dict(SUITE)

_RESULTS: dict[str, dict] = {}

_OUT_PATH = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_interp.json")


def _measure(w, mode, engine):
    # one measurement cell of the trajectory ledger (`repro bench`
    # shares this exact code path)
    return measure_cell(w, mode, engine, SCALES.get(w.name))


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
@pytest.mark.parametrize("mode", ("cured", "raw"))
def test_engine_speed(benchmark, name, mode):
    from repro.workloads import get
    w = get(name)
    tree = _measure(w, mode, "tree")
    # warm the compile cache outside the timed run, then measure the
    # steady state (one cure/parse tree is reused across runs)
    clos = run_once(benchmark, lambda: _measure(w, mode, "closures"))

    assert clos["steps"] == tree["steps"]
    assert clos["cycles"] == tree["cycles"]
    assert clos["status"] == tree["status"]

    speedup = (tree["seconds"] / clos["seconds"]
               if clos["seconds"] else float("inf"))
    _RESULTS[f"{name}:{mode}"] = {
        "tree": tree, "closures": clos,
        "speedup": round(speedup, 2),
    }
    # loose bound: the closure engine must never regress below the
    # tree walker (it is typically 2.5-4x faster; wall-clock noise on
    # a loaded CI box motivates the slack)
    assert speedup > 1.2, (
        f"{name} ({mode}): closures only {speedup:.2f}x vs tree")


def test_write_bench_json():
    """Persist the measurements collected above."""
    assert _RESULTS, "speed tests did not run"
    payload = {
        "description": "interpreter engine speed: tree walker vs "
                       "closure compiler (steps/sec, wall seconds)",
        "results": _RESULTS,
    }
    with open(_OUT_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
