"""Microbenchmark: closure-compiled engine vs. the tree-walking
oracle on Spec-like workloads.

The interpreter is the measurement instrument, so its raw speed bounds
how much experiment the suite can afford.  This benchmark measures
steps/second of both engines on the same programs, asserts the closure
engine actually pays for itself, and writes the numbers to
``BENCH_interp.json`` at the repo root so engine regressions are
visible in review diffs.
"""

import json
import os
import time

import pytest

from repro.bench import pristine_cure, pristine_parse
from repro.interp import Interpreter

from benchutil import run_once

#: pointer-heavy + arithmetic-heavy representatives at reduced scales:
#: the engine comparison is scale-independent, the tree-engine runs are
#: not cheap, and spec_compress at scale 3 shares its cure tree with
#: test_spec_overhead via the harness cache
WORKLOAD_NAMES = ("spec_compress", "spec_go")
SCALES = {"spec_compress": 3, "spec_go": 2}

_RESULTS: dict[str, dict] = {}

_OUT_PATH = os.path.join(os.path.dirname(__file__), "..",
                         "BENCH_interp.json")


def _measure(w, mode, engine):
    # interpretation never mutates the IR, so both engines measure on
    # the shared pristine tree (and share its compiled closures)
    scale = SCALES.get(w.name)
    if mode == "cured":
        cured = pristine_cure(w, scale=scale)
        ip = Interpreter(cured.prog, cured=cured, stdin=w.stdin,
                         engine=engine)
    else:
        prog = pristine_parse(w, scale)
        ip = Interpreter(prog, stdin=w.stdin, engine=engine)
    t0 = time.perf_counter()
    res = ip.run(list(w.args) or None)
    dt = time.perf_counter() - t0
    return {"seconds": round(dt, 4), "steps": res.steps,
            "cycles": res.cost.cycles, "status": res.status,
            "steps_per_sec": round(res.steps / dt) if dt else 0}


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
@pytest.mark.parametrize("mode", ("cured", "raw"))
def test_engine_speed(benchmark, name, mode):
    from repro.workloads import get
    w = get(name)
    tree = _measure(w, mode, "tree")
    # warm the compile cache outside the timed run, then measure the
    # steady state (one cure/parse tree is reused across runs)
    clos = run_once(benchmark, lambda: _measure(w, mode, "closures"))

    assert clos["steps"] == tree["steps"]
    assert clos["cycles"] == tree["cycles"]
    assert clos["status"] == tree["status"]

    speedup = (tree["seconds"] / clos["seconds"]
               if clos["seconds"] else float("inf"))
    _RESULTS[f"{name}:{mode}"] = {
        "tree": tree, "closures": clos,
        "speedup": round(speedup, 2),
    }
    # loose bound: the closure engine must never regress below the
    # tree walker (it is typically 2.5-4x faster; wall-clock noise on
    # a loaded CI box motivates the slack)
    assert speedup > 1.2, (
        f"{name} ({mode}): closures only {speedup:.2f}x vs tree")


def test_write_bench_json():
    """Persist the measurements collected above."""
    assert _RESULTS, "speed tests did not run"
    payload = {
        "description": "interpreter engine speed: tree walker vs "
                       "closure compiler (steps/sec, wall seconds)",
        "results": _RESULTS,
    }
    with open(_OUT_PATH, "w", encoding="utf-8") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
