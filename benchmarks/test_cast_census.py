"""E3 — the cast census of Section 3.

The paper: "we have observed that around 63% of casts are between
identical types.  The remaining 37% were bad casts in the original
CCured.  Of these bad casts, about 93% are safe upcasts and 6% are
downcasts.  Less than 1% of all casts fall outside of these
categories."

We pool the census over the whole workload suite.  Exact percentages
depend on the code mix (our synthetic suite is denser in downcasts
than 2003 production code), so the assertions capture the *ordering*
and the decisive claim: with physical subtyping and RTTI, almost no
pointer cast remains bad — "more than 99% of all program casts can be
verified without resorting to WILD pointers" (Section 7).
"""

from benchutil import run_once

from repro.bench import aggregate_census, census_table, run_workload
from repro.workloads import all_workloads

_rows = None


def _all_rows():
    global _rows
    if _rows is None:
        _rows = [run_workload(w, tools=(), scale=1)
                 for w in all_workloads()]
    return _rows


def test_census_table(benchmark):
    rows = run_once(benchmark, _all_rows)
    print("\n" + census_table(rows))
    assert len(rows) == len(all_workloads())


def test_census_identical_present(benchmark):
    """Identical casts form a substantial class (paper: 63%; our
    synthetic suite is allocation-dense — every ``(T*)malloc`` is a
    downcast — so the identical share is smaller, see
    EXPERIMENTS.md)."""
    agg = run_once(benchmark, lambda: aggregate_census(_all_rows()))
    assert agg["identical"] >= 0.10
    assert agg["identical"] >= agg["bad"]


def test_census_upcasts_and_downcasts_cover_rest(benchmark):
    """Of the non-identical casts, upcasts + downcasts cover nearly
    everything (paper: 93% + 6% = 99%) — the decisive claim behind
    'more than 99% of casts verified without WILD pointers'."""
    agg = run_once(benchmark, lambda: aggregate_census(_all_rows()))
    assert agg["upcast"] + agg["downcast"] >= 0.90
    assert agg["upcast"] >= 0.25


def test_census_bad_casts_rare(benchmark):
    """'More than 99% of all program casts can be verified without
    resorting to WILD pointers' — our bad+trusted share of pointer
    casts stays in the few-percent range."""
    agg = run_once(benchmark, lambda: aggregate_census(_all_rows()))
    rest_share = 1.0 - agg["identical"]
    bad_share_of_all = agg["bad"] * rest_share
    assert bad_share_of_all <= 0.10
