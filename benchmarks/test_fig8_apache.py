"""E1 — Figure 8: Apache module performance.

Regenerates the paper's table

    Module Name | Lines of code | %CCured sf/sq/w/rt | Ratio

over the nine module workloads plus the WebStone composite.  The paper
measured ratios between 0.94 and 1.04 — module processing is dwarfed
by request I/O.  Shape assertions: every module's CCured ratio is close
to 1, no module has WILD pointers, and trusted casts stay confined to
the pool allocator.
"""

import pytest

from benchutil import run_once

from repro.bench import figure8_table, run_workload
from repro.workloads import by_category

MODULES = [w.name for w in by_category("apache")]

_rows = {}


def _row(name: str):
    if name not in _rows:
        from repro.workloads import get
        _rows[name] = run_workload(get(name), tools=("ccured",),
                                   scale=1)
    return _rows[name]


@pytest.mark.parametrize("module", MODULES)
def test_fig8_module(benchmark, module):
    row = run_once(benchmark, lambda: _row(module))
    # The paper's band (0.94-1.04) widened for the simulated substrate.
    assert 0.90 <= row.ccured_ratio <= 1.35, \
        f"{module}: ratio {row.ccured_ratio:.2f} out of band"
    # No module needs WILD pointers (Fig. 8: w column is 0 everywhere).
    assert row.kind_pct["wild"] == 0.0
    # SAFE dominates, as in every Fig. 8 row (72-90% safe).
    assert row.kind_pct["safe"] >= 0.5


def test_fig8_table_output(benchmark):
    def build():
        return figure8_table([_row(m) for m in MODULES])

    table = run_once(benchmark, build)
    print("\n" + table)
    assert "webstone" in table
    assert len(table.splitlines()) == len(MODULES) + 3


def test_fig8_trusted_casts_only_in_allocator(benchmark):
    """The only unsound-looking casts in the module suite are the pool
    allocator's, and they are explicitly trusted (Section 3's escape
    hatch), mirroring the paper's 'trusting a custom allocator'."""
    def measure():
        return [(m, _row(m).trusted_casts) for m in MODULES]

    counts = run_once(benchmark, measure)
    for module, trusted in counts:
        assert trusted <= 4, (module, trusted)
        assert _row(module).census.get("bad", 0.0) <= 0.35
