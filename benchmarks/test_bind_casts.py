"""E6 — the bind cast statistics of Section 5.

The paper: "CCured's qualifier inference classifies 30% of the
pointers in bind's unmodified source as WILD as a result of 530 bad
casts that could not be statically verified.  (bind has a total of
82000 casts of which 26500 are upcasts handled by physical subtyping.)
Once we turn on the use of RTTI, 150 of the bad casts (28%) proved to
be downcasts that can be checked at run time.  We instructed CCured to
trust the remaining 380 bad casts ... A security code review of bind
should start with these 380 casts."

The same three-step story on the bind-like workload:

1. original CCured (no physical subtyping, no RTTI): many pointers
   WILD;
2. +physical subtyping: upcasts verified, some WILD remains;
3. +RTTI +trusted remainder: no WILD at all, a short list of trusted
   casts for the security review.
"""

from benchutil import run_once

from repro.bench import run_workload
from repro.core import CureOptions
from repro.workloads import get

_cache = {}


def _measure():
    if not _cache:
        w = get("bind_like")
        _cache["original"] = run_workload(
            w, tools=(), options=CureOptions(
                use_physical=False, use_rtti=False,
                trust_bad_casts=False))
        _cache["physical"] = run_workload(
            w, tools=(), options=CureOptions(
                use_physical=True, use_rtti=False,
                trust_bad_casts=False))
        _cache["full"] = run_workload(
            w, tools=("ccured",), options=CureOptions(
                use_physical=True, use_rtti=True,
                trust_bad_casts=True))
    return _cache


def test_original_ccured_wilds_bind(benchmark):
    rows = run_once(benchmark, _measure)
    # paper: 30% WILD under the original inference.
    assert rows["original"].kind_pct["wild"] >= 0.25


def test_physical_subtyping_helps(benchmark):
    rows = run_once(benchmark, _measure)
    assert rows["physical"].kind_pct["wild"] <= \
        rows["original"].kind_pct["wild"]


def test_full_config_eliminates_wild(benchmark):
    rows = run_once(benchmark, _measure)
    full = rows["full"]
    assert full.kind_pct["wild"] == 0.0
    # the review list: the trusted casts (paper: 380 for real bind)
    assert full.trusted_casts >= 1
    print(f"\nbind-like: original wild="
          f"{rows['original'].kind_pct['wild']:.0%}, "
          f"physical wild={rows['physical'].kind_pct['wild']:.0%}, "
          f"full wild=0% with {full.trusted_casts} trusted casts "
          f"(paper: 30% -> 0% with 380 trusted)")


def test_census_has_upcasts_and_downcasts(benchmark):
    rows = run_once(benchmark, _measure)
    c = rows["full"].census
    # bind's census: plenty of upcasts (26500/82000) and a recoverable
    # downcast slice (150/530).
    assert c["upcast"] > 0.0
    assert c["downcast"] > 0.0


def test_full_config_runs_and_performs(benchmark):
    rows = run_once(benchmark, _measure)
    full = rows["full"]
    # Fig. 9: bind overhead "ranged from 10% to 80%".
    assert 1.0 <= full.ccured_ratio <= 2.0
