"""E2 — Figure 9: system software performance.

Regenerates the paper's table

    Name | Lines | % sf/sq/w/rt | CCured Ratio | Valgrind Ratio

over the system workloads (pcnet32, sbull, ftpd, OpenSSL-like,
OpenSSH-like, sendmail-like, bind-like).  The published shape:

* drivers and ftpd measure ~1.0x under CCured (I/O dominates) while
  Valgrind is ~9-17x on the same subjects;
* CPU-heavy subjects (OpenSSL, sendmail, bind) cost CCured 1.4-1.9x
  and Valgrind 42-129x;
* no subject needs WILD pointers after the paper's techniques (bind
  trusts its remaining bad casts).
"""

import pytest

from benchutil import run_once

from repro.bench import figure9_table, run_workload
from repro.workloads import get

SYSTEMS = ["pcnet32", "sbull", "ftpd", "openssl_like",
           "openssh_like", "sendmail_like", "bind_like"]

_rows = {}


def _row(name: str):
    if name not in _rows:
        _rows[name] = run_workload(get(name),
                                   tools=("ccured", "valgrind"))
    return _rows[name]


@pytest.mark.parametrize("system", SYSTEMS)
def test_fig9_row(benchmark, system):
    row = run_once(benchmark, lambda: _row(system))
    # CCured's band in Fig. 9 is 0.99-1.87; we allow a little slack.
    assert 0.9 <= row.ccured_ratio <= 2.2, \
        f"{system}: CCured ratio {row.ccured_ratio:.2f}"
    # Valgrind is always much worse than CCured (Fig. 9: 9.42-129).
    assert row.valgrind_ratio >= 5.0
    assert row.valgrind_ratio > 3 * row.ccured_ratio
    # The paper's techniques leave no WILD pointers in any subject.
    assert row.kind_pct["wild"] == 0.0, (system, row.kind_pct)


def test_fig9_io_bound_rows_near_one(benchmark):
    """pcnet32/sbull/ftpd: 'no noticeable performance penalty; the
    cost of run-time checks is dwarfed by the costs of input/output
    operations'."""
    def measure():
        return {n: _row(n).ccured_ratio
                for n in ("pcnet32", "sbull", "ftpd")}

    ratios = run_once(benchmark, measure)
    for name, ratio in ratios.items():
        assert ratio <= 1.45, (name, ratio)


def test_fig9_cpu_bound_rows_cost_more(benchmark):
    """OpenSSL/bind are the CPU-intensive subjects: they pay more than
    the I/O-bound ones, as in Fig. 9."""
    def measure():
        io_bound = _row("ftpd").ccured_ratio
        cpu = max(_row("openssl_like").ccured_ratio,
                  _row("bind_like").ccured_ratio)
        return io_bound, cpu

    io_bound, cpu = run_once(benchmark, measure)
    assert cpu > io_bound


def test_fig9_bind_trusts_remaining_bad_casts(benchmark):
    """Section 5: bind's remaining bad casts are trusted instead of
    going WILD — 'a security code review of bind should start with
    these casts'."""
    row = run_once(benchmark, lambda: _row("bind_like"))
    assert row.trusted_casts >= 1
    assert row.kind_pct["wild"] == 0.0


def test_fig9_table_output(benchmark):
    def build():
        return figure9_table([_row(s) for s in SYSTEMS])

    table = run_once(benchmark, build)
    print("\n" + table)
    assert "bind_like" in table
