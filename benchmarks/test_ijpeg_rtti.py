"""E5 — the ijpeg RTTI experiment of Section 5.

The paper: "With the original version of CCured the ijpeg test in
Spec95 had a slowdown of 115% due to about 60% of the pointers being
WILD. ... This benchmark is written in an object-oriented style with a
subtyping hierarchy of about 40 types and 100 downcasts.  With RTTI
pointers we eliminated all bad casts and WILD pointers ...  Overall,
the slowdown is reduced to 45%."

We run the generated hierarchy workload under (a) full inference and
(b) RTTI disabled (the "original CCured" configuration) and check:

* without RTTI most pointers go WILD (the paper's spreading story);
* with RTTI, WILD disappears entirely;
* the overhead drops accordingly (paper: 2.15x -> 1.45x).
"""

from benchutil import run_once

from repro.bench import run_workload
from repro.core import CureOptions
from repro.workloads import get

_cache = {}


def _measure():
    if not _cache:
        w = get("spec_ijpeg")
        _cache["rtti"] = run_workload(w, tools=("ccured",))
        _cache["wild"] = run_workload(
            w, tools=("ccured",),
            options=CureOptions(use_rtti=False))
    return _cache["rtti"], _cache["wild"]


def test_wild_only_spreads(benchmark):
    rtti, wild = run_once(benchmark, _measure)
    # paper: ~60% WILD without RTTI; the synthetic program is
    # downcast-dense, so spreading engulfs even more.
    assert wild.kind_pct["wild"] >= 0.5
    assert wild.kind_pct["rtti"] == 0.0


def test_rtti_eliminates_wild(benchmark):
    rtti, wild = run_once(benchmark, _measure)
    # paper: "we eliminated all bad casts and WILD pointers".
    assert rtti.kind_pct["wild"] == 0.0
    assert rtti.kind_pct["rtti"] > 0.0


def test_rtti_reduces_overhead(benchmark):
    rtti, wild = run_once(benchmark, _measure)
    print(f"\nijpeg: WILD-only {wild.ccured_ratio:.2f}x -> "
          f"RTTI {rtti.ccured_ratio:.2f}x "
          f"(paper: 2.15x -> 1.45x)")
    assert rtti.ccured_ratio < wild.ccured_ratio
    # the cured overhead with RTTI sits in the paper's ~1.45x zone
    assert 1.0 <= rtti.ccured_ratio <= 1.8


def test_hierarchy_scales(benchmark):
    """Bigger hierarchies keep working: 24 types, deeper chains."""
    from repro.workloads import ijpeg_gen
    from repro.core import cure
    from repro.interp import run_cured

    def measure():
        src = ijpeg_gen.generate(n_types=24, n_objects=30,
                                 n_rounds=2)
        from repro.frontend import parse_program
        cured = cure(parse_program(src, "ijpeg24"), name="ijpeg24")
        return cured, run_cured(cured)

    cured, res = run_once(benchmark, measure)
    assert res.error is None
    assert cured.kind_percentages()["wild"] == 0.0
    assert len(cured.hierarchy) >= 25
