"""Ablation — static check elimination.

The paper's comparison with Purify rests on this capability: "without
the source code and the type information it contains, Purify cannot
statically remove checks as CCured does."  Three layers of static
removal are measured here:

1. kind-based elimination (the big one): SAFE pointers need only a
   null check and unconstrained accesses need none — measured as the
   gap between CCured and the check-everything tools (see
   test_spec_overhead.py);
2. constant-index elimination: in-range constant array indices carry
   no run-time check at all;
3. locally-redundant-check elimination: repeated identical checks in
   straight-line code are dropped (``repro.core.optimize``,
   ``--optimize=local``);
4. flow-sensitive elimination: the whole-function must-dataflow pass
   (``repro.analysis``, ``--optimize=flow``, the default) removes
   checks across statement boundaries, joins and loops.

The ablation table reports, per level: checks *emitted* by the
instrumenter, checks *elided* statically, and checks *executed* at
run time.
"""

from benchutil import run_once

from repro.bench import pristine_cure, run_workload
from repro.cil.stmt import CheckKind
from repro.core import CureOptions, cure
from repro.interp import Interpreter, run_cured
from repro.workloads import get

STRUCT_HEAVY = r'''
struct point { int x; int y; int z; };
int main(void) {
  struct point pts[8];
  struct point *p = pts;
  int i;
  long total = 0;
  for (i = 0; i < 8; i++) {
    p[i].x = i;
    p[i].y = i * 2;
    p[i].z = p[i].x + p[i].y;      /* repeated derefs of p+i */
    total += p[i].x * p[i].y + p[i].z;
  }
  return (int)(total % 97);
}
'''


def test_redundant_elimination_removes_checks(benchmark):
    def measure():
        opt = cure(STRUCT_HEAVY, name="opt")
        noopt = cure(STRUCT_HEAVY, name="noopt",
                     options=CureOptions(optimize_checks=False))
        r_opt = run_cured(opt)
        r_noopt = run_cured(noopt)
        return opt, r_opt, r_noopt

    opt, r_opt, r_noopt = run_once(benchmark, measure)
    assert opt.checks_removed > 0
    assert r_opt.status == r_noopt.status
    assert r_opt.cycles < r_noopt.cycles
    print(f"\n  redundant-check elimination: {opt.checks_removed} "
          f"checks removed statically, "
          f"{1 - r_opt.cycles / r_noopt.cycles:.1%} fewer cycles")


def test_constant_indices_checked_statically(benchmark):
    src = """
    int main(void) {
      int a[4];
      a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
      return a[0] + a[3];
    }
    """

    def measure():
        return cure(src, name="static_idx")

    cured = run_once(benchmark, measure)
    assert CheckKind.INDEX not in cured.check_counts


ABLATION_WORKLOADS = ("spec_compress", "olden_em3d", "ptrdist_ks",
                      "apache_headers", "sbull")
ABLATION_SCALE = 2


def test_ablation_emitted_vs_executed_vs_elided(benchmark):
    """The per-level ablation table: emitted / elided / executed."""
    def measure():
        rows = []
        for name in ABLATION_WORKLOADS:
            w = get(name)
            args = list(w.args) or None
            per_level = {}
            for level in ("none", "local", "flow"):
                cured = pristine_cure(
                    w, options=CureOptions(optimize=level),
                    scale=ABLATION_SCALE)
                res = Interpreter(cured.prog, cured=cured,
                                  stdin=w.stdin).run(args)
                per_level[level] = {
                    "emitted": sum(cured.check_counts.values()),
                    "elided": cured.checks_removed,
                    "executed": res.checks_executed,
                    "cycles": res.cycles,
                    "sig": (res.status, res.stdout),
                }
            rows.append((name, per_level))
        return rows

    rows = run_once(benchmark, measure)
    print("\n  workload           level  emitted  elided  executed")
    for name, per_level in rows:
        emitted = per_level["none"]["emitted"]
        for level in ("none", "local", "flow"):
            d = per_level[level]
            assert d["emitted"] == emitted, \
                "emission must not depend on the elimination level"
            print(f"  {name:<18} {level:<6} {d['emitted']:>7} "
                  f"{d['elided']:>7} {d['executed']:>9}")
        assert per_level["none"]["elided"] == 0
        assert per_level["flow"]["elided"] >= \
            per_level["local"]["elided"]
        # fewer checks run and cost less, behaviour unchanged
        assert per_level["flow"]["executed"] <= \
            per_level["local"]["executed"] <= \
            per_level["none"]["executed"]
        assert per_level["flow"]["cycles"] <= \
            per_level["none"]["cycles"]
        sigs = {lvl: per_level[lvl]["sig"]
                for lvl in ("none", "local", "flow")}
        assert sigs["none"] == sigs["local"] == sigs["flow"]


def test_flow_beats_local_at_runtime(benchmark):
    """The flow level executes strictly fewer checks than the local
    level on a check-heavy workload."""
    def measure():
        w = get("sbull")
        args = list(w.args) or None
        out = {}
        for level in ("local", "flow"):
            cured = pristine_cure(
                w, options=CureOptions(optimize=level),
                scale=ABLATION_SCALE)
            out[level] = Interpreter(cured.prog, cured=cured,
                                     stdin=w.stdin).run(args)
        return out

    out = run_once(benchmark, measure)
    assert out["flow"].checks_executed < out["local"].checks_executed
    assert out["flow"].cycles <= out["local"].cycles
    saved = 1 - (out["flow"].checks_executed
                 / max(1, out["local"].checks_executed))
    print(f"\n  flow vs local on sbull: "
          f"{out['local'].checks_executed} -> "
          f"{out['flow'].checks_executed} checks executed "
          f"({saved:.1%} fewer)")


def test_elimination_on_workloads_is_sound(benchmark):
    """The optimized and unoptimized instrumentations behave
    identically on a full workload."""
    def measure():
        w = get("olden_bisort")
        r_opt = run_workload(w, tools=("ccured",))
        r_no = run_workload(w, tools=("ccured",),
                            options=CureOptions(
                                optimize_checks=False))
        return r_opt, r_no

    r_opt, r_no = run_once(benchmark, measure)
    assert r_opt.ccured.status == r_no.ccured.status
    assert r_opt.ccured.cycles <= r_no.ccured.cycles
