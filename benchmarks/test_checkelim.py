"""Ablation — static check elimination.

The paper's comparison with Purify rests on this capability: "without
the source code and the type information it contains, Purify cannot
statically remove checks as CCured does."  Three layers of static
removal are measured here:

1. kind-based elimination (the big one): SAFE pointers need only a
   null check and unconstrained accesses need none — measured as the
   gap between CCured and the check-everything tools (see
   test_spec_overhead.py);
2. constant-index elimination: in-range constant array indices carry
   no run-time check at all;
3. locally-redundant-check elimination: repeated identical checks in
   straight-line code are dropped (``repro.core.optimize``).
"""

from benchutil import run_once

from repro.bench import run_workload
from repro.cil.stmt import CheckKind
from repro.core import CureOptions, cure
from repro.interp import run_cured
from repro.workloads import get

STRUCT_HEAVY = r'''
struct point { int x; int y; int z; };
int main(void) {
  struct point pts[8];
  struct point *p = pts;
  int i;
  long total = 0;
  for (i = 0; i < 8; i++) {
    p[i].x = i;
    p[i].y = i * 2;
    p[i].z = p[i].x + p[i].y;      /* repeated derefs of p+i */
    total += p[i].x * p[i].y + p[i].z;
  }
  return (int)(total % 97);
}
'''


def test_redundant_elimination_removes_checks(benchmark):
    def measure():
        opt = cure(STRUCT_HEAVY, name="opt")
        noopt = cure(STRUCT_HEAVY, name="noopt",
                     options=CureOptions(optimize_checks=False))
        r_opt = run_cured(opt)
        r_noopt = run_cured(noopt)
        return opt, r_opt, r_noopt

    opt, r_opt, r_noopt = run_once(benchmark, measure)
    assert opt.checks_removed > 0
    assert r_opt.status == r_noopt.status
    assert r_opt.cycles < r_noopt.cycles
    print(f"\n  redundant-check elimination: {opt.checks_removed} "
          f"checks removed statically, "
          f"{1 - r_opt.cycles / r_noopt.cycles:.1%} fewer cycles")


def test_constant_indices_checked_statically(benchmark):
    src = """
    int main(void) {
      int a[4];
      a[0] = 1; a[1] = 2; a[2] = 3; a[3] = 4;
      return a[0] + a[3];
    }
    """

    def measure():
        return cure(src, name="static_idx")

    cured = run_once(benchmark, measure)
    assert CheckKind.INDEX not in cured.check_counts


def test_elimination_on_workloads_is_sound(benchmark):
    """The optimized and unoptimized instrumentations behave
    identically on a full workload."""
    def measure():
        w = get("olden_bisort")
        r_opt = run_workload(w, tools=("ccured",))
        r_no = run_workload(w, tools=("ccured",),
                            options=CureOptions(
                                optimize_checks=False))
        return r_opt, r_no

    r_opt, r_no = run_once(benchmark, measure)
    assert r_opt.ccured.status == r_no.ccured.status
    assert r_opt.ccured.cycles <= r_no.ccured.cycles
