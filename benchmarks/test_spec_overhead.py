"""E4 — Section 5's Spec95/Olden/Ptrdist overhead comparison.

The paper: "CCured's safety checks added between 7 and 56% to the
running times of these tests.  For comparison, we also tried these
tests with Purify ..., which increased running times by factors of
25-100. ... Valgrind slows down instrumented programs by factors of
9-130."

The decisive shape: CCured's overhead is a *percentage*, the tools'
overheads are *factors*.  (Our interpreter substrate pushes CCured's
band up somewhat — array-heavy code pays bounds checks on every access
without gcc's loop optimizations — so the CCured band is widened; the
orders of magnitude are what the experiment demonstrates.)
"""

import pytest

from benchutil import run_once

from repro.bench import overhead_table, run_workload
from repro.workloads import get

SUITE = ["spec_compress", "spec_go", "spec_li", "olden_bisort",
         "olden_treeadd", "olden_power", "olden_em3d",
         "ptrdist_anagram", "ptrdist_ks"]

_rows = {}


def _row(name: str):
    if name not in _rows:
        scale = {"spec_compress": 3, "ptrdist_ks": 1}.get(name)
        _rows[name] = run_workload(
            get(name), tools=("ccured", "purify", "valgrind"),
            scale=scale)
    return _rows[name]


@pytest.mark.parametrize("name", SUITE)
def test_overhead_row(benchmark, name):
    row = run_once(benchmark, lambda: _row(name))
    assert 1.0 <= row.ccured_ratio <= 2.3, \
        f"{name}: ccured {row.ccured_ratio:.2f}"
    assert 9.0 <= row.purify_ratio <= 110.0, \
        f"{name}: purify {row.purify_ratio:.1f}"
    assert 8.0 <= row.valgrind_ratio <= 130.0, \
        f"{name}: valgrind {row.valgrind_ratio:.1f}"


def test_ccured_beats_tools_everywhere(benchmark):
    def measure():
        return [_row(n) for n in SUITE]

    rows = run_once(benchmark, measure)
    print("\n" + overhead_table(rows, "Spec95/Olden/Ptrdist overhead"))
    for r in rows:
        assert r.purify_ratio > 4 * r.ccured_ratio, r.name
        assert r.valgrind_ratio > 4 * r.ccured_ratio, r.name


def test_deterministic_measurements(benchmark):
    """The cost model is exact: re-measuring gives identical cycles."""
    def measure():
        a = run_workload(get("olden_bisort"), tools=("ccured",))
        b = run_workload(get("olden_bisort"), tools=("ccured",))
        return a, b

    a, b = run_once(benchmark, measure)
    assert a.raw.cycles == b.raw.cycles
    assert a.ccured.cycles == b.ccured.cycles
