"""Shared benchmark helpers."""


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark and return its
    result (the measurements are deterministic; repetition is waste)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
