"""Ablation — the FSEQ pointer kind.

The CCured implementation (beyond the paper's Figure 1) adds FSEQ:
forward-only sequence pointers represented as two words (``p``, ``e``)
with a single upper-bound compare.  This ablation measures what FSEQ
buys on the string/scan-heavy workloads where most sequences only move
forward: cured cycles drop, behaviour is unchanged, and the SEQ share
of declarations migrates to FSEQ.
"""

from benchutil import run_once

from repro.bench import run_workload
from repro.core import CureOptions
from repro.workloads import get

SCAN_HEAVY = ["ptrdist_anagram", "ftpd", "spec_compress"]

_cache = {}


def _pair(name):
    if name not in _cache:
        w = get(name)
        scale = {"spec_compress": 3}.get(name)
        base = run_workload(w, tools=("ccured",), scale=scale)
        fseq = run_workload(
            w, tools=("ccured",), scale=scale,
            options=CureOptions(use_fseq=True,
                                trust_bad_casts=w.trust_bad_casts))
        return _cache.setdefault(name, (base, fseq))
    return _cache[name]


def test_fseq_reduces_overhead(benchmark):
    def measure():
        return {n: _pair(n) for n in SCAN_HEAVY}

    pairs = run_once(benchmark, measure)
    print()
    for name, (base, fseq) in pairs.items():
        saving = 1 - fseq.ccured.cycles / base.ccured.cycles
        print(f"  {name}: SEQ-only {base.ccured_ratio:.2f}x -> "
              f"with FSEQ {fseq.ccured_ratio:.2f}x "
              f"({saving:+.1%} cured cycles)")
        assert fseq.ccured.cycles <= base.ccured.cycles, name
        assert fseq.ccured.status == base.ccured.status, name


def test_fseq_population_shifts(benchmark):
    def measure():
        return _pair("ptrdist_anagram")

    base, fseq = run_once(benchmark, measure)
    assert base.kind_pct.get("fseq", 0.0) == 0.0
    assert fseq.kind_pct.get("fseq", 0.0) > 0.0
    assert fseq.kind_pct["seq"] < base.kind_pct["seq"]


def test_fseq_preserves_safety(benchmark):
    """FSEQ still catches the overrun the workload suite's exploit
    depends on."""
    from repro.interp import run_cured
    from repro.runtime.checks import MemorySafetyError

    def measure():
        w = get("ftpd")
        cured = w.cure(options=CureOptions(use_fseq=True))
        try:
            run_cured(cured, stdin=w.attack_stdin)
            return None
        except MemorySafetyError as exc:
            return exc

    exc = run_once(benchmark, measure)
    assert exc is not None
