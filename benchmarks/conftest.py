"""Shared benchmark configuration.

Every benchmark is deterministic: the interpreter's cost model counts
abstract cycles, so the paper-shape assertions hold on every run;
pytest-benchmark additionally reports the wall-clock time of the
measured runs.  Heavy measurements are cached at module scope so a
table's rows are computed once per session.
"""


def pytest_configure(config):
    # keep benchmark runs single-shot: the measurements themselves are
    # deterministic, re-running them only costs wall time
    config.option.benchmark_min_rounds = 1
    config.option.benchmark_warmup = False
    # The harness caches keep every parse/cure tree alive, so each
    # generational GC pass walks a strictly growing object graph while
    # collecting almost nothing; the suite is short-lived, so trade the
    # sweeps for peak memory.
    import gc
    gc.disable()


def pytest_sessionfinish(session):
    # The harness caches (parses, cures, compiled closures) stay alive
    # until process exit; freeze them so pytest's exit-time GC sweeps
    # do not spend over a second walking millions of cached objects.
    import gc
    gc.freeze()
