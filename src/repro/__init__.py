"""repro — a Python reproduction of "CCured in the Real World" (PLDI 2003).

Public API quickstart::

    from repro import cure, run_cured, CureOptions

    cured = cure(open("prog.c").read())
    print(cured.report())          # kinds, casts, checks, split stats
    result = run_cured(cured)      # memory-safe execution
    print(result.stdout)

Subpackages:

* ``repro.cpp``       — a small C preprocessor + bundled libc headers
* ``repro.cil``       — the CIL-like typed IR
* ``repro.frontend``  — pycparser -> CIL lowering
* ``repro.core``      — the paper: kind inference, physical subtyping,
                         RTTI, SPLIT metadata, instrumentation
* ``repro.runtime``   — memory model, fat-pointer values, cost model,
                         libc builtins/wrappers
* ``repro.interp``    — the cured/raw interpreter
* ``repro.baselines`` — Purify-like and Valgrind-like shadow checkers
* ``repro.workloads`` — the synthetic benchmark programs
* ``repro.bench``     — harnesses regenerating the paper's tables
"""

from repro.core import (CastClass, CureOptions, CuredProgram,
                        PointerKind, cure)
from repro.interp import ExecResult, run_cured, run_raw
from repro.frontend import parse_program
from repro.runtime.checks import MemorySafetyError

__version__ = "1.0.0"

__all__ = ["cure", "CureOptions", "CuredProgram", "CastClass",
           "PointerKind", "run_cured", "run_raw", "parse_program",
           "ExecResult", "MemorySafetyError", "__version__"]
