"""Closure compilation of CIL to nested Python closures.

The tree-walking interpreter (:mod:`repro.interp.interp`) re-discovers
the shape of every statement, expression and type on every execution
step: ``isinstance`` chains, dispatch-dict lookups, offset walks and
type unrolling all happen *per step*.  Since the interpreter is also
the measurement instrument, that overhead bounds how much experiment
the suite can afford.

This module walks each :class:`~repro.cil.stmt.Fundec` **once** and
emits one Python closure per statement, instruction, lvalue and
expression.  Everything static is resolved at compile time:

* expression dispatch (one closure per node, no dict lookup),
* lvalue shape (register vs. home, constant field offsets folded,
  element sizes precomputed),
* scalar type facts (sizes, signedness, wrap masks),
* pointer-kind representation costs (wide/split charges become
  precomputed constants),
* check kinds (one specialized closure per ``Check`` instruction).

For the hottest node shapes the compiler goes one step further and
*generates Python source* for the whole statement — operand fetches
(``f.regs[vid]`` for register variables, the literal for constants),
store coercion, home lookup, constant offsets and the typed memory
access are all fused into a single ``exec``-compiled function, so a
``x = y + z`` statement executes as one Python frame instead of six
nested closure calls.  Generated sources keep all varying quantities
(vids, masks, sizes) in the function's globals, so the small set of
distinct source *shapes* hits a module-level code-object cache and
compilation stays cheap.

The closures are compiled per ``cured`` mode and parameterized over
``(ip, frame)`` so one compilation is shared by every
:class:`~repro.interp.interp.Interpreter` over the same tree.  The
compiled code replicates the tree-walker's cost-model charges, step
counting and error behaviour exactly — the differential test in
``tests/test_engine_parity.py`` asserts bit-identical
``(status, stdout, cycles, steps)`` on every workload, which is what
licenses using the fast engine for the paper's measurements.

The cache is a :class:`weakref.WeakKeyDictionary` keyed by ``Fundec``
so compiled code never outlives its tree and ``copy.deepcopy`` of a
program (the bench harness's cache discipline) never drags closures
bound to the original tree into the copy.
"""

from __future__ import annotations

import weakref
from typing import Callable, Optional

from repro.cil import expr as E
from repro.cil import stmt as S
from repro.cil import types as T
from repro.core.qualifiers import PointerKind
from repro.runtime.checks import (BoundsError, DanglingPointerError,
                                  InterpreterLimitError, LinkError,
                                  MemorySafetyError,
                                  NullDereferenceError, ProgramAbort,
                                  WildTagError)
from repro.runtime.cost import (CHECK_COSTS, COST_MEM_WORD,
                                COST_SPLIT_META, COST_WILD_TAG_UPDATE,
                                WIDE_EXTRA_WORDS, mem_words)
from repro.runtime.memory import PtrMeta
from repro.runtime.values import PtrVal

# The compiled closures raise the same control-flow exceptions as the
# tree walker, so the two engines can call into each other (e.g. a
# compiled Call dispatching into a builtin that calls back).
from repro.interp.interp import (_Break, _Continue, _Return,
                                 _CMP_OPS, _FLOAT_OPS, _INT_OPS,
                                 _is_register_type)

#: compiled bodies per Fundec, keyed by the ``cured`` flag.  Weak keys:
#: a deep-copied tree compiles fresh, and dropped trees free their code.
_CACHE: "weakref.WeakKeyDictionary[S.Fundec, dict[bool, Callable]]" = \
    weakref.WeakKeyDictionary()

_STEP_MSG = "step budget exceeded"


def compiled_body(fd: S.Fundec, cured: bool) -> Callable:
    """The compiled body runner ``(ip, frame) -> None`` for ``fd``,
    compiling on first use."""
    per_fd = _CACHE.get(fd)
    if per_fd is None:
        per_fd = {}
        _CACHE[fd] = per_fd
    fn = per_fd.get(cured)
    if fn is None:
        fn = _Compiler(cured).block_body(fd.body)
        per_fd[cured] = fn
    return fn


# ---------------------------------------------------------------------------
# Source generation
# ---------------------------------------------------------------------------
#
# Generated sources keep vids/masks/sizes in the function's globals (the
# ``env`` dict), never in the source text, so distinct nodes of the same
# *shape* share one code object.

_CODE_CACHE: dict[str, object] = {}


def _indent(code: str) -> str:
    """Indent generated source one level (for try/except nesting)."""
    return "".join("    " + line if line.strip() else line
                   for line in code.splitlines(keepends=True))


def _gen(src: str, env: dict) -> Callable:
    code = _CODE_CACHE.get(src)
    if code is None:
        code = compile(src, "<repro.interp.compiled>", "exec")
        _CODE_CACHE[src] = code
    ns = dict(env)
    exec(code, ns)
    return ns["run"]


#: per-instruction charge prologue shared by Set/Call/Check sources
_INSTR_HEAD = (
    "def run(ip, f):\n"
    "    c = ip.cost\n"
    "    c.cycles += 1\n"
    "    c.instrs += 1\n"
    "    sh = ip.shadow\n"
    "    if sh is not None:\n"
    "        sh.on_instr()\n")

#: per-statement step accounting shared by If/Return sources.  The
#: limit compare goes against ``_limit_at`` (== max_steps without a
#: deadline); ``_over_limit`` raises or advances the clock checkpoint.
_STEP_HEAD = (
    "def run(ip, f):\n"
    "    ip.steps += 1\n"
    "    if ip.steps > ip._limit_at:\n"
    "        ip._over_limit()\n")

_STEP_ENV: dict = {}

#: comparison operators by symbol (fast path inlines the operator)
_CMP_SYM = {
    E.BinopKind.LT: "<", E.BinopKind.GT: ">",
    E.BinopKind.LE: "<=", E.BinopKind.GE: ">=",
    E.BinopKind.EQ: "==", E.BinopKind.NE: "!=",
}

#: integer binop fast-path expressions over ``v1``/``v2`` plus whether
#: the expression can raise ZeroDivisionError.  The DIV/MOD forms
#: mirror the tree walker's C-style truncation (``int(x / y)``).
_INT_EXPR = {
    E.BinopKind.ADD: ("v1 + v2", False),
    E.BinopKind.SUB: ("v1 - v2", False),
    E.BinopKind.MUL: ("v1 * v2", False),
    E.BinopKind.DIV: ("int(v1 / v2)", True),
    E.BinopKind.MOD: ("v1 - int(v1 / v2) * v2", True),
    E.BinopKind.SHL: ("v1 << (v2 & 63)", False),
    E.BinopKind.SHR: ("v1 >> (v2 & 63)", False),
    E.BinopKind.BAND: ("v1 & v2", False),
    E.BinopKind.BOR: ("v1 | v2", False),
    E.BinopKind.BXOR: ("v1 ^ v2", False),
}


# ---------------------------------------------------------------------------
# Small shared runtime helpers (mirror Interpreter._to_int/_to_float)
# ---------------------------------------------------------------------------

def _as_int(v: object) -> int:
    if isinstance(v, PtrVal):
        return v.addr
    if isinstance(v, float):
        return int(v)
    if isinstance(v, int):
        return v
    if v is None:
        return 0
    raise MemorySafetyError(f"expected integer, got {v!r}")


def _as_float(v: object) -> float:
    if isinstance(v, PtrVal):
        return float(v.addr)
    if v is None:
        return 0.0
    return float(v)  # type: ignore[arg-type]


def _binop_slow(v1: object, v2: object, iop: Callable,
                wrap: Callable) -> object:
    """Uncommon operand shapes (pointers, floats, bools, None) of an
    integer binop; mirrors the tree walker exactly."""
    if isinstance(v1, PtrVal):
        v1 = v1.addr
    if isinstance(v2, PtrVal):
        v2 = v2.addr
    try:
        out = iop(_as_int(v1), _as_int(v2))
    except ZeroDivisionError:
        raise ProgramAbort("integer division by zero")
    except ValueError:
        raise ProgramAbort("invalid shift amount")
    return wrap(out)


def _cmp_slow(v1: object, v2: object, cmpf: Callable) -> int:
    """Comparison over non-int operand shapes; tree semantics."""
    if isinstance(v1, PtrVal) or isinstance(v2, PtrVal):
        v1 = v1.addr if isinstance(v1, PtrVal) else _as_int(v1)
        v2 = v2.addr if isinstance(v2, PtrVal) else _as_int(v2)
    if isinstance(v1, float) or isinstance(v2, float):
        return int(cmpf(_as_float(v1), _as_float(v2)))
    return int(cmpf(_as_int(v1), _as_int(v2)))


def _cast_int_slow(v: object, wrap: Callable) -> int:
    if isinstance(v, PtrVal):
        v = v.addr
    return wrap(int(v) if isinstance(v, float) else _as_int(v))


def _neg_slow(v: object, wrap: Callable) -> object:
    if isinstance(v, PtrVal):
        v = v.addr
    return wrap(-v)  # type: ignore[operator]


def _bnot_slow(v: object, wrap: Callable) -> object:
    if isinstance(v, PtrVal):
        v = v.addr
    return wrap(~_as_int(v))


def _index_slow(idx: object) -> int:
    if isinstance(idx, PtrVal):
        return idx.addr
    return int(idx)  # type: ignore[arg-type]


def _seq_msg(v: PtrVal, size: int) -> str:
    return (f"SEQ bounds: 0x{v.addr:x} not in "
            f"[0x{v.b:x}, 0x{(v.e or 0):x} - {size}]")


def _fseq_msg(v: PtrVal, size: int) -> str:
    return f"FSEQ bounds: 0x{v.addr:x} not below 0x{v.e:x} - {size}"


def _wild_msg(v: PtrVal, home) -> str:
    return f"WILD bounds: 0x{v.addr:x} outside {home.name or 'area'}"


def _index_msg(idx: int, length: int) -> str:
    return f"array index {idx} out of bounds [0, {length})"


def _static_sizeof(t: T.CType) -> int:
    """Compile-time ``sizeof``; shares the per-type cache with the
    tree engine's ``Interpreter._sizeof``."""
    size = getattr(t, "_csize_cache", None)
    if size is not None:
        return size
    try:
        size = T.unroll(t).size()
    except T.IncompleteTypeError:
        size = 4
    try:
        t._csize_cache = size  # type: ignore[attr-defined]
    except AttributeError:
        pass
    return size


def _noop(ip, f) -> None:
    return None


class _Compiler:
    """Compiles one function body; holds only the static mode flag."""

    __slots__ = ("cured",)

    def __init__(self, cured: bool) -> None:
        self.cured = cured

    # ------------------------------------------------------------------
    # Operand fetch: inline registers and constants, closure otherwise
    # ------------------------------------------------------------------

    def _fetch(self, e: E.Exp, n: int) -> tuple[str, dict]:
        """A source expression + env loading operand ``e``.  Register
        variables and constants inline (no closure call); anything else
        compiles to a closure invoked as ``e{n}c(ip, f)``."""
        if e.__class__ is E.LvalExp:
            lv = e.lval
            if lv.host.__class__ is E.Var and self._is_reg(lv.host.var):
                return f"f.regs[v{n}id]", {f"v{n}id": lv.host.var.vid}
        elif e.__class__ is E.Const:
            return f"k{n}", {f"k{n}": e.value}
        return f"e{n}c(ip, f)", {f"e{n}c": self.exp(e)}

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def block_body(self, b: S.Block) -> Callable:
        """Runner for a statement list *without* a step charge for the
        block itself (If branches, loop bodies, function bodies)."""
        stmts = tuple(self.stmt(s) for s in b.stmts)
        if not stmts:
            return _noop
        if len(stmts) == 1:
            return stmts[0]

        def run(ip, f):
            for s in stmts:
                s(ip, f)
        return run

    def stmt(self, s: S.Stmt) -> Callable:
        cls = s.__class__
        if cls is S.InstrStmt:
            return self._compile_instr_stmt(s)
        if cls is S.If:
            return self._compile_if(s)
        if cls is S.Loop:
            return self._compile_loop(s)
        if cls is S.Return:
            return self._compile_return(s)
        if cls is S.Block:
            body = self.block_body(s)

            def run(ip, f):
                ip.steps += 1
                if ip.steps > ip._limit_at:
                    ip._over_limit()
                body(ip, f)
            return run
        if cls is S.Break:
            def run(ip, f):
                ip.steps += 1
                if ip.steps > ip._limit_at:
                    ip._over_limit()
                raise _Break()
            return run
        if cls is S.Continue:
            def run(ip, f):
                ip.steps += 1
                if ip.steps > ip._limit_at:
                    ip._over_limit()
                raise _Continue()
            return run

        # Unknown statement classes: the tree walker charges the step
        # and falls through; replicate.
        def run(ip, f):
            ip.steps += 1
            if ip.steps > ip._limit_at:
                ip._over_limit()
        return run

    def _compile_instr_stmt(self, s: S.InstrStmt) -> Callable:
        instrs = tuple(self.instr(i) for i in s.instrs)
        if len(instrs) == 1:
            one = instrs[0]

            def run(ip, f):
                ip.steps += 1
                if ip.steps > ip._limit_at:
                    ip._over_limit()
                one(ip, f)
            return run

        def run(ip, f):
            ip.steps += 1
            if ip.steps > ip._limit_at:
                ip._over_limit()
            for i in instrs:
                i(ip, f)
        return run

    def _compile_if(self, s: S.If) -> Callable:
        fcode, fenv = self._fetch(s.cond, 1)
        # truthiness matches the tree walker: ints by value, pointers
        # by address, everything else by bool()
        src = (_STEP_HEAD +
               "    c = ip.cost\n"
               "    c.cycles += 1\n"
               "    c.instrs += 1\n"
               f"    v = {fcode}\n"
               "    if v.__class__ is PtrVal:\n"
               "        v = v.addr\n"
               "    if v:\n"
               "        thenb(ip, f)\n"
               "    else:\n"
               "        elsb(ip, f)\n")
        return _gen(src, {**_STEP_ENV, **fenv, "PtrVal": PtrVal,
                          "thenb": self.block_body(s.then),
                          "elsb": self.block_body(s.els)})

    def _compile_loop(self, s: S.Loop) -> Callable:
        stmts = tuple(self.stmt(x) for x in s.body.stmts)
        trailing = getattr(s, "continue_runs_trailing", 0)
        tail = stmts[len(stmts) - trailing:] if trailing else ()

        def run(ip, f):
            ip.steps += 1
            if ip.steps > ip._limit_at:
                ip._over_limit()
            while True:
                try:
                    for x in stmts:
                        x(ip, f)
                except _Break:
                    return
                except _Continue:
                    try:
                        for x in tail:
                            x(ip, f)
                    except _Break:
                        return
        return run

    def _compile_return(self, s: S.Return) -> Callable:
        if s.exp is None:
            def run(ip, f):
                ip.steps += 1
                if ip.steps > ip._limit_at:
                    ip._over_limit()
                raise _Return(0)
            return run
        fcode, fenv = self._fetch(s.exp, 1)
        src = _STEP_HEAD + f"    raise _Return({fcode})\n"
        return _gen(src, {**_STEP_ENV, **fenv, "_Return": _Return})

    # ------------------------------------------------------------------
    # Instructions
    # ------------------------------------------------------------------

    def instr(self, i: S.Instr) -> Callable:
        cls = i.__class__
        if cls is S.Set:
            return self._compile_set(i)
        if cls is S.Call:
            return self._compile_call(i)
        if cls is S.Check:
            return self._compile_check(i)
        raise MemorySafetyError(f"cannot compile instruction {i!r}")

    def _coerce_code(self, t: T.CType) -> tuple[str, dict]:
        """Source lines coercing the local ``value`` for a store into a
        ``t``-typed slot; the uncommon shapes fall back to the generic
        coercion closure."""
        u = T.unroll(t)
        env = {"coerce_slow": self.coerce(t)}
        if isinstance(u, (T.TInt, T.TEnum)):
            mask, top, span = self._wrap_params(t) or (0xFFFFFFFF, 0, 0)
            env.update(mask=mask, top=top, span=span)
            if not top:
                return ("    if value.__class__ is int:\n"
                        "        value = value & mask\n"
                        "    else:\n"
                        "        value = coerce_slow(value)\n"), env
            return ("    if value.__class__ is int:\n"
                    "        value = value & mask\n"
                    "        if value >= top:\n"
                    "            value = value - span\n"
                    "    else:\n"
                    "        value = coerce_slow(value)\n"), env
        if isinstance(u, T.TPtr):
            env["PtrVal"] = PtrVal
            return ("    if value.__class__ is not PtrVal:\n"
                    "        value = coerce_slow(value)\n"), env
        return "    value = coerce_slow(value)\n", env

    def _compile_set(self, i: S.Set) -> Callable:
        lv = i.lval
        fcode, fenv = self._fetch(i.exp, 1)
        ccode, cenv = self._coerce_code(lv.type())
        head = _INSTR_HEAD + f"    value = {fcode}\n" + ccode
        if lv.host.__class__ is E.Var and self._is_reg(lv.host.var):
            # register destination: the whole statement is one frame
            src = head + "    f.regs[dvid] = value\n"
            return _gen(src, {**fenv, **cenv,
                              "dvid": lv.host.var.vid})
        acode, aenv, t = self._addr_code(lv)
        body = self._write_body(t)
        if body is not None:
            bcode, benv = body
            guard = ""
            if self.cured:
                guard = (
                    "    if value.__class__ is PtrVal "
                    "and value.addr != 0:\n"
                    "        ip._stack_escape_check(addr, value, f)\n")
            src = head + acode + guard + bcode
            return _gen(src, {**fenv, **cenv, **aenv, **benv,
                              "PtrVal": PtrVal})
        writec = self.write_lval(lv)
        src = head + "    writec(ip, f, value)\n"
        return _gen(src, {**fenv, **cenv, "writec": writec})

    def _compile_call(self, i: S.Call) -> Callable:
        fetches = [self._fetch(a, n) for n, a in enumerate(i.args)]
        env: dict = {"instr": i}
        for _, fe in fetches:
            env.update(fe)
        args_expr = ", ".join(fc for fc, _ in fetches)
        head = _INSTR_HEAD + f"    args = [{args_expr}]\n"
        direct = (isinstance(i.fn, (E.AddrOf, E.LvalExp))
                  and isinstance(i.fn.lval.host, E.Var)
                  and isinstance(i.fn.lval.offset, E.NoOffset)
                  and T.is_function(i.fn.lval.host.var.type))
        if direct:
            env["name"] = i.fn.lval.host.var.name
            call = ("    ret = ip._dispatch_call(name, None, args, "
                    "instr, f)\n")
        else:
            fncode, fnenv = self._fetch(i.fn, 99)
            env.update(fnenv)
            env["PtrVal"] = PtrVal
            call = (
                f"    fv = {fncode}\n"
                "    if fv.__class__ is not PtrVal:\n"
                "        fv = PtrVal(int(fv))\n"
                "    ret = ip._dispatch_call(None, fv, args, "
                "instr, f)\n")
        store = ""
        if i.ret is not None:
            env["retc"] = self.coerce(i.ret.type())
            if (i.ret.host.__class__ is E.Var
                    and self._is_reg(i.ret.host.var)):
                env["rvid"] = i.ret.host.var.vid
                store = "    f.regs[rvid] = retc(ret)\n"
            else:
                env["retw"] = self.write_lval(i.ret)
                store = "    retw(ip, f, retc(ret))\n"
        return _gen(head + call + store, env)

    # ------------------------------------------------------------------
    # Checks (specialized per kind at compile time)
    # ------------------------------------------------------------------

    def _compile_check(self, c: S.Check) -> Callable:
        if not self.cured:
            # Raw runs of an instrumented program: the instruction is
            # charged (and seen by shadow tools) but the check is inert.
            def run(ip, f):
                cm = ip.cost
                cm.cycles += 1
                cm.instrs += 1
                sh = ip.shadow
                if sh is not None:
                    sh.on_instr()
            return run

        head = (_INSTR_HEAD
                + "    c.cycles += ck\n"
                + "    c.events[evk] += 1\n"
                # per-site hit counters for the observability layer;
                # a None mapping keeps this to one attribute test
                + "    hits = ip.site_hits\n"
                + "    if hits is not None:\n"
                + "        hits[sitek] = hits.get(sitek, 0) + 1\n")
        env: dict = {"ck": CHECK_COSTS.get(c.kind, 1),
                     "evk": f"check:{c.kind.value}",
                     "sitek": c.site}
        body = self._check_body_code(c)
        if body is None:
            return _gen(head, env)
        bcode, benv = body
        # Mirror the tree walker's _exec_check: a failing check gets
        # its CheckFailure record attached before propagating.  The
        # Check node rides in the env, so the source text (and the
        # cached code object) stays shared across same-shape checks.
        src = (head
               + "    try:\n"
               + _indent(bcode)
               + "    except MemorySafetyError as exc:\n"
               + "        ip._attach_check_failure(exc, chk, "
               "f.fundec.name)\n"
               + "        raise\n")
        return _gen(src, {**env, **benv, "chk": c,
                          "MemorySafetyError": MemorySafetyError})

    def _check_body_code(self, c: S.Check) -> Optional[tuple[str, dict]]:
        K = S.CheckKind
        kind = c.kind
        if kind in (K.SAFE_TO_SEQ, K.STORE_STACK_PTR, K.VERIFY_NUL,
                    K.VERIFY_SIZE):
            return None  # cost only

        fcode, fenv = self._fetch(c.args[0], 1)

        if kind is K.INDEX:
            env = {**fenv, "PtrVal": PtrVal, "BoundsError": BoundsError,
                   "_index_msg": _index_msg, "length": c.size or 0}
            return ((f"    v = {fcode}\n"
                     "    if v.__class__ is PtrVal:\n"
                     "        idx = v.addr\n"
                     "    else:\n"
                     "        idx = int(v)\n"
                     "    if not (0 <= idx < length):\n"
                     "        raise BoundsError(_index_msg(idx, length),"
                     " f.fundec.name)\n"), env)

        prelude = (f"    v = {fcode}\n"
                   "    if v.__class__ is not PtrVal:\n"
                   "        v = PtrVal(int(v))\n")
        env = {**fenv, "PtrVal": PtrVal,
               "NullDereferenceError": NullDereferenceError,
               "BoundsError": BoundsError}

        if kind is K.NULL:
            return (prelude +
                    "    if v.addr == 0:\n"
                    "        raise NullDereferenceError("
                    "'null dereference', f.fundec.name)\n"
                    "    ip._check_alive(v, f)\n"), env

        if kind is K.ALIVE:
            # the lock-and-key logic lives in one shared interpreter
            # helper, so both engines raise identical errors
            return prelude + "    ip._check_temporal(v, f)\n", env

        if kind in (K.SEQ_BOUNDS, K.SEQ_TO_SAFE):
            env.update(size=c.size or 1, _seq_msg=_seq_msg)
            if kind is K.SEQ_TO_SAFE:
                null = "        return\n"  # null survives the conversion
            else:
                null = ("        raise NullDereferenceError("
                        "'null SEQ dereference', f.fundec.name)\n")
            return (prelude +
                    "    if v.addr == 0:\n" + null +
                    "    if not v.b:\n"
                    "        raise NullDereferenceError("
                    "'SEQ pointer is an integer in disguise "
                    "(null base)', f.fundec.name)\n"
                    "    if not (v.b <= v.addr <= v.e - size"
                    " if v.e is not None else False):\n"
                    "        raise BoundsError(_seq_msg(v, size), "
                    "f.fundec.name)\n"
                    "    ip._check_alive(v, f)\n"), env

        if kind is K.FSEQ_BOUNDS:
            env.update(size=c.size or 1, _fseq_msg=_fseq_msg)
            return (prelude +
                    "    if v.addr == 0:\n"
                    "        raise NullDereferenceError("
                    "'null FSEQ dereference', f.fundec.name)\n"
                    "    if v.e is None:\n"
                    "        raise NullDereferenceError("
                    "'FSEQ pointer is an integer in disguise', "
                    "f.fundec.name)\n"
                    "    lo = v.b if v.b is not None else v.addr\n"
                    "    if not (lo <= v.addr <= v.e - size):\n"
                    "        raise BoundsError(_fseq_msg(v, size), "
                    "f.fundec.name)\n"
                    "    ip._check_alive(v, f)\n"), env

        if kind is K.WILD_BOUNDS:
            env.update(size=c.size or 1, _wild_msg=_wild_msg,
                       DanglingPointerError=DanglingPointerError)
            return (prelude +
                    "    if v.addr == 0:\n"
                    "        raise NullDereferenceError("
                    "'null WILD dereference', f.fundec.name)\n"
                    "    if not v.b:\n"
                    "        raise NullDereferenceError("
                    "'WILD pointer is an integer in disguise', "
                    "f.fundec.name)\n"
                    "    home = ip.mem.home_of(v.b)\n"
                    "    if home is None:\n"
                    "        raise DanglingPointerError("
                    "'WILD base invalid', f.fundec.name)\n"
                    "    if not (home.base <= v.addr <= "
                    "home.end - size):\n"
                    "        raise BoundsError(_wild_msg(v, home), "
                    "f.fundec.name)\n"
                    "    ip._check_alive(v, f)\n"), env

        if kind is K.WILD_READ_TAG:
            env["WildTagError"] = WildTagError
            return (prelude +
                    "    if not ip.mem.has_ptr_tag(v.addr):\n"
                    "        raise WildTagError('WILD read: tag says "
                    "the word is not a pointer', f.fundec.name)\n"), env

        if kind is K.RTTI_CAST:
            env["rtti_t"] = c.rtti
            return (prelude +
                    "    if v.addr == 0:\n"
                    "        return\n"
                    "    target = ip.hierarchy.rtti_of(rtti_t)\n"
                    "    ip._rtti_check(v, target, f)\n"), env

        if kind is K.FUNPTR:
            env["WildTagError"] = WildTagError
            return (prelude +
                    "    if v.addr == 0:\n"
                    "        raise NullDereferenceError("
                    "'null function pointer', f.fundec.name)\n"
                    "    if v.addr not in ip._addr_to_func:\n"
                    "        raise WildTagError('function pointer does "
                    "not point to a function', f.fundec.name)\n"), env

        return None  # unknown kinds: cost only, like the tree walker

    # ------------------------------------------------------------------
    # Lvalues
    # ------------------------------------------------------------------

    @staticmethod
    def _is_reg(var: E.Varinfo) -> bool:
        """Static version of the frame-register test: matches exactly
        what ``Interpreter._build_call_plan`` puts into
        ``frame.regs``."""
        return (not var.is_global and _is_register_type(var.type)
                and not var.address_taken)

    def _host_code(self, lv: E.Lval) -> tuple[str, dict, str, T.CType]:
        """Source lines resolving the lvalue's host storage (register
        hosts excluded — callers handle those first).  Returns
        ``(lines, env, base_expr, host_type)``."""
        env: dict = {}
        lines: list[str] = []
        if lv.host.__class__ is E.Var:
            var = lv.host.var
            t: T.CType = var.type
            env["vid"] = var.vid
            env["LinkError"] = LinkError
            if var.is_global:
                env["vmsg"] = f"undefined external {var.name}"
                lines.append("    h = ip._global_homes.get(vid)\n")
            else:
                env["vmsg"] = f"variable {var.name} has no storage"
                lines.append("    h = f.homes.get(vid)\n")
            lines += ["    if h is None:\n",
                      "        raise LinkError(vmsg)\n"]
            base = "h.base"
        else:
            host = lv.host
            assert isinstance(host, E.Mem)
            pt = T.unroll(host.exp.type())
            t = pt.base if isinstance(pt, T.TPtr) else T.int_t()
            fcode, fenv = self._fetch(host.exp, 9)
            env.update(fenv)
            env["PtrVal"] = PtrVal
            lines += [f"    p = {fcode}\n",
                      "    if p.__class__ is not PtrVal:\n",
                      "        p = PtrVal(int(p))\n"]
            if self.cured:
                # Defense in depth: the Check in front should have fired.
                env["NullDereferenceError"] = NullDereferenceError
                lines += ["    if p.addr == 0:\n",
                          "        raise NullDereferenceError("
                          "'null dereference', f.fundec.name)\n"]
            base = "p.addr"
        return "".join(lines), env, base, t

    def _addr_code(self, lv: E.Lval) -> tuple[str, dict, T.CType]:
        """Source lines computing the lvalue's address into ``addr``
        (register hosts excluded — callers handle those first).  Field
        offsets fold into one constant; Index offsets evaluate in chain
        order with register/constant indices inlined."""
        host_lines, env, base, t = self._host_code(lv)
        lines: list[str] = [host_lines] if host_lines else []
        const = 0
        parts: list[str] = []
        off = lv.offset
        n = 10
        while not isinstance(off, E.NoOffset):
            if isinstance(off, E.Field):
                const += T.field_offset(off.field)
                t = off.field.type
            else:
                assert isinstance(off, E.Index)
                at = T.unroll(t)
                assert isinstance(at, T.TArray)
                esz = _static_sizeof(at.base)
                idx = off.index
                if idx.__class__ is E.Const and \
                        isinstance(idx.value, int):
                    const += idx.value * esz
                else:
                    fcode, fenv = self._fetch(idx, n)
                    env.update(fenv)
                    env[f"esz{n}"] = esz
                    env["_index_slow"] = _index_slow
                    lines += [f"    i{n} = {fcode}\n",
                              f"    if i{n}.__class__ is not int:\n",
                              f"        i{n} = _index_slow(i{n})\n"]
                    parts.append(f"i{n} * esz{n}")
                    n += 1
                t = at.base
            off = off.rest
        expr = base
        if const:
            env["delta"] = const
            expr += " + delta"
        for p in parts:
            expr += f" + {p}"
        lines.append(f"    addr = {expr}\n")
        return "".join(lines), env, t

    def lval_addr(self, lv: E.Lval) -> tuple[Callable, T.CType]:
        """Compile an address computation ``(ip, f) -> addr`` plus the
        statically-known type of the addressed storage."""
        code, env, t = self._addr_code(lv)
        fn = _gen("def run(ip, f):\n" + code + "    return addr\n", env)
        return fn, t

    def read_lval(self, lv: E.Lval) -> Callable:
        if lv.host.__class__ is E.Var and self._is_reg(lv.host.var):
            vid = lv.host.var.vid

            def run(ip, f):
                return f.regs[vid]
            return run
        acode, aenv, t = self._addr_code(lv)
        body = self._read_body(t)
        if body is not None:
            bcode, benv = body
            return _gen("def run(ip, f):\n" + acode + bcode,
                        {**aenv, **benv})
        addr_fn = _gen("def run(ip, f):\n" + acode +
                       "    return addr\n", aenv)
        readc = self.read_mem(t)

        def run(ip, f):
            return readc(ip, addr_fn(ip, f))
        return run

    def write_lval(self, lv: E.Lval) -> Callable:
        """Compile a store ``(ip, f, value) -> None``."""
        if lv.host.__class__ is E.Var and self._is_reg(lv.host.var):
            vid = lv.host.var.vid

            def run(ip, f, value):
                f.regs[vid] = value
            return run
        acode, aenv, t = self._addr_code(lv)
        guard = ""
        if self.cured:
            aenv = {**aenv, "PtrVal": PtrVal}
            guard = ("    if value.__class__ is PtrVal "
                     "and value.addr != 0:\n"
                     "        ip._stack_escape_check(addr, value, f)\n")
        body = self._write_body(t)
        if body is not None:
            bcode, benv = body
            return _gen("def run(ip, f, value):\n" + acode + guard
                        + bcode, {**aenv, **benv})
        addr_fn = _gen("def run(ip, f):\n" + acode +
                       "    return addr\n", aenv)
        writec = self.write_mem(t)
        if self.cured:
            def run(ip, f, value):
                addr = addr_fn(ip, f)
                if isinstance(value, PtrVal) and value.addr != 0:
                    ip._stack_escape_check(addr, value, f)
                writec(ip, addr, value)
            return run

        def run(ip, f, value):
            writec(ip, addr_fn(ip, f), value)
        return run

    # ------------------------------------------------------------------
    # Typed memory access (specialized on the static type)
    # ------------------------------------------------------------------

    def _ptr_slot_charges(self, u: T.TPtr,
                          store: bool) -> tuple[int, int, int, bool]:
        """Precompute ``Interpreter._charge_ptr_slot`` for a pointer
        slot: (extra_cycles, wides_inc, splits_inc, wild_tag)."""
        node = u.node
        if node is None or not self.cured:
            return 0, 0, 0, False
        kind = node.kind
        wild_tag = store and kind is PointerKind.WILD
        if node.split:
            ops = 0
            if kind is PointerKind.SEQ:
                ops = 2
            elif kind in (PointerKind.FSEQ, PointerKind.RTTI):
                ops = 1
            if node.has_meta:
                ops += 1
            if ops:
                return COST_SPLIT_META * ops, 0, ops, wild_tag
            return 0, 0, 0, wild_tag
        extra = WIDE_EXTRA_WORDS.get(kind.name, 0)
        if extra:
            return extra, 1, 0, wild_tag
        return 0, 0, 0, wild_tag

    def _read_body(self, t: T.CType) -> Optional[tuple[str, dict]]:
        """Source lines loading a ``t``-typed value from ``addr`` (the
        cost/shadow charges included); None for aggregates."""
        u = T.unroll(t)
        size = _static_sizeof(u)
        words = mem_words(size) * COST_MEM_WORD
        charge = ("    c = ip.cost\n"
                  "    c.cycles += words\n"
                  "    c.mems += 1\n"
                  "    sh = ip.shadow\n"
                  "    if sh is not None:\n"
                  "        sh.on_read(addr, size)\n")
        if isinstance(u, (T.TInt, T.TEnum)):
            signed = u.kind.is_signed if isinstance(u, T.TInt) else True
            return (charge +
                    "    return ip.mem.read_int(addr, size, signed)\n",
                    {"words": words, "size": size, "signed": signed})
        if isinstance(u, T.TFloat):
            return (charge +
                    "    return ip.mem.read_float(addr, size)\n",
                    {"words": words, "size": size})
        if isinstance(u, T.TPtr):
            cyc, wides, splits, _ = self._ptr_slot_charges(u, False)
            env = {"words": words + cyc, "size": size,
                   "from_meta": PtrVal.from_meta}
            extra = ""
            if wides:
                env["wides"] = wides
                extra += "    c.wides += wides\n"
            if splits:
                env["splits"] = splits
                extra += "    c.splits += splits\n"
            lines = (charge.replace("    c.mems += 1\n",
                                    "    c.mems += 1\n" + extra)
                     + "    value, meta = ip.mem.read_ptr(addr)\n")
            if self.cured and u.node is not None and u.node.split:
                # Section 4.2: SPLIT data written by a library has no
                # shadow metadata yet; the allocator's ground truth
                # provides sound bounds.
                env["PtrMeta"] = PtrMeta
                lines += (
                    "    if meta is None and value != 0:\n"
                    "        home = ip.mem.home_of(value)\n"
                    "        if home is not None:\n"
                    "            meta = PtrMeta(b=home.base, "
                    "e=home.end)\n"
                    "            c.cycles += 4\n"
                    "            c.events['split:manufacture'] += 1\n")
            return lines + "    return from_meta(value, meta)\n", env
        return None

    def _write_body(self, t: T.CType) -> Optional[tuple[str, dict]]:
        """Source lines storing ``value`` at ``addr``; None for
        aggregates (generic ``_write_mem`` handles those)."""
        u = T.unroll(t)
        size = _static_sizeof(u)
        words = mem_words(size) * COST_MEM_WORD
        charge = ("    c = ip.cost\n"
                  "    c.cycles += words\n"
                  "    c.mems += 1\n"
                  "    sh = ip.shadow\n"
                  "    if sh is not None:\n"
                  "        sh.on_write(addr, size)\n")
        if isinstance(u, (T.TInt, T.TEnum)):
            return (charge +
                    "    ip.mem.write_int(addr, value if "
                    "value.__class__ is int else _as_int(value), "
                    "size)\n",
                    {"words": words, "size": size, "_as_int": _as_int})
        if isinstance(u, T.TFloat):
            return (charge +
                    "    ip.mem.write_float(addr, _as_float(value), "
                    "size)\n",
                    {"words": words, "size": size,
                     "_as_float": _as_float})
        if isinstance(u, T.TPtr):
            cyc, wides, splits, wild_tag = self._ptr_slot_charges(
                u, True)
            env = {"words": words + cyc
                   + (COST_WILD_TAG_UPDATE if wild_tag else 0),
                   "size": size, "PtrVal": PtrVal, "_as_int": _as_int}
            extra = ""
            if wides:
                env["wides"] = wides
                extra += "    c.wides += wides\n"
            if splits:
                env["splits"] = splits
                extra += "    c.splits += splits\n"
            if wild_tag:
                extra += "    c.events['wild-tag'] += 1\n"
            lines = (charge.replace("    c.mems += 1\n",
                                    "    c.mems += 1\n" + extra)
                     + "    v = value if value.__class__ is PtrVal "
                     "else PtrVal(_as_int(value))\n"
                     "    meta = v.meta()\n")
            if self.cured:
                # Figure 10/11: every pointer store into a tagged area
                # sets the word's tag.
                env["PtrMeta"] = PtrMeta
                lines += ("    if meta is None:\n"
                          "        meta = PtrMeta()\n")
            return (lines + "    ip.mem.write_ptr(addr, v.addr, "
                    "meta)\n", env)
        return None

    def read_mem(self, t: T.CType) -> Callable:
        """Compile a typed load ``(ip, addr) -> value``."""
        body = self._read_body(t)
        if body is None:
            # Aggregates and anything exotic: the generic path already
            # handles blobs, charges and shadow hooks.
            def run(ip, addr, _t=t):
                return ip._read_mem(addr, _t)
            return run
        bcode, benv = body
        return _gen("def run(ip, addr):\n" + bcode, benv)

    def write_mem(self, t: T.CType) -> Callable:
        """Compile a typed store ``(ip, addr, value) -> None``."""
        body = self._write_body(t)
        if body is None:
            def run(ip, addr, value, _t=t):
                ip._write_mem(addr, _t, value)
            return run
        bcode, benv = body
        return _gen("def run(ip, addr, value):\n" + bcode, benv)

    # ------------------------------------------------------------------
    # Store coercion and integer wrapping (static per type)
    # ------------------------------------------------------------------

    @staticmethod
    def _wrap_params(t: T.CType) -> Optional[tuple[int, int, int]]:
        """``(mask, top, span)`` for integer wrapping at type ``t``, or
        ``None`` for float (no wrapping).  ``top``/``span`` are 0 for
        unsigned types."""
        u = T.unroll(t)
        if isinstance(u, T.TFloat):
            return None
        if isinstance(u, T.TInt):
            bits = 8 * u.size()
            signed = u.kind.is_signed
        else:
            bits, signed = 32, False
        mask = (1 << bits) - 1
        if not signed:
            return mask, 0, 0
        return mask, 1 << (bits - 1), 1 << bits

    def wrap_for(self, t: T.CType) -> Callable:
        """Static version of ``Interpreter._wrap_to`` for type ``t``."""
        u = T.unroll(t)
        if isinstance(u, T.TFloat):
            return lambda v: v
        if isinstance(u, T.TInt):
            bits = 8 * u.size()
            signed = u.kind.is_signed
        else:
            bits, signed = 32, False
        mask = (1 << bits) - 1
        if not signed:
            def wrap(v):
                if not isinstance(v, int):
                    v = int(v)
                return v & mask
            return wrap
        top = 1 << (bits - 1)
        span = 1 << bits

        def wrap(v):
            if not isinstance(v, int):
                v = int(v)
            v &= mask
            return v - span if v >= top else v
        return wrap

    def coerce(self, t: T.CType) -> Callable:
        """Static version of ``Interpreter._coerce_store``."""
        u = T.unroll(t)
        if isinstance(u, (T.TInt, T.TEnum)):
            wrap = self.wrap_for(t)
            mask, top, span = self._wrap_params(t) or (0xFFFFFFFF,
                                                       0, 0)
            if not top:
                def run(v):
                    if v.__class__ is int:
                        return v & mask
                    if isinstance(v, PtrVal):
                        v = v.addr
                    elif isinstance(v, float):
                        v = int(v)
                    return wrap(_as_int(v))
                return run

            def run(v):
                if v.__class__ is int:
                    v &= mask
                    return v - span if v >= top else v
                if isinstance(v, PtrVal):
                    v = v.addr
                elif isinstance(v, float):
                    v = int(v)
                return wrap(_as_int(v))
            return run
        if isinstance(u, T.TFloat):
            def run(v):
                if isinstance(v, PtrVal):
                    return float(v.addr)
                if v is None:
                    return 0.0
                return float(v)
            return run
        if isinstance(u, T.TPtr):
            def run(v):
                if isinstance(v, PtrVal):
                    return v
                return PtrVal(_as_int(v))
            return run
        return lambda v: v

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def exp(self, e: E.Exp) -> Callable:
        cls = e.__class__
        if cls is E.Const:
            value = e.value
            return lambda ip, f: value
        if cls is E.LvalExp:
            return self.read_lval(e.lval)
        if cls is E.BinOp:
            return self._compile_binop(e)
        if cls is E.CastE:
            return self._compile_cast(e)
        if cls is E.UnOp:
            return self._compile_unop(e)
        if cls is E.StrConst:
            text = e.value

            def run(ip, f):
                home = ip.intern_string(text)
                return PtrVal(home.base, b=home.base, e=home.end)
            return run
        if cls is E.SizeOfT:
            value = _static_sizeof(e.t)
            return lambda ip, f: value
        if cls is E.AddrOf:
            fast = self._compile_addrof(e.lval)
            if fast is not None:
                return fast
            # Index offsets walk the chain up to three times with
            # interleaved charges; delegate to the tree engine's exact
            # code to keep cycle parity (cold relative to plain loads).
            lv = e.lval
            return lambda ip, f: ip._eval_addrof(lv, f)
        if cls is E.StartOf:
            fast = self._compile_startof(e.lval)
            if fast is not None:
                return fast
            lv = e.lval
            return lambda ip, f: ip._eval_startof(lv, f)
        raise MemorySafetyError(f"cannot evaluate {e!r}")

    def _charge_free(self, e: E.Exp) -> bool:
        """Evaluating ``e`` charges no cycles and has no side effects,
        so the tree engine may evaluate it once or three times with
        identical cost — exactly constants and register reads."""
        if e.__class__ is E.Const:
            return True
        if e.__class__ is E.LvalExp:
            lv = e.lval
            return (lv.host.__class__ is E.Var and
                    lv.offset.__class__ is E.NoOffset and
                    self._is_reg(lv.host.var))
        return False

    def _compile_addrof(self, lv: E.Lval) -> Optional[Callable]:
        """``&lval`` compiled when every Index expression in the offset
        chain is charge-free: the tree engine walks the chain three
        times (location, ``_offset_delta``, the bounds walk), so a
        charging index would be billed thrice there but once here.
        Bounds replicate ``_bounds_for_addr``: the extent of the
        innermost fixed-length indexed array, else the object itself."""
        if lv.host.__class__ is E.Var:
            var = lv.host.var
            if T.is_function(var.type):
                return None  # code designator: delegates (alloc stubs)
            if self._is_reg(var):
                return None  # tree raises its own diagnostic
        off = lv.offset
        while not isinstance(off, E.NoOffset):
            if isinstance(off, E.Index) and \
                    not self._charge_free(off.index):
                return None
            off = off.rest
        host_lines, env, base, t = self._host_code(lv)
        lines: list[str] = [host_lines] if host_lines else []
        const = 0
        parts: list[str] = []
        #: innermost fixed-length indexed array: (const, #parts, extent)
        best: Optional[tuple[int, int, int]] = None
        n = 10
        off = lv.offset
        while not isinstance(off, E.NoOffset):
            if isinstance(off, E.Field):
                const += T.field_offset(off.field)
                t = off.field.type
            else:
                assert isinstance(off, E.Index)
                at = T.unroll(t)
                assert isinstance(at, T.TArray)
                esz = _static_sizeof(at.base)
                if at.length is not None:
                    best = (const, len(parts), at.length * esz)
                idx = off.index
                if idx.__class__ is E.Const and \
                        isinstance(idx.value, int):
                    const += idx.value * esz
                else:
                    fcode, fenv = self._fetch(idx, n)
                    env.update(fenv)
                    env[f"esz{n}"] = esz
                    env["_index_slow"] = _index_slow
                    lines += [f"    i{n} = {fcode}\n",
                              f"    if i{n}.__class__ is not int:\n",
                              f"        i{n} = _index_slow(i{n})\n"]
                    parts.append(f"i{n} * esz{n}")
                    n += 1
                t = at.base
            off = off.rest
        env["PtrVal"] = PtrVal
        if best is None:
            expr = base
            if const:
                env["delta"] = const
                expr += " + delta"
            for p in parts:
                expr += " + " + p
            env["size"] = _static_sizeof(t)
            lines += [f"    addr = {expr}\n",
                      "    return PtrVal(addr, b=addr, e=addr + size)\n"]
        else:
            bconst, bn, extent = best
            bexpr = base
            if bconst:
                env["bdelta"] = bconst
                bexpr += " + bdelta"
            for p in parts[:bn]:
                bexpr += " + " + p
            aexpr = "b"
            if const - bconst:
                env["sdelta"] = const - bconst
                aexpr += " + sdelta"
            for p in parts[bn:]:
                aexpr += " + " + p
            env["extent"] = extent
            lines += [f"    b = {bexpr}\n",
                      f"    addr = {aexpr}\n",
                      "    return PtrVal(addr, b=b, e=b + extent)\n"]
        return _gen("def run(ip, f):\n" + "".join(lines), env)

    def _compile_startof(self, lv: E.Lval) -> Optional[Callable]:
        """Array-to-pointer decay.  The tree engine resolves the
        location with a single offset walk (indices evaluated and
        charged once), so any offset chain compiles directly."""
        if lv.host.__class__ is E.Var and self._is_reg(lv.host.var):
            return None  # tree asserts; keep its diagnostic
        code, env, t = self._addr_code(lv)
        at = T.unroll(t)
        if not isinstance(at, T.TArray):
            return None  # tree asserts; keep its diagnostic
        env["PtrVal"] = PtrVal
        if at.length is not None:
            env["extent"] = at.length * _static_sizeof(at.base)
            tail = "    return PtrVal(addr, b=addr, e=addr + extent)\n"
        else:
            tail = ("    home = ip.mem.home_of(addr)\n"
                    "    return PtrVal(addr, b=addr, "
                    "e=home.end if home else addr)\n")
        return _gen("def run(ip, f):\n" + code + tail, env)

    def _compile_unop(self, e: E.UnOp) -> Callable:
        fcode, fenv = self._fetch(e.e, 1)
        if e.op is E.UnopKind.LNOT:
            src = ("def run(ip, f):\n"
                   "    ip.cost.cycles += 1\n"
                   f"    v = {fcode}\n"
                   "    if v.__class__ is PtrVal:\n"
                   "        return 0 if v.addr != 0 else 1\n"
                   "    return 0 if v else 1\n")
            return _gen(src, {**fenv, "PtrVal": PtrVal})
        wrap = self.wrap_for(e.type())
        params = self._wrap_params(e.type())
        neg = e.op is E.UnopKind.NEG
        if params is not None:
            mask, top, span = params
            if neg:
                fast = "(-v) & mask"
                slow = _neg_slow
            else:
                fast = "(~v) & mask"
                slow = _bnot_slow
            if top:
                body = (f"        out = {fast}\n"
                        "        return out - span if out >= top "
                        "else out\n")
            else:
                body = f"        return {fast}\n"
            src = ("def run(ip, f):\n"
                   "    ip.cost.cycles += 1\n"
                   f"    v = {fcode}\n"
                   "    if v.__class__ is int:\n"
                   + body +
                   "    return slow(v, wrap)\n")
            return _gen(src, {**fenv, "mask": mask, "top": top,
                              "span": span, "slow": slow,
                              "wrap": wrap})
        sub = self.exp(e.e)
        if neg:
            def run(ip, f):
                ip.cost.cycles += 1
                v = sub(ip, f)
                if isinstance(v, PtrVal):
                    v = v.addr
                return wrap(-v)  # type: ignore[operator]
            return run

        def run(ip, f):
            ip.cost.cycles += 1
            v = sub(ip, f)
            if isinstance(v, PtrVal):
                v = v.addr
            return wrap(~_as_int(v))
        return run

    @staticmethod
    def _elem_size_of(e: E.Exp) -> int:
        bt = T.unroll(e.type())
        return _static_sizeof(bt.base) if isinstance(bt, T.TPtr) else 1

    def _compile_binop(self, e: E.BinOp) -> Callable:
        op = e.op
        f1, env1 = self._fetch(e.e1, 1)
        f2, env2 = self._fetch(e.e2, 2)
        head = ("def run(ip, f):\n"
                "    ip.cost.cycles += 1\n"
                f"    v1 = {f1}\n"
                f"    v2 = {f2}\n")
        if op is E.BinopKind.PLUS_PI or op is E.BinopKind.MINUS_PI:
            esz = self._elem_size_of(e.e1)
            mult = esz if op is E.BinopKind.PLUS_PI else -esz
            src = (head +
                   "    p = v1 if v1.__class__ is PtrVal else "
                   "PtrVal(_as_int(v1))\n"
                   "    if v2.__class__ is int:\n"
                   "        return p.with_addr(p.addr + v2 * mult)\n"
                   "    return p.with_addr(p.addr + _as_int(v2) "
                   "* mult)\n")
            return _gen(src, {**env1, **env2, "PtrVal": PtrVal,
                              "_as_int": _as_int, "mult": mult})
        if op is E.BinopKind.MINUS_PP:
            esz = self._elem_size_of(e.e1)
            src = (head +
                   "    a1 = v1.addr if v1.__class__ is PtrVal "
                   "else _as_int(v1)\n"
                   "    a2 = v2.addr if v2.__class__ is PtrVal "
                   "else _as_int(v2)\n"
                   "    return (a1 - a2) // esz\n")
            return _gen(src, {**env1, **env2, "PtrVal": PtrVal,
                              "_as_int": _as_int, "esz": esz})
        if op in E.COMPARISONS:
            # fast path: two plain ints (bool falls through, so the
            # subclass-sensitive slow path keeps tree semantics)
            sym = _CMP_SYM[op]
            src = (head +
                   "    if v1.__class__ is int and "
                   "v2.__class__ is int:\n"
                   f"        return 1 if v1 {sym} v2 else 0\n"
                   "    return _cmp_slow(v1, v2, cmpf)\n")
            return _gen(src, {**env1, **env2, "_cmp_slow": _cmp_slow,
                              "cmpf": _CMP_OPS[op]})
        rt = T.unroll(e.type())
        if isinstance(rt, T.TFloat):
            fop = _FLOAT_OPS.get(op)
            if fop is None:
                return lambda ip, f: ip._eval_binop(e, f)
            src = (head +
                   "    if v1.__class__ is PtrVal:\n"
                   "        v1 = v1.addr\n"
                   "    if v2.__class__ is PtrVal:\n"
                   "        v2 = v2.addr\n"
                   "    try:\n"
                   "        return fop(_as_float(v1), _as_float(v2))\n"
                   "    except ZeroDivisionError:\n"
                   "        raise ProgramAbort('floating division by "
                   "zero')\n")
            return _gen(src, {**env1, **env2, "fop": fop,
                              "_as_float": _as_float, "PtrVal": PtrVal,
                              "ProgramAbort": ProgramAbort})
        iop = _INT_OPS.get(op)
        if iop is None:
            return lambda ip, f: ip._eval_binop(e, f)
        wrap = self.wrap_for(e.type())
        params = self._wrap_params(e.type())
        expr = _INT_EXPR.get(op)
        if params is not None and expr is not None:
            mask, top, span = params
            fast_expr, may_raise = expr
            if top:
                result = ("out = (" + fast_expr + ") & mask\n"
                          "{i}return out - span if out >= top "
                          "else out\n")
            else:
                result = "return (" + fast_expr + ") & mask\n"
            if may_raise:
                fast = ("        try:\n"
                        "            " + result.format(i="            ")
                        + "        except ZeroDivisionError:\n"
                        "            raise ProgramAbort('integer "
                        "division by zero')\n")
            else:
                fast = "        " + result.format(i="        ")
            src = (head +
                   "    if v1.__class__ is int and "
                   "v2.__class__ is int:\n"
                   + fast +
                   "    return _binop_slow(v1, v2, iop, wrap)\n")
            return _gen(src, {**env1, **env2,
                              "_binop_slow": _binop_slow, "iop": iop,
                              "wrap": wrap, "mask": mask, "top": top,
                              "span": span,
                              "ProgramAbort": ProgramAbort})

        src = head + "    return _binop_slow(v1, v2, iop, wrap)\n"
        return _gen(src, {**env1, **env2, "_binop_slow": _binop_slow,
                          "iop": iop, "wrap": wrap})

    def _compile_cast(self, e: E.CastE) -> Callable:
        fcode, fenv = self._fetch(e.e, 1)
        head = ("def run(ip, f):\n"
                "    ip.cost.cycles += 1\n"
                f"    v = {fcode}\n")
        target = T.unroll(e.t)
        if isinstance(target, (T.TInt, T.TEnum)):
            wrap = self.wrap_for(e.t)
            mask, top, span = self._wrap_params(e.t) or (0xFFFFFFFF,
                                                         0, 0)
            if not top:
                body = "        return v & mask\n"
            else:
                body = ("        v = v & mask\n"
                        "        return v - span if v >= top else v\n")
            src = (head +
                   "    if v.__class__ is int:\n" + body +
                   "    return _cast_int_slow(v, wrap)\n")
            return _gen(src, {**fenv, "mask": mask, "top": top,
                              "span": span, "wrap": wrap,
                              "_cast_int_slow": _cast_int_slow})
        if isinstance(target, T.TFloat):
            src = (head +
                   "    return _as_float(v.addr if v.__class__ is "
                   "PtrVal else v)\n")
            return _gen(src, {**fenv, "_as_float": _as_float,
                              "PtrVal": PtrVal})
        if isinstance(target, T.TPtr):
            env = {**fenv, "PtrVal": PtrVal}
            if self.cured:
                kind = target.kind
                if kind in (PointerKind.SEQ, PointerKind.FSEQ):
                    env["size"] = _static_sizeof(target.base)
                    src = (head +
                           "    if v.__class__ is not PtrVal:\n"
                           "        return PtrVal(int(v))\n"
                           "    if v.b is None and v.addr != 0:\n"
                           "        return PtrVal(v.addr, b=v.addr, "
                           "e=v.addr + size, rtti=v.rtti, "
                           "key=v.key)\n"
                           "    return v\n")
                    return _gen(src, env)
                if kind is PointerKind.RTTI:
                    env.update(caste=e, target=target)
                    src = (head +
                           "    if v.__class__ is not PtrVal:\n"
                           "        return PtrVal(int(v))\n"
                           "    return ip._cured_ptr_cast(v, caste, "
                           "target)\n")
                    return _gen(src, env)
            src = (head +
                   "    if v.__class__ is PtrVal:\n"
                   "        return v\n"
                   "    return PtrVal(int(v))\n")
            return _gen(src, env)
        return _gen(head + "    return v\n", fenv)
