"""The CIL interpreter: cured and raw execution modes."""

from repro.interp.interp import (ExecResult, Frame, Interpreter,
                                 run_cured, run_raw)

__all__ = ["ExecResult", "Frame", "Interpreter", "run_cured", "run_raw"]
