"""The CIL interpreter: cured and raw execution modes.

Two engines share the abstract machine: the closure compiler
(:mod:`repro.interp.compile`, default) and the tree walker (the
differential-testing oracle).  Select with ``engine="closures"|"tree"``.
"""

from repro.interp.interp import (ENGINES, ExecResult, Frame, Interpreter,
                                 run_cured, run_raw)

__all__ = ["ENGINES", "ExecResult", "Frame", "Interpreter", "run_cured",
           "run_raw"]
