"""The CIL interpreter: executes cured or raw programs.

Two modes share one abstract machine:

* **cured** — executes a :class:`repro.core.CuredProgram`: fat pointer
  values flow according to the inferred kinds, ``Check`` instructions
  perform CCured's run-time checks (raising the errors of
  :mod:`repro.runtime.checks`), library calls go through wrappers, and
  the cost model charges checks and wide/split representations.

* **raw** — executes the uninstrumented program with hardware
  semantics: no checks, overflows corrupt adjacent memory (homes are
  packed contiguously), unmapped accesses raise
  :class:`SegmentationFault`.  An optional *shadow checker* (the
  Purify/Valgrind baselines) observes every access through hooks.

The interpreter is also the measurement instrument: it counts executed
instructions and charges the deterministic cost model, so benchmark
ratios (cured/raw, purify/raw, …) are exactly reproducible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cil import expr as E
from repro.cil import stmt as S
from repro.cil import types as T
from repro.cil.program import GFun, GPragma, GVar, Program
from repro.core.curer import CuredProgram
from repro.core.qualifiers import PointerKind
from repro.core.split import needs_metadata
from repro.runtime import libc as libc_mod
from repro.runtime.checks import (BoundsError, CompatibilityError,
                                  DanglingPointerError,
                                  DoubleFreeError,
                                  InterpreterLimitError,
                                  InvalidFreeError, LinkError,
                                  MemorySafetyError,
                                  NullDereferenceError, ProgramAbort,
                                  ProgramExit, RttiCastError,
                                  SegmentationFault, StackEscapeError,
                                  UninitializedError,
                                  UseAfterFreeError, WildTagError,
                                  attach_failure)
from repro.obs.tracer import TRACER
from repro.runtime.cost import COST_WILD_TAG_UPDATE, CostModel
from repro.runtime.memory import Home, Memory, PtrMeta
from repro.runtime.values import NULL, POISON_ADDR, BlobVal, PtrVal


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: object) -> None:
        self.value = value


class Frame:
    __slots__ = ("fundec", "regs", "homes", "frame_id")

    def __init__(self, fundec: S.Fundec, frame_id: int) -> None:
        self.fundec = fundec
        self.regs: dict[int, object] = {}
        self.homes: dict[int, Home] = {}
        self.frame_id = frame_id


@dataclass
class ExecResult:
    """The outcome of a terminated run."""

    status: int
    stdout: str
    cost: CostModel
    steps: int
    error: Optional[BaseException] = None
    peak_heap: int = 0

    @property
    def cycles(self) -> int:
        return self.cost.total

    @property
    def checks_executed(self) -> int:
        """Run-time checks this execution actually performed —
        statically elided checks cost nothing and are not counted."""
        return self.cost.checks_executed()

    def __repr__(self) -> str:
        e = f", error={type(self.error).__name__}" if self.error else ""
        return (f"<exit {self.status}, {self.steps} steps, "
                f"{self.cost.total} cycles{e}>")


def _is_register_type(t: T.CType) -> bool:
    return T.is_scalar(T.unroll(t))


#: execution engines: "closures" compiles each function body to nested
#: Python closures once (fast, the default); "tree" walks the CIL tree
#: per step (the differential-testing oracle).
ENGINES = ("closures", "tree")


class Interpreter:
    """One program execution."""

    MAX_CALL_DEPTH = 400

    def __init__(self, prog: Program, *,
                 cured: Optional[CuredProgram] = None,
                 shadow: Optional[object] = None,
                 max_steps: int = 50_000_000,
                 stdin: str = "",
                 cost: Optional[CostModel] = None,
                 engine: str = "closures",
                 stdout_limit: int = 4_000_000,
                 deadline: Optional[float] = None,
                 detect_uninit: bool = False,
                 site_hits: Optional[dict] = None,
                 reuse_freed: bool = False) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r} "
                             f"(expected one of {ENGINES})")
        self.engine = engine
        self._use_closures = engine == "closures"
        if self._use_closures:
            # imported lazily: compile.py imports this module
            from repro.interp.compile import compiled_body
            self._compiled_body = compiled_body
        self.stdout_limit = stdout_limit
        self.prog = prog
        self.cured_prog = cured
        self.cured = cured is not None
        #: temporal (lock-and-key) checking is active: the program was
        #: cured with ``CureOptions.temporal`` (CHECK_ALIVE emitted),
        #: heap allocations issue keys, and ``free`` releases locks
        self.temporal = (cured is not None
                         and cured.options.temporal)
        # blame graph for failure forensics, built lazily on the first
        # failing check whose node carries provenance
        self._blame_graph = None
        self.hierarchy = cured.hierarchy if cured else None
        self.shadow = shadow
        if self.cured:
            gaps = {"stack", "heap", "global", "rodata", "code"}
        elif shadow is not None and getattr(shadow, "wants_redzones",
                                            False):
            gaps = {"heap"}  # red zones on the heap, silent stack
        else:
            gaps = set()  # bare hardware: overflows corrupt neighbours
        self.mem = Memory(gap_regions=gaps, reuse_freed=reuse_freed)
        self.cost = cost if cost is not None else CostModel()
        # attach before globals are initialized: the shadow tools see
        # every access from the very first write
        if shadow is not None:
            shadow.attach(self)
        self.max_steps = max_steps
        self.steps = 0
        self.detect_uninit = detect_uninit
        #: per-check-site hit counters (site id -> executions), filled
        #: only when a mapping is supplied — the observability layer's
        #: histogram.  ``None`` keeps both engines on their fast path.
        self.site_hits = site_hits
        # Wall-clock deadline, enforced at step-count checkpoints: the
        # fast path compares steps against _limit_at only; every
        # _clock_every steps _over_limit() consults the monotonic
        # clock.  With no deadline the limit is max_steps and the
        # clock is never read — behaviour is bit-identical.
        self.deadline = deadline
        self._clock_every = 65536
        if deadline is not None:
            self._deadline_at = time.monotonic() + deadline
            self._next_clock = self._clock_every
            self._limit_at = min(max_steps, self._next_clock)
        else:
            self._deadline_at = None
            self._next_clock = None
            self._limit_at = max_steps
        self._stdout: list[str] = []
        self._stdout_len = 0
        self._stdin = stdin
        self._stdin_pos = 0
        self.rand_state = 1
        self._frames: list[Frame] = []
        self._frame_counter = 0
        #: per-Fundec call plans (body runner + formal/local binding
        #: recipe), keyed by id(fd); fds stay alive via self.functions
        self._call_plans: dict[int, tuple] = {}
        self._str_homes: dict[str, Home] = {}
        # functions and their code addresses
        self.functions: dict[str, S.Fundec] = dict(prog.functions)
        self._func_homes: dict[str, Home] = {}
        self._addr_to_func: dict[int, str] = {}
        for name in self.functions:
            h = self.mem.alloc(4, "code", f"fn:{name}")
            self._func_homes[name] = h
            self._addr_to_func[h.base] = name
        # wrapper registrations (#pragma ccuredWrapperOf)
        self.wrapper_of: dict[str, str] = {}
        for g in prog.pragmas("ccuredWrapperOf"):
            if len(g.args) >= 2 and g.args[0] in self.functions:
                self.wrapper_of[g.args[1]] = g.args[0]
        # global variables
        self._global_homes: dict[int, Home] = {}
        self._alloc_globals()

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def _alloc_globals(self) -> None:
        for g in self.prog.globals:
            if isinstance(g, GVar):
                size = self._sizeof(g.var.type)
                home = self.mem.alloc(size, "global", g.var.name)
                self._global_homes[g.var.vid] = home
        # builtin external objects: stdin/stdout/stderr FILE structs
        for name, var in self.prog.externals.items():
            if name in ("stdin", "stdout", "stderr"):
                fh = self.mem.alloc(4, "global", f"FILE:{name}")
                ph = self.mem.alloc(4, "global", name)
                ph.meta[0] = PtrMeta(b=fh.base, e=fh.end)
                self.mem.write_raw(ph.base,
                                   fh.base.to_bytes(4, "little"))
                self._global_homes[var.vid] = ph
        for g in self.prog.globals:
            if isinstance(g, GVar) and g.init is not None:
                home = self._global_homes[g.var.vid]
                self._store_init(home.base, g.var.type, g.init)

    def _store_init(self, addr: int, t: T.CType, init: S.Init) -> None:
        if isinstance(init, S.SingleInit):
            v = self.eval(init.exp, None)
            ut = T.unroll(t)
            if isinstance(ut, T.TArray) and isinstance(
                    init.exp, E.StrConst):
                text = init.exp.value
                data = text.encode("latin-1") + b"\0"
                self.mem.write_raw(addr, data[:ut.size()])
                return
            self._write_mem(addr, t, self._coerce_store(v, t))
            return
        assert isinstance(init, S.CompoundInit)
        ut = T.unroll(t)
        if isinstance(ut, T.TArray):
            esz = self._sizeof(ut.base)
            for key, sub in init.entries:
                self._store_init(addr + int(key) * esz, ut.base, sub)
        elif isinstance(ut, T.TComp):
            for key, sub in init.entries:
                f = ut.comp.field(str(key))
                self._store_init(addr + T.field_offset(f), f.type, sub)

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------

    def _current_function(self) -> Optional[str]:
        """Name of the innermost C frame, for failure records raised
        outside a Check instruction (wrappers, dispatch)."""
        if self._frames:
            return self._frames[-1].fundec.name
        return None

    def _sizeof(self, t: T.CType) -> int:
        size = getattr(t, "_csize_cache", None)
        if size is not None:
            return size
        try:
            size = T.unroll(t).size()
        except T.IncompleteTypeError:
            size = 4
        try:
            t._csize_cache = size  # type: ignore[attr-defined]
        except AttributeError:
            pass
        return size

    def _over_limit(self) -> None:
        """Slow path of the step/deadline limiter.  Raises on a real
        budget overrun, otherwise reads the clock (deadline mode) and
        advances the next checkpoint."""
        if self.steps > self.max_steps:
            raise InterpreterLimitError("step budget exceeded")
        if self._deadline_at is not None \
                and time.monotonic() >= self._deadline_at:
            raise InterpreterLimitError(
                f"wall-clock deadline of {self.deadline:g}s exceeded")
        assert self._next_clock is not None
        self._next_clock += self._clock_every
        self._limit_at = min(self.max_steps, self._next_clock)

    def io_charge(self, cycles: int) -> None:
        """Charge simulated I/O latency (kernel/device/wire time).

        CCured's checks do not slow the kernel down, so cured runs pay
        the same latency as raw runs — that is why the paper's
        I/O-bound subjects (ftpd, Apache modules, drivers) measure
        ~1.0x.  Valgrind JIT-translates the whole user-side I/O path
        and Purify intercepts it, so shadow tools pay a dilation
        factor on top (ftpd under Valgrind: 9.42x in Fig. 9)."""
        dilation = 1
        if self.shadow is not None:
            dilation = getattr(self.shadow, "io_dilation", 1)
        self.cost.charge(cycles * dilation, "io")

    def write_stdout(self, text: str) -> None:
        self._stdout.append(text)
        self._stdout_len += len(text)
        if self._stdout_len > self.stdout_limit:
            raise InterpreterLimitError("stdout too large")

    def read_stdin_char(self) -> int:
        if self._stdin_pos >= len(self._stdin):
            return -1
        ch = self._stdin[self._stdin_pos]
        self._stdin_pos += 1
        return ord(ch)

    def read_stdin_line(self, limit: int) -> Optional[str]:
        if self._stdin_pos >= len(self._stdin):
            return None
        end = self._stdin.find("\n", self._stdin_pos)
        if end < 0:
            end = len(self._stdin) - 1
        line = self._stdin[self._stdin_pos:end + 1][:limit]
        self._stdin_pos += len(line)
        return line

    def stdout_text(self) -> str:
        return "".join(self._stdout)

    # -- heap management.  Spatial-only cured mode never reuses homes,
    # like the paper's conservative-GC configuration; temporal mode
    # (and raw mode) may recycle addresses when the Memory was built
    # with reuse_freed=True ---------------------------------------------

    def heap_alloc(self, size: int, name: str) -> Home:
        if self.mem.bytes_allocated > 1 << 28:
            raise InterpreterLimitError("heap exhausted")
        home = self.mem.alloc(size, "heap", name)
        if self.shadow is not None:
            self.shadow.on_alloc(home)
        return home

    def heap_free(self, p: PtrVal) -> None:
        home = self.mem.home_of(p.addr)
        if home is None or home.region != "heap":
            if self.cured:
                raise attach_failure(
                    InvalidFreeError("free of non-heap pointer"),
                    check="FREE", function=self._current_function())
            return
        if self.shadow is not None:
            # the shadow checker must observe every free *attempt* on a
            # resolved heap block — including interior and double frees,
            # which raw execution otherwise swallows silently — so that
            # Purify/Valgrind-style baselines can flag them
            self.shadow.on_free(home)
        if p.addr != home.base:
            # C requires the exact pointer malloc returned
            if self.cured:
                raise attach_failure(
                    InvalidFreeError(
                        f"free of interior pointer 0x{p.addr:x} "
                        f"(block starts at 0x{home.base:x})"),
                    check="FREE", function=self._current_function())
            return
        if home.freed:
            if self.cured:
                raise attach_failure(
                    DoubleFreeError(
                        f"double free of block at 0x{home.base:x}"),
                    check="FREE", function=self._current_function())
            return
        if not self.cured:
            if self.mem.reuse_freed:
                # real-malloc semantics: the address is recycled and
                # stale bytes are handed back out (silently, as on
                # hardware — the differential the temporal mode traps)
                self.mem.free(home)
            else:
                # the block becomes unmapped-ish; we keep bytes but
                # mark dead so baselines can detect UAF
                home.alive = False
                home.freed = True
        elif not self.temporal:
            # cured, spatial-only: conservative-GC semantics — the
            # home stays readable (and is never recycled) so dangling
            # SEQ pointers stay memory-safe
            home.freed = True
        else:
            # temporal mode: release the lock so every stale key (and
            # the freed-home state itself) traps at the next
            # CHECK_ALIVE; under reuse_freed the address re-enters
            # circulation with a fresh lock
            self.mem.free(home)

    # -- strings ----------------------------------------------------------

    def intern_string(self, text: str) -> Home:
        home = self._str_homes.get(text)
        if home is None:
            data = text.encode("latin-1", "replace") + b"\0"
            home = self.mem.alloc(len(data), "rodata", "str")
            self.mem.write_raw(home.base, data)
            self._str_homes[text] = home
        return home

    def read_cstring(self, p: PtrVal, limit: int = 1 << 20) -> str:
        if p.is_null:
            raise attach_failure(
                NullDereferenceError("string is NULL"),
                check="CHECK_VERIFY_NUL",
                function=self._current_function())
        if self.cured:
            home = self.mem.home_of(p.addr)
            if home is None:
                raise attach_failure(
                    DanglingPointerError(
                        f"string pointer 0x{p.addr:x} not in any "
                        f"object"),
                    check="CHECK_VERIFY_NUL",
                    function=self._current_function())
            end = home.end
            if p.e is not None:
                end = min(end, p.e)
            raw = self.mem.read_raw(p.addr, end - p.addr)
            idx = raw.find(b"\0")
            if idx < 0:
                raise attach_failure(
                    BoundsError(
                        "__verify_nul: string not NUL-terminated "
                        "within bounds"),
                    check="CHECK_VERIFY_NUL",
                    function=self._current_function())
            if self.shadow is not None:
                self.shadow.on_read(p.addr, idx + 1)
            return raw[:idx].decode("latin-1")
        # raw mode: hardware semantics, read until NUL or fault
        out = bytearray()
        addr = p.addr
        for _ in range(limit):
            b = self.mem.read_raw(addr, 1)
            if self.shadow is not None:
                self.shadow.on_read(addr, 1)
            if b == b"\0":
                return out.decode("latin-1")
            out += b
            addr += 1
        # The string scan ran off the end of the read limit without
        # meeting a NUL — a bounds violation of the scan itself, not a
        # budget problem of the interpreter.
        raise attach_failure(
            BoundsError(
                f"string not NUL-terminated within {limit} bytes"),
            check="CHECK_VERIFY_NUL",
            function=self._current_function())

    def write_cstring(self, p: PtrVal, text: str) -> None:
        data = text.encode("latin-1", "replace") + b"\0"
        if self.shadow is not None:
            self.shadow.on_write(p.addr, len(data))
        self.mem.write_raw(p.addr, data)

    def verify_size(self, p: PtrVal, n: int, what: str) -> None:
        """The wrapper precondition __verify_size: ``n`` bytes must be
        available at ``p`` (within its bounds and its home)."""
        if p.is_null:
            raise attach_failure(
                NullDereferenceError(f"{what}: NULL buffer"),
                check="CHECK_VERIFY_SIZE",
                function=self._current_function())
        home = self.mem.home_of(p.addr)
        if home is None:
            raise attach_failure(
                DanglingPointerError(f"{what}: invalid pointer"),
                check="CHECK_VERIFY_SIZE",
                function=self._current_function())
        end = home.end
        if p.e is not None:
            end = min(end, p.e)
        if p.addr + n > end:
            raise attach_failure(
                BoundsError(
                    f"{what}: needs {n} bytes, only {end - p.addr} "
                    f"available in {home.name or home.region}"),
                check="CHECK_VERIFY_SIZE",
                function=self._current_function())

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self, args: Optional[Sequence[str]] = None) -> ExecResult:
        with TRACER.span("exec", engine=self.engine,
                         mode="cured" if self.cured else "raw",
                         program=self.prog.name):
            return self._run_main(args)

    def _run_main(self,
                  args: Optional[Sequence[str]] = None) -> ExecResult:
        main = self.functions.get("main")
        if main is None:
            raise LinkError("no main function")
        call_args: list[object] = []
        if main.formals:
            argv = ["program"] + list(args or [])
            arr = self.heap_alloc(4 * (len(argv) + 1), "argv")
            for i, a in enumerate(argv):
                sh = self.intern_string(a)
                self.mem.write_ptr(arr.base + 4 * i, sh.base,
                                   PtrMeta(b=sh.base, e=sh.end))
            call_args = [len(argv),
                         PtrVal(arr.base, b=arr.base, e=arr.end)]
        status = 0
        error: Optional[BaseException] = None
        # The interpreter uses ~25 Python frames per C call frame, so
        # MAX_CALL_DEPTH C frames need headroom beyond the default
        # Python recursion limit.
        import sys
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 100_000))
        try:
            ret = self._call_fundec(main, call_args)
            if isinstance(ret, int):
                status = ret
        except ProgramExit as px:
            status = px.status
        finally:
            sys.setrecursionlimit(old_limit)
        return ExecResult(status, self.stdout_text(), self.cost,
                          self.steps, error,
                          self.mem.bytes_allocated)

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _call_fundec(self, fd: S.Fundec, args: list[object]) -> object:
        if len(self._frames) >= self.MAX_CALL_DEPTH:
            raise InterpreterLimitError("call depth exceeded")
        plan = self._call_plans.get(id(fd))
        if plan is None:
            plan = self._build_call_plan(fd)
            self._call_plans[id(fd)] = plan
        body, formals, reg_locals, home_locals = plan
        self._frame_counter += 1
        frame = Frame(fd, self._frame_counter)
        self._frames.append(frame)
        regs = frame.regs
        homes = frame.homes
        alloc = self.mem.alloc
        fid = frame.frame_id
        try:
            nargs = len(args)
            for i, (vid, is_reg, size, label, t) in enumerate(formals):
                value = args[i] if i < nargs else 0
                if is_reg:
                    regs[vid] = value
                else:
                    home = alloc(size, "stack", label)
                    home.frame_id = fid
                    homes[vid] = home
                    self._write_mem(home.base, t,
                                    self._coerce_store(value, t))
            for vid, zero in reg_locals:
                regs[vid] = zero
            for vid, size, label in home_locals:
                home = alloc(size, "stack", label)
                home.frame_id = fid
                homes[vid] = home
            try:
                body(self, frame)
            except _Return as r:
                return r.value
            return 0
        finally:
            popped = self._frames.pop()
            locks = self.mem.locks
            for home in popped.homes.values():
                home.alive = False
                # frame pop invalidates the lock, like free does
                locks.release(home.lock_slot)

    def _build_call_plan(self, fd: S.Fundec) -> tuple:
        """The per-function call recipe: a body runner plus the
        register/home decision, zero value, home size and label of
        every formal and local — all static per variable for this
        execution (``address_taken`` only changes during curing, which
        happens before any Interpreter exists).  Register locals never
        allocate, so splitting them out preserves the stack layout."""
        if self._use_closures:
            # compiled once per (tree, mode); cached weakly
            body = self._compiled_body(fd, self.cured)
        else:
            blk = fd.body

            def body(ip: "Interpreter", frame: Frame) -> None:
                ip._exec_block(blk, frame)
        formals = []
        for v in fd.formals:
            if _is_register_type(v.type) and not v.address_taken:
                formals.append((v.vid, True, 0, "", v.type))
            else:
                formals.append((v.vid, False, self._sizeof(v.type),
                                f"{fd.name}:{v.name}", v.type))
        reg_locals = []
        home_locals = []
        for v in fd.locals:
            if _is_register_type(v.type) and not v.address_taken:
                reg_locals.append((v.vid, self._zero_of(v.type)))
            else:
                home_locals.append((v.vid, self._sizeof(v.type),
                                    f"{fd.name}:{v.name}"))
        return (body, tuple(formals), tuple(reg_locals),
                tuple(home_locals))

    def _zero_of(self, t: T.CType) -> object:
        u = T.unroll(t)
        if isinstance(u, T.TFloat):
            return 0.0
        if isinstance(u, T.TPtr):
            if self.detect_uninit and self.cured:
                # Poison register pointer locals so a use before any
                # assignment trips UninitializedError instead of
                # silently reading as NULL.
                return PtrVal(POISON_ADDR)
            return NULL
        return 0

    def call_function_value(self, fn: PtrVal,
                            args: list[object]) -> object:
        """Call through a function pointer value (used by qsort etc.)."""
        name = self._addr_to_func.get(fn.addr)
        if name is None:
            raise NullDereferenceError(
                f"call through invalid function pointer 0x{fn.addr:x}")
        return self._call_fundec(self.functions[name], args)

    def _dispatch_call(self, name: Optional[str], fnval: Optional[PtrVal],
                       args: list[object],
                       instr: Optional[S.Call],
                       frame: Optional[Frame]) -> object:
        if name is None and fnval is not None:
            name = self._addr_to_func.get(fnval.addr)
            if name is None:
                raise NullDereferenceError(
                    "call through invalid function pointer")
        assert name is not None
        # wrapper redirection: calls to a wrapped library function go
        # to the wrapper, except from inside the wrapper itself.
        wrapper = self.wrapper_of.get(name)
        if wrapper is not None and (frame is None
                                    or frame.fundec.name != wrapper):
            return self._call_fundec(self.functions[wrapper], args)
        if name in self.functions:
            return self._call_fundec(self.functions[name], args)
        impl = libc_mod.BUILTINS.get(name)
        if impl is None:
            raise attach_failure(
                LinkError(f"undefined external function {name}"),
                check="LINK", function=self._current_function())
        if self.cured and instr is not None:
            self._check_library_compat(name, instr)
        self.cost.charge(4, f"libcall:{name}")
        return impl(self, *args)

    def _check_library_compat(self, name: str,
                              instr: S.Call) -> None:
        """Section 4.1/4.2: passing a pointer whose base type carries
        interleaved metadata to an unwrapped library fails to link —
        unless the data is SPLIT (compatible representation)."""
        if name not in libc_mod.RAW_LIBRARY:
            return  # wrapped builtins handle their own marshalling
        from repro.core.split import contains_wild
        for a in instr.args:
            # Look through casts: (void *)&x hides x's real type, and
            # the library sees the underlying data.
            layers = [a]
            while isinstance(layers[-1], E.CastE):
                layers.append(layers[-1].e)
            for e in layers:
                u = T.unroll(e.type())
                if not isinstance(u, T.TPtr):
                    continue
                node = u.node
                kind = node.kind if node is not None else None
                if kind is PointerKind.WILD or contains_wild(u.base):
                    raise attach_failure(
                        CompatibilityError(
                            f"{name}: WILD data cannot cross the "
                            "library boundary (tagged areas have no "
                            "C layout)"),
                        check="LIBRARY_COMPAT",
                        pointer_kind=kind.name if kind else None,
                        function=self._current_function())
                if node is not None and needs_metadata(u.base) \
                        and not node.split:
                    raise attach_failure(
                        CompatibilityError(
                            f"{name}: argument type "
                            f"{u.base!r} needs interleaved metadata; "
                            "a wrapper or a SPLIT representation is "
                            "required"),
                        check="LIBRARY_COMPAT",
                        pointer_kind=kind.name if kind else None,
                        function=self._current_function())

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _exec_block(self, b: S.Block, frame: Frame) -> None:
        for s in b.stmts:
            self._exec_stmt(s, frame)

    def _exec_stmt(self, s: S.Stmt, frame: Frame) -> None:
        self.steps += 1
        if self.steps > self._limit_at:
            self._over_limit()
        if isinstance(s, S.InstrStmt):
            for i in s.instrs:
                self._exec_instr(i, frame)
        elif isinstance(s, S.Return):
            value: object = 0
            if s.exp is not None:
                value = self.eval(s.exp, frame)
            raise _Return(value)
        elif isinstance(s, S.Block):
            self._exec_block(s, frame)
        elif isinstance(s, S.If):
            self.cost.charge_instr()
            if self._truthy(self.eval(s.cond, frame)):
                self._exec_block(s.then, frame)
            else:
                self._exec_block(s.els, frame)
        elif isinstance(s, S.Loop):
            self._exec_loop(s, frame)
        elif isinstance(s, S.Break):
            raise _Break()
        elif isinstance(s, S.Continue):
            raise _Continue()

    def _exec_loop(self, loop: S.Loop, frame: Frame) -> None:
        stmts = loop.body.stmts
        trailing = getattr(loop, "continue_runs_trailing", 0)
        tail = stmts[len(stmts) - trailing:] if trailing else []
        while True:
            try:
                for s in stmts:
                    self._exec_stmt(s, frame)
            except _Break:
                return
            except _Continue:
                try:
                    for s in tail:
                        self._exec_stmt(s, frame)
                except _Break:
                    return

    def _exec_instr(self, i: S.Instr, frame: Frame) -> None:
        self.cost.charge_instr()
        if self.shadow is not None:
            self.shadow.on_instr()
        if isinstance(i, S.Set):
            v = self.eval(i.exp, frame)
            self._write_lval(i.lval, frame,
                             self._coerce_store(v, i.lval.type()))
        elif isinstance(i, S.Call):
            self._exec_call(i, frame)
        elif isinstance(i, S.Check):
            self._exec_check(i, frame)

    def _exec_call(self, i: S.Call, frame: Frame) -> None:
        args = [self.eval(a, frame) for a in i.args]
        name: Optional[str] = None
        fnval: Optional[PtrVal] = None
        if isinstance(i.fn, (E.AddrOf, E.LvalExp)) and isinstance(
                i.fn.lval.host, E.Var) and isinstance(
                i.fn.lval.offset, E.NoOffset) and (
                T.is_function(i.fn.lval.host.var.type)):
            name = i.fn.lval.host.var.name
        else:
            fv = self.eval(i.fn, frame)
            fnval = fv if isinstance(fv, PtrVal) else PtrVal(
                int(fv))  # type: ignore[arg-type]
        ret = self._dispatch_call(name, fnval, args, i, frame)
        if i.ret is not None:
            self._write_lval(i.ret, frame,
                             self._coerce_store(ret,
                                                i.ret.type()))

    # ------------------------------------------------------------------
    # Checks (Figures 2 and 11)
    # ------------------------------------------------------------------

    def _exec_check(self, c: S.Check, frame: Frame) -> None:
        if not self.cured:
            return  # raw runs of an instrumented program skip checks
        hits = self.site_hits
        if hits is not None:
            # a failing check still counts: the site was reached
            hits[c.site] = hits.get(c.site, 0) + 1
        try:
            self._exec_check_kind(c, frame)
        except MemorySafetyError as exc:
            self._attach_check_failure(exc, c, frame.fundec.name)
            raise

    def _attach_check_failure(self, exc: MemorySafetyError,
                              c: S.Check, fname: str) -> None:
        """Attach the structured record of a failed Check (both
        engines route their check raises through here)."""
        attach_failure(exc, check=c.kind.value,
                       pointer_kind=_check_pointer_kind(c),
                       function=fname, site=c.site,
                       blame=self._check_blame(c))

    def _check_blame(self, c: S.Check) -> Optional[list]:
        """Blame chain of the pointer a failing Check guards (cached
        on the Check node, like its static kind).  None unless the
        program was cured with ``CureOptions.provenance`` on."""
        cached = getattr(c, "_blame_cache", False)
        if cached is not False:
            return cached
        blame: Optional[list] = None
        try:
            if c.args and self.cured_prog is not None:
                u = T.unroll(c.args[0].type())
                node = u.node if isinstance(u, T.TPtr) else None
                if node is not None and node.prov:
                    if self._blame_graph is None:
                        from repro.obs.blame import BlameGraph
                        self._blame_graph = BlameGraph.from_cured(
                            self.cured_prog)
                    ch = self._blame_graph.chain_of(node.id)
                    if ch is not None:
                        blame = [s.to_json() for s in ch.steps]
        except Exception:
            blame = None
        c._blame_cache = blame  # type: ignore[attr-defined]
        return blame

    def _exec_check_kind(self, c: S.Check, frame: Frame) -> None:
        self.cost.charge_check(c.kind)
        K = S.CheckKind
        if c.kind is K.NULL:
            v = self._ptr_arg(c, frame)
            if v.is_null:
                raise NullDereferenceError("null dereference",
                                           frame.fundec.name)
            self._check_alive(v, frame)
        elif c.kind in (K.SEQ_BOUNDS, K.SEQ_TO_SAFE):
            v = self._ptr_arg(c, frame)
            if c.kind is K.SEQ_TO_SAFE and v.is_null:
                return  # null survives the conversion (Figure 11)
            if v.is_null:
                raise NullDereferenceError("null SEQ dereference",
                                           frame.fundec.name)
            if not v.b:
                raise NullDereferenceError(
                    "SEQ pointer is an integer in disguise "
                    "(null base)", frame.fundec.name)
            size = c.size or 1
            if not (v.b <= v.addr <= v.e - size
                    if v.e is not None else False):
                raise BoundsError(
                    f"SEQ bounds: 0x{v.addr:x} not in "
                    f"[0x{v.b:x}, 0x{(v.e or 0):x} - {size}]",
                    frame.fundec.name)
            self._check_alive(v, frame)
        elif c.kind is K.FSEQ_BOUNDS:
            v = self._ptr_arg(c, frame)
            if v.is_null:
                raise NullDereferenceError("null FSEQ dereference",
                                           frame.fundec.name)
            if v.e is None:
                raise NullDereferenceError(
                    "FSEQ pointer is an integer in disguise",
                    frame.fundec.name)
            size = c.size or 1
            lo = v.b if v.b is not None else v.addr
            if not (lo <= v.addr <= v.e - size):
                raise BoundsError(
                    f"FSEQ bounds: 0x{v.addr:x} not below "
                    f"0x{v.e:x} - {size}", frame.fundec.name)
            self._check_alive(v, frame)
        elif c.kind is K.SAFE_TO_SEQ:
            pass  # manufactures bounds; cost only
        elif c.kind is K.ALIVE:
            v = self._ptr_arg(c, frame)
            self._check_temporal(v, frame)
        elif c.kind is K.WILD_BOUNDS:
            v = self._ptr_arg(c, frame)
            if v.is_null:
                raise NullDereferenceError("null WILD dereference",
                                           frame.fundec.name)
            if not v.b:
                raise NullDereferenceError(
                    "WILD pointer is an integer in disguise",
                    frame.fundec.name)
            home = self.mem.home_of(v.b)
            if home is None:
                raise DanglingPointerError("WILD base invalid",
                                           frame.fundec.name)
            size = c.size or 1
            if not (home.base <= v.addr <= home.end - size):
                raise BoundsError(
                    f"WILD bounds: 0x{v.addr:x} outside "
                    f"{home.name or 'area'}", frame.fundec.name)
            self._check_alive(v, frame)
        elif c.kind is K.WILD_READ_TAG:
            v = self._ptr_arg(c, frame)
            if not self.mem.has_ptr_tag(v.addr):
                raise WildTagError(
                    "WILD read: tag says the word is not a pointer",
                    frame.fundec.name)
        elif c.kind is K.STORE_STACK_PTR:
            pass  # enforced at the store itself; charged here
        elif c.kind is K.RTTI_CAST:
            v = self._ptr_arg(c, frame)
            if v.is_null:
                return
            assert c.rtti is not None and self.hierarchy is not None
            target = self.hierarchy.rtti_of(c.rtti)
            self._rtti_check(v, target, frame)
        elif c.kind is K.FUNPTR:
            v = self._ptr_arg(c, frame)
            if v.is_null:
                raise NullDereferenceError("null function pointer",
                                           frame.fundec.name)
            if v.addr not in self._addr_to_func:
                raise WildTagError(
                    "function pointer does not point to a function",
                    frame.fundec.name)
        elif c.kind is K.INDEX:
            idx = self._int_arg(c, frame)
            length = c.size or 0
            if not (0 <= idx < length):
                raise BoundsError(
                    f"array index {idx} out of bounds [0, {length})",
                    frame.fundec.name)
        elif c.kind in (K.VERIFY_NUL, K.VERIFY_SIZE):
            pass  # performed inside wrappers

    def _rtti_check(self, v: PtrVal, target: int,
                    frame: Frame) -> None:
        assert self.hierarchy is not None
        if v.rtti is not None:
            if not self.hierarchy.is_subtype(v.rtti, target):
                raise RttiCastError(
                    f"downcast to {self.hierarchy.nodes[target].type!r}"
                    f" fails: dynamic type is "
                    f"{self.hierarchy.nodes[v.rtti].type!r}",
                    frame.fundec.name)
            return
        # Untyped pointer (e.g. fresh malloc): brand the home with its
        # first effective type, like C's effective-type rule.
        home = self.mem.home_of(v.addr)
        if home is None:
            raise DanglingPointerError("RTTI cast of invalid pointer",
                                       frame.fundec.name)
        tsize = self._sizeof(self.hierarchy.nodes[target].type)
        if home.dynamic_rtti is None:
            if v.addr + tsize > home.end:
                raise BoundsError(
                    f"downcast: object of {home.end - v.addr} bytes "
                    f"cannot hold type of {tsize} bytes",
                    frame.fundec.name)
            home.dynamic_rtti = target
            return
        if self.hierarchy.is_subtype(home.dynamic_rtti, target):
            return
        # Effective-type refinement: the object was first seen at a
        # supertype; a later checked cast *down* the same chain (that
        # fits) refines the brand rather than failing.
        if self.hierarchy.is_subtype(target, home.dynamic_rtti) \
                and v.addr + tsize <= home.end:
            home.dynamic_rtti = target
            return
        raise RttiCastError(
            "downcast fails against the object's effective type",
            frame.fundec.name)

    def _check_temporal(self, v: PtrVal, frame: Frame) -> None:
        """CHECK_ALIVE — the lock-and-key temporal check.  Both
        engines call this one helper, so failure classes and message
        strings are identical by construction.

        Null passes (the spatial check ahead owns that diagnosis).  A
        freed home traps; a keyed pointer whose key no longer matches
        the home's lock traps — which is what catches stale pointers
        into *recycled* homes under ``Memory(reuse_freed=True)``;
        key-less pointers into never-recycled regions fall back to
        home state, exactly like the spatial liveness screen."""
        if v.addr == 0:
            return
        home = self.mem.home_of(v.addr)
        if home is None:
            # unmapped/poison: same screening as the spatial path
            self._check_alive(v, frame)
            return
        if home.freed:
            raise UseAfterFreeError(
                f"use after free of block at 0x{home.base:x}",
                frame.fundec.name)
        if v.key is not None and not self.mem.locks.valid(
                home.lock_slot, v.key):
            raise UseAfterFreeError(
                f"stale pointer 0x{v.addr:x}: key does not match "
                f"the home's current lock (address was recycled)",
                frame.fundec.name)
        if not home.alive and home.region == "stack":
            raise StackEscapeError(
                f"dereference of dead stack storage "
                f"({home.name})", frame.fundec.name)

    def _check_alive(self, v: PtrVal, frame: Frame) -> None:
        home = self.mem.home_of(v.addr)
        if home is None:
            if self.detect_uninit and v.addr == POISON_ADDR:
                raise UninitializedError(
                    "use of uninitialized pointer",
                    frame.fundec.name)
            raise DanglingPointerError(
                f"pointer 0x{v.addr:x} into unmapped memory",
                frame.fundec.name)
        if not home.alive and home.region == "stack":
            raise StackEscapeError(
                f"dereference of dead stack storage "
                f"({home.name})", frame.fundec.name)

    def _ptr_arg(self, c: S.Check, frame: Frame) -> PtrVal:
        v = self.eval(c.args[0], frame)
        if isinstance(v, PtrVal):
            return v
        return PtrVal(int(v))  # type: ignore[arg-type]

    def _int_arg(self, c: S.Check, frame: Frame) -> int:
        v = self.eval(c.args[0], frame)
        if isinstance(v, PtrVal):
            return v.addr
        if isinstance(v, float):
            return int(v)
        return int(v)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Lvalues
    # ------------------------------------------------------------------

    def _lval_location(self, lv: E.Lval,
                       frame: Frame) -> tuple[str, object, T.CType]:
        """Resolve an lvalue to ``("reg", vid, t)`` or
        ``("mem", addr, t)``."""
        if isinstance(lv.host, E.Var):
            var = lv.host.var
            if not var.is_global and frame is not None and \
                    var.vid in frame.regs:
                assert isinstance(lv.offset, E.NoOffset)
                return ("reg", var.vid, var.type)
            home = self._home_of_var(var, frame)
            addr, t = self._apply_offset(home.base, var.type,
                                         lv.offset, frame)
            return ("mem", addr, t)
        assert isinstance(lv.host, E.Mem)
        p = self.eval(lv.host.exp, frame)
        if not isinstance(p, PtrVal):
            p = PtrVal(int(p))  # type: ignore[arg-type]
        base_t = T.unroll(lv.host.exp.type())
        pointee = base_t.base if isinstance(base_t, T.TPtr) else \
            T.int_t()
        if self.cured and p.is_null:
            # Defense in depth: the Check in front should have fired.
            raise NullDereferenceError("null dereference",
                                       frame.fundec.name)
        addr, t = self._apply_offset(p.addr, pointee, lv.offset, frame)
        return ("mem", addr, t)

    def _home_of_var(self, var: E.Varinfo, frame: Frame) -> Home:
        if var.is_global:
            home = self._global_homes.get(var.vid)
            if home is None:
                raise LinkError(f"undefined external {var.name}")
            return home
        assert frame is not None
        home = frame.homes.get(var.vid)
        if home is None:
            raise LinkError(f"variable {var.name} has no storage")
        return home

    def _apply_offset(self, addr: int, t: T.CType, off: E.Offset,
                      frame: Frame) -> tuple[int, T.CType]:
        while not isinstance(off, E.NoOffset):
            if isinstance(off, E.Field):
                addr += T.field_offset(off.field)
                t = off.field.type
                off = off.rest
            else:
                assert isinstance(off, E.Index)
                idx = self.eval(off.index, frame)
                if isinstance(idx, PtrVal):
                    idx = idx.addr
                at = T.unroll(t)
                assert isinstance(at, T.TArray)
                addr += int(idx) * self._sizeof(at.base)
                t = at.base
                off = off.rest
        return addr, t

    def _read_lval(self, lv: E.Lval, frame: Frame) -> object:
        kind, where, t = self._lval_location(lv, frame)
        if kind == "reg":
            return frame.regs[where]  # type: ignore[index]
        return self._read_mem(where, t)  # type: ignore[arg-type]

    def _write_lval(self, lv: E.Lval, frame: Frame,
                    value: object) -> None:
        kind, where, t = self._lval_location(lv, frame)
        if kind == "reg":
            frame.regs[where] = value  # type: ignore[index]
            return
        addr = where  # type: ignore[assignment]
        if self.cured and isinstance(value, PtrVal) \
                and not value.is_null:
            self._stack_escape_check(int(addr), value, frame)
        self._write_mem(int(addr), t, value)

    def _stack_escape_check(self, dest_addr: int, value: PtrVal,
                            frame: Frame) -> None:
        dest_home = self.mem.home_of(dest_addr)
        if dest_home is None or dest_home.region == "stack":
            return
        src_home = self.mem.home_of(value.addr)
        if src_home is not None and src_home.region == "stack":
            raise attach_failure(
                StackEscapeError(
                    f"storing stack pointer ({src_home.name}) into "
                    f"{dest_home.region} memory", frame.fundec.name),
                check="CHECK_STORE_STACK_PTR",
                function=frame.fundec.name)

    # ------------------------------------------------------------------
    # Typed memory access
    # ------------------------------------------------------------------

    def _read_mem(self, addr: int, t: T.CType) -> object:
        u = T.unroll(t)
        size = self._sizeof(u)
        self.cost.charge_mem(size)
        if self.shadow is not None:
            self.shadow.on_read(addr, size)
        if isinstance(u, (T.TInt, T.TEnum)):
            signed = u.kind.is_signed if isinstance(u, T.TInt) else True
            return self.mem.read_int(addr, size, signed)
        if isinstance(u, T.TFloat):
            return self.mem.read_float(addr, size)
        if isinstance(u, T.TPtr):
            self._charge_ptr_slot(u)
            value, meta = self.mem.read_ptr(addr)
            if (meta is None and value != 0 and self.cured
                    and u.node is not None and u.node.split):
                # SPLIT data written by an uninstrumented library has
                # no shadow metadata yet; CCured "must generate new
                # metadata when the library returns a newly allocated
                # object" (Section 4.2).  The allocator's ground truth
                # (the home's extent) provides sound bounds.
                home = self.mem.home_of(value)
                if home is not None:
                    meta = PtrMeta(b=home.base, e=home.end)
                    self.cost.charge(4, "split:manufacture")
            return PtrVal.from_meta(value, meta)
        if isinstance(u, (T.TComp, T.TArray)):
            data = self.mem.read_raw(addr, size)
            home = self.mem.home_of(addr)
            meta = {}
            if home is not None:
                off0 = addr - home.base
                meta = {off - off0: m for off, m in home.meta.items()
                        if off0 <= off < off0 + size}
            return BlobVal(data, meta)
        raise MemorySafetyError(f"cannot read type {t!r}")

    def _write_mem(self, addr: int, t: T.CType, value: object) -> None:
        u = T.unroll(t)
        size = self._sizeof(u)
        self.cost.charge_mem(size)
        if self.shadow is not None:
            self.shadow.on_write(addr, size)
        if isinstance(u, (T.TInt, T.TEnum)):
            self.mem.write_int(addr, self._to_int(value), size)
            return
        if isinstance(u, T.TFloat):
            self.mem.write_float(addr, self._to_float(value), size)
            return
        if isinstance(u, T.TPtr):
            self._charge_ptr_slot(u, store=True)
            v = value if isinstance(value, PtrVal) else PtrVal(
                self._to_int(value))
            meta = v.meta()
            if meta is None and self.cured:
                # Figure 10/11: *every* pointer store into a tagged
                # area sets the word's tag — including null pointers
                # and integers-in-disguise (their base stays null).
                meta = PtrMeta()
            self.mem.write_ptr(addr, v.addr, meta)
            return
        if isinstance(u, (T.TComp, T.TArray)):
            if isinstance(value, BlobVal):
                self.mem.write_raw(addr, value.data[:size])
                home = self.mem.home_of(addr)
                if home is not None:
                    off0 = addr - home.base
                    for rel, m in value.meta.items():
                        if rel < size:
                            home.meta[off0 + rel] = m
                return
            if isinstance(value, int) and value == 0:
                self.mem.write_raw(addr, b"\0" * size)
                return
        raise MemorySafetyError(f"cannot write type {t!r}")

    def _charge_ptr_slot(self, u: T.TPtr, store: bool = False) -> None:
        """Charge the representation cost of moving this pointer slot:
        wide kinds move extra words (interleaved) or do a parallel
        metadata access (split)."""
        node = u.node
        if node is None or not self.cured:
            return
        kind = node.kind
        if node.split:
            # Split representation: the pointer's own metadata (b/e
            # for SEQ, the type word for RTTI) lives in the *parallel*
            # metadata structure, so moving the pointer costs extra
            # dereferences there — more than the interleaved layout's
            # adjacent words, which is exactly why the paper restricts
            # SPLIT to where compatibility requires it.
            ops = 0
            if kind is PointerKind.SEQ:
                ops = 2  # b and e through the parallel structure
            elif kind in (PointerKind.FSEQ, PointerKind.RTTI):
                ops = 1
            if node.has_meta:
                ops += 1  # the m link to the base type's metadata
            if ops:
                self.cost.charge_split(ops)
        else:
            self.cost.charge_wide(kind.name)
        if store and kind is PointerKind.WILD:
            self.cost.charge(COST_WILD_TAG_UPDATE, "wild-tag")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def eval(self, e: E.Exp, frame: Optional[Frame]) -> object:
        # Dispatch on the concrete expression class (hot path).
        fn = _EVAL_DISPATCH.get(e.__class__)
        if fn is None:
            raise MemorySafetyError(f"cannot evaluate {e!r}")
        return fn(self, e, frame)

    def _ev_const(self, e: E.Const, frame: Optional[Frame]) -> object:
        return e.value

    def _ev_str(self, e: E.StrConst, frame: Optional[Frame]) -> object:
        home = self.intern_string(e.value)
        return PtrVal(home.base, b=home.base, e=home.end)

    def _ev_lval(self, e: E.LvalExp,
                 frame: Optional[Frame]) -> object:
        return self._read_lval(e.lval, frame)  # type: ignore[arg-type]

    def _ev_sizeof(self, e: E.SizeOfT,
                   frame: Optional[Frame]) -> object:
        return self._sizeof(e.t)

    def _ev_addrof(self, e: E.AddrOf,
                   frame: Optional[Frame]) -> object:
        return self._eval_addrof(e.lval, frame)

    def _ev_startof(self, e: E.StartOf,
                    frame: Optional[Frame]) -> object:
        return self._eval_startof(e.lval, frame)

    def _eval_addrof(self, lv: E.Lval,
                     frame: Optional[Frame]) -> PtrVal:
        # Function designators: the code address.
        if isinstance(lv.host, E.Var) and T.is_function(
                lv.host.var.type):
            h = self._func_homes.get(lv.host.var.name)
            if h is None:
                # external function used as a value: give it a stub
                h = self.mem.alloc(4, "code",
                                   f"fn:{lv.host.var.name}")
                self._func_homes[lv.host.var.name] = h
                self._addr_to_func[h.base] = lv.host.var.name
                if lv.host.var.name not in self.functions and \
                        lv.host.var.name in libc_mod.BUILTINS:
                    pass  # dispatched by name at call time
            return PtrVal(h.base, b=h.base, e=h.end)
        kind, where, t = self._lval_location(lv, frame)  # type: ignore
        if kind == "reg":
            raise MemorySafetyError(
                "address of register variable (frontend should have "
                "marked it address-taken)")
        addr = int(where)  # type: ignore[arg-type]
        b, e_ = self._bounds_for_addr(lv, addr, t, frame)
        return PtrVal(addr, b=b, e=e_)

    def _bounds_for_addr(self, lv: E.Lval, addr: int, t: T.CType,
                         frame: Optional[Frame]) -> tuple[int, int]:
        """Bounds for ``&lval``: the extent of the innermost indexed
        array if any, else the addressed object itself."""
        size = self._sizeof(t)
        # find the innermost Index offset's array extent
        if isinstance(lv.host, E.Var):
            base_t: T.CType = lv.host.var.type
        else:
            pt = T.unroll(lv.host.exp.type())
            base_t = pt.base if isinstance(pt, T.TPtr) else T.int_t()
        # walk offsets tracking the last array start
        cur_addr = addr - self._offset_delta(lv, frame)
        best: Optional[tuple[int, int]] = None
        t_walk = base_t
        a_walk = cur_addr
        off = lv.offset
        while not isinstance(off, E.NoOffset):
            if isinstance(off, E.Field):
                a_walk += T.field_offset(off.field)
                t_walk = off.field.type
                off = off.rest
            else:
                assert isinstance(off, E.Index)
                at = T.unroll(t_walk)
                assert isinstance(at, T.TArray)
                if at.length is not None:
                    best = (a_walk,
                            a_walk + at.length * self._sizeof(at.base))
                idx = self.eval(off.index, frame)
                if isinstance(idx, PtrVal):
                    idx = idx.addr
                a_walk += int(idx) * self._sizeof(at.base)
                t_walk = at.base
                off = off.rest
        if best is not None:
            return best
        return addr, addr + size

    def _offset_delta(self, lv: E.Lval,
                      frame: Optional[Frame]) -> int:
        """Byte delta contributed by the lvalue's offset chain."""
        if isinstance(lv.host, E.Var):
            t: T.CType = lv.host.var.type
        else:
            pt = T.unroll(lv.host.exp.type())
            t = pt.base if isinstance(pt, T.TPtr) else T.int_t()
        delta = 0
        off = lv.offset
        while not isinstance(off, E.NoOffset):
            if isinstance(off, E.Field):
                delta += T.field_offset(off.field)
                t = off.field.type
                off = off.rest
            else:
                assert isinstance(off, E.Index)
                at = T.unroll(t)
                assert isinstance(at, T.TArray)
                idx = self.eval(off.index, frame)
                if isinstance(idx, PtrVal):
                    idx = idx.addr
                delta += int(idx) * self._sizeof(at.base)
                t = at.base
                off = off.rest
        return delta

    def _eval_startof(self, lv: E.Lval,
                      frame: Optional[Frame]) -> PtrVal:
        kind, where, t = self._lval_location(lv, frame)  # type: ignore
        assert kind == "mem"
        addr = int(where)  # type: ignore[arg-type]
        at = T.unroll(t)
        assert isinstance(at, T.TArray)
        if at.length is not None:
            end = addr + at.length * self._sizeof(at.base)
        else:
            home = self.mem.home_of(addr)
            end = home.end if home else addr
        return PtrVal(addr, b=addr, e=end)

    def _eval_unop(self, e: E.UnOp, frame: Optional[Frame]) -> object:
        self.cost.cycles += 1  # COST_EVAL_OP
        v = self.eval(e.e, frame)
        if e.op is E.UnopKind.LNOT:
            return 0 if self._truthy(v) else 1
        if isinstance(v, PtrVal):
            v = v.addr
        if e.op is E.UnopKind.NEG:
            out: object = -v  # type: ignore[operator]
        else:
            out = ~self._to_int(v)
        return self._wrap_to(out, e.type())

    def _eval_binop(self, e: E.BinOp, frame: Optional[Frame]) -> object:
        self.cost.cycles += 1  # COST_EVAL_OP
        op = e.op
        v1 = self.eval(e.e1, frame)
        v2 = self.eval(e.e2, frame)
        if op is E.BinopKind.PLUS_PI or op is E.BinopKind.MINUS_PI:
            p = v1 if isinstance(v1, PtrVal) else PtrVal(
                self._to_int(v1))
            n = self._to_int(v2)
            esz = getattr(e, "_esz_cache", None)
            if esz is None:
                bt = T.unroll(e.e1.type())
                esz = self._sizeof(bt.base) if isinstance(
                    bt, T.TPtr) else 1
                e._esz_cache = esz  # type: ignore[attr-defined]
            delta = n * esz if op is E.BinopKind.PLUS_PI else -n * esz
            return p.with_addr(p.addr + delta)
        if op is E.BinopKind.MINUS_PP:
            a1 = v1.addr if isinstance(v1, PtrVal) else self._to_int(v1)
            a2 = v2.addr if isinstance(v2, PtrVal) else self._to_int(v2)
            bt = T.unroll(e.e1.type())
            esz = self._sizeof(bt.base) if isinstance(bt, T.TPtr) \
                else 1
            return (a1 - a2) // esz
        if op in E.COMPARISONS:
            return self._compare(op, v1, v2)
        # arithmetic / bitwise
        if isinstance(v1, PtrVal):
            v1 = v1.addr
        if isinstance(v2, PtrVal):
            v2 = v2.addr
        rt = T.unroll(e.type())
        if isinstance(rt, T.TFloat):
            x = self._to_float(v1)
            y = self._to_float(v2)
            try:
                out = _FLOAT_OPS[op](x, y)
            except ZeroDivisionError:
                raise ProgramAbort("floating division by zero")
            return out
        x = self._to_int(v1)
        y = self._to_int(v2)
        try:
            out = _INT_OPS[op](x, y)
        except ZeroDivisionError:
            raise ProgramAbort("integer division by zero")
        except ValueError:
            raise ProgramAbort("invalid shift amount")
        return self._wrap_to(out, e.type())

    def _compare(self, op: E.BinopKind, v1: object,
                 v2: object) -> int:
        if isinstance(v1, PtrVal) or isinstance(v2, PtrVal):
            a1 = v1.addr if isinstance(v1, PtrVal) else self._to_int(v1)
            a2 = v2.addr if isinstance(v2, PtrVal) else self._to_int(v2)
            v1, v2 = a1, a2
        if isinstance(v1, float) or isinstance(v2, float):
            x, y = self._to_float(v1), self._to_float(v2)
        else:
            x, y = self._to_int(v1), self._to_int(v2)
        return int(_CMP_OPS[op](x, y))

    def _eval_cast(self, e: E.CastE, frame: Optional[Frame]) -> object:
        self.cost.cycles += 1  # COST_EVAL_OP
        v = self.eval(e.e, frame)
        target = T.unroll(e.t)
        if isinstance(target, (T.TInt, T.TEnum)):
            if isinstance(v, PtrVal):
                v = v.addr
            return self._wrap_to(self._to_int(v)
                                 if not isinstance(v, float)
                                 else int(v), e.t)
        if isinstance(target, T.TFloat):
            return self._to_float(v.addr if isinstance(v, PtrVal)
                                  else v)
        if isinstance(target, T.TPtr):
            if not isinstance(v, PtrVal):
                iv = int(v) if not isinstance(v, float) else int(v)
                return PtrVal(iv)
            if not self.cured:
                return v
            return self._cured_ptr_cast(v, e, target)
        return v

    def _cured_ptr_cast(self, v: PtrVal, e: E.CastE,
                        target: T.TPtr) -> PtrVal:
        """Adjust fat-pointer metadata per the target kind (Figure 2
        and Figure 11's cast rows).  The *checks* were inserted as
        separate Check instructions; this is the value plumbing."""
        kind = target.kind
        if kind in (PointerKind.SEQ, PointerKind.FSEQ):
            if v.b is None and not v.is_null:
                size = self._sizeof(target.base)
                return PtrVal(v.addr, b=v.addr, e=v.addr + size,
                              rtti=v.rtti, key=v.key)
            return v
        if kind is PointerKind.RTTI:
            if v.rtti is None and not v.is_null \
                    and self.hierarchy is not None:
                from repro.core.constraints import _is_alloc_result
                src_t = T.unroll(e.e.type())
                if _is_alloc_result(e.e):
                    # Fresh allocation: it *becomes* the target type.
                    rid = self.hierarchy.rtti_of(target.base)
                    return PtrVal(v.addr, b=v.b, e=v.e, rtti=rid,
                                  key=v.key)
                if isinstance(src_t, T.TPtr) and not T.is_void(
                        src_t.base):
                    # Figure 2, row 1: record the static source type.
                    rid = self.hierarchy.rtti_of(src_t.base)
                    return PtrVal(v.addr, b=v.b, e=v.e, rtti=rid,
                                  key=v.key)
                # A void* of unknown dynamic type: stay untyped and
                # let the home's effective type answer later checks.
            return v
        return v

    # -- conversions on store -------------------------------------------

    def _coerce_store(self, v: object, t: T.CType) -> object:
        u = T.unroll(t)
        if isinstance(u, (T.TInt, T.TEnum)):
            if isinstance(v, PtrVal):
                v = v.addr
            if isinstance(v, float):
                v = int(v)
            return self._wrap_to(self._to_int(v), t)
        if isinstance(u, T.TFloat):
            return self._to_float(v.addr if isinstance(v, PtrVal)
                                  else v)
        if isinstance(u, T.TPtr):
            if isinstance(v, PtrVal):
                return v
            return PtrVal(self._to_int(v))
        return v

    # -- numeric helpers ---------------------------------------------------

    @staticmethod
    def _to_int(v: object) -> int:
        if isinstance(v, PtrVal):
            return v.addr
        if isinstance(v, float):
            return int(v)
        if isinstance(v, int):
            return v
        if v is None:
            return 0
        raise MemorySafetyError(f"expected integer, got {v!r}")

    @staticmethod
    def _to_float(v: object) -> float:
        if isinstance(v, PtrVal):
            return float(v.addr)
        if v is None:
            return 0.0
        return float(v)  # type: ignore[arg-type]

    def _truthy(self, v: object) -> bool:
        if isinstance(v, PtrVal):
            return v.addr != 0
        return bool(v)

    def _wrap_to(self, value: object, t: T.CType) -> int:
        info = getattr(t, "_wrap_cache", None)
        if info is None:
            u = T.unroll(t)
            if isinstance(u, T.TFloat):
                info = ("float", 0, False)
            elif isinstance(u, T.TInt):
                bits = 8 * u.size()
                info = ("int", bits, u.kind.is_signed)
            else:
                info = ("int", 32, False)
            try:
                t._wrap_cache = info  # type: ignore[attr-defined]
            except AttributeError:
                pass
        kind, bits, signed = info
        if kind == "float":
            return value  # type: ignore[return-value]
        if not isinstance(value, int):
            value = int(value)  # type: ignore[arg-type]
        value &= (1 << bits) - 1
        if signed and value >= (1 << (bits - 1)):
            value -= 1 << bits
        return value


def _check_pointer_kind(c: S.Check) -> Optional[str]:
    """Static kind of the pointer a Check guards, for failure
    records; cached on the Check node (checks run hot)."""
    cached = getattr(c, "_pkind_cache", False)
    if cached is not False:
        return cached
    kind: Optional[str] = None
    if c.args:
        try:
            u = T.unroll(c.args[0].type())
            if isinstance(u, T.TPtr) and u.node is not None:
                kind = u.node.kind.name
        except Exception:
            kind = None
    c._pkind_cache = kind  # type: ignore[attr-defined]
    return kind


_EVAL_DISPATCH = {
    E.Const: Interpreter._ev_const,
    E.StrConst: Interpreter._ev_str,
    E.LvalExp: Interpreter._ev_lval,
    E.SizeOfT: Interpreter._ev_sizeof,
    E.UnOp: Interpreter._eval_unop,
    E.BinOp: Interpreter._eval_binop,
    E.CastE: Interpreter._eval_cast,
    E.AddrOf: Interpreter._ev_addrof,
    E.StartOf: Interpreter._ev_startof,
}

_INT_OPS = {
    E.BinopKind.ADD: lambda x, y: x + y,
    E.BinopKind.SUB: lambda x, y: x - y,
    E.BinopKind.MUL: lambda x, y: x * y,
    E.BinopKind.DIV: lambda x, y: int(x / y),
    E.BinopKind.MOD: lambda x, y: x - int(x / y) * y,
    # Mask shift amounts at the widest supported width (64 bits);
    # shifting a 32-bit value by >= 32 is UB in C, and 64-bit operands
    # legitimately shift by up to 63.
    E.BinopKind.SHL: lambda x, y: x << (y & 63),
    E.BinopKind.SHR: lambda x, y: x >> (y & 63),
    E.BinopKind.BAND: lambda x, y: x & y,
    E.BinopKind.BOR: lambda x, y: x | y,
    E.BinopKind.BXOR: lambda x, y: x ^ y,
}

_FLOAT_OPS = {
    E.BinopKind.ADD: lambda x, y: x + y,
    E.BinopKind.SUB: lambda x, y: x - y,
    E.BinopKind.MUL: lambda x, y: x * y,
    E.BinopKind.DIV: lambda x, y: x / y,
}

_CMP_OPS = {
    E.BinopKind.LT: lambda x, y: x < y,
    E.BinopKind.GT: lambda x, y: x > y,
    E.BinopKind.LE: lambda x, y: x <= y,
    E.BinopKind.GE: lambda x, y: x >= y,
    E.BinopKind.EQ: lambda x, y: x == y,
    E.BinopKind.NE: lambda x, y: x != y,
}


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def run_cured(cured: CuredProgram,
              args: Optional[Sequence[str]] = None,
              stdin: str = "",
              max_steps: int = 50_000_000,
              engine: str = "closures",
              stdout_limit: int = 4_000_000,
              deadline: Optional[float] = None,
              detect_uninit: bool = False,
              site_hits: Optional[dict] = None,
              reuse_freed: bool = False) -> ExecResult:
    """Execute a cured program with all run-time checks active.

    ``site_hits`` (a mutable mapping, typically a ``Counter``) makes
    both engines count executions per check site into it."""
    ip = Interpreter(cured.prog, cured=cured, stdin=stdin,
                     max_steps=max_steps, engine=engine,
                     stdout_limit=stdout_limit, deadline=deadline,
                     detect_uninit=detect_uninit,
                     site_hits=site_hits, reuse_freed=reuse_freed)
    return ip.run(args)


def run_raw(prog: Program,
            args: Optional[Sequence[str]] = None,
            stdin: str = "",
            shadow: Optional[object] = None,
            max_steps: int = 50_000_000,
            engine: str = "closures",
            stdout_limit: int = 4_000_000,
            deadline: Optional[float] = None,
            reuse_freed: bool = False) -> ExecResult:
    """Execute the uninstrumented program (hardware semantics),
    optionally under a shadow-memory checker (the baselines)."""
    ip = Interpreter(prog, cured=None, shadow=shadow, stdin=stdin,
                     max_steps=max_steps, engine=engine,
                     stdout_limit=stdout_limit, deadline=deadline,
                     reuse_freed=reuse_freed)
    if shadow is not None:
        shadow.attach(ip)
    return ip.run(args)
