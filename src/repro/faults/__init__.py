"""Deterministic fault injection for cured programs.

The paper's security argument is a *differential* one: a memory-safety
bug that silently corrupts an uninstrumented run must terminate a
cured run with a clean :class:`~repro.runtime.checks.MemorySafetyError`
at the faulty access.  This package turns that argument into a
repeatable experiment:

* :mod:`repro.faults.mutators` builds seeded "attack variants" of any
  workload by grafting a small faulty program prefix into its ``main``
  — one mutation class per error subclass of the taxonomy;
* :mod:`repro.faults.campaign` cures and executes every variant under
  both execution engines (and raw, for the differential), asserting
  that the cured runs trap with the expected error class, identically
  across engines;
* :mod:`repro.faults.report` renders the campaign outcome as
  deterministic JSON and a markdown table.

Same seed, same campaign → bit-identical report.
"""

from repro.faults.campaign import (CAMPAIGNS, CampaignReport,
                                   VariantReport, run_campaign)
from repro.faults.mutators import (MUTATORS, FaultSpec, graft,
                                   make_variant)
from repro.faults.report import report_to_json, report_to_markdown

__all__ = [
    "CAMPAIGNS", "CampaignReport", "VariantReport", "run_campaign",
    "MUTATORS", "FaultSpec", "graft", "make_variant",
    "report_to_json", "report_to_markdown",
]
