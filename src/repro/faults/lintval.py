"""Differential validation of ``repro lint`` against the fault
campaign.

The campaign (:mod:`repro.faults.campaign`) proves the *dynamic* side:
every injected fault traps in the cured run.  This module proves the
*static* side: for each mutation class whose fragment is statically
decidable — the bug is forced on every path, with constant shape — the
linter must flag the grafted site, and it must flag **nothing** in the
surrounding workload (which is pristine, running code).  That gives a
per-class precision/recall table (EXPERIMENTS E13) built from exactly
the same variants the dynamic campaign executes: same
``make_variant`` seeding, same graft, same cure options.

A variant's grafted instructions are distinguishable by file name: the
fragment is parsed as ``{workload}+{class}.c`` while workload code
lives in ``{workload}.c``, so "flagged at the grafted site" is a file
comparison, not a heuristic.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.analysis.lint import lint_cured
from repro.bench.harness import pristine_parse
from repro.core import CureOptions, cure
from repro.faults.mutators import MUTATORS, graft, make_variant
from repro.obs.serialize import stable_dumps
from repro.workloads import Workload, all_workloads

LINTVAL_SCHEMA = "repro.faults.lintval/1"

#: mutation classes whose injected bug is decidable by the must-
#: analysis, and the diagnostic each must raise at the grafted site.
STATIC_CLASSES: dict[str, str] = {
    "null-deref": "repro-E001",
    "bounds-off-by-one": "repro-E002",
    "double-free": "repro-E003",
    "use-after-free-reuse": "repro-E004",
    "uninit-pointer": "repro-E005",
    "invalid-free": "repro-E006",
}


@dataclass
class VariantLint:
    """Lint outcome of one (workload, class) variant."""

    workload: str
    mclass: str
    expected: Optional[str]      # diagnostic code, None if dynamic-only
    hit: bool                    # expected code present at graft site
    graft_codes: list[str] = field(default_factory=list)
    false_positives: int = 0     # diagnostics outside the graft file

    def to_json(self) -> dict:
        return {"workload": self.workload, "mclass": self.mclass,
                "expected": self.expected or "",
                "hit": self.hit, "graft_codes": self.graft_codes,
                "false_positives": self.false_positives}


@dataclass
class ClassLintRow:
    """Per-class aggregate over all workloads (one E13 table row)."""

    mclass: str
    expected: Optional[str]
    variants: int = 0
    hits: int = 0
    false_positives: int = 0

    @property
    def recall(self) -> Optional[float]:
        if self.expected is None or not self.variants:
            return None
        return self.hits / self.variants

    def to_json(self) -> dict:
        return {"mclass": self.mclass,
                "expected": self.expected or "",
                "variants": self.variants, "hits": self.hits,
                "false_positives": self.false_positives,
                "recall": self.recall}


@dataclass
class LintValidation:
    """The full differential run."""

    seed: int
    optimize: str
    variants: list[VariantLint] = field(default_factory=list)
    rows: list[ClassLintRow] = field(default_factory=list)

    @property
    def static_variants(self) -> int:
        return sum(r.variants for r in self.rows
                   if r.expected is not None)

    @property
    def static_hits(self) -> int:
        return sum(r.hits for r in self.rows
                   if r.expected is not None)

    @property
    def false_positives(self) -> int:
        return sum(v.false_positives for v in self.variants)

    @property
    def recall(self) -> Optional[float]:
        n = self.static_variants
        return (self.static_hits / n) if n else None

    @property
    def precision(self) -> Optional[float]:
        tp = self.static_hits
        return (tp / (tp + self.false_positives)
                if (tp + self.false_positives) else None)

    @property
    def ok(self) -> bool:
        return (self.static_hits == self.static_variants
                and self.false_positives == 0)

    def to_json(self) -> dict:
        return {"schema": LINTVAL_SCHEMA, "seed": self.seed,
                "optimize": self.optimize,
                "rows": [r.to_json() for r in self.rows],
                "variants": [v.to_json() for v in self.variants],
                "totals": {"static_variants": self.static_variants,
                           "static_hits": self.static_hits,
                           "false_positives": self.false_positives,
                           "recall": self.recall,
                           "precision": self.precision}}

    def dumps(self) -> str:
        return stable_dumps(self.to_json())

    def render(self) -> str:
        lines = [f"lint validation: seed={self.seed} "
                 f"optimize={self.optimize}",
                 f"{'class':24s} {'code':11s} {'hits':>9s} "
                 f"{'FPs':>4s} {'recall':>7s}"]
        for r in self.rows:
            rec = ("-" if r.recall is None
                   else f"{r.recall * 100:.0f}%")
            code = r.expected or "(dynamic)"
            lines.append(f"{r.mclass:24s} {code:11s} "
                         f"{r.hits:4d}/{r.variants:<4d} "
                         f"{r.false_positives:4d} {rec:>7s}")
        prec = ("-" if self.precision is None
                else f"{self.precision * 100:.0f}%")
        rec = ("-" if self.recall is None
               else f"{self.recall * 100:.0f}%")
        lines.append(f"static classes: {self.static_hits}/"
                     f"{self.static_variants} flagged at the grafted "
                     f"site, {self.false_positives} false "
                     f"positive(s) — precision {prec}, recall {rec}")
        return "\n".join(lines)


def lint_variant(w: Workload, mclass: str, seed: int, *,
                 optimize: str = "flow",
                 scale: Optional[int] = None) -> VariantLint:
    """Graft one campaign variant (exactly as the dynamic campaign
    does), cure it, lint it, and score the findings by file."""
    spec = make_variant(w.name, mclass, seed)
    base = copy.deepcopy(pristine_parse(w, scale))
    name = f"{w.name}+{spec.mclass}"
    graft(base, spec, name=name)
    cured = cure(base,
                 options=CureOptions(optimize=optimize,
                                     provenance=True,
                                     temporal=spec.temporal,
                                     trust_bad_casts=w.trust_bad_casts),
                 name=name)
    report = lint_cured(cured, name=name)
    graft_file = f"{name}.c"
    graft_codes = sorted({d.code for d in report.diagnostics
                          if d.file == graft_file})
    fps = sum(1 for d in report.diagnostics if d.file != graft_file)
    expected = STATIC_CLASSES.get(mclass)
    hit = expected in graft_codes if expected else bool(graft_codes)
    return VariantLint(workload=w.name, mclass=mclass,
                       expected=expected, hit=hit,
                       graft_codes=graft_codes,
                       false_positives=fps)


def validate_workload(w: Workload, classes: Iterable[str],
                      seed: int = 1, *, optimize: str = "flow",
                      scale: Optional[int] = None
                      ) -> list[VariantLint]:
    """Lint every class variant of one workload — the unit of work a
    sharded sweep distributes across processes."""
    return [lint_variant(w, m, seed, optimize=optimize, scale=scale)
            for m in classes]


def aggregate_validation(seed: int, optimize: str,
                         classes: Iterable[str],
                         variants: Iterable[VariantLint]
                         ) -> LintValidation:
    """Fold per-variant outcomes into the per-class E13 rows.  Pure
    aggregation: serial and sharded validations that produce the same
    variants produce byte-identical reports."""
    cs = list(classes)
    val = LintValidation(seed=seed, optimize=optimize)
    rows = {m: ClassLintRow(mclass=m, expected=STATIC_CLASSES.get(m))
            for m in cs}
    for v in variants:
        val.variants.append(v)
        row = rows[v.mclass]
        row.variants += 1
        row.hits += int(v.hit)
        row.false_positives += v.false_positives
    val.rows = [rows[m] for m in cs]
    return val


def run_lint_validation(seed: int = 1, *,
                        workloads: Optional[Iterable[Workload]] = None,
                        classes: Optional[Iterable[str]] = None,
                        optimize: str = "flow",
                        scale: Optional[int] = None,
                        progress: Optional[Callable[[str], None]]
                        = None) -> LintValidation:
    """Lint every (workload, class) variant; aggregate per class."""
    ws = list(workloads) if workloads is not None \
        else list(all_workloads())
    cs = list(classes) if classes is not None else list(MUTATORS)
    collected: list[VariantLint] = []
    for w in ws:
        for v in validate_workload(w, cs, seed, optimize=optimize,
                                   scale=scale):
            collected.append(v)
            if progress is not None:
                mark = "+" if v.hit else ("." if v.expected is None
                                          else "MISS")
                progress(f"lint {w.name}+{v.mclass}: {mark} "
                         f"{','.join(v.graft_codes) or '-'}"
                         + (f" FP={v.false_positives}"
                            if v.false_positives else ""))
    return aggregate_validation(seed, optimize, cs, collected)
