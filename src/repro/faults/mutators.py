"""Seeded fault mutators: build an "attack variant" of a workload.

Each mutation class plants one specific memory-safety bug — the kind a
real attacker or a real programming error produces — as a small C
fragment whose statements are grafted at the top of the workload's
``main``.  The fragment executes before any workload code, so the
cured run must trap at the injected site with the class's expected
:class:`~repro.runtime.checks.MemorySafetyError` subclass, while the
raw run exhibits hardware semantics (silent corruption, a segfault, or
divergence into the workload).

Mutators are seeded: the fragment's shape parameters (array lengths,
offsets, read-vs-write) come from a :class:`random.Random` keyed by
``(seed, workload, class)``, so the same seed always produces the same
variant, and different workloads get different variants.

All injected names carry the ``__fi_`` prefix, which no workload uses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cil import expr as E
from repro.cil import stmt as S
from repro.cil.program import (GFun, GVarDecl, Program)
from repro.cil.visitor import Visitor, walk_stmt
from repro.runtime import checks as C

#: unmapped scratch window for dangling-pointer variants: above the
#: code region (which tops out far below this for any realistic
#: program) and below the rodata region at 0x100000 — no run ever
#: maps these addresses.
_DANGLING_LO = 0x40000
_DANGLING_SPAN = 0x80000


@dataclass
class FaultSpec:
    """One concrete injected fault, ready to graft."""

    mclass: str                     # mutation class name
    expected: type                  # MemorySafetyError subclass
    source: str                     # standalone C fragment with main()
    description: str                # what the bug is, for reports
    detect_uninit: bool = False     # cured runs need uninit poisoning
    temporal: bool = False          # cure with lock-and-key checking
    reuse_freed: bool = False       # run with the reusing allocator
    params: dict = field(default_factory=dict)  # seeded shape choices


# ---------------------------------------------------------------------------
# Mutation classes
# ---------------------------------------------------------------------------

def _null_deref(rng: random.Random) -> FaultSpec:
    write = rng.random() < 0.5
    body = ("*__fi_p = 1;" if write
            else "int __fi_x = *__fi_p; __fi_sink = __fi_x;")
    return FaultSpec(
        mclass="null-deref",
        expected=C.NullDereferenceError,
        source=(
            "int __fi_sink;\n"
            "int main(void) {\n"
            "    int *__fi_p = (int *)0;\n"
            f"    {body}\n"
            "    return 0;\n"
            "}\n"),
        description="dereference of a null SAFE pointer "
                    f"({'write' if write else 'read'})",
        params={"write": write})


def _bounds_off_by_one(rng: random.Random) -> FaultSpec:
    n = rng.randrange(2, 9)
    write = rng.random() < 0.5
    access = (f"__fi_q[{n}] = 1;" if write
              else f"__fi_sink = __fi_q[{n}];")
    return FaultSpec(
        mclass="bounds-off-by-one",
        expected=C.BoundsError,
        source=(
            "int __fi_sink;\n"
            "int main(void) {\n"
            f"    int __fi_a[{n}];\n"
            "    int __fi_i;\n"
            f"    for (__fi_i = 0; __fi_i < {n}; __fi_i++)\n"
            "        __fi_a[__fi_i] = __fi_i;\n"
            "    int *__fi_q = __fi_a;\n"
            f"    {access}\n"
            "    return 0;\n"
            "}\n"),
        description=f"off-by-one {'write' if write else 'read'} at "
                    f"index {n} of a {n}-element array",
        params={"n": n, "write": write})


def _nul_termination_removed(rng: random.Random) -> FaultSpec:
    n = rng.randrange(4, 17)
    return FaultSpec(
        mclass="nul-removal",
        expected=C.BoundsError,
        source=(
            "extern int strlen(char *s);\n"
            "int __fi_sink;\n"
            "int main(void) {\n"
            f"    char __fi_b[{n}];\n"
            "    int __fi_i;\n"
            f"    for (__fi_i = 0; __fi_i < {n}; __fi_i++)\n"
            "        __fi_b[__fi_i] = 'A';\n"
            "    char *__fi_s = __fi_b;\n"
            "    __fi_sink = strlen(__fi_s);\n"
            "    return 0;\n"
            "}\n"),
        description=f"strlen of a {n}-byte buffer with its NUL "
                    "terminator overwritten (__verify_nul)",
        params={"n": n})


def _wild_tag_corruption(rng: random.Random) -> FaultSpec:
    stomp = rng.randrange(1, 1 << 16)
    return FaultSpec(
        mclass="wild-tag",
        expected=C.WildTagError,
        source=(
            "int __fi_sink;\n"
            "int main(void) {\n"
            "    int __fi_word;\n"
            "    int *__fi_w = &__fi_word;\n"
            "    int **__fi_pp = &__fi_w;\n"
            "    int *__fi_alias = (int *)__fi_pp;\n"
            f"    *__fi_alias = {stomp};\n"
            "    __fi_sink = **__fi_pp;\n"
            "    return 0;\n"
            "}\n"),
        description="integer store through a bad-cast alias stomps a "
                    "pointer word in a tagged (WILD) area, then the "
                    "pointer is read back",
        params={"stomp": stomp})


def _use_after_return(rng: random.Random) -> FaultSpec:
    v = rng.randrange(1, 100)
    return FaultSpec(
        mclass="use-after-return",
        expected=C.StackEscapeError,
        source=(
            "int __fi_sink;\n"
            "int *__fi_leak(void) {\n"
            f"    int __fi_local = {v};\n"
            "    return &__fi_local;\n"
            "}\n"
            "int main(void) {\n"
            "    int *__fi_p = __fi_leak();\n"
            "    __fi_sink = *__fi_p;\n"
            "    return 0;\n"
            "}\n"),
        description="dereference of a pointer into a returned "
                    "(dead) stack frame",
        params={"v": v})


def _dangling_pointer(rng: random.Random) -> FaultSpec:
    addr = _DANGLING_LO + rng.randrange(_DANGLING_SPAN // 64) * 64
    use_memset = rng.random() < 0.5
    if use_memset:
        lines = (
            "extern void *memset(void *s, int c, int n);\n"
            "int main(void) {\n"
            f"    int *__fi_d = (int *)0x{addr:x};\n"
            "    memset(__fi_d, 0, 4);\n"
            "    return 0;\n"
            "}\n")
        what = "memset"
    else:
        lines = (
            "extern int strlen(char *s);\n"
            "int __fi_sink;\n"
            "int main(void) {\n"
            f"    char *__fi_d = (char *)0x{addr:x};\n"
            "    __fi_sink = strlen(__fi_d);\n"
            "    return 0;\n"
            "}\n")
        what = "strlen"
    return FaultSpec(
        mclass="dangling-pointer",
        expected=C.DanglingPointerError,
        source=lines,
        description=f"{what} through a pointer at 0x{addr:x}, an "
                    "address mapped in no run (never-allocated "
                    "storage)",
        params={"addr": addr, "memset": use_memset})


def _bad_downcast(rng: random.Random) -> FaultSpec:
    extra = rng.randrange(2, 6)
    fields = "".join(f" int __fi_f{i};" for i in range(extra))
    return FaultSpec(
        mclass="bad-downcast",
        expected=C.RttiCastError,
        source=(
            "struct __fi_small { int __fi_a; };\n"
            f"struct __fi_big {{ int __fi_a;{fields} }};\n"
            "int main(void) {\n"
            "    struct __fi_small __fi_s;\n"
            "    __fi_s.__fi_a = 1;\n"
            "    void *__fi_v = (void *)&__fi_s;\n"
            "    struct __fi_big *__fi_b = "
            "(struct __fi_big *)__fi_v;\n"
            f"    __fi_b->__fi_f{extra - 1} = 7;\n"
            "    return 0;\n"
            "}\n"),
        description=f"downcast of a 1-field struct to a "
                    f"{extra + 1}-field struct through void*, then a "
                    "write past the real object",
        params={"extra": extra})


def _uninitialized_pointer(rng: random.Random) -> FaultSpec:
    write = rng.random() < 0.5
    body = ("*__fi_u = 1;" if write
            else "__fi_sink = *__fi_u;")
    return FaultSpec(
        mclass="uninit-pointer",
        expected=C.UninitializedError,
        source=(
            "int __fi_sink;\n"
            "int main(void) {\n"
            "    int *__fi_u;\n"
            f"    {body}\n"
            "    return 0;\n"
            "}\n"),
        description="use of a never-assigned pointer local "
                    f"({'write' if write else 'read'})",
        detect_uninit=True,
        params={"write": write})


def _wild_library_compat(rng: random.Random) -> FaultSpec:
    v = rng.randrange(32, 127)
    return FaultSpec(
        mclass="wild-library-compat",
        expected=C.CompatibilityError,
        source=(
            "extern void *gethostbyname(char *name);\n"
            "int main(void) {\n"
            f"    int __fi_word = {v};\n"
            "    int *__fi_ip = &__fi_word;\n"
            "    char *__fi_name = (char *)__fi_ip;\n"
            "    void *__fi_h = gethostbyname(__fi_name);\n"
            "    __fi_h = (void *)0;\n"
            "    return 0;\n"
            "}\n"),
        description="WILD (bad-cast) buffer passed to an unwrapped "
                    "library function (gethostbyname)",
        params={"v": v})


def _link_undefined(rng: random.Random) -> FaultSpec:
    n = rng.randrange(1000, 10000)
    return FaultSpec(
        mclass="link-undefined",
        expected=C.LinkError,
        source=(
            f"extern int __fi_undefined_{n}(int __fi_x);\n"
            "int main(void) {\n"
            f"    int __fi_r = __fi_undefined_{n}(1);\n"
            "    return __fi_r;\n"
            "}\n"),
        description="call of an external function with no "
                    "definition, builtin or wrapper",
        params={"n": n})


def _double_free(rng: random.Random) -> FaultSpec:
    n = rng.randrange(1, 9) * 4
    use = rng.random() < 0.5
    body = "    __fi_h[0] = 5;\n" if use else ""
    return FaultSpec(
        mclass="double-free",
        expected=C.DoubleFreeError,
        source=(
            "extern void *malloc(int __fi_n);\n"
            "extern void free(void *__fi_p);\n"
            "int main(void) {\n"
            f"    int *__fi_h = (int *)malloc({n});\n"
            f"{body}"
            "    free(__fi_h);\n"
            "    free(__fi_h);\n"
            "    return 0;\n"
            "}\n"),
        description=f"free called twice on the same {n}-byte heap "
                    "block" + (" (used between)" if use else ""),
        params={"n": n, "use": use})


def _use_after_free_reuse(rng: random.Random) -> FaultSpec:
    elems = rng.randrange(1, 9)
    write = rng.random() < 0.5
    v = rng.randrange(1000, 10000)
    access = ("__fi_a[0] = 9;" if write
              else "__fi_sink = __fi_a[0];")
    return FaultSpec(
        mclass="use-after-free-reuse",
        expected=C.UseAfterFreeError,
        source=(
            "extern void *malloc(int __fi_n);\n"
            "extern void free(void *__fi_p);\n"
            "int __fi_sink;\n"
            "int main(void) {\n"
            f"    int *__fi_a = (int *)malloc({elems * 4});\n"
            f"    __fi_a[0] = {v};\n"
            "    free(__fi_a);\n"
            f"    int *__fi_b = (int *)malloc({elems * 4});\n"
            "    __fi_b[0] = 1;\n"
            f"    {access}\n"
            "    free(__fi_b);\n"
            "    return 0;\n"
            "}\n"),
        description=f"{'write' if write else 'read'} through a "
                    f"dangling pointer whose {elems * 4}-byte block "
                    "was freed and its address recycled by a second "
                    "malloc (lock-and-key mismatch)",
        temporal=True,
        reuse_freed=True,
        params={"elems": elems, "write": write, "v": v})


def _invalid_free(rng: random.Random) -> FaultSpec:
    stack = rng.random() < 0.5
    if stack:
        source = (
            "extern void free(void *__fi_p);\n"
            "int main(void) {\n"
            "    int __fi_local = 3;\n"
            "    free(&__fi_local);\n"
            "    return 0;\n"
            "}\n")
        what = "a stack local's address"
        params: dict = {"stack": True}
    else:
        elems = rng.randrange(2, 9)
        k = rng.randrange(1, elems)
        source = (
            "extern void *malloc(int __fi_n);\n"
            "extern void free(void *__fi_p);\n"
            "int main(void) {\n"
            f"    int *__fi_h = (int *)malloc({elems * 4});\n"
            f"    free(__fi_h + {k});\n"
            "    return 0;\n"
            "}\n")
        what = f"an interior pointer ({k * 4} bytes into a " \
               f"{elems * 4}-byte block)"
        params = {"stack": False, "elems": elems, "k": k}
    return FaultSpec(
        mclass="invalid-free",
        expected=C.InvalidFreeError,
        source=source,
        description=f"free of {what}, not the start of a live heap "
                    "block",
        params=params)


#: mutation class name -> seeded builder.  Ordered: campaign reports
#: list classes in this order.
MUTATORS: dict[str, Callable[[random.Random], FaultSpec]] = {
    "null-deref": _null_deref,
    "bounds-off-by-one": _bounds_off_by_one,
    "nul-removal": _nul_termination_removed,
    "wild-tag": _wild_tag_corruption,
    "use-after-return": _use_after_return,
    "dangling-pointer": _dangling_pointer,
    "bad-downcast": _bad_downcast,
    "uninit-pointer": _uninitialized_pointer,
    "wild-library-compat": _wild_library_compat,
    "link-undefined": _link_undefined,
    "double-free": _double_free,
    "use-after-free-reuse": _use_after_free_reuse,
    "invalid-free": _invalid_free,
}


def make_variant(workload_name: str, mclass: str,
                 seed: int) -> FaultSpec:
    """The deterministic variant of ``mclass`` for this workload and
    seed.  ``random.Random`` seeded with a string hashes it with
    SHA-512 internally, so the stream is stable across processes and
    platforms."""
    builder = MUTATORS.get(mclass)
    if builder is None:
        raise KeyError(f"unknown mutation class {mclass!r} "
                       f"(known: {', '.join(MUTATORS)})")
    rng = random.Random(f"{seed}:{workload_name}:{mclass}")
    return builder(rng)


# ---------------------------------------------------------------------------
# Grafting
# ---------------------------------------------------------------------------

class _VarRemapper(Visitor):
    """Rewrite variable references per ``remap`` (snippet decl vid ->
    target Varinfo) in a grafted tree."""

    def __init__(self, remap: dict[int, E.Varinfo]) -> None:
        self.remap = remap

    def visit_lval(self, lv: E.Lval) -> None:
        if isinstance(lv.host, E.Var):
            tgt = self.remap.get(lv.host.var.vid)
            if tgt is not None:
                lv.host.var = tgt


def graft(target: Program, spec: FaultSpec,
          name: Optional[str] = None) -> Program:
    """Mutate ``target`` in place: plant ``spec``'s fault at the top
    of its ``main``.

    The fragment is parsed standalone; declarations of symbols the
    target already has (``strlen`` et al.) are remapped onto the
    target's own variables, the fragment ``main``'s statements are
    prepended to the target ``main``'s body (minus trailing returns,
    so a *surviving* raw run continues into the workload), and every
    other fragment global (helper functions, sink globals, struct
    tags) is added to the target."""
    from repro.frontend import parse_program

    frag = parse_program(spec.source,
                         name=name or f"fault:{spec.mclass}")
    fmain = frag.functions.get("main")
    if fmain is None:
        raise ValueError(f"fault fragment {spec.mclass} has no main")
    tmain = target.functions.get("main")
    if tmain is None:
        raise ValueError("target program has no main to graft into")
    # lint-suppression comments in the fragment must keep working
    # once its statements live inside the target program
    target.lint_suppressions |= frag.lint_suppressions

    # 1. remap fragment declarations of symbols the target defines
    remap: dict[int, E.Varinfo] = {}
    for g in frag.globals:
        if not isinstance(g, GVarDecl):
            continue
        nm = g.var.name
        existing = None
        if nm in target.functions:
            existing = target.functions[nm].svar
        elif nm in target.global_vars:
            existing = target.global_vars[nm]
        elif nm in target.externals:
            existing = target.externals[nm]
        if existing is not None:
            remap[g.var.vid] = existing
    if remap:
        remapper = _VarRemapper(remap)
        for fd in frag.fundecs():
            walk_stmt(fd.body, remapper)

    # 2. fragment main's trailing returns go: raw survivors fall
    #    through into the workload's own code
    stmts = list(fmain.body.stmts)
    while stmts and isinstance(stmts[-1], S.Return):
        stmts.pop()

    # 3. prepend body + locals into the target main
    tmain.body.stmts[0:0] = stmts
    tmain.locals.extend(fmain.locals)

    # 4. carry over the fragment's other globals (helpers, sinks,
    #    comp tags); remapped decls and the fragment main stay behind
    for g in frag.globals:
        if isinstance(g, GFun) and g.fundec is fmain:
            continue
        if isinstance(g, GVarDecl) and g.var.vid in remap:
            continue
        target.add(g)
    return target
