"""Rendering of campaign reports: deterministic JSON + markdown.

No timestamps, no machine identifiers: the report is a pure function
of (seed, campaign, workload set, mutation classes), which is what
makes ``same seed → same report`` a testable property.
"""

from __future__ import annotations

import json
from collections import Counter

from repro.faults.campaign import CampaignReport


def report_to_json(report: CampaignReport, indent: int = 2) -> str:
    """The campaign as a canonical JSON document (sorted keys, stable
    ordering — byte-identical across runs with the same inputs)."""
    return json.dumps(report.to_json(), indent=indent,
                      sort_keys=True) + "\n"


def _blame_root(variant) -> str | None:
    """The root cause of the failing pointer's blame chain, from the
    first cured run that carries one (failure forensics)."""
    for r in variant.runs:
        failure = r.failure
        if failure and failure.get("blame"):
            last = failure["blame"][-1]
            if "src" not in last:
                return last["cause"]
    return None


def report_to_markdown(report: CampaignReport) -> str:
    """The campaign as the paper-style experiment table: per-workload
    injected/caught counts plus the per-class error breakdown."""
    lines = [
        f"Campaign `{report.campaign}` (seed {report.seed}): "
        f"{report.caught}/{report.injected} faults caught, "
        f"{report.agreed}/{report.injected} engine-identical.",
        "",
        "| Workload | Injected | Caught | Agree | Raw crashes | "
        "Raw survives |",
        "|---|---|---|---|---|---|",
    ]
    by_wl: dict[str, list] = {}
    for v in report.variants:
        by_wl.setdefault(v.workload, []).append(v)
    for wl, vs in by_wl.items():
        crashes = sum(1 for v in vs
                      if v.raw_outcome.startswith("crash"))
        survives = sum(1 for v in vs
                       if v.raw_outcome.startswith(("exit", "limit")))
        lines.append(
            f"| {wl} | {len(vs)} | "
            f"{sum(1 for v in vs if v.caught)} | "
            f"{sum(1 for v in vs if v.engines_agree)} | "
            f"{crashes} | {survives} |")
    lines += ["", "| Mutation class | Expected error | Injected | "
              "Caught | Blame root |", "|---|---|---|---|---|"]
    by_class: dict[str, list] = {}
    for v in report.variants:
        by_class.setdefault(v.mclass, []).append(v)
    for mc, vs in by_class.items():
        expected = Counter(v.expected for v in vs).most_common(1)[0][0]
        roots = Counter(r for r in map(_blame_root, vs)
                        if r is not None)
        root = roots.most_common(1)[0][0] if roots else "-"
        lines.append(f"| {mc} | {expected} | {len(vs)} | "
                     f"{sum(1 for v in vs if v.caught)} | {root} |")
    missed = [v for v in report.variants
              if not (v.caught and v.engines_agree)]
    if missed:
        lines += ["", "Missed or divergent variants:"]
        for v in missed:
            runs = "; ".join(
                f"{r.tool}: {r.outcome}"
                + (f" {r.error}" if r.error else "")
                for r in v.runs)
            lines.append(f"- {v.workload}/{v.mclass}: {runs}")
    return "\n".join(lines) + "\n"
