"""Fault-injection campaigns: the safety differential, measured.

For every (workload, mutation class) pair the campaign builds the
seeded attack variant, cures it, and executes:

* the cured program under **both** execution engines — these must
  terminate with the class's expected
  :class:`~repro.runtime.checks.MemorySafetyError` subclass, with
  bit-identical error message and failure record (the engines are a
  differential-testing pair even under injected faults);
* the raw (uninstrumented) program — hardware semantics: it may
  segfault, silently corrupt memory and keep running, or diverge.

A variant counts as *caught* only when every cured run traps with the
expected class.  Reports are deterministic: same seed, same campaign
→ the same JSON, byte for byte.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.bench.harness import pristine_parse
from repro.core import CureOptions, cure
from repro.faults.mutators import MUTATORS, FaultSpec, graft, make_variant
from repro.interp import run_cured, run_raw
from repro.runtime.checks import (CheckFailure, InterpreterLimitError,
                                  MemorySafetyError, ProgramAbort,
                                  ProgramExit, SegmentationFault)
from repro.workloads import Workload, all_workloads, get

#: step caps: variants trap at main entry, so cured runs need very few
#: steps; raw survivors would otherwise run the whole workload — cap
#: them hard, the campaign only needs the *differential*, not a full
#: raw execution.
CURED_MAX_STEPS = 2_000_000
RAW_MAX_STEPS = 200_000

#: campaign name -> workload names (None = all 27)
CAMPAIGNS: dict[str, Optional[tuple[str, ...]]] = {
    "smoke": ("olden_power", "ptrdist_anagram", "ftpd",
              "apache_urlcount"),
    "full": None,
}


@dataclass
class RunOutcome:
    """One execution of one variant under one tool/engine."""

    tool: str                 # cured:closures | cured:tree | raw
    outcome: str              # trapped | crash | exit | limit | error
    error: Optional[str] = None      # exception class, if any
    message: Optional[str] = None    # str(exception)
    status: Optional[int] = None     # exit status, normal termination
    steps: int = 0
    failure: Optional[dict] = None   # CheckFailure record (trapped)

    def to_json(self) -> dict:
        return {"tool": self.tool, "outcome": self.outcome,
                "error": self.error, "message": self.message,
                "status": self.status, "steps": self.steps,
                "failure": self.failure}


@dataclass
class VariantReport:
    """One (workload, mutation class) variant's full differential."""

    workload: str
    mclass: str
    expected: str               # expected MemorySafetyError subclass
    description: str
    params: dict
    runs: list[RunOutcome] = field(default_factory=list)
    caught: bool = False        # all cured runs trap with expected
    engines_agree: bool = False  # cured runs bit-identical
    raw_outcome: str = ""       # the uninstrumented side, summarized

    def to_json(self) -> dict:
        return {"workload": self.workload, "mclass": self.mclass,
                "expected": self.expected,
                "description": self.description,
                "params": self.params,
                "caught": self.caught,
                "engines_agree": self.engines_agree,
                "raw_outcome": self.raw_outcome,
                "runs": [r.to_json() for r in self.runs]}


@dataclass
class CampaignReport:
    """A whole campaign's outcome."""

    seed: int
    campaign: str
    scale: Optional[int]
    classes: tuple[str, ...]
    #: check-elimination level of the cured runs (None = the
    #: pipeline default)
    optimize: Optional[str] = None
    variants: list[VariantReport] = field(default_factory=list)

    @property
    def injected(self) -> int:
        return len(self.variants)

    @property
    def caught(self) -> int:
        return sum(1 for v in self.variants if v.caught)

    @property
    def agreed(self) -> int:
        return sum(1 for v in self.variants if v.engines_agree)

    @property
    def ok(self) -> bool:
        return all(v.caught and v.engines_agree
                   for v in self.variants)

    def to_json(self) -> dict:
        return {"seed": self.seed, "campaign": self.campaign,
                "scale": self.scale, "classes": list(self.classes),
                "optimize": self.optimize,
                "summary": {"injected": self.injected,
                            "caught": self.caught,
                            "engines_agree": self.agreed,
                            "ok": self.ok},
                "variants": [v.to_json() for v in self.variants]}


def _classify(run: Callable[[], object], tool: str) -> RunOutcome:
    try:
        res = run()
        return RunOutcome(tool=tool, outcome="exit",
                          status=getattr(res, "status", None),
                          steps=getattr(res, "steps", 0))
    except MemorySafetyError as exc:
        return RunOutcome(
            tool=tool, outcome="trapped",
            error=type(exc).__name__, message=str(exc),
            failure=CheckFailure.from_exception(exc).to_json())
    except (SegmentationFault, ProgramAbort) as exc:
        return RunOutcome(tool=tool, outcome="crash",
                          error=type(exc).__name__, message=str(exc))
    except ProgramExit as exc:
        return RunOutcome(tool=tool, outcome="exit",
                          status=exc.status)
    except InterpreterLimitError as exc:
        return RunOutcome(tool=tool, outcome="limit",
                          error=type(exc).__name__, message=str(exc))
    except Exception as exc:  # infrastructure trouble, not a verdict
        return RunOutcome(tool=tool, outcome="error",
                          error=type(exc).__name__, message=str(exc))


def run_variant(w: Workload, spec: FaultSpec, *,
                scale: Optional[int] = None,
                engines: Sequence[str] = ("closures", "tree"),
                optimize: Optional[str] = None,
                ) -> VariantReport:
    """Cure and execute one attack variant under every engine + raw.

    ``optimize`` selects the check-elimination level of the cured
    side; the campaign's contract is that the level never changes
    which faults are caught or the failure records they produce.
    """
    report = VariantReport(
        workload=w.name, mclass=spec.mclass,
        expected=spec.expected.__name__,
        description=spec.description, params=dict(spec.params))

    base = copy.deepcopy(pristine_parse(w, scale))
    graft(base, spec, name=f"{w.name}+{spec.mclass}")
    raw_prog = copy.deepcopy(base)
    # Variants always cure with default options (modulo the
    # elimination level): trusting the workload's bad casts
    # (bind_like) would also trust the *injected* evil casts and
    # neuter the attack.  The injected fault executes at main entry,
    # before any workload code whose kinds the stricter options might
    # change can run.  Provenance is on so trapped failures carry the
    # blame chain of the failing pointer; both engines run the same
    # cured object, so the chains are engine-identical by construction
    # (and engines_agree compares them).  Temporal classes opt into
    # lock-and-key checking (and, for the reuse class, the recycling
    # allocator on every side — the raw run reads recycled memory
    # where the cured run traps).
    cured = cure(base,
                 options=CureOptions(optimize=optimize,
                                     provenance=True,
                                     temporal=spec.temporal),
                 name=f"{w.name}+{spec.mclass}")

    args = list(w.args) or None
    cured_runs = []
    for engine in engines:
        out = _classify(
            lambda e=engine: run_cured(
                cured, args=args, stdin=w.stdin,
                max_steps=CURED_MAX_STEPS, engine=e,
                detect_uninit=spec.detect_uninit,
                reuse_freed=spec.reuse_freed),
            f"cured:{engine}")
        cured_runs.append(out)
        report.runs.append(out)
    raw_out = _classify(
        lambda: run_raw(raw_prog, args=args, stdin=w.stdin,
                        max_steps=RAW_MAX_STEPS,
                        reuse_freed=spec.reuse_freed),
        "raw")
    report.runs.append(raw_out)

    report.caught = all(
        r.outcome == "trapped" and r.error == spec.expected.__name__
        for r in cured_runs)
    first = cured_runs[0]
    report.engines_agree = all(
        (r.outcome, r.error, r.message, r.failure) ==
        (first.outcome, first.error, first.message, first.failure)
        for r in cured_runs[1:]) if len(cured_runs) > 1 else True
    if raw_out.outcome == "crash":
        report.raw_outcome = f"crash:{raw_out.error}"
    elif raw_out.outcome == "exit":
        report.raw_outcome = f"exit:{raw_out.status}"
    else:
        report.raw_outcome = raw_out.outcome
    return report


def run_campaign(seed: int, campaign: str = "smoke", *,
                 workloads: Optional[Sequence[str]] = None,
                 classes: Optional[Sequence[str]] = None,
                 scale: Optional[int] = None,
                 engines: Sequence[str] = ("closures", "tree"),
                 optimize: Optional[str] = None,
                 progress: Optional[Callable[[str], None]] = None,
                 ) -> CampaignReport:
    """Run a named campaign: every mutation class against every
    selected workload, deterministically from ``seed``."""
    if campaign not in CAMPAIGNS:
        raise KeyError(f"unknown campaign {campaign!r} "
                       f"(known: {', '.join(CAMPAIGNS)})")
    if workloads is not None:
        names: Sequence[str] = list(workloads)
    else:
        preset = CAMPAIGNS[campaign]
        names = (preset if preset is not None
                 else tuple(w.name for w in all_workloads()))
    mclasses = tuple(classes) if classes is not None \
        else tuple(MUTATORS)
    for m in mclasses:
        if m not in MUTATORS:
            raise KeyError(f"unknown mutation class {m!r}")

    report = CampaignReport(seed=seed, campaign=campaign,
                            scale=scale, classes=mclasses,
                            optimize=optimize)
    for name in names:
        w = get(name)
        for mclass in mclasses:
            spec = make_variant(w.name, mclass, seed)
            vr = run_variant(w, spec, scale=scale, engines=engines,
                             optimize=optimize)
            report.variants.append(vr)
            if progress is not None:
                flag = "caught" if vr.caught else "MISSED"
                progress(f"{w.name:>18} {mclass:<20} {flag}  "
                         f"(raw: {vr.raw_outcome})")
    return report
