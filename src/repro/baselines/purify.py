"""A Purify-like checker (Hastings & Joyce, USENIX '92).

Purify instruments object code, keeping **two status bits per byte**
(unallocated / allocated-uninitialized / allocated-initialized) and
painting *red zones* around heap allocations.  Its published profile,
which the paper leans on for its comparison (Section 5):

* catches heap overruns into red zones and use-after-free;
* **misses out-of-bounds stack array indexing** ("these other tools do
  not catch out-of-bounds array indexing on stack-allocated arrays");
* **misses pointer arithmetic between two separate valid regions** —
  an access that lands inside *another* live allocation looks fine;
* costs a function call into the runtime per memory access, yielding
  the paper's 25–100x slowdowns.

Our shadow state tracks heap addressability and per-byte
initialization; stack and global accesses are deliberately not
validated, reproducing the blind spots above.
"""

from __future__ import annotations

from repro.baselines.base import BaselineViolation, ShadowChecker
from repro.runtime.cost import (PURIFY_ACCESS_OVERHEAD,
                                PURIFY_ALLOC_OVERHEAD, PURIFY_PER_BYTE)
from repro.runtime.memory import Home


class PurifyChecker(ShadowChecker):
    wants_redzones = True
    name = "purify"
    #: Purify intercepts the I/O path with instrumented wrappers.
    io_dilation = 5

    def __init__(self) -> None:
        super().__init__()
        #: hid -> True for live heap homes
        self._live_heap: dict[int, bool] = {}
        #: initialized-byte shadow for heap homes (2 bits/byte -> we
        #: keep a bytearray of 0/1 flags)
        self._init_bits: dict[int, bytearray] = {}
        self.errors_reported = 0

    # -- allocation tracking -----------------------------------------------

    def on_alloc(self, home: Home) -> None:
        assert self.ip is not None
        self._live_heap[home.hid] = True
        self._init_bits[home.hid] = bytearray(home.size)
        self.ip.cost.charge(PURIFY_ALLOC_OVERHEAD
                            + PURIFY_PER_BYTE * home.size,
                            "purify:alloc")

    def on_free(self, home: Home) -> None:
        assert self.ip is not None
        if not self._live_heap.get(home.hid, False):
            self.errors_reported += 1
            raise BaselineViolation("purify",
                                    "FNH: freeing non-heap block")
        self._live_heap[home.hid] = False
        self.ip.cost.charge(PURIFY_ALLOC_OVERHEAD, "purify:free")

    # -- access checking ------------------------------------------------------

    def _charge(self, size: int) -> None:
        assert self.ip is not None
        self.ip.cost.charge(PURIFY_ACCESS_OVERHEAD
                            + PURIFY_PER_BYTE * size, "purify:access")

    def on_read(self, addr: int, size: int) -> None:
        self.reads += 1
        self._charge(size)
        self._validate(addr, size, "read")

    def on_write(self, addr: int, size: int) -> None:
        self.writes += 1
        self._charge(size)
        home = self._validate(addr, size, "write")
        if home is not None and home.hid in self._init_bits:
            off = addr - home.base
            bits = self._init_bits[home.hid]
            for i in range(off, min(off + size, len(bits))):
                bits[i] = 1

    def _validate(self, addr: int, size: int, what: str):
        home = self._home(addr)
        if home is None:
            # Red zone or unallocated address: ABW/ABR.
            self.errors_reported += 1
            raise BaselineViolation(
                "purify", f"AB{'W' if what == 'write' else 'R'}: "
                f"{what} of {size} bytes at 0x{addr:x} in a red zone "
                "or unallocated memory")
        if home.region == "heap":
            if not self._live_heap.get(home.hid, True):
                self.errors_reported += 1
                raise BaselineViolation(
                    "purify", f"F{'W' if what == 'write' else 'R'}: "
                    f"{what} to freed heap block {home.name}")
            if addr + size > home.end:
                self.errors_reported += 1
                raise BaselineViolation(
                    "purify", f"ABW: {what} overruns heap block "
                    f"{home.name}")
        # Stack and global accesses are not validated: Purify's
        # documented blind spot (the access must land *somewhere*
        # mapped, which the memory model already guarantees).
        return home
