"""A Valgrind/memcheck-like checker (Seward, 2003).

Valgrind JIT-translates every basic block — *all* instructions pay a
dilation factor even when no memory is touched — and memcheck keeps
**9 shadow bits per byte** (8 validity "V" bits + 1 addressability "A"
bit).  Its published profile (the paper measured 9–130x slowdowns,
Figure 9):

* catches heap overruns (A bits unset beyond blocks), use-after-free,
  and uninitialized value *uses*;
* like Purify, **misses out-of-bounds stack array indexing** and
  accesses that land inside another valid allocation.

The cost model separates the two components: a per-instruction JIT
dilation (which dominates CPU-bound code, hence bind's 129x) and a
per-access shadow update (which dominates memory-bound code).
"""

from __future__ import annotations

from repro.baselines.base import BaselineViolation, ShadowChecker
from repro.runtime.cost import (VALGRIND_ACCESS_OVERHEAD,
                                VALGRIND_ALLOC_OVERHEAD,
                                VALGRIND_INSTR_DILATION,
                                VALGRIND_PER_BYTE)
from repro.runtime.memory import Home


class ValgrindChecker(ShadowChecker):
    wants_redzones = True
    name = "valgrind"
    #: everything, including the user-side I/O path, runs under the
    #: JIT; syscalls are intercepted and serialized.
    io_dilation = 9

    def __init__(self) -> None:
        super().__init__()
        self._live_heap: dict[int, bool] = {}
        #: V-bit shadow: defined-ness per byte of heap blocks
        self._vbits: dict[int, bytearray] = {}
        self.errors_reported = 0

    def on_instr(self) -> None:
        # JIT translation dilates every instruction.
        assert self.ip is not None
        self.ip.cost.charge(VALGRIND_INSTR_DILATION - 1,
                            "valgrind:jit")

    def on_alloc(self, home: Home) -> None:
        assert self.ip is not None
        self._live_heap[home.hid] = True
        self._vbits[home.hid] = bytearray(home.size)
        self.ip.cost.charge(VALGRIND_ALLOC_OVERHEAD
                            + VALGRIND_PER_BYTE * home.size,
                            "valgrind:alloc")

    def on_free(self, home: Home) -> None:
        assert self.ip is not None
        if not self._live_heap.get(home.hid, False):
            self.errors_reported += 1
            raise BaselineViolation(
                "valgrind", "invalid free() of non-heap address")
        self._live_heap[home.hid] = False
        self.ip.cost.charge(VALGRIND_ALLOC_OVERHEAD, "valgrind:free")

    def _charge(self, size: int) -> None:
        assert self.ip is not None
        self.ip.cost.charge(VALGRIND_ACCESS_OVERHEAD
                            + VALGRIND_PER_BYTE * size,
                            "valgrind:access")

    def on_read(self, addr: int, size: int) -> None:
        self.reads += 1
        self._charge(size)
        self._validate(addr, size, "read")

    def on_write(self, addr: int, size: int) -> None:
        self.writes += 1
        self._charge(size)
        home = self._validate(addr, size, "write")
        if home is not None and home.hid in self._vbits:
            off = addr - home.base
            bits = self._vbits[home.hid]
            for i in range(off, min(off + size, len(bits))):
                bits[i] = 1

    def _validate(self, addr: int, size: int, what: str):
        home = self._home(addr)
        if home is None:
            self.errors_reported += 1
            raise BaselineViolation(
                "valgrind", f"Invalid {what} of size {size} at "
                f"0x{addr:x} (unaddressable)")
        if home.region == "heap":
            if not self._live_heap.get(home.hid, True):
                self.errors_reported += 1
                raise BaselineViolation(
                    "valgrind", f"Invalid {what} of size {size}: "
                    f"{home.name} was freed")
            if addr + size > home.end:
                self.errors_reported += 1
                raise BaselineViolation(
                    "valgrind", f"Invalid {what} of size {size}: "
                    f"past the end of {home.name}")
        return home
