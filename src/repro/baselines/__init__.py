"""Baseline memory-checking tools: Purify-like and Valgrind-like
shadow-memory checkers over the raw interpreter (paper Section 5)."""

from repro.baselines.base import BaselineViolation, ShadowChecker
from repro.baselines.purify import PurifyChecker
from repro.baselines.valgrind import ValgrindChecker

__all__ = ["BaselineViolation", "ShadowChecker", "PurifyChecker",
           "ValgrindChecker"]
