"""Shadow-memory checker interface for the baseline tools.

The paper compares CCured against Purify and Valgrind (Section 5 and
Figure 9).  Both are *binary* instrumentation tools: they observe every
memory access of the uninstrumented program and keep shadow state.  We
reproduce them as :class:`ShadowChecker` plugins on the raw
interpreter: the interpreter calls the hooks on every instruction,
access, allocation and free, and each tool maintains its shadow state
and charges its published overhead profile.

Detected violations raise :class:`BaselineViolation` — deliberately a
different hierarchy from CCured's
:class:`repro.runtime.checks.MemorySafetyError`, since tests assert
*which* tool catches *which* bug class.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.memory import Home


class BaselineViolation(Exception):
    """A memory error detected by a baseline shadow tool."""

    def __init__(self, tool: str, message: str) -> None:
        super().__init__(f"{tool}: {message}")
        self.tool = tool


class ShadowChecker:
    """Base class: does nothing, costs nothing."""

    #: request guard gaps (red zones) around heap allocations.
    wants_redzones = False
    name = "shadow"

    def __init__(self) -> None:
        self.ip = None  # the interpreter, set by attach()
        self.reads = 0
        self.writes = 0

    def attach(self, ip) -> None:
        self.ip = ip

    # -- hooks ---------------------------------------------------------

    def on_instr(self) -> None: ...

    def on_read(self, addr: int, size: int) -> None: ...

    def on_write(self, addr: int, size: int) -> None: ...

    def on_alloc(self, home: Home) -> None: ...

    def on_free(self, home: Home) -> None: ...

    # -- helpers ----------------------------------------------------------

    def _home(self, addr: int) -> Optional[Home]:
        assert self.ip is not None
        return self.ip.mem.home_of(addr)
