"""``python -m repro`` — the command-line driver."""

import sys

from repro.cli import main

sys.exit(main())
