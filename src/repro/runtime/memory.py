"""The byte-accurate memory model.

Memory is a sparse 32-bit virtual address space populated by *homes*
(allocation units): globals, stack slots, heap blocks, string literals
and code stubs.  Data always lives in the plain C layout, so a pointer
stored in memory is 4 little-endian bytes holding a virtual address —
an uninstrumented "library" routine (or a buggy uncured program) can
scribble raw bytes and everything behaves like real hardware, including
overflows that bleed into an adjacent home.

CCured's *metadata* (a stored pointer's bounds, its RTTI word, WILD
tags) is kept in a per-home shadow map keyed by byte offset.  This is
the moral equivalent of the paper's two representations:

* interleaved (``Rep``, Figure 1) and split (``C``/``Meta``, Figure 6)
  layouts differ in *where the metadata lives and what it costs*, which
  the cost model charges per the inferred representation;
* the shadow map preserves the paper's semantics exactly: an integer
  written over a stored pointer clears its metadata (so reading it back
  as a SEQ/WILD pointer yields a null-base "integer disguised as
  pointer", and reading it as a WILD pointer fails the tag check —
  Figure 10's invariants).

By default homes are never reused, so dangling pointers are always
detectable — the paper's CCured inserts its own allocator with the
same property.  ``Memory(reuse_freed=True)`` drops that crutch: freed
heap homes go onto a per-size free list and ``alloc`` hands their
addresses (and stale bytes) back out, like a real ``malloc``.  Under
reuse, detecting a use-after-free needs the *lock-and-key* discipline
of the temporal mode ("Fat Pointers for Temporal Memory Safety of C"):
every home holds a slot in the :class:`LockTable` with a unique lock
value, fat pointers carry the value as their *key*, and ``free`` (or a
frame pop) invalidates the lock — a recycled address gets a fresh
lock, so stale keys can never match again.
"""

from __future__ import annotations

import struct
from bisect import bisect_right
from dataclasses import dataclass
from typing import Optional

from repro.runtime.checks import SegmentationFault

_WORD = 4
_U32 = 0xFFFFFFFF


@dataclass
class PtrMeta:
    """Shadow metadata of one stored pointer word."""

    b: Optional[int] = None      # base address (SEQ/WILD bound)
    e: Optional[int] = None      # end address (SEQ bound)
    rtti: Optional[int] = None   # RTTI hierarchy node id
    key: Optional[int] = None    # temporal key (lock value at issue)


class LockTable:
    """The temporal lock table: one slot per home, holding the lock
    value a pointer's key must match.  Slots are recycled when a home
    is, but lock values never repeat — so a key issued for a previous
    tenant of the slot can never validate again."""

    def __init__(self) -> None:
        self._values: list[int] = []
        self._free_slots: list[int] = []
        self._next_key = 1

    def acquire(self) -> tuple[int, int]:
        """Allocate (or recycle) a slot with a fresh lock value;
        returns ``(slot, lock_value)``."""
        key = self._next_key
        self._next_key += 1
        if self._free_slots:
            slot = self._free_slots.pop()
            self._values[slot] = key
        else:
            slot = len(self._values)
            self._values.append(key)
        return slot, key

    def release(self, slot: int) -> None:
        """Invalidate the slot's lock (0 is never a valid key)."""
        if self._values[slot] != 0:
            self._values[slot] = 0
            self._free_slots.append(slot)

    def valid(self, slot: int, key: int) -> bool:
        return self._values[slot] == key

    def __len__(self) -> int:
        return len(self._values)


class Home:
    """One allocation unit."""

    __slots__ = ("hid", "base", "size", "region", "data", "alive",
                 "meta", "name", "dynamic_rtti", "frame_id",
                 "lock_slot", "lock_key", "freed")

    def __init__(self, hid: int, base: int, size: int, region: str,
                 name: str = "") -> None:
        self.hid = hid
        self.base = base
        self.size = size
        self.region = region  # "stack" | "heap" | "global" | "rodata" | "code"
        self.data = bytearray(size)
        self.alive = True
        #: shadow pointer metadata, keyed by byte offset of the word
        self.meta: dict[int, PtrMeta] = {}
        self.name = name
        #: the dynamic (effective) type of a heap allocation, branded on
        #: first RTTI-checked use (malloc returns untyped memory).
        self.dynamic_rtti: Optional[int] = None
        self.frame_id: Optional[int] = None
        #: lock-table slot and the lock value held while this tenancy
        #: is live; assigned by :meth:`Memory.alloc`
        self.lock_slot: int = -1
        self.lock_key: int = 0
        #: True between a heap ``free`` and a reallocation of the home
        self.freed = False

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def __repr__(self) -> str:
        state = "" if self.alive else " (freed)"
        return (f"<home #{self.hid} {self.name or self.region} "
                f"@0x{self.base:x}+{self.size}{state}>")


class Memory:
    """The virtual address space."""

    #: Address space layout: regions start at fixed bases so that
    #: diagnostic output is stable and code addresses are recognizable.
    REGION_BASES = {"code": 0x0001_0000, "rodata": 0x0010_0000,
                    "global": 0x0100_0000, "heap": 0x1000_0000,
                    "stack": 0x7000_0000}

    def __init__(self, *, contiguous: bool = False,
                 gap_regions: Optional[set[str]] = None,
                 reuse_freed: bool = False) -> None:
        self._next = dict(Memory.REGION_BASES)
        self._homes: list[Home] = []
        #: sorted home base addresses for address resolution
        self._bases: list[int] = []
        self._by_base: list[Home] = []
        self._next_hid = 1
        #: Regions whose homes get a guard gap between them.  Packing
        #: homes back to back (no gap) makes uncured overflows corrupt
        #: the adjacent object exactly as on real hardware; a gap makes
        #: them fault.  Purify-style red zones = gaps on the heap only.
        if gap_regions is not None:
            self.gap_regions = set(gap_regions)
        elif contiguous:
            self.gap_regions = set()
        else:
            self.gap_regions = {"stack", "heap", "global", "rodata",
                                "code"}
        self.bytes_allocated = 0
        self.allocations = 0
        #: the temporal lock table; every home holds a slot while live
        self.locks = LockTable()
        #: recycle freed heap homes (real-malloc semantics) instead of
        #: retiring their addresses forever
        self.reuse_freed = reuse_freed
        #: freed heap homes by exact size, LIFO — the reuse pool
        self._free_heap: dict[int, list[Home]] = {}

    # -- allocation ---------------------------------------------------------

    def alloc(self, size: int, region: str, name: str = "") -> Home:
        size = max(1, size)
        if region == "heap" and self.reuse_freed:
            pool = self._free_heap.get(size)
            if pool:
                home = self._recycle(pool.pop(), name)
                self.bytes_allocated += size
                self.allocations += 1
                return home
        base = self._next[region]
        # align to word
        base = (base + _WORD - 1) & ~(_WORD - 1)
        home = Home(self._next_hid, base, size, region, name)
        self._next_hid += 1
        home.lock_slot, home.lock_key = self.locks.acquire()
        gap = _WORD if region in self.gap_regions else 0
        self._next[region] = base + size + gap
        # insert keeping bases sorted (allocations are monotonic per
        # region, but regions interleave)
        i = bisect_right(self._bases, base)
        self._bases.insert(i, base)
        self._by_base.insert(i, home)
        self._homes.append(home)
        self.bytes_allocated += size
        self.allocations += 1
        return home

    def _recycle(self, home: Home, name: str) -> Home:
        """Hand a freed heap home back out at the same address.  The
        bytes are deliberately left stale — recycled memory keeps its
        previous tenant's data, exactly like a real allocator — but
        the tenancy is fresh: new id, new lock, clean shadow state."""
        home.hid = self._next_hid
        self._next_hid += 1
        home.lock_slot, home.lock_key = self.locks.acquire()
        home.alive = True
        home.freed = False
        home.name = name
        home.dynamic_rtti = None
        home.frame_id = None
        return home

    def free(self, home: Home) -> None:
        home.alive = False
        home.freed = True
        home.meta.clear()
        self.locks.release(home.lock_slot)
        if self.reuse_freed and home.region == "heap":
            self._free_heap.setdefault(home.size, []).append(home)

    # -- address resolution -------------------------------------------------

    def home_of(self, addr: int) -> Optional[Home]:
        """The home containing ``addr``, alive or not."""
        i = bisect_right(self._bases, addr) - 1
        if i < 0:
            return None
        h = self._by_base[i]
        return h if addr < h.end else None

    # -- raw byte access (hardware semantics) --------------------------------

    def read_raw(self, addr: int, n: int) -> bytes:
        """Read ``n`` bytes, spanning homes; traps on unmapped bytes."""
        out = bytearray()
        while n > 0:
            h = self.home_of(addr)
            if h is None:
                raise SegmentationFault(
                    f"read of unmapped address 0x{addr:x}")
            take = min(n, h.end - addr)
            off = addr - h.base
            out += h.data[off:off + take]
            addr += take
            n -= take
        return bytes(out)

    def write_raw(self, addr: int, data: bytes) -> None:
        """Write bytes, spanning homes (so an uncured overflow corrupts
        the neighbour, as on hardware); traps on unmapped bytes.
        Overwritten pointer words lose their shadow metadata."""
        pos = 0
        n = len(data)
        while pos < n:
            h = self.home_of(addr)
            if h is None:
                raise SegmentationFault(
                    f"write to unmapped address 0x{addr:x}")
            take = min(n - pos, h.end - addr)
            off = addr - h.base
            h.data[off:off + take] = data[pos:pos + take]
            # clobber any shadow metadata whose word overlaps the write
            if h.meta:
                lo = (off // _WORD) * _WORD
                hi = off + take
                for moff in [m for m in h.meta if lo <= m < hi]:
                    del h.meta[moff]
            addr += take
            pos += take

    # -- typed scalar access --------------------------------------------------

    def read_int(self, addr: int, size: int, signed: bool) -> int:
        # Fast path: the access lies within one home (the overwhelmingly
        # common case); identical semantics to read_raw, minus a bisect
        # and a bytearray round-trip.
        i = bisect_right(self._bases, addr) - 1
        if i >= 0:
            h = self._by_base[i]
            off = addr - h.base
            if 0 <= off and off + size <= h.size:
                return int.from_bytes(h.data[off:off + size], "little",
                                      signed=signed)
        raw = self.read_raw(addr, size)
        return int.from_bytes(raw, "little", signed=signed)

    def write_int(self, addr: int, value: int, size: int) -> None:
        value &= (1 << (8 * size)) - 1
        i = bisect_right(self._bases, addr) - 1
        if i >= 0:
            h = self._by_base[i]
            off = addr - h.base
            if 0 <= off and off + size <= h.size:
                h.data[off:off + size] = value.to_bytes(size, "little")
                if h.meta:
                    lo = (off // _WORD) * _WORD
                    hi = off + size
                    for moff in [m for m in h.meta if lo <= m < hi]:
                        del h.meta[moff]
                return
        self.write_raw(addr, value.to_bytes(size, "little"))

    def read_float(self, addr: int, size: int) -> float:
        raw = self.read_raw(addr, size)
        return struct.unpack("<f" if size == 4 else "<d", raw)[0]

    def write_float(self, addr: int, value: float, size: int) -> None:
        fmt = "<f" if size == 4 else "<d"
        try:
            self.write_raw(addr, struct.pack(fmt, value))
        except OverflowError:
            self.write_raw(addr, struct.pack(
                fmt, float("inf") if value > 0 else float("-inf")))

    # -- pointer access (word + shadow metadata) ------------------------------

    def write_ptr(self, addr: int, value: int,
                  meta: Optional[PtrMeta]) -> None:
        data = (value & _U32).to_bytes(4, "little")
        i = bisect_right(self._bases, addr) - 1
        if i >= 0:
            h = self._by_base[i]
            off = addr - h.base
            if 0 <= off and off + 4 <= h.size:
                h.data[off:off + 4] = data
                if h.meta:
                    # same clobber window write_raw would apply
                    lo = (off // _WORD) * _WORD
                    hi = off + 4
                    for moff in [m for m in h.meta if lo <= m < hi]:
                        del h.meta[moff]
                if meta is not None:
                    h.meta[off] = meta
                return
        self.write_raw(addr, data)
        h = self.home_of(addr)
        if h is not None:
            off = addr - h.base
            if meta is not None:
                h.meta[off] = meta
            else:
                h.meta.pop(off, None)

    def read_ptr(self, addr: int) -> tuple[int, Optional[PtrMeta]]:
        i = bisect_right(self._bases, addr) - 1
        if i >= 0:
            h = self._by_base[i]
            off = addr - h.base
            if 0 <= off and off + 4 <= h.size:
                return (int.from_bytes(h.data[off:off + 4], "little"),
                        h.meta.get(off))
        value = int.from_bytes(self.read_raw(addr, 4), "little")
        h = self.home_of(addr)
        meta = h.meta.get(addr - h.base) if h is not None else None
        return value, meta

    def has_ptr_tag(self, addr: int) -> bool:
        """The WILD tag of the word at ``addr``: set iff the last store
        there was a valid pointer (Figure 10's tag invariant)."""
        h = self.home_of(addr)
        return h is not None and (addr - h.base) in h.meta

    # -- statistics ----------------------------------------------------------

    def live_heap_bytes(self) -> int:
        return sum(h.size for h in self._homes
                   if h.region == "heap" and h.alive)

    def __repr__(self) -> str:
        return (f"<memory: {self.allocations} allocations, "
                f"{self.bytes_allocated} bytes>")
