"""Builtin C library functions and their CCured wrappers.

Every entry here plays two roles, matching Section 4.1 of the paper:

* in **raw** mode it behaves exactly like the uninstrumented library
  routine — ``strcpy`` copies until NUL no matter what it overwrites
  (this is what makes the exploit demos corrupt memory);
* in **cured** mode it behaves like CCured's *wrapper* for the routine:
  it first validates the assumptions the library relies on (``strcpy``
  checks that the destination has room for the source, ``strchr``'s
  wrapper runs ``__verify_nul`` — the exact example of Figure 3), and
  rebuilds fat pointers for results (``__mkptr``), so the wrapper cost
  is paid but memory safety is preserved.

The functions receive the interpreter (``ip``) and evaluated argument
values; they use the interpreter's helper API (``read_cstring``,
``heap_alloc``, ``bounds_of`` …) rather than touching memory directly.

A few entries (``gethostbyname``, ``recvmsg`` …) are flagged *raw
library* functions: they have **no** wrapper, they read and write plain
C layouts, and in cured mode the call is only legal if the pointed-to
data needs no interleaved metadata (i.e. is SPLIT or metadata-free) —
reproducing the compatibility story of Section 4.2.
"""

from __future__ import annotations

from typing import Callable

from repro.runtime.checks import (BoundsError, NullDereferenceError,
                                  ProgramAbort, ProgramExit)
from repro.runtime.memory import PtrMeta
from repro.runtime.values import NULL, PtrVal

BuiltinImpl = Callable[..., object]

BUILTINS: dict[str, BuiltinImpl] = {}
#: library functions with no wrapper: only split/metadata-free data may
#: cross (Section 4.2).
RAW_LIBRARY: set[str] = set()


def builtin(name: str, raw_library: bool = False):
    def deco(fn: BuiltinImpl) -> BuiltinImpl:
        BUILTINS[name] = fn
        if raw_library:
            RAW_LIBRARY.add(name)
        return fn
    return deco


def _as_int(v: object) -> int:
    if isinstance(v, PtrVal):
        return v.addr
    if isinstance(v, float):
        return int(v)
    assert isinstance(v, int)
    return v


def _as_ptr(v: object) -> PtrVal:
    if isinstance(v, PtrVal):
        return v
    return PtrVal(_as_int(v))


def _heap_ptr(ip, home) -> PtrVal:
    """The fat pointer an allocator returns for ``home``.  Under
    temporal checking it carries the home's lock value as its key."""
    return PtrVal(home.base, b=home.base, e=home.base + home.size,
                  key=home.lock_key if ip.temporal else None)


# ---------------------------------------------------------------------------
# stdlib.h
# ---------------------------------------------------------------------------

@builtin("malloc")
def _malloc(ip, size: object) -> PtrVal:
    n = _as_int(size)
    if n < 0:
        raise BoundsError(f"malloc of negative size {n}")
    home = ip.heap_alloc(max(n, 1), "malloc")
    return _heap_ptr(ip, home)


@builtin("calloc")
def _calloc(ip, nmemb: object, size: object) -> PtrVal:
    n = _as_int(nmemb) * _as_int(size)
    home = ip.heap_alloc(max(n, 1), "calloc")
    return _heap_ptr(ip, home)


@builtin("realloc")
def _realloc(ip, p: object, size: object) -> PtrVal:
    old = _as_ptr(p)
    n = max(_as_int(size), 1)
    home = ip.heap_alloc(n, "realloc")
    if not old.is_null:
        old_home = ip.mem.home_of(old.addr)
        if old_home is not None:
            take = min(old_home.end - old.addr, n)
            data = ip.mem.read_raw(old.addr, take)
            ip.mem.write_raw(home.base, data)
            # Migrate the shadow metadata of the copied prefix.  Copy
            # each PtrMeta (not the reference): freeing the old home
            # clears its map, and under reuse_freed the old dicts get
            # repopulated by the address's next tenant.  Stored keys
            # migrate verbatim — they lock *other* homes, which the
            # realloc does not touch.
            for off, m in list(old_home.meta.items()):
                rel = off - (old.addr - old_home.base)
                if 0 <= rel < take:
                    home.meta[rel] = PtrMeta(m.b, m.e, m.rtti, m.key)
            # the effective-type brand travels with the object
            home.dynamic_rtti = old_home.dynamic_rtti
            ip.heap_free(old)
    return _heap_ptr(ip, home)


@builtin("free")
def _free(ip, p: object) -> None:
    """C semantics: ``free(NULL)`` is a no-op; in cured mode
    ``heap_free`` raises :class:`InvalidFreeError` for a pointer that
    is not the start of a heap block and :class:`DoubleFreeError` for
    a block already freed (with or without ``temporal``)."""
    v = _as_ptr(p)
    if not v.is_null:
        ip.heap_free(v)


@builtin("exit")
def _exit(ip, status: object) -> None:
    raise ProgramExit(_as_int(status))


@builtin("abort")
def _abort(ip) -> None:
    raise ProgramAbort("abort() called")


@builtin("__assert_fail")
def _assert_fail(ip, msg: object) -> None:
    text = ip.read_cstring(_as_ptr(msg)) if isinstance(
        msg, PtrVal) else "assertion failed"
    raise ProgramAbort(text)


@builtin("atoi")
def _atoi(ip, s: object) -> int:
    text = ip.read_cstring(_as_ptr(s))
    text = text.strip()
    sign = 1
    if text[:1] in "+-":
        sign = -1 if text[0] == "-" else 1
        text = text[1:]
    digits = ""
    for ch in text:
        if ch.isdigit():
            digits += ch
        else:
            break
    return sign * int(digits) if digits else 0


@builtin("atol")
def _atol(ip, s: object) -> int:
    return _atoi(ip, s)


@builtin("abs")
def _abs(ip, v: object) -> int:
    return abs(_as_int(v))


@builtin("rand")
def _rand(ip) -> int:
    # Deterministic LCG (glibc constants) for reproducible benchmarks.
    ip.rand_state = (ip.rand_state * 1103515245 + 12345) & 0x7FFFFFFF
    return ip.rand_state


@builtin("srand")
def _srand(ip, seed: object) -> None:
    ip.rand_state = _as_int(seed) & 0x7FFFFFFF


@builtin("qsort")
def _qsort(ip, base: object, nmemb: object, size: object,
           compar: object) -> None:
    bp = _as_ptr(base)
    n = _as_int(nmemb)
    sz = _as_int(size)
    if n <= 1:
        return
    if ip.cured:
        ip.verify_size(bp, n * sz, "qsort")
    elems = [ip.mem.read_raw(bp.addr + i * sz, sz) for i in range(n)]
    metas = []
    home = ip.mem.home_of(bp.addr)
    for i in range(n):
        base_off = bp.addr - home.base + i * sz if home else 0
        metas.append({off - base_off: m
                      for off, m in (home.meta.items() if home else [])
                      if base_off <= off < base_off + sz})
    # scratch homes to hand element pointers to the comparator
    import functools

    scratch_a = ip.heap_alloc(sz, "qsort.a")
    scratch_b = ip.heap_alloc(sz, "qsort.b")

    def cmp(ia: int, ib: int) -> int:
        ip.mem.write_raw(scratch_a.base, elems[ia])
        ip.mem.write_raw(scratch_b.base, elems[ib])
        scratch_a.meta.clear()
        scratch_a.meta.update(metas[ia])
        scratch_b.meta.clear()
        scratch_b.meta.update(metas[ib])
        pa = PtrVal(scratch_a.base, b=scratch_a.base,
                    e=scratch_a.base + sz)
        pb = PtrVal(scratch_b.base, b=scratch_b.base,
                    e=scratch_b.base + sz)
        return _as_int(ip.call_function_value(_as_ptr(compar),
                                              [pa, pb]))

    order = sorted(range(n), key=functools.cmp_to_key(cmp))
    if home is not None:
        base_off0 = bp.addr - home.base
        for off in [o for o in home.meta
                    if base_off0 <= o < base_off0 + n * sz]:
            del home.meta[off]
    for i, src in enumerate(order):
        ip.mem.write_raw(bp.addr + i * sz, elems[src])
        if home is not None:
            for rel, m in metas[src].items():
                home.meta[bp.addr - home.base + i * sz + rel] = m


# ---------------------------------------------------------------------------
# string.h
# ---------------------------------------------------------------------------

@builtin("strlen")
def _strlen(ip, s: object) -> int:
    return len(ip.read_cstring(_as_ptr(s)))


@builtin("strcpy")
def _strcpy(ip, dest: object, src: object) -> PtrVal:
    d, s = _as_ptr(dest), _as_ptr(src)
    text = ip.read_cstring(s)
    if ip.cured:
        ip.verify_size(d, len(text) + 1, "strcpy")
    ip.write_cstring(d, text)
    return d


@builtin("strncpy")
def _strncpy(ip, dest: object, src: object, n: object) -> PtrVal:
    d, s = _as_ptr(dest), _as_ptr(src)
    limit = _as_int(n)
    text = ip.read_cstring(s)[:limit]
    if ip.cured:
        ip.verify_size(d, limit, "strncpy")
    padded = text + "\0" * (limit - len(text))
    ip.mem.write_raw(d.addr, padded.encode("latin-1"))
    return d


@builtin("strcat")
def _strcat(ip, dest: object, src: object) -> PtrVal:
    d, s = _as_ptr(dest), _as_ptr(src)
    old = ip.read_cstring(d)
    add = ip.read_cstring(s)
    if ip.cured:
        ip.verify_size(d, len(old) + len(add) + 1, "strcat")
    ip.write_cstring(d.with_addr(d.addr + len(old)), add)
    return d


@builtin("strncat")
def _strncat(ip, dest: object, src: object, n: object) -> PtrVal:
    d, s = _as_ptr(dest), _as_ptr(src)
    old = ip.read_cstring(d)
    add = ip.read_cstring(s)[:_as_int(n)]
    if ip.cured:
        ip.verify_size(d, len(old) + len(add) + 1, "strncat")
    ip.write_cstring(d.with_addr(d.addr + len(old)), add)
    return d


@builtin("strcmp")
def _strcmp(ip, a: object, b: object) -> int:
    x = ip.read_cstring(_as_ptr(a))
    y = ip.read_cstring(_as_ptr(b))
    return (x > y) - (x < y)


@builtin("strncmp")
def _strncmp(ip, a: object, b: object, n: object) -> int:
    limit = _as_int(n)
    x = ip.read_cstring(_as_ptr(a))[:limit]
    y = ip.read_cstring(_as_ptr(b))[:limit]
    return (x > y) - (x < y)


@builtin("strchr")
def _strchr(ip, s: object, c: object) -> PtrVal:
    # The wrapper of Figure 3: __verify_nul, call, __mkptr.
    p = _as_ptr(s)
    text = ip.read_cstring(p)  # performs __verify_nul in cured mode
    ch = chr(_as_int(c) & 0xFF)
    idx = text.find(ch) if ch != "\0" else len(text)
    if idx < 0:
        return NULL
    return p.with_addr(p.addr + idx)  # __mkptr(result, str)


@builtin("strrchr")
def _strrchr(ip, s: object, c: object) -> PtrVal:
    p = _as_ptr(s)
    text = ip.read_cstring(p)
    ch = chr(_as_int(c) & 0xFF)
    idx = text.rfind(ch) if ch != "\0" else len(text)
    if idx < 0:
        return NULL
    return p.with_addr(p.addr + idx)


@builtin("strstr")
def _strstr(ip, hay: object, needle: object) -> PtrVal:
    h = _as_ptr(hay)
    text = ip.read_cstring(h)
    sub = ip.read_cstring(_as_ptr(needle))
    idx = text.find(sub)
    if idx < 0:
        return NULL
    return h.with_addr(h.addr + idx)


@builtin("strdup")
def _strdup(ip, s: object) -> PtrVal:
    text = ip.read_cstring(_as_ptr(s))
    home = ip.heap_alloc(len(text) + 1, "strdup")
    ip.mem.write_raw(home.base, text.encode("latin-1") + b"\0")
    return _heap_ptr(ip, home)


@builtin("memcpy")
def _memcpy(ip, dest: object, src: object, n: object) -> PtrVal:
    d, s = _as_ptr(dest), _as_ptr(src)
    count = _as_int(n)
    if count <= 0:
        return d
    if ip.cured:
        ip.verify_size(d, count, "memcpy dest")
        ip.verify_size(s, count, "memcpy src")
    data = ip.mem.read_raw(s.addr, count)
    ip.mem.write_raw(d.addr, data)
    # move shadow metadata along with the bytes
    sh = ip.mem.home_of(s.addr)
    dh = ip.mem.home_of(d.addr)
    if sh is not None and dh is not None:
        s0 = s.addr - sh.base
        d0 = d.addr - dh.base
        for off, m in list(sh.meta.items()):
            if s0 <= off < s0 + count:
                dh.meta[d0 + (off - s0)] = m
    return d


@builtin("memmove")
def _memmove(ip, dest: object, src: object, n: object) -> PtrVal:
    return _memcpy(ip, dest, src, n)


@builtin("memset")
def _memset(ip, s: object, c: object, n: object) -> PtrVal:
    p = _as_ptr(s)
    count = _as_int(n)
    if count <= 0:
        return p
    if ip.cured:
        ip.verify_size(p, count, "memset")
    ip.mem.write_raw(p.addr, bytes([_as_int(c) & 0xFF]) * count)
    return p


@builtin("memcmp")
def _memcmp(ip, a: object, b: object, n: object) -> int:
    count = _as_int(n)
    if count <= 0:
        return 0
    pa, pb = _as_ptr(a), _as_ptr(b)
    if ip.cured:
        ip.verify_size(pa, count, "memcmp")
        ip.verify_size(pb, count, "memcmp")
    x = ip.mem.read_raw(pa.addr, count)
    y = ip.mem.read_raw(pb.addr, count)
    return (x > y) - (x < y)


# ---------------------------------------------------------------------------
# stdio.h
# ---------------------------------------------------------------------------

def _format(ip, fmt: str, args: list[object]) -> str:
    out = []
    ai = 0
    i = 0
    n = len(fmt)
    while i < n:
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        j = i + 1
        # flags/width/precision
        while j < n and (fmt[j] in "-+ #0." or fmt[j].isdigit()):
            j += 1
        length = ""
        while j < n and fmt[j] in "hlLzq":
            length += fmt[j]
            j += 1
        if j >= n:
            out.append("%")
            break
        conv = fmt[j]
        spec = fmt[i:j + 1].replace(length, "")
        if conv == "%":
            out.append("%")
        else:
            arg = args[ai] if ai < len(args) else 0
            ai += 1
            if conv in "dioubxX":
                pyconv = {"i": "d", "u": "d", "b": "d"}.get(conv, conv)
                v = _as_int(arg)
                if conv == "u" and v < 0:
                    v &= 0xFFFFFFFF
                out.append(("%" + spec[1:-1] + pyconv) % v)
            elif conv in "eEfgG":
                v = arg if isinstance(arg, float) else float(
                    _as_int(arg))
                out.append(("%" + spec[1:-1] + conv) % v)
            elif conv == "c":
                out.append(chr(_as_int(arg) & 0xFF))
            elif conv == "s":
                out.append(ip.read_cstring(_as_ptr(arg)))
            elif conv == "p":
                out.append(f"0x{_as_int(arg):x}")
            else:
                out.append(spec)
        i = j + 1
    return "".join(out)


#: Simulated kernel/device latency per I/O operation, in cycles.
#: Calibrated so that I/O-bound subjects reproduce the paper's ~1.0x
#: CCured ratios while Valgrind's dilation keeps them near ~10x.
IO_FLAT = 1500
IO_PER_BYTE_SHIFT = 2  # + n/4 cycles per byte moved


def _io(ip, nbytes: int = 0) -> None:
    ip.io_charge(IO_FLAT + (nbytes >> IO_PER_BYTE_SHIFT))


@builtin("printf")
def _printf(ip, fmt: object, *args: object) -> int:
    text = _format(ip, ip.read_cstring(_as_ptr(fmt)), list(args))
    ip.write_stdout(text)
    _io(ip, len(text))
    return len(text)


@builtin("fprintf")
def _fprintf(ip, stream: object, fmt: object, *args: object) -> int:
    text = _format(ip, ip.read_cstring(_as_ptr(fmt)), list(args))
    ip.write_stdout(text)
    _io(ip, len(text))
    return len(text)


@builtin("sprintf")
def _sprintf(ip, dest: object, fmt: object, *args: object) -> int:
    d = _as_ptr(dest)
    text = _format(ip, ip.read_cstring(_as_ptr(fmt)), list(args))
    if ip.cured:
        ip.verify_size(d, len(text) + 1, "sprintf")
    ip.write_cstring(d, text)
    return len(text)


@builtin("snprintf")
def _snprintf(ip, dest: object, size: object, fmt: object,
              *args: object) -> int:
    d = _as_ptr(dest)
    limit = _as_int(size)
    text = _format(ip, ip.read_cstring(_as_ptr(fmt)), list(args))
    if limit > 0:
        clipped = text[:limit - 1]
        if ip.cured:
            ip.verify_size(d, len(clipped) + 1, "snprintf")
        ip.write_cstring(d, clipped)
    return len(text)


@builtin("puts")
def _puts(ip, s: object) -> int:
    text = ip.read_cstring(_as_ptr(s))
    ip.write_stdout(text + "\n")
    _io(ip, len(text) + 1)
    return len(text) + 1


@builtin("putchar")
def _putchar(ip, c: object) -> int:
    ip.write_stdout(chr(_as_int(c) & 0xFF))
    _io(ip, 1)
    return _as_int(c)


@builtin("getchar")
def _getchar(ip) -> int:
    _io(ip, 1)
    return ip.read_stdin_char()


@builtin("fgets")
def _fgets(ip, s: object, size: object, stream: object) -> PtrVal:
    p = _as_ptr(s)
    limit = _as_int(size)
    line = ip.read_stdin_line(limit - 1)
    _io(ip, len(line) if line else 0)
    if line is None:
        return NULL
    if ip.cured:
        ip.verify_size(p, len(line) + 1, "fgets")
    ip.write_cstring(p, line)
    return p


# ---------------------------------------------------------------------------
# ccured.h helpers (usable directly from user code and wrappers)
# ---------------------------------------------------------------------------

@builtin("__ptrof")
def _ptrof(ip, p: object) -> PtrVal:
    """Strip metadata: the one-word library view of a pointer."""
    v = _as_ptr(p)
    return PtrVal(v.addr)


@builtin("__mkptr")
def _mkptr(ip, p: object, home: object) -> PtrVal:
    """Rebuild a fat pointer for ``p`` using ``home``'s metadata."""
    v, h = _as_ptr(p), _as_ptr(home)
    return PtrVal(v.addr, b=h.b, e=h.e, rtti=h.rtti)


@builtin("__verify_nul")
def _verify_nul(ip, s: object) -> None:
    ip.read_cstring(_as_ptr(s))


@builtin("__verify_size")
def _verify_size(ip, p: object, n: object) -> None:
    if ip.cured:
        ip.verify_size(_as_ptr(p), _as_int(n), "__verify_size")


@builtin("__ccured_length")
def _ccured_length(ip, p: object) -> int:
    v = _as_ptr(p)
    home = ip.mem.home_of(v.addr)
    if home is None:
        return 0
    return home.end - v.addr


@builtin("__io_write")
def _io_write(ip, buf: object, n: object) -> int:
    """Simulated device/network write: the program hands ``n`` bytes
    to the kernel.  Workloads use this to model the I/O their real
    counterparts perform (responses on a socket, DMA to a NIC, sectors
    to a disk) so that I/O-bound subjects show the paper's ~1.0x
    CCured ratios."""
    count = _as_int(n)
    p = _as_ptr(buf)
    if ip.cured and not p.is_null and count > 0:
        ip.verify_size(p, min(count, 1), "__io_write")
    _io(ip, count)
    return count


@builtin("__trusted_cast")
def _trusted_cast(ip, p: object) -> object:
    return p


# ---------------------------------------------------------------------------
# "Complicated interface" library functions with no wrappers.
# These exercise the compatible (SPLIT) representation of Section 4.2:
# they produce/consume nested pointer structures in plain C layout.
# ---------------------------------------------------------------------------

@builtin("gethostbyname", raw_library=True)
def _gethostbyname(ip, name: object) -> PtrVal:
    """Returns a ``struct hostent*`` built in plain C layout, exactly
    as an uninstrumented resolver library would (paper Section 4.2)."""
    hostname = ip.read_cstring(_as_ptr(name))
    # struct hostent { char *h_name; char **h_aliases; int h_addrtype; }
    name_home = ip.heap_alloc(len(hostname) + 1, "hostent.name")
    ip.mem.write_raw(name_home.base,
                     hostname.encode("latin-1") + b"\0")
    aliases = [f"{hostname}.alias{i}" for i in range(2)]
    alias_homes = []
    for a in aliases:
        ah = ip.heap_alloc(len(a) + 1, "hostent.alias")
        ip.mem.write_raw(ah.base, a.encode("latin-1") + b"\0")
        alias_homes.append(ah)
    arr = ip.heap_alloc(4 * (len(aliases) + 1), "hostent.aliases")
    for i, ah in enumerate(alias_homes):
        # plain C layout: raw addresses, no shadow metadata
        ip.mem.write_raw(arr.base + 4 * i,
                         ah.base.to_bytes(4, "little"))
    he = ip.heap_alloc(12, "hostent")
    ip.mem.write_raw(he.base, name_home.base.to_bytes(4, "little"))
    ip.mem.write_raw(he.base + 4, arr.base.to_bytes(4, "little"))
    ip.mem.write_raw(he.base + 8, (2).to_bytes(4, "little"))  # AF_INET
    return _heap_ptr(ip, he)


@builtin("recvmsg", raw_library=True)
def _recvmsg(ip, sock: object, buf: object, n: object) -> int:
    """Fill a plain character buffer, like the kernel would."""
    _io(ip, _as_int(n))
    p = _as_ptr(buf)
    count = min(_as_int(n), 64)
    payload = (b"payload:" + bytes(
        [65 + (i % 26) for i in range(count)]))[:count]
    if ip.cured:
        ip.verify_size(p, count, "recvmsg")
    ip.mem.write_raw(p.addr, payload)
    return count


@builtin("sendmsg", raw_library=True)
def _sendmsg(ip, sock: object, msg: object, flags: object) -> int:
    """Consume a nested message structure in plain C layout."""
    v = _as_ptr(msg)
    _io(ip, 64)
    if v.is_null:
        raise NullDereferenceError("sendmsg(NULL)")
    # read struct msghdr { void *base; int len; } and the buffer
    base, _ = ip.mem.read_ptr(v.addr)
    ln = ip.mem.read_int(v.addr + 4, 4, True)
    if base and ln > 0:
        ip.mem.read_raw(base, min(ln, 4096))
    return max(ln, 0)
