"""The memory-safety error taxonomy raised by CCured's run-time checks.

Every failed check raises a subclass of :class:`MemorySafetyError`.
A cured program can *only* terminate normally, via ``exit``, or with one
of these errors — that is the memory-safety guarantee the paper's
security experiments rely on ("CCured prevents known security
exploits"): the ftpd/sendmail buffer overruns become a clean
:class:`BoundsError` instead of corrupted memory.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional


@dataclass
class CheckFailure:
    """A structured, JSON-serializable record of one failed run-time
    check.

    Attached to the :class:`MemorySafetyError` that the check raises
    (``exc.failure``), so campaign runners and the bench harness can
    report *which* check fired *where* without parsing message strings.
    ``check`` is the :class:`repro.cil.stmt.CheckKind` value (or a
    wrapper/runtime operation name such as ``CHECK_VERIFY_NUL`` or
    ``LINK``); ``site`` is the check's statement id assigned by the
    curer; ``pointer_kind`` is the static kind of the checked pointer.
    """

    error: str                           # MemorySafetyError subclass
    check: Optional[str] = None          # CheckKind value / op name
    pointer_kind: Optional[str] = None   # SAFE/SEQ/FSEQ/WILD/RTTI
    function: Optional[str] = None       # enclosing function
    site: Optional[int] = None           # Check.site statement id
    detail: str = ""                     # the human-readable message
    #: blame chain of the failing pointer (step dicts, innermost
    #: first, ending at the inference's root cause) — present when the
    #: program was cured with ``CureOptions.provenance`` on
    blame: Optional[list] = None

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_exception(cls, exc: BaseException) -> "CheckFailure":
        """The attached record, or a best-effort one synthesized from
        the exception itself (errors raised outside a ``Check``)."""
        failure = getattr(exc, "failure", None)
        if failure is not None:
            return failure
        return cls(error=type(exc).__name__,
                   function=getattr(exc, "where", "") or None,
                   detail=str(exc))


class MemorySafetyError(Exception):
    """Base class of all failures detected by CCured's checks."""

    def __init__(self, message: str, where: str = "") -> None:
        suffix = f" [{where}]" if where else ""
        super().__init__(message + suffix)
        self.where = where
        #: structured record of the failed check, attached at the
        #: raise site (see :func:`attach_failure`)
        self.failure: Optional[CheckFailure] = None


def attach_failure(exc: MemorySafetyError, *,
                   check: Optional[str] = None,
                   pointer_kind: Optional[str] = None,
                   function: Optional[str] = None,
                   site: Optional[int] = None,
                   detail: str = "",
                   blame: Optional[list] = None) -> MemorySafetyError:
    """Attach a :class:`CheckFailure` record to ``exc`` (first writer
    wins: a record attached at the innermost raise site is never
    overwritten by an outer handler).  Returns ``exc`` for ``raise
    attach_failure(...)`` chaining."""
    if exc.failure is None:
        exc.failure = CheckFailure(
            error=type(exc).__name__, check=check,
            pointer_kind=pointer_kind,
            function=function or (exc.where or None), site=site,
            detail=detail or str(exc), blame=blame)
    return exc


class NullDereferenceError(MemorySafetyError):
    """A SAFE/RTTI pointer was null (or an integer disguised as a
    pointer: a SEQ/WILD value with a null base)."""


class BoundsError(MemorySafetyError):
    """A SEQ or WILD access fell outside ``[b, e - size]``, an array
    index fell outside the array, or a library wrapper found a buffer
    too small."""


class WildTagError(MemorySafetyError):
    """A WILD read expected a pointer but the tag bits say the word
    holds an integer (or vice versa)."""


class StackEscapeError(MemorySafetyError):
    """A pointer to stack storage was written into the heap or a
    global — the conservative check preventing dereferences of dead
    stack frames."""


class RttiCastError(MemorySafetyError):
    """A checked downcast failed: the dynamic type is not a physical
    subtype of the destination type."""


class DanglingPointerError(MemorySafetyError):
    """An access through a pointer into freed storage or a popped stack
    frame."""


class UseAfterFreeError(MemorySafetyError):
    """A temporal check (``CHECK_ALIVE``) caught an access through a
    pointer whose home was freed — either the home is still marked
    freed, or its lock no longer matches the pointer's key because the
    allocator recycled the address (``Memory(reuse_freed=True)``)."""


class DoubleFreeError(MemorySafetyError):
    """``free`` was called a second time on a block that is already
    freed."""


class InvalidFreeError(MemorySafetyError):
    """``free`` was called on a pointer that is not the start of a
    live heap block (an interior pointer, a stack/global/rodata
    address, or an unmapped address)."""


class UninitializedError(MemorySafetyError):
    """Use of an uninitialized pointer value detected by the runtime."""


class CompatibilityError(MemorySafetyError):
    """A wide (metadata-bearing) value would have been passed to an
    uninstrumented library without a wrapper or a SPLIT representation.
    CCured reports this at link time: 'fail to link rather than crash
    at run time' (Section 4.1)."""


class LinkError(MemorySafetyError):
    """An external symbol has no definition, builtin or wrapper."""


class SegmentationFault(Exception):
    """An *uncured* program touched unmapped memory.  This is not a
    CCured failure: it models the hardware trap an uninstrumented
    binary would take, and is what the baseline tools (and the exploit
    demos) observe."""


class ProgramExit(Exception):
    """Normal termination via ``exit(status)``."""

    def __init__(self, status: int) -> None:
        super().__init__(f"exit({status})")
        self.status = status


class ProgramAbort(Exception):
    """Termination via ``abort()`` or a failed ``assert``."""


class InterpreterLimitError(Exception):
    """A resource limit of the interpreter itself (step budget,
    recursion depth, output size) was exceeded."""
