"""The memory-safety error taxonomy raised by CCured's run-time checks.

Every failed check raises a subclass of :class:`MemorySafetyError`.
A cured program can *only* terminate normally, via ``exit``, or with one
of these errors — that is the memory-safety guarantee the paper's
security experiments rely on ("CCured prevents known security
exploits"): the ftpd/sendmail buffer overruns become a clean
:class:`BoundsError` instead of corrupted memory.
"""

from __future__ import annotations


class MemorySafetyError(Exception):
    """Base class of all failures detected by CCured's checks."""

    def __init__(self, message: str, where: str = "") -> None:
        suffix = f" [{where}]" if where else ""
        super().__init__(message + suffix)
        self.where = where


class NullDereferenceError(MemorySafetyError):
    """A SAFE/RTTI pointer was null (or an integer disguised as a
    pointer: a SEQ/WILD value with a null base)."""


class BoundsError(MemorySafetyError):
    """A SEQ or WILD access fell outside ``[b, e - size]``, an array
    index fell outside the array, or a library wrapper found a buffer
    too small."""


class WildTagError(MemorySafetyError):
    """A WILD read expected a pointer but the tag bits say the word
    holds an integer (or vice versa)."""


class StackEscapeError(MemorySafetyError):
    """A pointer to stack storage was written into the heap or a
    global — the conservative check preventing dereferences of dead
    stack frames."""


class RttiCastError(MemorySafetyError):
    """A checked downcast failed: the dynamic type is not a physical
    subtype of the destination type."""


class DanglingPointerError(MemorySafetyError):
    """An access through a pointer into freed storage or a popped stack
    frame."""


class UninitializedError(MemorySafetyError):
    """Use of an uninitialized pointer value detected by the runtime."""


class CompatibilityError(MemorySafetyError):
    """A wide (metadata-bearing) value would have been passed to an
    uninstrumented library without a wrapper or a SPLIT representation.
    CCured reports this at link time: 'fail to link rather than crash
    at run time' (Section 4.1)."""


class LinkError(MemorySafetyError):
    """An external symbol has no definition, builtin or wrapper."""


class SegmentationFault(Exception):
    """An *uncured* program touched unmapped memory.  This is not a
    CCured failure: it models the hardware trap an uninstrumented
    binary would take, and is what the baseline tools (and the exploit
    demos) observe."""


class ProgramExit(Exception):
    """Normal termination via ``exit(status)``."""

    def __init__(self, status: int) -> None:
        super().__init__(f"exit({status})")
        self.status = status


class ProgramAbort(Exception):
    """Termination via ``abort()`` or a failed ``assert``."""


class InterpreterLimitError(Exception):
    """A resource limit of the interpreter itself (step budget,
    recursion depth, output size) was exceeded."""
