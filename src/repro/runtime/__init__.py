"""Runtime substrate: memory model, values, checks, cost model, libc."""

from repro.runtime.checks import (BoundsError, CompatibilityError,
                                  DanglingPointerError,
                                  InterpreterLimitError, LinkError,
                                  MemorySafetyError,
                                  NullDereferenceError, ProgramAbort,
                                  ProgramExit, RttiCastError,
                                  SegmentationFault, StackEscapeError,
                                  UninitializedError, WildTagError)
from repro.runtime.cost import CostModel
from repro.runtime.memory import Home, Memory, PtrMeta
from repro.runtime.values import NULL, BlobVal, PtrVal

__all__ = [
    "BoundsError", "CompatibilityError", "DanglingPointerError",
    "InterpreterLimitError", "LinkError", "MemorySafetyError",
    "NullDereferenceError", "ProgramAbort", "ProgramExit",
    "RttiCastError", "SegmentationFault", "StackEscapeError",
    "UninitializedError", "WildTagError",
    "CostModel",
    "Home", "Memory", "PtrMeta",
    "NULL", "BlobVal", "PtrVal",
]
