"""Run-time values of the interpreter.

Scalars are Python ints/floats.  Pointers are :class:`PtrVal` — a fat
value carrying the address plus whatever metadata its kind maintains
(Figure 1 / Figure 10 of the paper):

* SAFE uses only ``addr``;
* SEQ uses ``addr``, ``b`` and ``e`` (``b is None`` encodes the
  "integer disguised as a pointer" state with a null base);
* WILD uses ``addr`` and ``b``, with the area length and tags coming
  from the home;
* RTTI uses ``addr`` and ``rtti`` (a node id in the RTTI hierarchy).

A ``PtrVal`` always carries every field it happens to know, regardless
of the static kind; checks consult the fields the kind prescribes.
This mirrors the invariant structure of Figure 10 while letting the
same value flow through kind conversions without loss.

Aggregate (struct/array) values are :class:`BlobVal`: raw bytes plus
the shadow metadata of any pointers inside, used for whole-struct
assignment and struct-by-value argument passing.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.memory import PtrMeta


class PtrVal:
    """A fat pointer value."""

    __slots__ = ("addr", "b", "e", "rtti", "key")

    def __init__(self, addr: int, b: Optional[int] = None,
                 e: Optional[int] = None,
                 rtti: Optional[int] = None,
                 key: Optional[int] = None) -> None:
        self.addr = addr & 0xFFFFFFFF
        self.b = b
        self.e = e
        self.rtti = rtti
        #: temporal key: the lock value of the pointed-to home when
        #: the pointer was issued (heap allocations under
        #: ``CureOptions.temporal``).  ``CHECK_ALIVE`` compares it
        #: against the home's current lock.
        self.key = key

    @property
    def is_null(self) -> bool:
        return self.addr == 0

    def with_addr(self, addr: int) -> "PtrVal":
        return PtrVal(addr, self.b, self.e, self.rtti, self.key)

    def meta(self) -> Optional[PtrMeta]:
        if self.b is None and self.e is None and self.rtti is None \
                and self.key is None:
            return None
        return PtrMeta(self.b, self.e, self.rtti, self.key)

    @staticmethod
    def from_meta(addr: int, meta: Optional[PtrMeta]) -> "PtrVal":
        if meta is None:
            return PtrVal(addr)
        return PtrVal(addr, meta.b, meta.e, meta.rtti, meta.key)

    def __repr__(self) -> str:
        parts = [f"0x{self.addr:x}"]
        if self.b is not None:
            parts.append(f"b=0x{self.b:x}")
        if self.e is not None:
            parts.append(f"e=0x{self.e:x}")
        if self.rtti is not None:
            parts.append(f"rtti={self.rtti}")
        if self.key is not None:
            parts.append(f"key={self.key}")
        return f"<ptr {' '.join(parts)}>"


NULL = PtrVal(0)

#: sentinel address used to poison uninitialized pointer locals when
#: the interpreter's ``detect_uninit`` mode is on.  It lies in no
#: memory region (regions top out below ``0x8000_0000``), so a
#: dereference can never alias real storage; the liveness check maps
#: it to :class:`repro.runtime.checks.UninitializedError`.
POISON_ADDR = 0xF00D_DEAD


class BlobVal:
    """A struct/array value: bytes plus shadow metadata by offset."""

    __slots__ = ("data", "meta")

    def __init__(self, data: bytes,
                 meta: Optional[dict[int, PtrMeta]] = None) -> None:
        self.data = data
        self.meta = meta or {}

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"<blob {len(self.data)} bytes, {len(self.meta)} ptrs>"
