"""The deterministic cost model.

The paper measures wall-clock slowdowns of gcc-compiled binaries; our
substrate is an interpreter, so absolute times are meaningless.
Instead every abstract machine operation is charged a deterministic
cost in "cycles", calibrated to the published per-operation costs of
each tool:

* plain execution: 1 per instruction, 1 per memory word touched;
* CCured: the check costs below (a null check is one compare; a SEQ
  bounds check is two compares; WILD adds tag manipulation) plus the
  extra words that wide representations move (Figure 1: SEQ pointers
  are 3 words, WILD 2 words + tags, RTTI 2 words) and the extra
  dereferences of split metadata (Section 4.2);
* Purify instruments memory ops with a function call into its runtime
  and maintains 2 status bits per byte — roughly 20–60 cycles per
  access, which yields its published 25–100x slowdowns;
* Valgrind (memcheck) JIT-translates *every* instruction (~8–15x base
  dilation) and maintains 9 shadow bits per byte, yielding 9–130x.

Because the model is deterministic, benchmark ratios are reproducible
to the cycle; pytest-benchmark additionally reports wall-clock time of
the interpreter itself.
"""

from __future__ import annotations

from collections import Counter

from repro.cil.stmt import CheckKind

#: cycles per executed CIL instruction (the "1.0x" baseline).
COST_INSTR = 1
#: cycles per evaluated operator (binop/unop/cast) — expressions
#: decompose into several machine ops, which keeps the baseline honest
#: relative to per-check costs.
COST_EVAL_OP = 1
#: cycles per word read/written from memory.
COST_MEM_WORD = 1

#: cycles per CCured run-time check.
CHECK_COSTS: dict[CheckKind, int] = {
    CheckKind.NULL: 1,
    CheckKind.SEQ_BOUNDS: 3,
    CheckKind.FSEQ_BOUNDS: 2,
    CheckKind.SEQ_TO_SAFE: 3,
    CheckKind.SAFE_TO_SEQ: 1,
    CheckKind.WILD_BOUNDS: 6,
    CheckKind.WILD_READ_TAG: 5,
    CheckKind.STORE_STACK_PTR: 2,
    CheckKind.RTTI_CAST: 4,
    CheckKind.FUNPTR: 1,
    CheckKind.VERIFY_NUL: 8,
    CheckKind.VERIFY_SIZE: 2,
    CheckKind.INDEX: 2,
    # temporal lock-and-key validation: one lock-table load + compare
    CheckKind.ALIVE: 2,
}

#: extra words moved when loading/storing a wide pointer (Figure 1):
#: SEQ = +2 (b, e), WILD = +1 (b) + tag word, RTTI = +1 (t).
WIDE_EXTRA_WORDS = {"SEQ": 2, "FSEQ": 1, "WILD": 2, "RTTI": 1,
                    "SAFE": 0}
#: extra cost per split-metadata operation: unlike the interleaved
#: layout's adjacent words, the parallel structure is a separate
#: dereference (and in compiled code a separate cache line).
COST_SPLIT_META = 2
#: tag update on a WILD store.
COST_WILD_TAG_UPDATE = 4

# -- baseline tools ---------------------------------------------------------

#: Purify: instrumented call into the runtime per memory access, plus
#: shadow bit maintenance per byte.
PURIFY_ACCESS_OVERHEAD = 150
PURIFY_PER_BYTE = 3
PURIFY_ALLOC_OVERHEAD = 400  # red-zone painting

#: Valgrind: JIT dispatch multiplies every instruction; shadow V-bits
#: are maintained per byte on every access.
VALGRIND_INSTR_DILATION = 9
VALGRIND_ACCESS_OVERHEAD = 60
VALGRIND_PER_BYTE = 6
VALGRIND_ALLOC_OVERHEAD = 250


def mem_words(nbytes: int) -> int:
    """Words charged for an ``nbytes`` memory access (fast-path helper:
    the closure engine folds this into each compiled load/store)."""
    return ((nbytes + 3) >> 2) or 1


class CostModel:
    """Accumulates cycles and per-event counts during interpretation.

    The per-instruction and per-memory-access paths are the hottest
    code in the interpreter, so they use plain integer fields; only
    lower-frequency events (checks, wide moves, tool overheads) keep
    named counters.
    """

    __slots__ = ("cycles", "instrs", "mems", "wides", "splits",
                 "events")

    def __init__(self) -> None:
        self.cycles = 0
        self.instrs = 0
        self.mems = 0
        self.wides = 0
        self.splits = 0
        self.events: Counter[str] = Counter()

    def charge(self, cycles: int, event: str = "",
               count: int = 1) -> None:
        self.cycles += cycles
        if event:
            self.events[event] += count

    def charge_instr(self) -> None:
        self.cycles += COST_INSTR
        self.instrs += 1

    def charge_mem(self, nbytes: int) -> None:
        self.cycles += COST_MEM_WORD * mem_words(nbytes)
        self.mems += 1

    def charge_check(self, kind: CheckKind) -> None:
        self.cycles += CHECK_COSTS.get(kind, 1)
        self.events[f"check:{kind.value}"] += 1

    def check_events(self) -> Counter:
        """Executed run-time checks by kind (the dynamic counterpart
        of ``CuredProgram.check_counts``: statically elided checks
        never appear here)."""
        return Counter({k.split(":", 1)[1]: v
                        for k, v in self.events.items()
                        if k.startswith("check:")})

    def checks_executed(self) -> int:
        """Total run-time checks actually executed."""
        return sum(v for k, v in self.events.items()
                   if k.startswith("check:"))

    def charge_wide(self, kind_name: str) -> None:
        extra = WIDE_EXTRA_WORDS.get(kind_name, 0)
        if extra:
            self.cycles += extra * COST_MEM_WORD
            self.wides += 1

    def charge_split(self, n_ops: int = 1) -> None:
        self.cycles += COST_SPLIT_META * n_ops
        self.splits += n_ops

    @property
    def total(self) -> int:
        return self.cycles

    def all_events(self) -> Counter:
        """Named events merged with the hot counters."""
        out = Counter(self.events)
        out["instr"] = self.instrs
        out["mem"] = self.mems
        if self.wides:
            out["wide"] = self.wides
        if self.splits:
            out["split"] = self.splits
        return out

    def summary(self) -> str:
        top = ", ".join(f"{k}={v}" for k, v in
                        self.all_events().most_common(8))
        return f"{self.cycles} cycles ({top})"
