"""SPLIT / NOSPLIT inference (paper Section 4.2).

The compatible metadata representation stores a value's metadata in a
*parallel* structure with the same shape as the data, so the data keeps
the exact C layout a precompiled library expects.  Because the split
representation costs extra loads/stores, CCured restricts it to where
it is required:

* roots: values passed to (or received from) uninstrumented library
  functions whose types would otherwise embed metadata in the data, and
  explicit programmer annotations (``#pragma ccuredSplit``);
* SPLIT flows *down* from a pointer to its base type and from a
  structure to its fields (SPLIT types never contain NOSPLIT types);
* when pointers to a common referent flow together (casts and
  assignments), their base types must agree on splitness, so SPLIT
  spreads symmetrically across ``compat``/``same`` edges;
* WILD pointers do not support the compatible representation (the
  paper's stated limitation), so splitness stops at WILD nodes.

The inference also computes which pointers carry a *metadata pointer*
(``has_meta``): per Figure 6, a pointer needs one exactly when
``Meta(base type)`` is non-void.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cil import types as T
from repro.cil.visitor import type_occurrences
from repro.core.constraints import Analysis
from repro.core.qualifiers import Node, PointerKind, ensure_node


@dataclass
class SplitResult:
    """Statistics of the SPLIT inference (paper Section 5 reports the
    fraction of split pointers and of pointers needing metadata)."""

    split_nodes: int = 0
    meta_nodes: int = 0
    total_nodes: int = 0

    @property
    def split_fraction(self) -> float:
        return self.split_nodes / self.total_nodes \
            if self.total_nodes else 0.0

    @property
    def meta_fraction(self) -> float:
        """Fraction of the *split* pointers that carry a metadata
        pointer (the paper reports 31% for bind)."""
        return self.meta_nodes / self.split_nodes \
            if self.split_nodes else 0.0


def infer_split(an: Analysis) -> SplitResult:
    """Run SPLIT inference after kinds are solved."""
    roots: list[Node] = []
    if an.options.all_split:
        roots.extend(n for n in an.nodes)
    else:
        # Library-interface pointers whose base types would embed
        # metadata need the compatible representation.
        for n in an.nodes:
            if n.interface and n.kind is not PointerKind.WILD \
                    and _base_needs_metadata(n):
                roots.append(n)
        # Explicit annotations by variable/field name.
        if an.options.split_roots:
            targets = an.options.split_roots
            for t, where in type_occurrences(an.prog):
                name = where.split(" ", 1)[-1]
                short = name.split(":")[-1].split(".")[-1]
                if name in targets or short in targets:
                    u = T.unroll(t)
                    if isinstance(u, T.TPtr):
                        roots.append(ensure_node(u, where))

    # Spread splitness: symmetric across flows, downward into bases.
    worklist = list(roots)
    seen: set[int] = set()
    while worklist:
        n = worklist.pop()
        if n.id in seen or n.kind is PointerKind.WILD:
            continue
        seen.add(n.id)
        n.split = True
        for m in n.compat:
            worklist.append(m)
        for m in n.same:
            worklist.append(m)
        _split_base(n.base_type(), worklist)

    result = SplitResult()
    result.total_nodes = len(an.decl_nodes)
    for n in an.decl_nodes:
        if n.split:
            result.split_nodes += 1
        n.has_meta = _needs_meta_pointer(n)
        if n.split and n.has_meta:
            result.meta_nodes += 1
    return result


def _split_base(t: T.CType | None, worklist: list[Node],
                _comps: set[int] | None = None) -> None:
    if t is None:
        return
    if _comps is None:
        _comps = set()
    u = T.unroll(t)
    if isinstance(u, T.TPtr):
        worklist.append(ensure_node(u, "split base"))
    elif isinstance(u, T.TArray):
        _split_base(u.base, worklist, _comps)
    elif isinstance(u, T.TComp):
        if u.comp.key in _comps:
            return
        _comps.add(u.comp.key)
        for f in u.comp.fields:
            _split_base(f.type, worklist, _comps)


def needs_metadata(t: T.CType, _comps: set[int] | None = None) -> bool:
    """Is ``Meta(t)`` non-void (Figure 6)?

    Metadata "is only introduced by pointers that have metadata in
    their original CCured representation" — SEQ needs b/e, RTTI needs
    its type word — "and any type composed from a pointer that needs
    metadata must itself have metadata."
    """
    if _comps is None:
        _comps = set()
    u = T.unroll(t)
    if isinstance(u, T.TPtr):
        if u.kind in (PointerKind.SEQ, PointerKind.FSEQ,
                      PointerKind.RTTI):
            return True
        if u.kind is PointerKind.WILD:
            return False  # unsupported; handled by compatibility error
        return needs_metadata(u.base, _comps)
    if isinstance(u, T.TArray):
        return needs_metadata(u.base, _comps)
    if isinstance(u, T.TComp):
        if u.comp.key in _comps:
            return False
        _comps.add(u.comp.key)
        return any(needs_metadata(f.type, _comps)
                   for f in u.comp.fields)
    return False


def contains_wild(t: T.CType, _comps: set[int] | None = None) -> bool:
    """Does ``t`` contain a WILD pointer anywhere?  WILD data requires
    a tagged-area layout that no uninstrumented library can produce or
    preserve, so it can never cross the library boundary."""
    if _comps is None:
        _comps = set()
    u = T.unroll(t)
    if isinstance(u, T.TPtr):
        return u.kind is PointerKind.WILD
    if isinstance(u, T.TArray):
        return contains_wild(u.base, _comps)
    if isinstance(u, T.TComp):
        if u.comp.key in _comps:
            return False
        _comps.add(u.comp.key)
        return any(contains_wild(f.type, _comps)
                   for f in u.comp.fields)
    return False


def _base_needs_metadata(n: Node) -> bool:
    base = n.base_type()
    if base is None:
        return False
    return needs_metadata(base)


def _needs_meta_pointer(n: Node) -> bool:
    """Does this pointer's split representation include an ``m`` field
    (Figure 6: the m field is omitted when ``Meta(base) = void``)?"""
    base = n.base_type()
    if base is None:
        return False
    return needs_metadata(base)
