"""Redundant-check elimination.

The paper contrasts CCured with binary tools precisely on this point:
"without the source code and the type information it contains, Purify
cannot statically remove checks as CCured does."  Beyond the big
static win (SAFE pointers need only a null check; unconstrained
pointers need none), the CCured implementation also removed *locally
redundant* run-time checks.

This pass implements that cleanup conservatively, within each straight
-line instruction run:

* a check that is syntactically identical to one already performed
  since the last potentially-invalidating instruction is dropped
  (e.g. the double ``__CHECK_NULL(cir)`` from ``cir->radius *
  cir->radius``);
* any ``Set`` or ``Call`` invalidates previous checks whose argument
  expressions could be affected — conservatively, writes to a scalar
  register variable invalidate only checks mentioning that variable,
  everything else invalidates all remembered checks.

The pass is sound by construction (it only removes a check when an
identical check already protected the same values on every path) and
is measured by the ablation benchmark ``benchmarks/test_checkelim.py``.
"""

from __future__ import annotations

from repro.cil import expr as E
from repro.cil import stmt as S
from repro.cil.program import GFun, Program


def _check_signature(c: S.Check) -> tuple:
    return (c.kind, repr(c.args), c.size,
            repr(c.rtti) if c.rtti is not None else None)


def _vars_of_exp(e: E.Exp, out: set[int]) -> bool:
    """Collect variable ids; returns True if the expression reads
    through memory (a dereference, or an address-taken/global
    variable)."""
    if isinstance(e, E.LvalExp):
        return _vars_of_lval(e.lval, out, is_read=True)
    if isinstance(e, (E.AddrOf, E.StartOf)):
        return _vars_of_lval(e.lval, out, is_read=False)
    if isinstance(e, E.UnOp):
        return _vars_of_exp(e.e, out)
    if isinstance(e, E.BinOp):
        m1 = _vars_of_exp(e.e1, out)
        m2 = _vars_of_exp(e.e2, out)
        return m1 or m2
    if isinstance(e, E.CastE):
        return _vars_of_exp(e.e, out)
    if isinstance(e, (E.Const, E.StrConst, E.SizeOfT)):
        return False
    # Unknown expression kind: assume it can read anything, so the
    # facts/checks depending on it die at every write.  A new Exp
    # subclass must be handled above before it can be treated as pure.
    return True


def _vars_of_lval(lv: E.Lval, out: set[int], *,
                  is_read: bool) -> bool:
    reads_mem = False
    if isinstance(lv.host, E.Var):
        var = lv.host.var
        out.add(var.vid)
        if is_read and (var.is_global or var.address_taken
                        or not isinstance(lv.offset, E.NoOffset)):
            reads_mem = True
    else:
        reads_mem = True
        _vars_of_exp(lv.host.exp, out)
    off = lv.offset
    while not isinstance(off, E.NoOffset):
        if isinstance(off, E.Index):
            if _vars_of_exp(off.index, out):
                reads_mem = True
        off = off.rest  # type: ignore[union-attr]
    return reads_mem


class _CheckCache:
    """Remembered checks with the variables they depend on and whether
    they read through memory."""

    def __init__(self) -> None:
        self._seen: dict[tuple, tuple[set[int], bool]] = {}

    def lookup(self, sig: tuple) -> bool:
        return sig in self._seen

    def remember(self, c: S.Check, sig: tuple) -> None:
        deps: set[int] = set()
        reads_mem = False
        for a in c.args:
            if _vars_of_exp(a, deps):
                reads_mem = True
        self._seen[sig] = (deps, reads_mem)

    def invalidate_var(self, vid: int) -> None:
        dead = [sig for sig, (deps, _) in self._seen.items()
                if vid in deps]
        for sig in dead:
            del self._seen[sig]

    def invalidate_all(self) -> None:
        self._seen.clear()

    def invalidate_memory(self) -> None:
        """A store through memory may alias anything a check read from
        memory; register-only checks survive."""
        dead = [sig for sig, (_, reads_mem) in self._seen.items()
                if reads_mem]
        for sig in dead:
            del self._seen[sig]


def eliminate_redundant_checks(prog: Program) -> int:
    """Remove locally redundant Check instructions; returns the count
    of checks removed."""
    removed = 0
    for g in prog.globals:
        if isinstance(g, GFun):
            removed += _do_block(g.fundec.body)
    return removed


def _do_block(b: S.Block) -> int:
    removed = 0
    for i, s in enumerate(b.stmts):
        if isinstance(s, S.InstrStmt):
            removed += _do_instrs(s)
        elif isinstance(s, S.Block):
            removed += _do_block(s)
        elif isinstance(s, S.If):
            removed += _do_block(s.then)
            removed += _do_block(s.els)
        elif isinstance(s, S.Loop):
            removed += _do_block(s.body)
    return removed


def _do_instrs(s: S.InstrStmt) -> int:
    cache = _CheckCache()
    out: list[S.Instr] = []
    removed = 0
    for instr in s.instrs:
        if isinstance(instr, S.Check):
            sig = _check_signature(instr)
            if cache.lookup(sig):
                removed += 1
                continue
            cache.remember(instr, sig)
            out.append(instr)
            continue
        if isinstance(instr, S.Set):
            if isinstance(instr.lval.host, E.Var) and isinstance(
                    instr.lval.offset, E.NoOffset):
                var = instr.lval.host.var
                cache.invalidate_var(var.vid)
                # A global or address-taken variable is also readable
                # through memory (an alias or another name), so any
                # memory-reading check may have observed it.
                if var.is_global or var.address_taken:
                    cache.invalidate_memory()
            else:
                if isinstance(instr.lval.host, E.Var):
                    cache.invalidate_var(instr.lval.host.var.vid)
                cache.invalidate_memory()
            out.append(instr)
            continue
        # Calls can write anything.
        cache.invalidate_all()
        out.append(instr)
    s.instrs = out
    return removed
