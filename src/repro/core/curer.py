"""The top-level curing pipeline — the system's public entry point.

``cure()`` runs the full CCured pipeline of the paper:

1. parse + lower C into the CIL-like IR (if given source text),
2. generate constraints and classify every cast (Section 3),
3. solve pointer kinds (SAFE/SEQ/WILD/RTTI),
4. infer SPLIT metadata representations (Section 4.2),
5. insert run-time checks (Figures 2 and 11).

The result bundles the instrumented program with everything the
paper's evaluation reports: the cast census, kind percentages, check
counts, split statistics and trusted-cast counts.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional, Sequence, Union

from repro.cil import stmt as S
from repro.cil.printer import program_to_c
from repro.cil.program import Program
from repro.core.casts import CastCensus
from repro.core.constraints import Analysis, generate
from repro.core.options import CureOptions
from repro.obs.tracer import TRACER
from repro.core.rtti import RttiHierarchy
from repro.core.solver import SolveResult, solve
from repro.core.split import SplitResult, infer_split
from repro.core.transform import instrument


class CuredProgram:
    """An instrumented program plus all analysis artifacts."""

    def __init__(self, prog: Program, analysis: Analysis,
                 solve_result: SolveResult, split_result: SplitResult,
                 check_counts: Counter) -> None:
        self.prog = prog
        self.analysis = analysis
        self.solve_result = solve_result
        self.split_result = split_result
        self.check_counts = check_counts
        #: checks dropped by redundant-check elimination
        self.checks_removed = 0
        #: the check-elimination level the pipeline actually ran
        self.optimize_level = "none"

    # -- conveniences ------------------------------------------------------

    @property
    def options(self) -> CureOptions:
        return self.analysis.options

    @property
    def census(self) -> CastCensus:
        return self.analysis.census

    @property
    def hierarchy(self) -> RttiHierarchy:
        return self.analysis.hierarchy

    def kind_percentages(self) -> dict[str, float]:
        """``% sf/sq/w/rt`` over static pointer declarations, the
        metric of the paper's Figures 8 and 9."""
        return self.solve_result.declaration_percentages()

    @property
    def trusted_casts(self) -> int:
        return (self.prog.trusted_cast_count
                + self.analysis.auto_trusted)

    def to_c(self, annotate_kinds: bool = True) -> str:
        """The instrumented program as C source with ``__SAFE``-style
        kind annotations and ``__CHECK_*`` calls."""
        return program_to_c(self.prog, annotate_kinds=annotate_kinds)

    def report(self) -> str:
        """A human-readable curing report, in the spirit of CCured's
        own summary output."""
        pct = self.kind_percentages()
        lines = [
            f"=== CCured report for {self.prog.name} ===",
            f"pointer declarations: {len(self.analysis.decl_nodes)}",
            ("kinds: "
             + " ".join(f"{k}={pct[k]:.1%}"
                        for k in ("safe", "seq", "wild", "rtti"))),
            f"casts: {self.census.summary()}",
            f"trusted casts: {self.trusted_casts}",
            (f"split pointers: {self.split_result.split_fraction:.1%}"
             f" (meta pointers: "
             f"{self.split_result.meta_fraction:.1%})"),
            "checks inserted: "
            + (", ".join(f"{k.value}={v}" for k, v in
                         sorted(self.check_counts.items(),
                                key=lambda kv: kv[0].value))
               or "none"),
            f"rtti hierarchy: {len(self.hierarchy)} types",
        ]
        return "\n".join(lines)


def cure(source: Union[str, Program],
         options: Optional[CureOptions] = None,
         name: str = "program",
         include_dirs: Optional[Sequence[str]] = None) -> CuredProgram:
    """Cure a C program: infer pointer kinds and insert run-time checks.

    ``source`` may be C source text or an already-lowered
    :class:`Program` (which is mutated in place).
    """
    if isinstance(source, str):
        from repro.frontend import parse_program
        prog = parse_program(source, name, include_dirs=include_dirs)
    else:
        prog = source
    opts = options if options is not None else CureOptions()
    level = opts.optimize_level if opts.checks else "none"
    with TRACER.span("cure", name=name, optimize=level):
        with TRACER.span("constraints"):
            analysis = generate(prog, opts)
        with TRACER.span("solve"):
            solved = solve(analysis)
        with TRACER.span("split"):
            split = infer_split(analysis)
        with TRACER.span("instrument"):
            checks = instrument(analysis)
        cured = CuredProgram(prog, analysis, solved, split, checks)
        cured.optimize_level = level
        if level == "local":
            from repro.core.optimize import \
                eliminate_redundant_checks
            with TRACER.span("optimize", level="local"):
                cured.checks_removed = \
                    eliminate_redundant_checks(prog)
        elif level == "flow":
            from repro.analysis import eliminate_checks_flow
            with TRACER.span("optimize", level="flow"):
                cured.checks_removed = eliminate_checks_flow(prog)
        _number_check_sites(prog)
    return cured


def _number_check_sites(prog: Program) -> None:
    """Assign each surviving ``Check`` a stable statement id, in
    program order.  Failure records carry the id, so the same source
    always reports the same site — across runs and across engines."""
    from repro.cil.visitor import Visitor, walk_program

    class _Numberer(Visitor):
        def __init__(self) -> None:
            self.n = 0

        def visit_instr(self, i: S.Instr) -> None:
            if isinstance(i, S.Check):
                self.n += 1
                i.site = self.n

    walk_program(prog, _Numberer())
