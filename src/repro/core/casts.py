"""Cast classification and the cast census (paper Section 3).

The paper reports that "around 63% of casts are between identical
types.  The remaining 37% were bad casts in the original CCured.  Of
these bad casts, about 93% are safe upcasts and 6% are downcasts.  Less
than 1% of all casts fall outside of these categories."  This module
implements the classifier behind that census and the census itself.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.cil import expr as E
from repro.cil import types as T
from repro.core.physical import physical_equal, physical_subtype


class CastClass(enum.Enum):
    """How a cast is classified by the extended CCured type system."""

    #: Not a pointer-to-pointer cast (scalar conversions).
    SCALAR = "scalar"
    #: Pointer converted to an integer (always allowed).
    PTR_TO_INT = "ptr-to-int"
    #: Integer (or null) converted to a pointer.
    INT_TO_PTR = "int-to-ptr"
    #: Null literal converted to a pointer.
    NULL_TO_PTR = "null-to-ptr"
    #: Pointer-to-pointer, identical (physically equal) base types.
    IDENTICAL = "identical"
    #: Pointer-to-pointer where the target base is a physical prefix of
    #: the source base: statically safe (Section 3.1).
    UPCAST = "upcast"
    #: Pointer-to-pointer where the source base is a physical prefix of
    #: the target base: checkable at run time via RTTI (Section 3.2).
    DOWNCAST = "downcast"
    #: Anything else: a bad cast; the pointers involved become WILD.
    BAD = "bad"
    #: A bad cast the programmer asserted trusted (the escape hatch).
    TRUSTED = "trusted"


@dataclass
class CastRecord:
    """One classified cast occurrence."""

    src: T.CType
    dst: T.CType
    cls: CastClass
    where: str = ""


@dataclass
class CastCensus:
    """Aggregate statistics over all casts in a program."""

    records: list[CastRecord] = field(default_factory=list)

    def add(self, rec: CastRecord) -> None:
        self.records.append(rec)

    def count(self, cls: CastClass) -> int:
        return sum(1 for r in self.records if r.cls is cls)

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def pointer_casts(self) -> int:
        """Casts between pointer types (the census denominator)."""
        return sum(1 for r in self.records if r.cls in (
            CastClass.IDENTICAL, CastClass.UPCAST, CastClass.DOWNCAST,
            CastClass.BAD, CastClass.TRUSTED))

    def fractions(self) -> dict[str, float]:
        """The paper's headline percentages.

        ``identical`` is the fraction of pointer casts between identical
        types; ``upcast``/``downcast``/``bad`` are fractions of the
        *non-identical* pointer casts (matching how Section 3 slices
        the numbers).
        """
        n = self.pointer_casts
        ident = self.count(CastClass.IDENTICAL)
        rest = n - ident
        out = {
            "identical": ident / n if n else 0.0,
            "upcast": self.count(CastClass.UPCAST) / rest if rest
            else 0.0,
            "downcast": self.count(CastClass.DOWNCAST) / rest if rest
            else 0.0,
            "bad": (self.count(CastClass.BAD)
                    + self.count(CastClass.TRUSTED)) / rest if rest
            else 0.0,
        }
        return out

    def summary(self) -> str:
        f = self.fractions()
        return (f"{self.pointer_casts} pointer casts: "
                f"{f['identical']:.0%} identical; of the rest "
                f"{f['upcast']:.0%} upcasts, {f['downcast']:.0%} "
                f"downcasts, {f['bad']:.1%} bad "
                f"({self.count(CastClass.TRUSTED)} trusted)")


def classify_types(src: T.CType, dst: T.CType) -> CastClass:
    """Classify a conversion from ``src`` to ``dst`` (types only)."""
    us, ud = T.unroll(src), T.unroll(dst)
    sp, dp = isinstance(us, T.TPtr), isinstance(ud, T.TPtr)
    if not sp and not dp:
        return CastClass.SCALAR
    if sp and not dp:
        return CastClass.PTR_TO_INT
    if not sp and dp:
        return CastClass.INT_TO_PTR
    assert isinstance(us, T.TPtr) and isinstance(ud, T.TPtr)
    sb, db = us.base, ud.base
    if T.unroll(sb).sig() == T.unroll(db).sig() or physical_equal(sb, db):
        return CastClass.IDENTICAL
    if physical_subtype(sb, db):
        return CastClass.UPCAST
    if physical_subtype(db, sb):
        return CastClass.DOWNCAST
    return CastClass.BAD


def classify_cast(cast: E.CastE, where: str = "") -> CastRecord:
    """Classify one ``CastE`` occurrence."""
    src = cast.e.type()
    dst = cast.t
    cls = classify_types(src, dst)
    if cls is CastClass.INT_TO_PTR and E.is_zero(cast.e):
        cls = CastClass.NULL_TO_PTR
    if cast.trusted and cls in (CastClass.BAD, CastClass.DOWNCAST,
                                CastClass.UPCAST, CastClass.IDENTICAL):
        # Only *bad* trusted casts need trusting, but we count every
        # __trusted_cast the programmer wrote.
        if cls is CastClass.BAD:
            cls = CastClass.TRUSTED
    return CastRecord(src, dst, cls, where)
