"""Configuration of the curing pipeline.

The flags mirror the paper's ablations:

* ``use_physical=False`` disables the physical-subtyping rule of
  Section 3.1, so upcasts become bad casts — the behaviour of the
  original (POPL'02) CCured.
* ``use_rtti=False`` disables RTTI pointers (Section 3.2), so downcasts
  become bad casts — used to reproduce the ijpeg experiment where 60%
  of pointers went WILD without RTTI.
* ``trust_bad_casts=True`` treats remaining bad casts as trusted rather
  than making pointers WILD — the bind configuration of Section 5
  ("we instructed CCured to trust the remaining 380 bad casts").
* ``all_split=True`` gives every type the compatible SPLIT
  representation — the ablation of Section 5's "Compatible Pointer
  Representations" paragraph (em3d +58%, anagram +7%).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: check-elimination levels, weakest to strongest:
#: ``none`` keeps every emitted check, ``local`` removes repeats
#: within a straight-line instruction run (the seed behaviour, kept
#: as a differential oracle), ``flow`` runs the whole-function
#: must-dataflow eliminator of :mod:`repro.analysis`.
OPTIMIZE_LEVELS = ("none", "local", "flow")


@dataclass
class CureOptions:
    use_physical: bool = True
    use_rtti: bool = True
    #: infer FSEQ (forward-only sequence, 2-word) pointers where the
    #: program never moves a pointer backwards — the CCured
    #: implementation's extra kind, off by default to match the
    #: paper's SAFE/SEQ/WILD/RTTI presentation.
    use_fseq: bool = False
    trust_bad_casts: bool = False
    all_split: bool = False
    #: run-time checking enabled (False measures pure representation
    #: overhead; the paper always checks).
    checks: bool = True
    #: remove redundant checks (CCured "statically removes checks";
    #: False measures the unoptimized instrumentation).  Kept for
    #: backward compatibility — prefer ``optimize``.
    optimize_checks: bool = True
    #: check-elimination level (see :data:`OPTIMIZE_LEVELS`).  When
    #: None, derived from ``optimize_checks``: True means the default
    #: ``flow``, False means ``none``.
    optimize: Optional[str] = None
    #: temporal (lock-and-key) memory safety: emit ``CHECK_ALIVE``
    #: before dereferences, give every home a lock and heap pointers a
    #: key, and make ``free``/frame-pop invalidate the lock — so
    #: use-after-free traps deterministically even when the allocator
    #: recycles addresses (``Memory(reuse_freed=True)``).  Off by
    #: default: the committed metrics baseline measures the paper's
    #: spatial checking only.
    temporal: bool = False
    #: record blame-graph provenance on every qualifier-node kind
    #: change (see :mod:`repro.obs.provenance`).  Off by default so
    #: benches and the committed metrics baseline pay nothing; turned
    #: on by ``repro explain``, ``repro run``, the fault campaigns and
    #: ``repro metrics --provenance``.
    provenance: bool = False
    #: names of variables/fields the user annotated SPLIT
    #: (``#pragma ccuredSplit("name")`` also feeds this).
    split_roots: set[str] = field(default_factory=set)
    #: names of variables/fields to force WILD (for tests/ablations).
    wild_roots: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.optimize is not None \
                and self.optimize not in OPTIMIZE_LEVELS:
            raise ValueError(
                f"optimize must be one of {OPTIMIZE_LEVELS}, "
                f"got {self.optimize!r}")

    @property
    def optimize_level(self) -> str:
        """The effective check-elimination level."""
        if self.optimize is not None:
            return self.optimize
        return "flow" if self.optimize_checks else "none"
