"""Run-time type information for checked downcasts (paper Section 3.2).

The paper represents RTTI "as nodes in a global tree data structure that
encodes the physical subtyping hierarchy of a program", with a
compile-time function ``rttiOf`` mapping a type to its node and a
run-time function ``isSubtype`` checking the hierarchy.

:class:`RttiHierarchy` is that structure.  It is built once per program
from the types that occur as pointer base types; ``isSubtype`` is a
precomputed O(1) lookup at run time (the cost model charges it as a
small constant, like the generated code's walk up a shallow tree).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.cil import types as T
from repro.core.physical import physical_equal, physical_subtype


class RttiNode:
    """A node in the physical-subtype hierarchy."""

    def __init__(self, rid: int, ctype: T.CType) -> None:
        self.rid = rid
        self.type = ctype
        #: rids of all physical supertypes (reflexive).
        self.supers: set[int] = {rid}

    def __repr__(self) -> str:
        return f"<rtti {self.rid}: {self.type!r}>"


class RttiHierarchy:
    """The global subtype hierarchy of a program's pointed-to types."""

    def __init__(self) -> None:
        self.nodes: list[RttiNode] = []
        self._by_sig: dict[object, int] = {}
        # void is always present: node 0 is the top of the hierarchy.
        self.void_id = self._add(T.TVoid())

    def _add(self, ctype: T.CType) -> int:
        sig = T.unroll(ctype).sig()
        if sig in self._by_sig:
            return self._by_sig[sig]
        rid = len(self.nodes)
        node = RttiNode(rid, ctype)
        self.nodes.append(node)
        self._by_sig[sig] = rid
        return rid

    def build(self, types: Iterable[T.CType]) -> None:
        """Register the given types and compute all subtype pairs.

        Physical equality classes share a node (``rttiOf`` of two
        physically equal types is the same node), mirroring the paper's
        use of the *physical* hierarchy rather than the nominal one.
        """
        for t in types:
            u = T.unroll(t)
            if isinstance(u, (T.TFun,)):
                continue
            try:
                canon = self._canonical(u)
            except (T.IncompleteTypeError, RecursionError):
                canon = None
            if canon is None:
                self._add(u)
            else:
                self._by_sig[u.sig()] = canon
        # Compute the reflexive-transitive supertype sets.
        for a in self.nodes:
            for b in self.nodes:
                if a.rid == b.rid:
                    continue
                try:
                    if physical_subtype(a.type, b.type):
                        a.supers.add(b.rid)
                except (T.IncompleteTypeError, RecursionError):
                    pass

    def _canonical(self, u: T.CType) -> Optional[int]:
        """The node of a type physically equal to ``u``, if any."""
        sig = u.sig()
        if sig in self._by_sig:
            return self._by_sig[sig]
        for node in self.nodes:
            if physical_equal(u, node.type):
                return node.rid
        return None

    def rtti_of(self, ctype: T.CType) -> int:
        """Compile-time ``rttiOf``: the node id for a static type."""
        sig = T.unroll(ctype).sig()
        rid = self._by_sig.get(sig)
        if rid is None:
            rid = self._add(T.unroll(ctype))
            # late registration: compute supers for the new node
            node = self.nodes[rid]
            for other in self.nodes:
                if other.rid == rid:
                    continue
                try:
                    if physical_subtype(node.type, other.type):
                        node.supers.add(other.rid)
                    if physical_subtype(other.type, node.type):
                        other.supers.add(rid)
                except (T.IncompleteTypeError, RecursionError):
                    pass
        return rid

    def is_subtype(self, a: int, b: int) -> bool:
        """Run-time ``isSubtype(a, b)``: is type-node a ≤ type-node b?"""
        return b in self.nodes[a].supers

    def has_subtypes(self, ctype: T.CType) -> bool:
        """Does ``ctype`` have *proper* physical subtypes among the
        program's types?  (The gate on backwards RTTI propagation
        through upcasts, paper Section 3.2.)"""
        rid = self.rtti_of(ctype)
        return any(rid in n.supers and n.rid != rid for n in self.nodes)

    def __len__(self) -> int:
        return len(self.nodes)
