"""Pointer kinds and qualifier variables (nodes).

CCured's inference "associates a qualifier variable with each syntactic
occurrence of the ``*`` pointer-type constructor".  Here, a
:class:`Node` is such a variable; it is stored into the ``node`` slot of
the corresponding :class:`repro.cil.TPtr` occurrence.  Constraints are
recorded as flags and edges on nodes, and
:mod:`repro.core.solver` computes the final :class:`PointerKind` of each.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.cil import types as T
from repro.obs.provenance import Provenance, describe


class PointerKind(enum.Enum):
    """The CCured pointer kinds (paper Sections 1–3).

    Ordering reflects capability/cost: SAFE < SEQ < RTTI < WILD.
    """

    SAFE = "SAFE"
    SEQ = "SEQ"
    #: forward-only sequence: pointer + end bound (2 words).  Present
    #: in the CCured implementation (not in the paper's Figure 1);
    #: enabled by ``CureOptions.use_fseq`` as an extension/ablation.
    FSEQ = "FSEQ"
    RTTI = "RTTI"
    WILD = "WILD"


class Node:
    """A qualifier variable attached to one pointer-type occurrence.

    Flags record the *atomic* constraints the program imposes:

    * ``arith`` — the pointer is used in pointer arithmetic, so its kind
      must be SEQ (or WILD).
    * ``wild`` — seeded by bad casts; spread by the solver along
      ``compat`` edges and into base types.
    * ``rtti_needed`` — seeded by downcasts (the pointer is the *source*
      of a checked downcast); spread backwards along ``rtti_back`` edges.
    * ``interface`` — the pointer crosses the boundary to uninstrumented
      library code (used by the SPLIT inference and wrapper checks).

    Edges:

    * ``compat`` — the pointer flows to/from the other node (cast or
      assignment); if either end is WILD both must be.
    * ``same`` — representation equality (nested pointer positions);
      handled by union-find in the solver, kinds must be identical.
    * ``rtti_back`` — RTTI propagates from this node *backwards against
      the dataflow* to the listed nodes (paper Section 3.2).
    """

    _next_id = 0

    @classmethod
    def reset_ids(cls) -> None:
        """Restart the id counter.  Called at the start of every
        :class:`repro.core.constraints.Analysis` so node ids — and
        everything keyed on them, like blame-graph serialization — are
        deterministic across same-process runs."""
        cls._next_id = 0

    def __init__(self, ptr_type: Optional[T.TPtr],
                 where: str = "?") -> None:
        self.id = Node._next_id
        Node._next_id += 1
        self.ptr_type = ptr_type
        self.where = where
        # atomic constraint flags
        self.arith = False
        #: arithmetic that can move the pointer backwards (p-i, p-q,
        #: negative constant offsets): rules out the FSEQ kind.
        self.neg_arith = False
        self.wild = False
        self.rtti_needed = False
        self.interface = False
        self.split = False
        self.has_meta = False
        # edges
        self.compat: list[Node] = []
        self.same: list[Node] = []
        self.rtti_back: list[Node] = []
        self.seq_back: list[Node] = []
        self.flow_out: list[Node] = []
        #: the pointer may hold a non-zero integer disguised as a
        #: pointer (int-to-pointer cast): it can never be SAFE, and the
        #: taint follows the value forward along flows.
        self.from_int = False
        # conditional SEQ-cast obligations: (other-node, t_this, t_other)
        self.seq_casts: list[tuple[Node, T.CType, T.CType]] = []
        # solver results
        self.kind: PointerKind = PointerKind.SAFE
        self.solved = False
        #: provenance records, at most one per state (WILD/RTTI/SEQ),
        #: recorded only when `CureOptions.provenance` is on
        self.prov: list[Provenance] = []

    def add_prov(self, state: str, cause: str, via: str = "",
                 src: Optional[int] = None, where: str = "") -> bool:
        """Record entering ``state`` unless already explained."""
        for p in self.prov:
            if p.state == state:
                return False
        self.prov.append(Provenance(state, cause, via, src, where))
        return True

    def prov_for(self, state: str) -> Optional[Provenance]:
        for p in self.prov:
            if p.state == state:
                return p
        return None

    @property
    def reason(self) -> str:
        """Why the solver chose this kind — derived from the
        provenance record of the final kind's state, so the one-line
        reason and the blame graph can never disagree.  Empty when
        provenance recording was off or the node is SAFE."""
        p = None
        if self.solved and self.kind is not PointerKind.SAFE:
            state = ("SEQ" if self.kind in (PointerKind.SEQ,
                                            PointerKind.FSEQ)
                     else self.kind.name)
            p = self.prov_for(state)
        if p is None and self.prov:
            p = self.prov[0]
        return describe(p) if p is not None else ""

    def add_compat(self, other: "Node") -> None:
        self.compat.append(other)
        other.compat.append(self)

    def add_same(self, other: "Node") -> None:
        self.same.append(other)
        other.same.append(self)

    def add_rtti_back(self, other: "Node") -> None:
        """If ``self`` ends up RTTI, ``other`` must be RTTI too."""
        self.rtti_back.append(other)

    def add_seq_back(self, other: "Node") -> None:
        """If ``self`` ends up SEQ, ``other`` must be SEQ too: bounds
        must *originate* somewhere, so every pointer flowing into a SEQ
        pointer has to carry bounds itself (the backwards propagation
        of the original CCured inference).  The inverse direction is
        recorded as a forward flow edge for int-taint spreading."""
        self.seq_back.append(other)
        other.flow_out.append(self)

    def base_type(self) -> Optional[T.CType]:
        return self.ptr_type.base if self.ptr_type is not None else None

    def __repr__(self) -> str:
        k = self.kind.name if self.solved else "?"
        return f"<node {self.id} {k} @{self.where}>"


def ensure_node(t: T.TPtr, where: str = "?") -> Node:
    """Get or create the qualifier node of a pointer occurrence."""
    if t.node is None:
        t.node = Node(t, where)
    return t.node  # type: ignore[return-value]


def node_of(t: T.CType) -> Optional[Node]:
    """The qualifier node of ``t`` if it is a pointer type."""
    u = T.unroll(t)
    if isinstance(u, T.TPtr):
        return u.node  # type: ignore[return-value]
    return None
