"""The paper's contribution: CCured pointer-kind inference with
physical subtyping, RTTI pointers, and compatible split metadata."""

from repro.core.casts import (CastCensus, CastClass, CastRecord,
                              classify_cast, classify_types)
from repro.core.constraints import Analysis, generate
from repro.core.curer import CuredProgram, cure
from repro.core.metadata import (CompatibilityError, c_type, meta_type,
                                 rep_split_boundary, rep_type)
from repro.core.optimize import eliminate_redundant_checks
from repro.core.options import CureOptions
from repro.core.physical import (flatten, matched_pointer_pairs,
                                 physical_equal, physical_subtype,
                                 seq_compatible)
from repro.core.qualifiers import Node, PointerKind, ensure_node, node_of
from repro.core.rtti import RttiHierarchy, RttiNode
from repro.core.solver import SolveResult, solve
from repro.core.split import SplitResult, infer_split, needs_metadata
from repro.core.transform import Instrumenter, instrument

__all__ = [name for name in dir() if not name.startswith("_")]
