"""The pointer-kind solver.

Given the constraints recorded by :mod:`repro.core.constraints`, assign
every qualifier node one of SAFE / SEQ / WILD / RTTI:

1. *Unify* nodes linked by ``same`` edges (representation equality)
   with a union-find; a group's flags are the union of its members'.
2. *Spread WILD* to a fixpoint: WILD crosses ``compat`` and ``same``
   edges, and descends from a WILD pointer into every pointer inside
   its base type (including through struct fields) — the paper's two
   soundness conditions for the untyped universe.
3. *Spread RTTI* backwards along the ``rtti_back`` edges of
   Section 3.2, skipping nodes that are already WILD.
4. *Check conflicts*: a node needing both arithmetic and RTTI has no
   representation, and a SEQ cast whose base types are not
   size-commensurate is unsound — both fall back to WILD, and WILD
   spreading re-runs (the loop runs to a fixpoint).
5. Assign final kinds: WILD > RTTI > SEQ > SAFE.

The solver is linear-ish in practice: each node changes kind at most
three times (SAFE→SEQ→RTTI→WILD monotonically in badness), matching
the linear-time claim of the original paper for the cast-free core.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cil import types as T
from repro.core.constraints import Analysis
from repro.core.physical import seq_compatible
from repro.core.qualifiers import Node, PointerKind


class _UnionFind:
    def __init__(self) -> None:
        self.parent: dict[int, int] = {}
        self.by_id: dict[int, Node] = {}

    def add(self, n: Node) -> None:
        self.parent.setdefault(n.id, n.id)
        self.by_id[n.id] = n

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


@dataclass
class SolveResult:
    """Summary of a solver run."""

    analysis: Analysis
    iterations: int = 0
    wild_from_seq_casts: int = 0
    wild_from_conflicts: int = 0
    #: nodes per final kind (every node, incl. cast occurrences)
    kind_counts: dict[PointerKind, int] = field(default_factory=dict)

    def declaration_percentages(self) -> dict[str, float]:
        """The paper's ``% sf/sq/w/rt`` columns: fractions of *static
        pointer declarations* per kind."""
        decls = self.analysis.decl_nodes
        total = len(decls) or 1
        out = {}
        for kind in PointerKind:
            out[kind.name.lower()] = sum(
                1 for n in decls if n.kind is kind) / total
        return out


#: spread-cause per state, for group/safety-net provenance records
_SPREAD_OF = {"WILD": "wild-spread", "RTTI": "rtti-spread",
              "SEQ": "seq-spread"}


def solve(an: Analysis) -> SolveResult:
    result = SolveResult(an)
    rec = an.options.provenance
    uf = _UnionFind()
    # Union-find over representation-equality edges.  `same` neighbours
    # may include nodes created after generation; collect via closure.
    all_nodes = _collect_nodes(an)
    for n in all_nodes:
        uf.add(n)
    for n in all_nodes:
        for m in n.same:
            uf.add(m)
            uf.union(n.id, m.id)

    groups: dict[int, list[Node]] = {}
    for n in uf.by_id.values():
        groups.setdefault(uf.find(n.id), []).append(n)

    def group_of(n: Node) -> list[Node]:
        return groups[uf.find(n.id)]

    # -- fixpoint -----------------------------------------------------
    seq_cache: dict[tuple[object, object], bool] = {}

    def is_seq_ok(b1: T.CType, b2: T.CType) -> bool:
        key = (T.unroll(b1).sig(), T.unroll(b2).sig())
        if key not in seq_cache:
            seq_cache[key] = seq_compatible(b1, b2)
        return seq_cache[key]

    changed = True
    while changed:
        result.iterations += 1
        changed = False
        _spread_wild(groups, uf, rec)
        _spread_from_int(groups, uf, rec)
        _spread_rtti(groups, uf, rec)
        _spread_seq(groups, uf, rec)
        # Conflict: arithmetic on an RTTI pointer has no representation.
        for members in groups.values():
            flags_arith = any(m.arith for m in members)
            flags_rtti = any(m.rtti_needed and not m.wild
                             for m in members)
            flags_wild = any(m.wild for m in members)
            if flags_arith and flags_rtti and not flags_wild:
                donor = None
                for m in members:
                    m.wild = True
                    if rec:
                        if donor is None:
                            m.add_prov("WILD", "arith-rtti-conflict",
                                       where=m.where)
                            donor = m
                        else:
                            m.add_prov("WILD", "wild-spread",
                                       via="group", src=donor.id,
                                       where=m.where)
                result.wild_from_conflicts += 1
                changed = True
        # SEQ cast obligations (paper Section 3.1's t'[n'] ≈ t[n] rule).
        # The rule binds only when the cast goes from SEQ to SEQ: a
        # cast into a non-arithmetic pointer is a bounds-dropping
        # conversion and cannot re-slice the layout.
        for ns, nd, b1, b2 in an.seq_obligations:
            gs, gd = group_of(ns), group_of(nd)
            if any(m.wild for m in gs) or any(m.wild for m in gd):
                continue
            seqish = (any(m.arith for m in gs)
                      and any(m.arith for m in gd))
            if seqish and not is_seq_ok(b1, b2):
                if rec:
                    where = (f"SEQ cast at {ns.where}: "
                             f"{b1!r} ~ {b2!r}")
                    ns.add_prov("WILD", "seq-cast-incompat",
                                where=where)
                    nd.add_prov("WILD", "wild-spread", via="compat",
                                src=ns.id, where=nd.where)
                for m in gs + gd:
                    m.wild = True
                    if rec:
                        src = ns if m in gs else nd
                        m.add_prov("WILD", "wild-spread", via="group",
                                   src=src.id, where=m.where)
                result.wild_from_seq_casts += 1
                changed = True

    # -- final assignment ---------------------------------------------
    counts: dict[PointerKind, int] = {k: 0 for k in PointerKind}
    use_fseq = an.options.use_fseq
    for members in groups.values():
        wild = any(m.wild for m in members)
        rtti = any(m.rtti_needed for m in members)
        arith = any(m.arith for m in members)
        neg = any(m.neg_arith for m in members)
        if wild:
            kind = PointerKind.WILD
        elif rtti:
            kind = PointerKind.RTTI
        elif arith and use_fseq and not neg:
            kind = PointerKind.FSEQ
        elif arith:
            kind = PointerKind.SEQ
        else:
            kind = PointerKind.SAFE
        for m in members:
            m.kind = kind
            m.solved = True
        # Safety net: every non-SAFE member must be explainable.  A
        # member whose kind comes only from the *union* of its group's
        # flags gets a group record pointing at a member that has one.
        if rec and kind is not PointerKind.SAFE:
            state = ("SEQ" if kind in (PointerKind.SEQ,
                                       PointerKind.FSEQ)
                     else kind.name)
            donor = None
            for m in members:
                if m.prov_for(state) is not None:
                    donor = m
                    break
            for m in members:
                if m.prov_for(state) is not None:
                    continue
                if donor is None:
                    m.add_prov(state, "solver", where=m.where)
                    donor = m
                else:
                    m.add_prov(state, _SPREAD_OF[state], via="group",
                               src=donor.id, where=m.where)
    for n in uf.by_id.values():
        counts[n.kind] += 1
    result.kind_counts = counts
    return result


def _collect_nodes(an: Analysis) -> list[Node]:
    """All nodes reachable from the analysis (generation may have
    created nodes lazily beyond ``an.nodes``)."""
    seen: dict[int, Node] = {}
    stack = list(an.nodes)
    while stack:
        n = stack.pop()
        if n.id in seen:
            continue
        seen[n.id] = n
        stack.extend(n.compat)
        stack.extend(n.same)
        stack.extend(n.rtti_back)
    return list(seen.values())


def _spread_wild(groups: dict[int, list[Node]], uf: _UnionFind,
                 rec: bool = False) -> None:
    """Propagate WILD across compat/same edges and into base types."""
    worklist = [n for n in uf.by_id.values() if n.wild]
    wilded: set[int] = {n.id for n in worklist}

    def make_wild(n: Node, via: str, src: Node) -> None:
        if n.id in wilded:
            return
        n.wild = True
        # WILD is terminal, so the kind can be fixed immediately; this
        # also covers nodes discovered lazily (inside WILD base types)
        # that are not members of any union-find group.
        n.kind = PointerKind.WILD
        n.solved = True
        if rec:
            n.add_prov("WILD", "wild-spread", via=via, src=src.id,
                       where=n.where)
        wilded.add(n.id)
        worklist.append(n)

    visited_comps: set[int] = set()
    while worklist:
        n = worklist.pop()
        n.wild = True
        for m in n.compat:
            make_wild(m, "compat", n)
        for m in n.same:
            make_wild(m, "same", n)
        if n.id in uf.parent:
            for m in groups.get(uf.find(n.id), []):
                make_wild(m, "group", n)
        # Soundness: everything reachable through the base type of a
        # WILD pointer is WILD.
        if n.ptr_type is not None:
            _wild_base(n.ptr_type.base,
                       lambda m, n=n: make_wild(m, "base", n),
                       visited_comps)


def _wild_base(t: T.CType, on_wild, visited_comps: set[int]) -> None:
    def on_ptr(p: T.TPtr) -> None:
        from repro.core.qualifiers import ensure_node
        on_wild(ensure_node(p, "inside WILD base"))
        _wild_base(p.base, on_wild, visited_comps)

    u = T.unroll(t)
    if isinstance(u, T.TPtr):
        on_ptr(u)
    elif isinstance(u, T.TArray):
        _wild_base(u.base, on_wild, visited_comps)
    elif isinstance(u, T.TComp):
        if u.comp.key in visited_comps:
            return
        visited_comps.add(u.comp.key)
        for f in u.comp.fields:
            _wild_base(f.type, on_wild, visited_comps)
    elif isinstance(u, T.TFun):
        # Function pointers inside WILD areas: their signature pointers
        # go WILD as well (calls through them are tag-checked).
        _wild_base(u.ret, on_wild, visited_comps)
        for _, pt in (u.params or []):
            _wild_base(pt, on_wild, visited_comps)


def _spread_from_int(groups: dict[int, list[Node]],
                     uf: _UnionFind, rec: bool = False) -> None:
    """A possibly-integer pointer value (int-to-ptr cast) taints every
    node it flows into: those can be SEQ or WILD but never SAFE."""
    worklist = [n for n in uf.by_id.values() if n.from_int]
    seen = {n.id for n in worklist}
    while worklist:
        n = worklist.pop()
        n.from_int = True
        if not n.wild:
            n.arith = True  # at least SEQ
        targets = [(m, "flow") for m in n.flow_out]
        if n.id in uf.parent:
            targets.extend(
                (m, "group")
                for m in groups.get(uf.find(n.id), []))
        for m, via in targets:
            if m.id not in seen:
                seen.add(m.id)
                if rec and not m.wild:
                    m.add_prov("SEQ", "int-taint", via=via,
                               src=n.id, where=m.where)
                worklist.append(m)


def _spread_seq(groups: dict[int, list[Node]], uf: _UnionFind,
                rec: bool = False) -> None:
    """Propagate the need for bounds backwards along flows: if a SEQ
    pointer is assigned from ``x``, then ``x`` must carry bounds too.
    Propagation stops at RTTI nodes (they manufacture bounds from their
    dynamic type) and at WILD nodes (which carry their own bounds)."""
    worklist = [n for n in uf.by_id.values() if n.arith and not n.wild]
    seen = {n.id for n in worklist}
    while worklist:
        n = worklist.pop()
        targets = [(m, "seq_back") for m in n.seq_back]
        if n.id in uf.parent:
            targets.extend(
                (m, "group")
                for m in groups.get(uf.find(n.id), []))
        for m, via in targets:
            if (m.id not in seen and not m.wild
                    and not m.rtti_needed):
                seen.add(m.id)
                m.arith = True
                if rec:
                    m.add_prov("SEQ", "seq-spread", via=via,
                               src=n.id, where=m.where)
                if n.neg_arith:
                    m.neg_arith = True
                worklist.append(m)


def _spread_rtti(groups: dict[int, list[Node]], uf: _UnionFind,
                 rec: bool = False) -> None:
    worklist = [n for n in uf.by_id.values()
                if n.rtti_needed and not n.wild]
    seen = {n.id for n in worklist}
    while worklist:
        n = worklist.pop()
        if n.wild:
            continue
        n.rtti_needed = True
        targets = [(m, "rtti_back") for m in n.rtti_back]
        if n.id in uf.parent:
            targets.extend(
                (m, "group")
                for m in groups.get(uf.find(n.id), []))
        for m, via in targets:
            if m.id not in seen and not m.wild:
                seen.add(m.id)
                m.rtti_needed = True
                if rec:
                    m.add_prov("RTTI", "rtti-spread", via=via,
                               src=n.id, where=m.where)
                worklist.append(m)
