"""Constraint generation for pointer-kind inference.

This pass walks the whole program and records, on the qualifier nodes
created for every syntactic pointer occurrence:

* ``arith`` flags at each occurrence of pointer arithmetic,
* WILD seeds at each bad cast (unless trusted),
* RTTI seeds at each downcast and the backwards-propagation edges of
  Section 3.2,
* compatibility (``compat``) edges wherever pointer values flow
  (assignments, casts, argument/result passing) so the solver can
  spread WILD,
* representation-equality (``same``) edges between the pointer
  positions matched inside the physical common prefix of cast/assigned
  aggregate types,
* ``interface`` marks on pointers that cross into uninstrumented
  library functions,

and produces the program's cast census and RTTI hierarchy as
by-products.
"""

from __future__ import annotations

from typing import Optional

from repro.cil import expr as E
from repro.cil import stmt as S
from repro.cil import types as T
from repro.cil.program import GFun, GVar, Program
from repro.cil.visitor import each_pointer, type_occurrences
from repro.core.casts import CastCensus, CastClass, classify_cast
from repro.core.options import CureOptions
from repro.core.physical import matched_pointer_pairs, physical_equal
from repro.core.qualifiers import Node, ensure_node
from repro.core.rtti import RttiHierarchy


class Analysis:
    """The result of constraint generation over one program."""

    def __init__(self, prog: Program, options: CureOptions) -> None:
        # Node ids restart per analysis so ids — and anything keyed on
        # them, like blame-graph JSON — are deterministic across
        # same-process runs.
        Node.reset_ids()
        self.prog = prog
        self.options = options
        #: record blame provenance on every node state change
        self.record_provenance = options.provenance
        self.census = CastCensus()
        self.hierarchy = RttiHierarchy()
        #: all qualifier nodes, in creation order
        self.nodes: list[Node] = []
        #: nodes created for *declarations* (the denominators of the
        #: paper's "% of (static) pointer declarations" tables)
        self.decl_nodes: list[Node] = []
        #: SEQ cast obligations: (n_src, n_dst, src_base, dst_base)
        self.seq_obligations: list[
            tuple[Node, Node, T.CType, T.CType]] = []
        #: count of bad casts converted to trusted by options
        self.auto_trusted = 0

    # -- node management -------------------------------------------------

    def node(self, t: T.CType, where: str = "?") -> Optional[Node]:
        u = T.unroll(t)
        if not isinstance(u, T.TPtr):
            return None
        if u.node is None:
            n = Node(u, where)
            u.node = n
            self.nodes.append(n)
        return u.node  # type: ignore[return-value]


_DECL_PREFIXES = ("var ", "field ", "formal ", "local ", "fun ",
                  "typedef ")


def generate(prog: Program,
             options: Optional[CureOptions] = None) -> Analysis:
    """Run constraint generation; returns the :class:`Analysis`."""
    options = options if options is not None else CureOptions()
    an = Analysis(prog, options)
    _assign_declaration_nodes(an)
    _build_hierarchy(an)
    _mark_interfaces(an)
    _apply_pragmas(an)
    gen = _Generator(an)
    gen.run()
    return an


def _assign_declaration_nodes(an: Analysis) -> None:
    for t, where in type_occurrences(an.prog):
        is_decl = where.startswith(_DECL_PREFIXES)

        def visit(p: T.TPtr, where=where, is_decl=is_decl) -> None:
            created = p.node is None
            n = ensure_node(p, where)
            if created:
                an.nodes.append(n)
            if created and is_decl:
                an.decl_nodes.append(n)

        each_pointer(t, visit)


def _build_hierarchy(an: Analysis) -> None:
    """Register every pointed-to type so ``has_subtypes`` and run-time
    ``isSubtype`` queries see the whole program's types."""
    pointed: list[T.CType] = []
    for t, _ in type_occurrences(an.prog):
        def visit(p: T.TPtr) -> None:
            pointed.append(p.base)

        each_pointer(t, visit)
    for comp in an.prog.comps.values():
        if comp.defined:
            pointed.append(T.TComp(comp))
    an.hierarchy.build(pointed)


def _mark_interfaces(an: Analysis) -> None:
    """Pointers in the signatures of external (library) functions and
    external variables cross the instrumentation boundary."""
    for var in an.prog.externals.values():
        def visit(p: T.TPtr) -> None:
            n = ensure_node(p, f"extern {var.name}")
            n.interface = True

        each_pointer(var.type, visit)


def _apply_pragmas(an: Analysis) -> None:
    for g in an.prog.pragmas("ccuredSplit"):
        an.options.split_roots.update(g.args)
    for g in an.prog.pragmas("ccuredWild"):
        an.options.wild_roots.update(g.args)
    if an.options.wild_roots:
        targets = an.options.wild_roots
        for t, where in type_occurrences(an.prog):
            name = where.split(" ", 1)[-1] if " " in where else where
            short = name.split(":")[-1].split(".")[-1]
            if name in targets or short in targets:
                def visit(p: T.TPtr, where=where) -> None:
                    n = ensure_node(p, where)
                    n.wild = True
                    if an.record_provenance:
                        n.add_prov("WILD", "wild-pragma", where=where)

                each_pointer(t, visit)


def _is_alloc_result(e: E.Exp) -> bool:
    """Is this expression the temp holding a fresh allocator result?"""
    return (isinstance(e, E.LvalExp)
            and isinstance(e.lval.host, E.Var)
            and isinstance(e.lval.offset, E.NoOffset)
            and e.lval.host.var.is_temp
            and "__cil_alloc" in e.lval.host.var.name)


class _Generator:
    """Walks function bodies and global initializers emitting
    constraints."""

    def __init__(self, an: Analysis) -> None:
        self.an = an
        self.rec = an.record_provenance
        self.cur_fun: Optional[S.Fundec] = None

    def _loc(self) -> str:
        return self.cur_fun.name if self.cur_fun else "global"

    def run(self) -> None:
        prog = self.an.prog
        for g in prog.globals:
            if isinstance(g, GVar) and g.init is not None:
                self._init_flow(g.var.type, g.init,
                                f"init {g.var.name}")
            elif isinstance(g, GFun):
                self.cur_fun = g.fundec
                self._stmt(S.Block(g.fundec.body.stmts))
                self.cur_fun = None

    # -- flows -----------------------------------------------------------

    def node(self, t: T.CType, where: str) -> Optional[Node]:
        return self.an.node(t, where)

    def flow(self, src: T.CType, dst: T.CType, where: str) -> None:
        """Record that a value of type ``src`` flows into a location of
        type ``dst`` (assignment, argument or result passing)."""
        us, ud = T.unroll(src), T.unroll(dst)
        if not (isinstance(us, T.TPtr) and isinstance(ud, T.TPtr)):
            return
        ns = self.node(us, where)
        nd = self.node(ud, where)
        assert ns is not None and nd is not None
        ns.add_compat(nd)
        for p, q in matched_pointer_pairs(us.base, ud.base):
            np = ensure_node(p, where)
            nq = ensure_node(q, where)
            if np is not nq:
                np.add_same(nq)
        # RTTI propagates against the dataflow through physically equal
        # flows (Section 3.2, rule 2).
        if physical_equal(us.base, ud.base):
            nd.add_rtti_back(ns)
        # SEQ bounds must originate at the source of the flow.
        nd.add_seq_back(ns)

    def _init_flow(self, t: T.CType, init: S.Init, where: str) -> None:
        if isinstance(init, S.SingleInit):
            self._exp(init.exp)
            self.flow(init.exp.type(), t, where)
            return
        assert isinstance(init, S.CompoundInit)
        ut = T.unroll(t)
        for key, sub in init.entries:
            if isinstance(ut, T.TArray):
                self._init_flow(ut.base, sub, where)
            elif isinstance(ut, T.TComp):
                self._init_flow(ut.comp.field(str(key)).type, sub,
                                where)

    # -- statements --------------------------------------------------------

    def _stmt(self, s: S.Stmt) -> None:
        if isinstance(s, S.InstrStmt):
            for i in s.instrs:
                self._instr(i)
        elif isinstance(s, S.Return):
            if s.exp is not None:
                self._exp(s.exp)
                assert self.cur_fun is not None
                ft = T.unroll(self.cur_fun.svar.type)
                assert isinstance(ft, T.TFun)
                self.flow(s.exp.type(), ft.ret,
                          f"return in {self.cur_fun.name}")
        elif isinstance(s, S.Block):
            for sub in s.stmts:
                self._stmt(sub)
        elif isinstance(s, S.If):
            self._exp(s.cond)
            self._stmt(s.then)
            self._stmt(s.els)
        elif isinstance(s, S.Loop):
            self._stmt(s.body)

    def _instr(self, i: S.Instr) -> None:
        if isinstance(i, S.Set):
            self._lval(i.lval)
            self._exp(i.exp)
            self.flow(i.exp.type(), i.lval.type(), "assignment")
        elif isinstance(i, S.Call):
            self._call(i)
        elif isinstance(i, S.Check):
            for a in i.args:
                self._exp(a)

    def _call(self, i: S.Call) -> None:
        self._exp(i.fn)
        for a in i.args:
            self._exp(a)
        if i.ret is not None:
            self._lval(i.ret)
        ft = self._callee_type(i.fn)
        callee_name = self._callee_name(i.fn)
        external = (callee_name is not None
                    and callee_name in self.an.prog.externals)
        params = ft.params if ft is not None else None
        for idx, a in enumerate(i.args):
            at = a.type()
            if params is not None and idx < len(params):
                self.flow(at, params[idx][1],
                          f"arg {idx} of {callee_name or '?'}")
            if external:
                # Mark every cast layer: (void *)&x hides x's real
                # type, but the library sees the underlying data, so
                # the SPLIT inference must start from the inner
                # pointers too.
                layer: E.Exp = a
                while True:
                    self._mark_interface(layer.type(),
                                         callee_name or "?")
                    if isinstance(layer, E.CastE):
                        layer = layer.e
                    else:
                        break
        if i.ret is not None and ft is not None:
            self.flow(ft.ret, i.ret.type(),
                      f"result of {callee_name or '?'}")
            if external:
                self._mark_interface(i.ret.type(), callee_name or "?")

    def _mark_interface(self, t: T.CType, name: str) -> None:
        u = T.unroll(t)
        if isinstance(u, T.TPtr):
            n = self.node(u, f"call {name}")
            if n is not None:
                n.interface = True

    def _callee_type(self, fn: E.Exp) -> Optional[T.TFun]:
        t = T.unroll(fn.type())
        if isinstance(t, T.TFun):
            return t
        if isinstance(t, T.TPtr):
            bt = T.unroll(t.base)
            if isinstance(bt, T.TFun):
                # Calls through function pointers need a null check and,
                # when the pointer is WILD, a tag check; record that the
                # node exists.
                self.node(t, "funptr call")
                return bt
        return None

    def _callee_name(self, fn: E.Exp) -> Optional[str]:
        if isinstance(fn, E.AddrOf) and isinstance(fn.lval.host, E.Var):
            return fn.lval.host.var.name
        if isinstance(fn, E.LvalExp) and isinstance(fn.lval.host,
                                                    E.Var):
            return fn.lval.host.var.name
        return None

    # -- expressions --------------------------------------------------------

    def _exp(self, e: E.Exp) -> None:
        if isinstance(e, E.LvalExp):
            self._lval(e.lval)
        elif isinstance(e, (E.AddrOf, E.StartOf)):
            self._lval(e.lval)
            self.node(e.type(), "addrof")
        elif isinstance(e, E.UnOp):
            self._exp(e.e)
        elif isinstance(e, E.BinOp):
            self._exp(e.e1)
            self._exp(e.e2)
            if e.op in E.POINTER_ARITH:
                n = self.node(e.e1.type(), "pointer arithmetic")
                if n is not None:
                    n.arith = True
                    if self.rec:
                        n.add_prov(
                            "SEQ", "pointer-arith",
                            where=f"pointer arithmetic in {self._loc()}")
                    if e.op is E.BinopKind.MINUS_PI or (
                            isinstance(e.e2, E.Const)
                            and isinstance(e.e2.value, int)
                            and e.e2.value < 0):
                        n.neg_arith = True
            elif e.op is E.BinopKind.MINUS_PP:
                for sub in (e.e1, e.e2):
                    n = self.node(sub.type(), "pointer difference")
                    if n is not None:
                        n.arith = True
                        n.neg_arith = True
                        if self.rec:
                            n.add_prov(
                                "SEQ", "pointer-diff",
                                where=("pointer difference in "
                                       f"{self._loc()}"))
        elif isinstance(e, E.CastE):
            self._exp(e.e)
            self._cast(e)

    def _lval(self, lv: E.Lval) -> None:
        if isinstance(lv.host, E.Mem):
            self._exp(lv.host.exp)
        off = lv.offset
        while not isinstance(off, E.NoOffset):
            if isinstance(off, E.Index):
                self._exp(off.index)
            off = off.rest  # type: ignore[union-attr]

    # -- casts ---------------------------------------------------------------

    def _cast(self, cast: E.CastE) -> None:
        an = self.an
        rec = classify_cast(cast, self.cur_fun.name if self.cur_fun
                            else "global")
        # Ablations: without physical subtyping, upcasts are bad;
        # without RTTI, downcasts are bad (original CCured behaviour).
        cls = rec.cls
        if cls is CastClass.UPCAST and not an.options.use_physical:
            cls = CastClass.BAD
        if cls is CastClass.DOWNCAST and not an.options.use_rtti:
            cls = CastClass.BAD
        if cls is CastClass.BAD and (cast.trusted
                                     or an.options.trust_bad_casts):
            if not cast.trusted:
                an.auto_trusted += 1
                cast.trusted = True
            cls = CastClass.TRUSTED
        rec.cls = cls
        an.census.add(rec)
        if cast.trusted:
            # The escape hatch covers whatever the programmer wrote it
            # on — bad casts, but also downcasts through a custom
            # allocator: no constraints of any kind are generated.
            return

        us = T.unroll(cast.e.type())
        ud = T.unroll(cast.t)
        if not (isinstance(us, T.TPtr) and isinstance(ud, T.TPtr)):
            if cls is CastClass.INT_TO_PTR and isinstance(ud, T.TPtr):
                nd = self.node(ud, "int-to-ptr")
                if nd is not None:
                    # Figure 11: a non-zero integer can only disguise
                    # itself as a SEQ or WILD pointer (null base), so
                    # the result can never be SAFE — and the taint
                    # follows the value forward.
                    nd.from_int = True
                    nd.arith = True
                    if self.rec:
                        nd.add_prov(
                            "SEQ", "int-to-ptr",
                            where=(f"int-to-ptr cast in {self._loc()}:"
                                   f" -> {ud!r}"))
            return
        ns = self.node(us, "cast src")
        nd = self.node(ud, "cast dst")
        assert ns is not None and nd is not None
        if cls is CastClass.TRUSTED:
            return  # the escape hatch: no constraints at all
        ns.add_compat(nd)
        if cls is CastClass.BAD:
            ns.wild = True
            nd.wild = True
            if self.rec:
                where = (f"bad cast in {self._loc()}: "
                         f"{us!r} -> {ud!r}")
                ns.add_prov("WILD", "bad-cast", where=where)
                nd.add_prov("WILD", "wild-spread", via="cast",
                            src=ns.id, where=where)
            return
        # identical / upcast / downcast share the matched-prefix
        # representation-equality edges.
        if cls is CastClass.DOWNCAST:
            prefix_src: T.CType = ud.base
            prefix_dst: T.CType = us.base
        else:
            prefix_src, prefix_dst = us.base, ud.base
        for p, q in matched_pointer_pairs(prefix_src, prefix_dst):
            np = ensure_node(p, "matched prefix")
            nq = ensure_node(q, "matched prefix")
            if np is not nq:
                np.add_same(nq)
        nd.add_seq_back(ns)
        # Allocator results: a (T*)malloc(...) cast takes a fresh,
        # untyped allocation to its intended type.  CCured recognizes
        # allocation functions and exempts this from the downcast rule
        # (the allocation *becomes* a T); no RTTI is needed.
        if cls is CastClass.DOWNCAST and _is_alloc_result(cast.e):
            return
        if cls is CastClass.IDENTICAL:
            nd.add_rtti_back(ns)
            an.seq_obligations.append((ns, nd, us.base, ud.base))
        elif cls is CastClass.UPCAST:
            an.seq_obligations.append((ns, nd, us.base, ud.base))
            if an.options.use_rtti and an.hierarchy.has_subtypes(
                    us.base):
                nd.add_rtti_back(ns)
        elif cls is CastClass.DOWNCAST:
            ns.rtti_needed = True
            if self.rec:
                ns.add_prov("RTTI", "downcast",
                            where=(f"downcast in {self._loc()}: "
                                   f"{us!r} -> {ud!r}"))
