"""The curing transformation: inserting CCured's run-time checks.

Given a program whose pointer kinds have been solved, this pass inserts
explicit :class:`repro.cil.Check` instructions in front of every
instruction that performs a checked operation, following Figures 2 and
11 of the paper:

===========================  =============================================
operation                    checks inserted
===========================  =============================================
``*x`` with ``x`` SAFE/RTTI  ``CHECK_NULL(x)``
``*x`` with ``x`` SEQ        ``CHECK_SEQ_BOUNDS(x, sizeof)``
``*x`` with ``x`` WILD       ``CHECK_WILD_BOUNDS(x, sizeof)``; reading a
                             pointer additionally ``CHECK_WILD_READ_TAG``
``a[i]`` (array member)      ``CHECK_INDEX(i, len)``
store of a pointer           ``CHECK_STORE_STACK_PTR(v)`` (heap/global
through a pointer            stores must not capture stack addresses)
``(t'*)x`` downcast (RTTI)   ``CHECK_RTTI_CAST(x, rttiOf(t'))``
SEQ value into SAFE slot     ``CHECK_SEQ_TO_SAFE(x, sizeof)``
SAFE value into SEQ slot     ``CHECK_SAFE_TO_SEQ(x, sizeof)`` (cost only)
RTTI value into SAFE slot    ``CHECK_RTTI_CAST(x, rttiOf(t'))``
call through pointer         ``CHECK_FUNPTR(f)``
===========================  =============================================

The interpreter executes these check instructions; the pretty-printer
renders them as ``__CHECK_*`` calls, which is how the instrumented
output is meant to be read and reviewed.
"""

from __future__ import annotations

from collections import Counter
from typing import Optional

from repro.cil import expr as E
from repro.cil import stmt as S
from repro.cil import types as T
from repro.cil.program import GFun, Program
from repro.core.constraints import Analysis
from repro.core.qualifiers import PointerKind

_SIZEOF_FALLBACK = 1


def _kind(t: T.CType) -> Optional[PointerKind]:
    u = T.unroll(t)
    if isinstance(u, T.TPtr):
        return u.kind
    return None


def _size_of(t: T.CType) -> int:
    try:
        return T.unroll(t).size()
    except T.IncompleteTypeError:
        return _SIZEOF_FALLBACK


class Instrumenter:
    """Inserts run-time checks into a kind-solved program."""

    def __init__(self, an: Analysis) -> None:
        self.an = an
        self.prog = an.prog
        self.counts: Counter[S.CheckKind] = Counter()
        self._pending: list[S.Check] = []

    # -- public entry -----------------------------------------------------

    def run(self) -> Counter:
        if not self.an.options.checks:
            return self.counts
        for g in self.prog.globals:
            if isinstance(g, GFun):
                g.fundec.body = self._block(g.fundec.body)
        return self.counts

    # -- emission ----------------------------------------------------------

    def _check(self, kind: S.CheckKind, args: list[E.Exp], *,
               size: Optional[int] = None,
               rtti: Optional[T.CType] = None) -> None:
        self._pending.append(S.Check(kind, args, size=size, rtti=rtti))
        self.counts[kind] += 1

    def _take_pending(self) -> list[S.Check]:
        out = self._pending
        self._pending = []
        return out

    # -- statements ---------------------------------------------------------

    def _block(self, b: S.Block) -> S.Block:
        out = S.Block()
        for s in b.stmts:
            for ns in self._stmt(s):
                out.append(ns)
        return out

    @staticmethod
    def _stamp(checks: list[S.Check],
               loc: Optional[tuple[str, int]]) -> list[S.Check]:
        """Checks report at the source position of the statement whose
        access they protect."""
        for c in checks:
            if c.loc is None:
                c.loc = loc
        return checks

    def _stmt(self, s: S.Stmt) -> list[S.Stmt]:
        if isinstance(s, S.InstrStmt):
            instrs: list[S.Instr] = []
            for i in s.instrs:
                self._instr_checks(i)
                instrs.extend(self._stamp(self._take_pending(), i.loc))
                instrs.append(i)
            return [S.InstrStmt(instrs)]
        if isinstance(s, S.Return):
            if s.exp is not None:
                self._exp_checks(s.exp)
                pending = self._stamp(self._take_pending(), s.loc)
                if pending:
                    return [S.InstrStmt(list(pending)), s]
            return [s]
        if isinstance(s, S.Block):
            return [self._block(s)]
        if isinstance(s, S.If):
            self._exp_checks(s.cond)
            pending = self._stamp(self._take_pending(), s.loc)
            out: list[S.Stmt] = []
            if pending:
                out.append(S.InstrStmt(list(pending)))
            ni = S.If(s.cond, self._block(s.then), self._block(s.els))
            ni.loc = s.loc
            out.append(ni)
            return out
        if isinstance(s, S.Loop):
            loop = S.Loop(self._block(s.body))
            if hasattr(s, "continue_runs_trailing"):
                loop.continue_runs_trailing = \
                    s.continue_runs_trailing  # type: ignore[attr-defined]
            return [loop]
        return [s]

    # -- instructions ---------------------------------------------------------

    def _instr_checks(self, i: S.Instr) -> None:
        if isinstance(i, S.Set):
            self._exp_checks(i.exp)
            self._lval_checks(i.lval, is_write=True)
            self._store_checks(i.lval, i.exp)
            self._conversion_checks(i.exp, i.lval.type())
        elif isinstance(i, S.Call):
            self._exp_checks(i.fn)
            direct = (isinstance(i.fn, (E.AddrOf, E.LvalExp))
                      and isinstance(i.fn.lval.host, E.Var)
                      and isinstance(i.fn.lval.offset, E.NoOffset)
                      and T.is_function(i.fn.lval.host.var.type))
            if not direct:
                self._check(S.CheckKind.FUNPTR, [i.fn])
            for a in i.args:
                self._exp_checks(a)
            if i.ret is not None:
                self._lval_checks(i.ret, is_write=True)

    # -- expressions -------------------------------------------------------

    def _exp_checks(self, e: E.Exp) -> None:
        if isinstance(e, E.LvalExp):
            self._lval_checks(e.lval, is_write=False)
        elif isinstance(e, (E.AddrOf, E.StartOf)):
            # Taking &x->f requires the SEQ->SAFE conversion check when
            # x is SEQ (Figure 11's field access rules).
            self._lval_addr_checks(e.lval)
        elif isinstance(e, E.UnOp):
            self._exp_checks(e.e)
        elif isinstance(e, E.BinOp):
            self._exp_checks(e.e1)
            self._exp_checks(e.e2)
        elif isinstance(e, E.CastE):
            self._exp_checks(e.e)
            self._cast_checks(e)

    def _cast_checks(self, cast: E.CastE) -> None:
        if cast.trusted:
            return
        src_k = _kind(cast.e.type())
        dst_k = _kind(cast.t)
        if src_k is None or dst_k is None:
            return
        src_base = T.unroll(cast.e.type()).base  # type: ignore[union-attr]
        dst_base = T.unroll(cast.t).base  # type: ignore[union-attr]
        if src_k is PointerKind.RTTI and dst_k is PointerKind.RTTI:
            from repro.core.physical import physical_subtype
            if not physical_subtype(src_base, dst_base):
                # A downcast among RTTI pointers: check
                # isSubtype(x.t, rttiOf(t')) (Figure 2, row 3).
                self._check(S.CheckKind.RTTI_CAST, [cast.e],
                            rtti=dst_base)
        # Kind conversions (including RTTI->SAFE, which re-checks the
        # subtype invariant per Figure 2's last row).
        self._representation_conversion(cast.e, src_k, dst_k, dst_base)

    def _conversion_checks(self, e: E.Exp, target: T.CType) -> None:
        """Checks for a value flowing into a differently-kinded slot."""
        src_k = _kind(e.type())
        dst_k = _kind(target)
        if src_k is None or dst_k is None or src_k is dst_k:
            return
        dst_base = T.unroll(target).base  # type: ignore[union-attr]
        self._representation_conversion(e, src_k, dst_k, dst_base)

    def _representation_conversion(self, e: E.Exp, src_k: PointerKind,
                                   dst_k: PointerKind,
                                   dst_base: T.CType) -> None:
        if src_k is dst_k:
            return
        size = _size_of(dst_base)
        seqish = (PointerKind.SEQ, PointerKind.FSEQ)
        if src_k in seqish and dst_k in (PointerKind.SAFE,
                                         PointerKind.RTTI):
            self._check(S.CheckKind.SEQ_TO_SAFE, [e], size=size)
        elif src_k is PointerKind.SAFE and dst_k in seqish:
            self._check(S.CheckKind.SAFE_TO_SEQ, [e], size=size)
        elif src_k in seqish and dst_k in seqish:
            pass  # SEQ<->FSEQ: drop or keep the base bound, no check
        elif src_k is PointerKind.RTTI and dst_k is PointerKind.SAFE:
            self._check(S.CheckKind.RTTI_CAST, [e], rtti=dst_base)
        elif src_k is PointerKind.RTTI and dst_k is PointerKind.SEQ:
            self._check(S.CheckKind.RTTI_CAST, [e], rtti=dst_base)
            self._check(S.CheckKind.SAFE_TO_SEQ, [e], size=size)
        # SAFE->RTTI attaches rttiOf(static type): free of checks.
        # WILD->WILD only; the solver guarantees no mixed WILD flows.

    # -- lvalues -------------------------------------------------------------

    def _lval_checks(self, lv: E.Lval, is_write: bool) -> None:
        if isinstance(lv.host, E.Mem):
            self._exp_checks(lv.host.exp)
            ptr = lv.host.exp
            k = _kind(ptr.type())
            access_t = lv.type()
            # Figure 11 checks ``*x : t*SEQ`` against sizeof(t) — the
            # whole pointee — which also covers any field offset into
            # it.  (Checking only the accessed field's size at the
            # host address would under-check interior accesses.)
            pt = T.unroll(ptr.type())
            pointee_t = pt.base if isinstance(pt, T.TPtr) else access_t
            size = _size_of(pointee_t)
            if k in (PointerKind.SAFE, PointerKind.RTTI, None):
                self._check(S.CheckKind.NULL, [ptr])
            elif k is PointerKind.SEQ:
                self._check(S.CheckKind.SEQ_BOUNDS, [ptr], size=size)
            elif k is PointerKind.FSEQ:
                self._check(S.CheckKind.FSEQ_BOUNDS, [ptr],
                            size=size)
            elif k is PointerKind.WILD:
                self._check(S.CheckKind.WILD_BOUNDS, [ptr], size=size)
                if not is_write and T.is_pointer(access_t):
                    # the tag belongs to the *accessed word*
                    self._check(S.CheckKind.WILD_READ_TAG,
                                [E.AddrOf(lv)])
            if self.an.options.temporal:
                # lock-and-key liveness, after the spatial check (so
                # null/bounds failures keep their spatial diagnosis)
                self._check(S.CheckKind.ALIVE, [ptr], size=size)
        self._offset_checks(lv)

    def _lval_addr_checks(self, lv: E.Lval) -> None:
        if isinstance(lv.host, E.Mem):
            self._exp_checks(lv.host.exp)
            ptr = lv.host.exp
            k = _kind(ptr.type())
            if k in (PointerKind.SEQ, PointerKind.FSEQ) \
                    and not isinstance(lv.offset, E.NoOffset):
                # &(x->f) converts SEQ to SAFE first (Figure 11).
                self._check(S.CheckKind.SEQ_TO_SAFE, [ptr],
                            size=_size_of(T.unroll(
                                ptr.type()).base))  # type: ignore
            elif k in (PointerKind.SAFE, PointerKind.RTTI) and \
                    not isinstance(lv.offset, E.NoOffset):
                self._check(S.CheckKind.NULL, [ptr])
        self._offset_checks(lv)

    def _offset_checks(self, lv: E.Lval) -> None:
        """Array-member indexing: check the index against the static
        array length."""
        t: T.CType
        if isinstance(lv.host, E.Var):
            t = lv.host.var.type
        else:
            pt = T.unroll(lv.host.exp.type())
            t = pt.base if isinstance(pt, T.TPtr) else T.int_t()
        off = lv.offset
        while not isinstance(off, E.NoOffset):
            if isinstance(off, E.Field):
                t = off.field.type
                off = off.rest
            elif isinstance(off, E.Index):
                self._exp_checks(off.index)
                at = T.unroll(t)
                if isinstance(at, T.TArray) and at.length is not None:
                    if not (isinstance(off.index, E.Const)
                            and isinstance(off.index.value, int)
                            and 0 <= off.index.value < at.length):
                        self._check(S.CheckKind.INDEX, [off.index],
                                    size=at.length)
                    t = at.base
                else:
                    t = at.base if isinstance(at, T.TArray) else t
                off = off.rest
        return

    # -- stores ---------------------------------------------------------------

    def _store_checks(self, lv: E.Lval, value: E.Exp) -> None:
        """Writing a pointer through a pointer: the stored value must
        not be a stack pointer (escaping locals)."""
        if not T.is_pointer(value.type()):
            return
        if isinstance(lv.host, E.Mem):
            self._check(S.CheckKind.STORE_STACK_PTR, [value])
        elif lv.host.var.is_global:
            self._check(S.CheckKind.STORE_STACK_PTR, [value])


def instrument(an: Analysis) -> Counter:
    """Insert checks into ``an.prog``; returns check counts by kind."""
    return Instrumenter(an).run()
