"""The representation type constructors of the paper: Rep, C and Meta.

These build actual CIL struct types so that the instrumented output can
be printed and inspected, and so that tests can check them against the
paper's Figures 1, 6 and 7 literally:

* :func:`rep_type` — Figure 1's interleaved ("wide") representation:
  ``Rep(t * SEQ) = struct { Rep(t) *p, *b, *e; }`` etc.
* :func:`c_type` — Figure 6's ``C(t)``: the original C layout with all
  pointer qualifiers stripped.
* :func:`meta_type` — Figure 6's ``Meta(t)``: the parallel metadata
  shape (``None`` plays the role of ``void``: no metadata needed).
* :func:`rep_split_boundary` — Figure 7's representation of NOSPLIT
  pointers *to* SPLIT types.

The runtime does not lay values out with these structs (it keeps data
in C layout plus shadow metadata, see ``repro/runtime/memory.py``), but
the *cost model* charges exactly the extra words these types imply, so
the overhead shapes match the paper's.
"""

from __future__ import annotations

from typing import Optional

from repro.cil import types as T
from repro.core.qualifiers import PointerKind

_cache_rep: dict[object, T.CType] = {}
_cache_meta: dict[object, Optional[T.CType]] = {}
_name_counter = [0]


def _mk_comp(prefix: str, fields: list[tuple[str, T.CType]]) -> T.TComp:
    _name_counter[0] += 1
    comp = T.CompInfo(True, f"__{prefix}{_name_counter[0]}")
    comp.set_fields([T.FieldInfo(n, t) for n, t in fields])
    return T.TComp(comp)


def _kind_of(t: T.TPtr) -> PointerKind:
    return t.kind


def rep_type(t: T.CType) -> T.CType:
    """Figure 1's ``Rep(t)``: the interleaved wide representation."""
    u = T.unroll(t)
    if isinstance(u, (T.TInt, T.TFloat, T.TEnum, T.TVoid)):
        return u
    if isinstance(u, T.TPtr):
        k = _kind_of(u)
        base_rep = rep_type(u.base) if not isinstance(
            T.unroll(u.base), T.TComp) else u.base
        bp = T.TPtr(base_rep)
        if k is PointerKind.SAFE:
            return _mk_comp("rep_safe", [("p", bp)])
        if k is PointerKind.SEQ:
            return _mk_comp("rep_seq", [("p", bp), ("b", T.TPtr(base_rep)),
                                        ("e", T.TPtr(base_rep))])
        if k is PointerKind.FSEQ:
            return _mk_comp("rep_fseq", [("p", bp),
                                         ("e", T.TPtr(base_rep))])
        if k is PointerKind.RTTI:
            return _mk_comp("rep_rtti", [("p", bp),
                                         ("t", T.TPtr(T.TVoid()))])
        return _mk_comp("rep_wild", [("p", bp), ("b", T.TPtr(base_rep))])
    if isinstance(u, T.TArray):
        return T.TArray(rep_type(u.base), u.length)
    if isinstance(u, T.TComp):
        # Structures: Rep maps over the fields.  To avoid rewriting
        # shared CompInfos we build a parallel struct.
        key = ("rep", u.comp.key)
        if key in _cache_rep:
            return _cache_rep[key]
        out = _mk_comp(f"rep_{u.comp.name}_",
                       [(f.name, rep_type(f.type))
                        for f in u.comp.fields])
        _cache_rep[key] = out
        return out
    return u


def c_type(t: T.CType) -> T.CType:
    """Figure 6's ``C(t)``: strip all pointer qualifiers.

    ``C(int * SEQ * SEQ) = int **`` — structurally this is just the
    type itself with metadata ignored; composite types keep their
    original (library-compatible) layout.
    """
    return t


def meta_type(t: T.CType) -> Optional[T.CType]:
    """Figure 6's ``Meta(t)``; ``None`` means ``void`` (no metadata)."""
    u = T.unroll(t)
    if isinstance(u, (T.TInt, T.TFloat, T.TEnum, T.TVoid, T.TFun)):
        return None
    if isinstance(u, T.TArray):
        inner = meta_type(u.base)
        if inner is None:
            return None
        return T.TArray(inner, u.length)
    if isinstance(u, T.TPtr):
        k = _kind_of(u)
        base_meta = meta_type(u.base)
        if k is PointerKind.SAFE:
            if base_meta is None:
                return None
            return _mk_comp("meta_safe", [("m", T.TPtr(base_meta))])
        if k is PointerKind.SEQ:
            fields: list[tuple[str, T.CType]] = [
                ("b", T.TPtr(c_type(u.base))),
                ("e", T.TPtr(c_type(u.base)))]
            if base_meta is not None:
                fields.append(("m", T.TPtr(base_meta)))
            return _mk_comp("meta_seq", fields)
        if k is PointerKind.FSEQ:
            fields = [("e", T.TPtr(c_type(u.base)))]
            if base_meta is not None:
                fields.append(("m", T.TPtr(base_meta)))
            return _mk_comp("meta_fseq", fields)
        if k is PointerKind.RTTI:
            fields = [("t", T.TPtr(T.TVoid()))]
            if base_meta is not None:
                fields.append(("m", T.TPtr(base_meta)))
            return _mk_comp("meta_rtti", fields)
        raise CompatibilityError(
            "WILD pointers do not support the compatible (split) "
            "representation")
    if isinstance(u, T.TComp):
        key = ("meta", u.comp.key)
        if key in _cache_meta:
            return _cache_meta[key]
        _cache_meta[key] = None  # breaks recursion; refined below
        fields = []
        for f in u.comp.fields:
            fm = meta_type(f.type)
            if fm is not None:
                fields.append((f.name, fm))
        out = (_mk_comp(f"meta_{u.comp.name}_", fields)
               if fields else None)
        _cache_meta[key] = out
        return out
    return None


def rep_split_boundary(t: T.TPtr) -> T.CType:
    """Figure 7: the representation of a NOSPLIT pointer to a SPLIT
    type — a pair of data and metadata pointers (plus b/e for SEQ)."""
    k = _kind_of(t)
    data_ptr = T.TPtr(c_type(t.base))
    mt = meta_type(t.base)
    fields: list[tuple[str, T.CType]] = [("p", data_ptr)]
    if k is PointerKind.SEQ:
        fields += [("b", T.TPtr(c_type(t.base))),
                   ("e", T.TPtr(c_type(t.base)))]
    if mt is not None:
        fields.append(("m", T.TPtr(mt)))
    return _mk_comp("rep_boundary", fields)


class CompatibilityError(Exception):
    """Raised when a representation cannot be made library-compatible
    (e.g. SPLIT WILD pointers, or passing wide pointers to a library
    without a wrapper — the paper's 'fail to link rather than crash')."""
