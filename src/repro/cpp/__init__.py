"""A small C preprocessor with bundled libc headers.

pycparser consumes preprocessed C; this subpackage supplies the
preprocessing step (includes, macros, conditionals) plus the fake system
headers that declare the runtime's builtin libc subset and the CCured
annotation interface (``ccured.h``).
"""

from repro.cpp.preprocessor import (Preprocessor, PreprocessError, Macro,
                                    preprocess, strip_comments,
                                    splice_lines, tokenize)

__all__ = ["Preprocessor", "PreprocessError", "Macro", "preprocess",
           "strip_comments", "splice_lines", "tokenize"]
