"""A small C preprocessor.

pycparser consumes *preprocessed* C, so we ship a self-contained
preprocessor sufficient for the workloads in this repository and for
realistic user programs in the supported C99 subset:

* line splicing (``\\`` + newline) and comment removal,
* ``#include`` with quoted and angle-bracket forms, resolved against a
  search path that always ends with the package's bundled libc headers,
* object-like and function-like ``#define`` (with ``#undef``), including
  nested expansion with self-reference protection,
* conditionals: ``#if``/``#ifdef``/``#ifndef``/``#elif``/``#else``/
  ``#endif`` with a constant-expression evaluator (``defined`` supported),
* ``#pragma`` lines are passed through unchanged (CCured's wrapper and
  annotation pragmas must reach the frontend),
* ``#error`` raises :class:`PreprocessError`.

It is deliberately not a full C preprocessor — no ``#`` / ``##``
operators, no predefined macro battery — but it covers what CCured's
paper workloads need and fails loudly otherwise.
"""

from __future__ import annotations

import os
import re
from typing import Mapping, Optional, Sequence

from repro.runtime.checks import MemorySafetyError

_PKG_INCLUDE = os.path.join(os.path.dirname(__file__), "include")

_IDENT = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_TOKEN = re.compile(
    r"""[A-Za-z_][A-Za-z0-9_]*      # identifier
      | 0[xX][0-9a-fA-F]+[uUlL]*    # hex
      | \d+\.\d*([eE][-+]?\d+)?[fF]?  # float
      | \.\d+([eE][-+]?\d+)?[fF]?
      | \d+[uUlL]*                  # int
      | "(\\.|[^"\\])*"             # string
      | '(\\.|[^'\\])*'             # char
      | <<=|>>=|\.\.\.|<<|>>|<=|>=|==|!=|&&|\|\||->|\+\+|--|[-+*/%&|^~!<>=?:;,.(){}\[\]\#]
      | \s+
    """, re.VERBOSE)


class PreprocessError(Exception):
    """A preprocessing failure (bad directive, missing include, #error)."""

    def __init__(self, message: str, filename: str = "<input>",
                 line: int = 0) -> None:
        super().__init__(f"{filename}:{line}: {message}")
        self.filename = filename
        self.line = line


class Macro:
    """A macro definition."""

    def __init__(self, name: str, body: str,
                 params: Optional[Sequence[str]] = None,
                 variadic: bool = False) -> None:
        self.name = name
        self.body = body
        self.params = list(params) if params is not None else None
        self.variadic = variadic

    @property
    def is_function(self) -> bool:
        return self.params is not None


def tokenize(text: str) -> list[str]:
    """Split a line into preprocessor tokens (whitespace tokens kept)."""
    out = []
    i = 0
    while i < len(text):
        m = _TOKEN.match(text, i)
        if m is None:
            out.append(text[i])
            i += 1
        else:
            out.append(m.group(0))
            i = m.end()
    return out


#: the magic comment that silences ``repro lint`` diagnostics on its
#: own line and the line directly below it.
LINT_IGNORE = "repro-lint: ignore"


def strip_comments(text: str,
                   suppressions: Optional[set] = None) -> str:
    """Remove // and /* */ comments, preserving newlines and strings.

    When ``suppressions`` is given, the 1-based line number of every
    comment containing :data:`LINT_IGNORE` is added to it (this is the
    only chance to see the comment — it is gone after this pass).
    """
    out: list[str] = []
    i, n = 0, len(text)
    line = 1

    def note_comment(body: str, at_line: int) -> None:
        if suppressions is not None and LINT_IGNORE in body:
            suppressions.add(at_line)

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            out.append(c)
            i += 1
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                j += 1
            out.append(text[i:j])
            line += text.count("\n", i, j)
            i = j
        elif text.startswith("//", i):
            start = i
            while i < n and text[i] != "\n":
                i += 1
            note_comment(text[start:i], line)
        elif text.startswith("/*", i):
            end = text.find("*/", i + 2)
            if end < 0:
                raise PreprocessError("unterminated comment")
            note_comment(text[i:end], line)
            newlines = text.count("\n", i, end + 2)
            out.append("\n" * newlines)
            line += newlines
            i = end + 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def splice_lines(text: str) -> str:
    """Join lines ending with a backslash."""
    return text.replace("\\\r\n", "").replace("\\\n", "")


class _CondState:
    """State of one #if nesting level."""

    def __init__(self, taking: bool, parent_active: bool) -> None:
        self.ever_taken = taking
        self.taking = taking
        self.parent_active = parent_active
        self.in_else = False


class Preprocessor:
    """Drives preprocessing of a top-level file and its includes."""

    MAX_EXPANSION_DEPTH = 64
    MAX_INCLUDE_DEPTH = 32

    def __init__(self, include_dirs: Optional[Sequence[str]] = None,
                 defines: Optional[Mapping[str, str]] = None) -> None:
        self.include_dirs = list(include_dirs or [])
        self.macros: dict[str, Macro] = {
            "__CCURED__": Macro("__CCURED__", "1"),
        }
        for name, body in (defines or {}).items():
            self.macros[name] = Macro(name, body)
        self._include_depth = 0
        #: ``(filename, line)`` pairs carrying a ``repro-lint: ignore``
        #: comment, across the top-level file and all includes.
        self.lint_suppressions: set[tuple[str, int]] = set()

    # -- include resolution ---------------------------------------------

    def resolve_include(self, name: str, quoted: bool,
                        current_dir: Optional[str]) -> str:
        dirs: list[str] = []
        if quoted and current_dir:
            dirs.append(current_dir)
        dirs.extend(self.include_dirs)
        dirs.append(_PKG_INCLUDE)
        for d in dirs:
            path = os.path.join(d, name)
            if os.path.isfile(path):
                return path
        raise PreprocessError(f"include not found: {name}")

    # -- macro expansion ---------------------------------------------------

    def expand(self, line: str, hide: frozenset[str] = frozenset(),
               depth: int = 0) -> str:
        if depth > self.MAX_EXPANSION_DEPTH:
            raise PreprocessError("macro expansion too deep")
        toks = tokenize(line)
        out: list[str] = []
        i = 0
        while i < len(toks):
            tok = toks[i]
            macro = self.macros.get(tok)
            if macro is None or tok in hide or not _IDENT.fullmatch(tok):
                out.append(tok)
                i += 1
                continue
            if not macro.is_function:
                out.append(self.expand(macro.body, hide | {tok},
                                       depth + 1))
                i += 1
                continue
            # function-like: require "(" (possibly after whitespace)
            j = i + 1
            while j < len(toks) and toks[j].isspace():
                j += 1
            if j >= len(toks) or toks[j] != "(":
                out.append(tok)
                i += 1
                continue
            args, end = self._collect_args(toks, j)
            expanded_args = [self.expand(a, hide, depth + 1)
                             for a in args]
            body = self._substitute(macro, expanded_args)
            out.append(self.expand(body, hide | {tok}, depth + 1))
            i = end
        return "".join(out)

    def _collect_args(self, toks: list[str],
                      open_paren: int) -> tuple[list[str], int]:
        """Collect macro-call arguments; returns (args, index-after-``)``)."""
        depth = 0
        args: list[str] = []
        cur: list[str] = []
        i = open_paren
        while i < len(toks):
            t = toks[i]
            if t == "(":
                depth += 1
                if depth > 1:
                    cur.append(t)
            elif t == ")":
                depth -= 1
                if depth == 0:
                    args.append("".join(cur).strip())
                    return args, i + 1
                cur.append(t)
            elif t == "," and depth == 1:
                args.append("".join(cur).strip())
                cur = []
            else:
                cur.append(t)
            i += 1
        raise PreprocessError("unterminated macro invocation")

    def _substitute(self, macro: Macro, args: list[str]) -> str:
        params = macro.params or []
        if args == [""] and not params:
            args = []
        if macro.variadic:
            if len(args) < len(params):
                raise PreprocessError(
                    f"macro {macro.name} expects at least "
                    f"{len(params)} args, got {len(args)}")
            fixed = args[:len(params)]
            va = ", ".join(args[len(params):])
            mapping = dict(zip(params, fixed))
            mapping["__VA_ARGS__"] = va
        else:
            if len(args) != len(params):
                raise PreprocessError(
                    f"macro {macro.name} expects {len(params)} args, "
                    f"got {len(args)}")
            mapping = dict(zip(params, args))
        out = []
        for tok in tokenize(macro.body):
            out.append(mapping.get(tok, tok))
        return "".join(out)

    # -- conditional expressions ------------------------------------------

    def eval_condition(self, text: str) -> bool:
        text = self._replace_defined(text)
        text = self.expand(text)
        # Any remaining identifier evaluates to 0, per C semantics.
        toks = [t for t in tokenize(text) if not t.isspace()]
        toks = ["0" if _IDENT.fullmatch(t) else t for t in toks]
        return _CondEval(toks).parse() != 0

    def _replace_defined(self, text: str) -> str:
        def repl(m: re.Match) -> str:
            name = m.group(1) or m.group(2)
            return "1" if name in self.macros else "0"
        return re.sub(
            r"defined\s*(?:\(\s*([A-Za-z_]\w*)\s*\)|([A-Za-z_]\w*))",
            repl, text)

    # -- the driver --------------------------------------------------------

    def preprocess(self, source: str,
                   filename: str = "<input>") -> str:
        current_dir = (os.path.dirname(os.path.abspath(filename))
                       if filename != "<input>" else None)
        ignore_lines: set = set()
        text = strip_comments(splice_lines(source), ignore_lines)
        self.lint_suppressions.update(
            (filename, ln) for ln in ignore_lines)
        out: list[str] = []
        conds: list[_CondState] = []

        def active() -> bool:
            return all(c.taking for c in conds)

        for lineno, raw in enumerate(text.split("\n"), start=1):
            line = raw.strip()
            if not line.startswith("#"):
                if active():
                    out.append(self.expand(raw))
                else:
                    out.append("")
                continue
            directive = line[1:].strip()
            m = _IDENT.match(directive)
            name = m.group(0) if m else ""
            rest = directive[m.end():].strip() if m else ""
            try:
                emitted = self._directive(
                    name, rest, conds, active, current_dir, filename,
                    lineno)
            except (PreprocessError, KeyboardInterrupt):
                raise
            except MemorySafetyError:
                # Safety verdicts are never preprocessing failures:
                # rewrapping one would hide a check result from the
                # campaign/bench machinery above us.
                raise
            except Exception as exc:  # pragma: no cover - defensive
                raise PreprocessError(str(exc), filename, lineno) from exc
            out.append(emitted if emitted is not None else "")
        if conds:
            raise PreprocessError("unterminated #if", filename)
        return "\n".join(out) + "\n"

    def _directive(self, name: str, rest: str, conds: list[_CondState],
                   active, current_dir: Optional[str], filename: str,
                   lineno: int) -> Optional[str]:
        if name == "if":
            conds.append(_CondState(
                active() and self.eval_condition(rest), active()))
        elif name == "ifdef":
            conds.append(_CondState(
                active() and rest.split()[0] in self.macros, active()))
        elif name == "ifndef":
            conds.append(_CondState(
                active() and rest.split()[0] not in self.macros,
                active()))
        elif name == "elif":
            if not conds:
                raise PreprocessError("#elif without #if", filename,
                                      lineno)
            c = conds[-1]
            c.taking = (c.parent_active and not c.ever_taken
                        and self.eval_condition(rest))
            c.ever_taken = c.ever_taken or c.taking
        elif name == "else":
            if not conds or conds[-1].in_else:
                raise PreprocessError("mismatched #else", filename,
                                      lineno)
            c = conds[-1]
            c.in_else = True
            c.taking = c.parent_active and not c.ever_taken
            c.ever_taken = True
        elif name == "endif":
            if not conds:
                raise PreprocessError("#endif without #if", filename,
                                      lineno)
            conds.pop()
        elif not active():
            return None
        elif name == "define":
            self._define(rest, filename, lineno)
        elif name == "undef":
            self.macros.pop(rest.split()[0], None)
        elif name == "include":
            return self._include(rest, current_dir, filename, lineno)
        elif name == "pragma":
            return "#pragma " + rest
        elif name == "error":
            raise PreprocessError(f"#error {rest}", filename, lineno)
        elif name == "warning":
            return None
        elif name == "line" or name == "":
            return None
        else:
            raise PreprocessError(f"unknown directive #{name}",
                                  filename, lineno)
        return None

    def _define(self, rest: str, filename: str, lineno: int) -> None:
        m = _IDENT.match(rest)
        if not m:
            raise PreprocessError("bad #define", filename, lineno)
        name = m.group(0)
        after = rest[m.end():]
        if after.startswith("("):
            close = after.index(")")
            raw_params = [p.strip() for p in after[1:close].split(",")
                          if p.strip()]
            variadic = bool(raw_params) and raw_params[-1] == "..."
            if variadic:
                raw_params = raw_params[:-1]
            body = after[close + 1:].strip()
            self.macros[name] = Macro(name, body, raw_params, variadic)
        else:
            self.macros[name] = Macro(name, after.strip())

    def _include(self, rest: str, current_dir: Optional[str],
                 filename: str, lineno: int) -> str:
        rest = self.expand(rest).strip()
        if rest.startswith('"'):
            incname, quoted = rest[1:rest.index('"', 1)], True
        elif rest.startswith("<"):
            incname, quoted = rest[1:rest.index(">")], False
        else:
            raise PreprocessError(f"bad #include {rest!r}", filename,
                                  lineno)
        if self._include_depth >= self.MAX_INCLUDE_DEPTH:
            raise PreprocessError("includes nested too deeply", filename,
                                  lineno)
        path = self.resolve_include(incname, quoted, current_dir)
        with open(path, "r", encoding="utf-8") as f:
            body = f.read()
        self._include_depth += 1
        try:
            expanded = self.preprocess(body, path).rstrip("\n")
        finally:
            self._include_depth -= 1
        # Bracket the inlined file with pycparser-style line markers so
        # source coordinates (and hence lint diagnostics) survive
        # inclusion: the body reports positions in the included file,
        # and the marker after it resumes the including file at the
        # line following the ``#include``.
        return (f'# 1 "{path}"\n{expanded}\n'
                f'# {lineno + 1} "{filename}"')


class _CondEval:
    """Recursive-descent evaluator for #if constant expressions."""

    def __init__(self, toks: list[str]) -> None:
        self.toks = toks
        self.pos = 0

    def peek(self) -> Optional[str]:
        return self.toks[self.pos] if self.pos < len(self.toks) else None

    def next(self) -> Optional[str]:
        t = self.peek()
        self.pos += 1
        return t

    def parse(self) -> int:
        v = self.ternary()
        if self.peek() is not None:
            raise PreprocessError(f"trailing tokens in #if: {self.peek()}")
        return v

    def ternary(self) -> int:
        cond = self.lor()
        if self.peek() == "?":
            self.next()
            a = self.ternary()
            if self.next() != ":":
                raise PreprocessError("expected ':' in #if")
            b = self.ternary()
            return a if cond else b
        return cond

    def lor(self) -> int:
        v = self.land()
        while self.peek() == "||":
            self.next()
            rhs = self.land()
            v = 1 if (v or rhs) else 0
        return v

    def land(self) -> int:
        v = self.equality()
        while self.peek() == "&&":
            self.next()
            rhs = self.equality()
            v = 1 if (v and rhs) else 0
        return v

    def equality(self) -> int:
        v = self.relational()
        while self.peek() in ("==", "!="):
            op = self.next()
            rhs = self.relational()
            v = int((v == rhs) if op == "==" else (v != rhs))
        return v

    def relational(self) -> int:
        v = self.additive()
        while self.peek() in ("<", ">", "<=", ">="):
            op = self.next()
            rhs = self.additive()
            v = int({"<": v < rhs, ">": v > rhs,
                     "<=": v <= rhs, ">=": v >= rhs}[op])
        return v

    def additive(self) -> int:
        v = self.multiplicative()
        while self.peek() in ("+", "-"):
            op = self.next()
            rhs = self.multiplicative()
            v = v + rhs if op == "+" else v - rhs
        return v

    def multiplicative(self) -> int:
        v = self.unary()
        while self.peek() in ("*", "/", "%"):
            op = self.next()
            rhs = self.unary()
            if op == "*":
                v = v * rhs
            elif rhs == 0:
                raise PreprocessError("division by zero in #if")
            elif op == "/":
                v = int(v / rhs)
            else:
                v = v % rhs
        return v

    def unary(self) -> int:
        t = self.peek()
        if t == "!":
            self.next()
            return int(not self.unary())
        if t == "-":
            self.next()
            return -self.unary()
        if t == "+":
            self.next()
            return self.unary()
        if t == "~":
            self.next()
            return ~self.unary()
        return self.primary()

    def primary(self) -> int:
        t = self.next()
        if t is None:
            raise PreprocessError("unexpected end of #if expression")
        if t == "(":
            v = self.ternary()
            if self.next() != ")":
                raise PreprocessError("expected ')' in #if")
            return v
        if t.startswith(("0x", "0X")):
            return int(t.rstrip("uUlL"), 16)
        if t[0].isdigit():
            return int(t.rstrip("uUlL"), 8 if t.startswith("0")
                       and len(t.rstrip("uUlL")) > 1 else 10)
        if t.startswith("'"):
            body = t[1:-1]
            if body.startswith("\\"):
                return ord(body[1:].encode().decode("unicode_escape"))
            return ord(body)
        raise PreprocessError(f"bad token in #if: {t!r}")


def preprocess(source: str, filename: str = "<input>",
               include_dirs: Optional[Sequence[str]] = None,
               defines: Optional[Mapping[str, str]] = None) -> str:
    """Preprocess C source text, resolving includes against
    ``include_dirs`` and the bundled libc headers."""
    return Preprocessor(include_dirs, defines).preprocess(source, filename)
