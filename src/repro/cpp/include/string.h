#ifndef _REPRO_STRING_H
#define _REPRO_STRING_H
#include <stddef.h>
size_t strlen(const char *s);
char *strcpy(char *dest, const char *src);
char *strncpy(char *dest, const char *src, size_t n);
char *strcat(char *dest, const char *src);
char *strncat(char *dest, const char *src, size_t n);
int strcmp(const char *s1, const char *s2);
int strncmp(const char *s1, const char *s2, size_t n);
char *strchr(const char *s, int c);
char *strrchr(const char *s, int c);
char *strstr(const char *haystack, const char *needle);
char *strdup(const char *s);
void *memcpy(void *dest, const void *src, size_t n);
void *memmove(void *dest, const void *src, size_t n);
void *memset(void *s, int c, size_t n);
int memcmp(const void *s1, const void *s2, size_t n);
#endif
