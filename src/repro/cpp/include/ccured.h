#ifndef _REPRO_CCURED_H
#define _REPRO_CCURED_H
/* CCured annotation interface.
 *
 * __trusted_cast: the controlled escape hatch of Section 3 of the paper.
 * A cast written as  (T *)__trusted_cast(e)  is accepted even when the
 * inference would classify it as bad; it is counted and reported so a
 * security review can start from these casts (the bind story of Sec. 5).
 *
 * Wrapper helpers of Section 4.1: inside a function registered with
 *   #pragma ccuredWrapperOf("wrapper_name", "library_name")
 * the helpers below are specialized by the curing transformation
 * according to the inferred pointer kinds at each instantiation site.
 *
 * Annotation pragmas:
 *   #pragma ccuredSplit("var_or_field")     - request SPLIT metadata
 *   #pragma ccuredWild("var_or_field")      - force WILD (for tests)
 *   #pragma ccuredTrustedFunction("name")   - treat body as trusted
 */
void *__trusted_cast(void *p);
void *__ptrof(void *p);          /* strip metadata -> library pointer */
void *__mkptr(void *p, void *home); /* rebuild metadata from a home   */
void __verify_nul(const char *s);   /* check NUL within bounds        */
void __verify_size(void *p, unsigned int n); /* check n bytes valid   */
unsigned int __ccured_length(void *p); /* bytes from p to end of home */
int __io_write(void *buf, unsigned int n); /* simulated device I/O  */
#endif
