#ifndef _REPRO_STDDEF_H
#define _REPRO_STDDEF_H
typedef unsigned int size_t;
typedef int ptrdiff_t;
#define NULL ((void *)0)
#endif
