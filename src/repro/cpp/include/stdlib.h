#ifndef _REPRO_STDLIB_H
#define _REPRO_STDLIB_H
#include <stddef.h>
void *malloc(size_t size);
void *calloc(size_t nmemb, size_t size);
void *realloc(void *ptr, size_t size);
void free(void *ptr);
void exit(int status);
void abort(void);
int atoi(const char *nptr);
long atol(const char *nptr);
int abs(int j);
int rand(void);
void srand(unsigned int seed);
#define RAND_MAX 2147483647
#define EXIT_SUCCESS 0
#define EXIT_FAILURE 1
void qsort(void *base, size_t nmemb, size_t size,
           int (*compar)(const void *, const void *));
#endif
