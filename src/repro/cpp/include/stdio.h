#ifndef _REPRO_STDIO_H
#define _REPRO_STDIO_H
#include <stddef.h>
typedef struct __repro_FILE { int fd; } FILE;
extern FILE *stdin;
extern FILE *stdout;
extern FILE *stderr;
int printf(const char *format, ...);
int fprintf(FILE *stream, const char *format, ...);
int sprintf(char *str, const char *format, ...);
int snprintf(char *str, size_t size, const char *format, ...);
int puts(const char *s);
int putchar(int c);
int getchar(void);
char *fgets(char *s, int size, FILE *stream);
#define EOF (-1)
#endif
