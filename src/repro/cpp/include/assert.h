#ifndef _REPRO_ASSERT_H
#define _REPRO_ASSERT_H
void __assert_fail(const char *expr);
#define assert(e) ((e) ? (void)0 : __assert_fail("assertion failed"))
#endif
