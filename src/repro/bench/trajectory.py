"""The benchmark-trajectory ledger: a pinned micro-suite, an
append-only history, and a noise-tolerant regression gate.

``BENCH_interp.json`` is a snapshot; this module is the longitudinal
instrument.  ``repro bench`` re-runs the same pinned steps/sec
micro-suite the benchmark tests use (same workloads, same scales, same
pristine-tree machinery, both engines on both raw and cured programs)
and appends one schema-tagged record per run to
``BENCH_history.jsonl`` — a trajectory, not a point.

``repro bench diff`` then gates a current record against a committed
baseline with the split the metrics gate taught us:

* **counts are exact** — steps, cycles, and exit status come from the
  deterministic cost model, so any drift is a real semantic change
  and fails outright;
* **wall ratios get slack** — absolute steps/sec depends on the
  machine, so the gate checks the *closures-vs-tree speedup ratio*
  (machine-normalized: both engines ran on the same box seconds
  apart) and only fails when it falls more than ``slack_pct`` below
  the baseline's.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Optional, Sequence

from repro.interp import Interpreter

#: schema tag stamped into every ledger record.
BENCH_SCHEMA = "repro.bench.trajectory/1"

#: the pinned micro-suite: (workload, scale) — pointer-heavy and
#: arithmetic-heavy representatives, scales matching
#: benchmarks/test_engine_speed.py so trees share the cure cache.
SUITE: tuple[tuple[str, int], ...] = (
    ("spec_compress", 3),
    ("spec_go", 2),
)

#: the CI smoke subset (one workload, both modes): fast enough for a
#: per-push gate, still covering cure + both engines.
QUICK_SUITE: tuple[tuple[str, int], ...] = (("spec_compress", 3),)

#: default ledger path (repo root) and committed baseline.
HISTORY_PATH = "BENCH_history.jsonl"
BASELINE_PATH = os.path.join("baselines", "bench-baseline.json")

MODES = ("cured", "raw")


def measure_cell(w, mode: str, engine: str,
                 scale: Optional[int]) -> dict:
    """One measurement: ``w`` under ``mode`` (raw/cured) on
    ``engine``, on the shared pristine tree (interpretation never
    mutates the IR, so both engines measure the same program and the
    cure/parse cost stays out of the timed region)."""
    from repro.bench.harness import pristine_cure, pristine_parse
    if mode == "cured":
        cured = pristine_cure(w, scale=scale)
        ip = Interpreter(cured.prog, cured=cured, stdin=w.stdin,
                         engine=engine)
    else:
        prog = pristine_parse(w, scale)
        ip = Interpreter(prog, stdin=w.stdin, engine=engine)
    t0 = time.perf_counter()
    res = ip.run(list(w.args) or None)
    dt = time.perf_counter() - t0
    return {"seconds": round(dt, 4), "steps": res.steps,
            "cycles": res.cost.cycles, "status": res.status,
            "steps_per_sec": round(res.steps / dt) if dt else 0}


def run_suite_cells(suite: Sequence[tuple[str, int]], *,
                    progress=None) -> dict[str, dict]:
    """Measure every (workload × mode) cell of ``suite`` on both
    engines; keys are ``name:mode``, values carry both engine
    measurements plus the machine-normalized speedup ratio."""
    from repro.workloads import get
    cells: dict[str, dict] = {}
    for name, scale in suite:
        w = get(name)
        for mode in MODES:
            # closures first warms the compile cache; a second run
            # measures the steady state the gate cares about
            measure_cell(w, mode, "closures", scale)
            clos = measure_cell(w, mode, "closures", scale)
            tree = measure_cell(w, mode, "tree", scale)
            speedup = (tree["seconds"] / clos["seconds"]
                       if clos["seconds"] else float("inf"))
            key = f"{name}:{mode}"
            cells[key] = {"tree": tree, "closures": clos,
                          "speedup": round(speedup, 2)}
            if progress is not None:
                progress(f"{key}: {speedup:.2f}x")
    return cells


def bench_record(cells: dict[str, dict], *,
                 suite: Sequence[tuple[str, int]],
                 quick: bool = False,
                 unix_ts: Optional[float] = None) -> dict:
    """Assemble one schema-tagged ledger record."""
    return {"schema": BENCH_SCHEMA,
            "quick": quick,
            "suite": [[name, scale] for name, scale in suite],
            "unix_ts": round(unix_ts if unix_ts is not None
                             else time.time(), 3),
            "cells": cells}


def run_bench(*, quick: bool = False,
              progress=None) -> dict:
    """Run the pinned suite (or the quick subset) into a record."""
    suite = QUICK_SUITE if quick else SUITE
    cells = run_suite_cells(suite, progress=progress)
    return bench_record(cells, suite=suite, quick=quick)


# -- the ledger --------------------------------------------------------------


def append_history(record: dict,
                   path: str = HISTORY_PATH) -> None:
    """Append one record as a compact JSON line (the ledger is
    append-only; each line stands alone)."""
    line = json.dumps(record, sort_keys=True,
                      separators=(",", ":"))
    with open(path, "a", encoding="utf-8") as f:
        f.write(line + "\n")


def read_history(path: str = HISTORY_PATH) -> list[dict]:
    """Every record in the ledger, oldest first (blank lines
    skipped)."""
    if not os.path.exists(path):
        return []
    out = []
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


def load_record(path: str) -> dict:
    """One record from a JSON file *or* the last line of a ``.jsonl``
    ledger."""
    if path.endswith(".jsonl"):
        records = read_history(path)
        if not records:
            raise FileNotFoundError(f"no records in {path}")
        return records[-1]
    with open(path, encoding="utf-8") as f:
        return json.load(f)


# -- the gate ----------------------------------------------------------------


def diff_bench(baseline: dict, current: dict, *,
               slack_pct: float = 50.0) -> list[str]:
    """Compare ``current`` against ``baseline``; each returned string
    is one gate failure (empty list = pass).

    Steps, cycles, and status are exact per cell and engine; the
    closures-vs-tree speedup ratio may not fall more than
    ``slack_pct`` percent below the baseline's.  Cells the baseline
    has but the current run lacks fail (suite shrank); new cells
    pass (suite grew)."""
    failures: list[str] = []
    base_cells = baseline.get("cells", {})
    cur_cells = current.get("cells", {})
    for key in sorted(base_cells):
        base = base_cells[key]
        cur = cur_cells.get(key)
        if cur is None:
            failures.append(f"{key}: missing from current run")
            continue
        for engine in ("tree", "closures"):
            b, c = base.get(engine, {}), cur.get(engine, {})
            for exact in ("steps", "cycles", "status"):
                if b.get(exact) != c.get(exact):
                    failures.append(
                        f"{key} [{engine}] {exact}: "
                        f"{b.get(exact)} -> {c.get(exact)} "
                        "(exact counter drifted)")
        floor = base.get("speedup", 0.0) * (1 - slack_pct / 100.0)
        got = cur.get("speedup", 0.0)
        if got < floor:
            failures.append(
                f"{key} speedup: {got:.2f}x < floor {floor:.2f}x "
                f"(baseline {base.get('speedup'):.2f}x "
                f"- {slack_pct:.0f}% slack)")
    return failures


# -- rendering ---------------------------------------------------------------


def render_record(record: dict) -> str:
    """A fixed-width table of one ledger record."""
    head = (f"{'cell':<24} {'steps':>10} {'tree s/s':>10} "
            f"{'clos s/s':>10} {'speedup':>8}")
    lines = [head, "-" * len(head)]
    for key in sorted(record.get("cells", {})):
        c = record["cells"][key]
        lines.append(
            f"{key:<24} {c['closures']['steps']:>10} "
            f"{c['tree']['steps_per_sec']:>10} "
            f"{c['closures']['steps_per_sec']:>10} "
            f"{c['speedup']:>7.2f}x")
    return "\n".join(lines)


def render_diff(baseline: dict, current: dict,
                failures: Sequence[str], *,
                slack_pct: float) -> str:
    """The gate verdict plus a per-cell speedup comparison."""
    lines = [f"bench gate: slack {slack_pct:.0f}% on speedup, "
             "exact on steps/cycles/status"]
    base_cells = baseline.get("cells", {})
    cur_cells = current.get("cells", {})
    for key in sorted(base_cells):
        b = base_cells[key].get("speedup")
        c = cur_cells.get(key, {}).get("speedup")
        cs = f"{c:.2f}x" if c is not None else "missing"
        lines.append(f"  {key:<24} baseline {b:.2f}x -> {cs}")
    if failures:
        lines.append(f"FAIL ({len(failures)}):")
        lines.extend(f"  {f}" for f in failures)
    else:
        lines.append("ok: within thresholds")
    return "\n".join(lines)
