"""Format benchmark rows as the paper's tables (Figures 8 and 9)."""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

from repro.bench.harness import BenchRow


def _ratio(value: float, decimals: int = 2) -> str:
    """Format a cycle ratio; an undefined ratio (NaN base — the base
    run did no work) renders as ``n/a`` rather than a fake number."""
    if math.isnan(value):
        return "n/a"
    return f"{value:.{decimals}f}"


def figure8_table(rows: Sequence[BenchRow]) -> str:
    """The Apache-module table of Figure 8:

    ``Module Name | Lines of code | % sf/sq/w/rt | CCured Ratio``
    """
    out = ["Module      Lines   % CCured        CCured",
           "Name        of code sf/sq/w/rt      Ratio",
           "-" * 48]
    for r in rows:
        name = r.name.replace("apache_", "")
        out.append(f"{name:<11} {r.lines:>6}  {r.sf_sq_w_rt():<14} "
                   f"{_ratio(r.ccured_ratio)}")
    return "\n".join(out)


def figure9_table(rows: Sequence[BenchRow]) -> str:
    """The system-software table of Figure 9:

    ``Name | Lines of code | % sf/sq/w/rt | CCured Ratio |
    Valgrind Ratio``
    """
    out = ["Name           Lines    % sf/sq/w/rt   CCured  Valgrind",
           "               of code                 Ratio   Ratio",
           "-" * 60]
    for r in rows:
        vg = _ratio(r.valgrind_ratio, 1) if r.valgrind else "   -"
        out.append(f"{r.name:<14} {r.lines:>7}  {r.sf_sq_w_rt():<14}"
                   f" {_ratio(r.ccured_ratio)}    {vg}")
    return "\n".join(out)


def overhead_table(rows: Sequence[BenchRow],
                   title: str = "Overheads") -> str:
    """Spec95-style overhead comparison across all tools."""
    out = [title,
           "Name              CCured   Purify   Valgrind",
           "-" * 48]
    for r in rows:
        pu = f"{_ratio(r.purify_ratio, 1):>6}x" if r.purify \
            else "      -"
        vg = f"{_ratio(r.valgrind_ratio, 1):>6}x" if r.valgrind \
            else "      -"
        out.append(f"{r.name:<17} {_ratio(r.ccured_ratio):>5}x  "
                   f"{pu}  {vg}")
    return "\n".join(out)


def census_table(rows: Sequence[BenchRow]) -> str:
    """The Section 3 cast census across workloads."""
    out = ["Name              casts  ident  upcast  downcast  bad",
           "-" * 58]
    tot_casts = 0
    for r in rows:
        c = r.census
        tot_casts += r.pointer_casts
        out.append(
            f"{r.name:<17} {r.pointer_casts:>5}  "
            f"{c.get('identical', 0):5.0%}  {c.get('upcast', 0):5.0%}"
            f"   {c.get('downcast', 0):5.0%}   "
            f"{c.get('bad', 0):5.1%}")
    out.append(f"total pointer casts: {tot_casts}")
    return "\n".join(out)


def band_check(value: float, lo: float, hi: float,
               what: str) -> Optional[str]:
    """Return a message when ``value`` falls outside [lo, hi]."""
    if lo <= value <= hi:
        return None
    return f"{what} = {value:.2f} outside [{lo}, {hi}]"


def aggregate_census(rows: Iterable[BenchRow]) -> dict[str, float]:
    """Pool the cast census over many workloads (the paper's suite-wide
    63% / 93% / 6% / <1% numbers)."""
    ident = up = down = bad = total = 0.0
    for r in rows:
        n = r.pointer_casts
        if n == 0:
            continue
        c = r.census
        i = c.get("identical", 0.0) * n
        rest = n - i
        total += n
        ident += i
        up += c.get("upcast", 0.0) * rest
        down += c.get("downcast", 0.0) * rest
        bad += c.get("bad", 0.0) * rest
    rest_total = total - ident
    return {
        "identical": ident / total if total else 0.0,
        "upcast": up / rest_total if rest_total else 0.0,
        "downcast": down / rest_total if rest_total else 0.0,
        "bad": bad / rest_total if rest_total else 0.0,
        "total": total,
    }
