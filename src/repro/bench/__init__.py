"""Benchmark harness and paper-table formatting."""

from repro.bench.harness import (BenchRow, ToolRun, cached_cure,
                                 cached_parse, cached_source,
                                 clear_program_cache, count_lines,
                                 pristine_cure, pristine_parse,
                                 run_workload)
from repro.bench.tables import (aggregate_census, band_check,
                                census_table, figure8_table,
                                figure9_table, overhead_table)

__all__ = ["BenchRow", "ToolRun", "cached_cure", "cached_parse",
           "cached_source", "clear_program_cache", "count_lines",
           "pristine_cure", "pristine_parse",
           "run_workload", "aggregate_census", "band_check",
           "census_table", "figure8_table", "figure9_table",
           "overhead_table"]
