"""Benchmark harness and paper-table formatting."""

from repro.bench.harness import (BenchRow, ToolRun, count_lines,
                                 run_workload)
from repro.bench.tables import (aggregate_census, band_check,
                                census_table, figure8_table,
                                figure9_table, overhead_table)

__all__ = ["BenchRow", "ToolRun", "count_lines", "run_workload",
           "aggregate_census", "band_check", "census_table",
           "figure8_table", "figure9_table", "overhead_table"]
