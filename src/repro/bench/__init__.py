"""Benchmark harness and paper-table formatting."""

from repro.bench.harness import (BenchRow, ToolRun, cached_cure,
                                 cached_parse, cached_source,
                                 clear_program_cache, count_lines,
                                 pristine_cure, pristine_parse,
                                 run_workload)
from repro.bench.tables import (aggregate_census, band_check,
                                census_table, figure8_table,
                                figure9_table, overhead_table)
from repro.bench.trajectory import (BENCH_SCHEMA, QUICK_SUITE, SUITE,
                                    append_history, bench_record,
                                    diff_bench, load_record,
                                    measure_cell, read_history,
                                    render_diff, render_record,
                                    run_bench, run_suite_cells)

__all__ = ["BenchRow", "ToolRun", "cached_cure", "cached_parse",
           "cached_source", "clear_program_cache", "count_lines",
           "pristine_cure", "pristine_parse",
           "run_workload", "aggregate_census", "band_check",
           "census_table", "figure8_table", "figure9_table",
           "overhead_table",
           "BENCH_SCHEMA", "QUICK_SUITE", "SUITE",
           "append_history", "bench_record", "diff_bench",
           "load_record", "measure_cell", "read_history",
           "render_diff", "render_record", "run_bench",
           "run_suite_cells"]
