"""The benchmark harness: run a workload under every tool and collect
the measurements the paper's tables report.

For one workload the harness produces a :class:`BenchRow` containing:

* the source size (lines of code) — the "Lines of code" column;
* the static pointer-kind percentages — the "% sf/sq/w/rt" column;
* the cured/raw, purify/raw and valgrind/raw cycle ratios — the
  "CCured Ratio" and "Valgrind Ratio" columns;
* cast census, trusted-cast and split statistics for the Section 3/5
  analyses.

Every mode gets a *fresh parse* of the program: curing mutates the IR
(check insertion, qualifier solving), so tools never share trees.
All measurements are deterministic (the cost model is exact), so a
table regenerates identically on every run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.baselines import PurifyChecker, ValgrindChecker
from repro.core import CureOptions
from repro.interp import ExecResult, run_cured, run_raw
from repro.workloads import Workload


@dataclass
class ToolRun:
    tool: str
    cycles: int
    status: int
    steps: int
    stdout: str = ""

    def ratio(self, base: "ToolRun") -> float:
        return self.cycles / base.cycles if base.cycles else 0.0


@dataclass
class BenchRow:
    """One row of a paper-style results table."""

    name: str
    lines: int
    kind_pct: dict[str, float]
    raw: ToolRun
    ccured: Optional[ToolRun] = None
    purify: Optional[ToolRun] = None
    valgrind: Optional[ToolRun] = None
    trusted_casts: int = 0
    census: dict[str, float] = field(default_factory=dict)
    split_fraction: float = 0.0
    meta_fraction: float = 0.0
    pointer_casts: int = 0

    @property
    def ccured_ratio(self) -> float:
        return self.ccured.ratio(self.raw) if self.ccured else 0.0

    @property
    def purify_ratio(self) -> float:
        return self.purify.ratio(self.raw) if self.purify else 0.0

    @property
    def valgrind_ratio(self) -> float:
        return self.valgrind.ratio(self.raw) if self.valgrind else 0.0

    def sf_sq_w_rt(self) -> str:
        p = self.kind_pct
        seq = p["seq"] + p.get("fseq", 0.0)  # CCured reported FSEQ
        return (f"{p['safe']*100:.0f}/{seq*100:.0f}/"          # as sq
                f"{p['wild']*100:.0f}/{p['rtti']*100:.0f}")


def count_lines(source: str) -> int:
    return sum(1 for line in source.splitlines()
               if line.strip() and not line.strip().startswith("//"))


def run_workload(w: Workload, *,
                 tools: tuple[str, ...] = ("ccured",),
                 options: Optional[CureOptions] = None,
                 scale: Optional[int] = None,
                 max_steps: int = 50_000_000) -> BenchRow:
    """Run one workload under raw + the requested tools."""
    src = w.source()
    raw_res = run_raw(w.parse(scale), args=list(w.args) or None,
                      stdin=w.stdin, max_steps=max_steps)
    cured = w.cure(options=options, scale=scale)
    row = BenchRow(
        name=w.name,
        lines=count_lines(src),
        kind_pct=cured.kind_percentages(),
        raw=_tool_run("raw", raw_res),
        trusted_casts=cured.trusted_casts,
        census=cured.census.fractions(),
        split_fraction=cured.split_result.split_fraction,
        meta_fraction=cured.split_result.meta_fraction,
        pointer_casts=cured.census.pointer_casts,
    )
    if "ccured" in tools:
        res = run_cured(cured, args=list(w.args) or None,
                        stdin=w.stdin, max_steps=max_steps)
        _assert_same_behaviour(w.name, raw_res, res)
        row.ccured = _tool_run("ccured", res)
    if "purify" in tools:
        res = run_raw(w.parse(scale), args=list(w.args) or None,
                      stdin=w.stdin, shadow=PurifyChecker(),
                      max_steps=max_steps)
        row.purify = _tool_run("purify", res)
    if "valgrind" in tools:
        res = run_raw(w.parse(scale), args=list(w.args) or None,
                      stdin=w.stdin, shadow=ValgrindChecker(),
                      max_steps=max_steps)
        row.valgrind = _tool_run("valgrind", res)
    return row


def _tool_run(tool: str, res: ExecResult) -> ToolRun:
    return ToolRun(tool, res.cycles, res.status, res.steps, res.stdout)


def _assert_same_behaviour(name: str, raw: ExecResult,
                           cured: ExecResult) -> None:
    """The cure must not change the observable behaviour of a correct
    program — checked on every benchmark run."""
    if raw.status != cured.status or raw.stdout != cured.stdout:
        raise AssertionError(
            f"{name}: cured behaviour diverged from raw "
            f"(status {raw.status} vs {cured.status})")
