"""The benchmark harness: run a workload under every tool and collect
the measurements the paper's tables report.

For one workload the harness produces a :class:`BenchRow` containing:

* the source size (lines of code) — the "Lines of code" column;
* the static pointer-kind percentages — the "% sf/sq/w/rt" column;
* the cured/raw, purify/raw and valgrind/raw cycle ratios — the
  "CCured Ratio" and "Valgrind Ratio" columns;
* cast census, trusted-cast and split statistics for the Section 3/5
  analyses.

Every mode gets a *fresh tree* of the program: curing mutates the IR
(check insertion, qualifier solving), so tools never share trees.
Instead of re-parsing and re-curing per tool, the harness keeps a
module-level cache of pristine parses and cures keyed by
``(workload, scale)`` resp. ``(workload, scale, CureOptions)`` and
deep-copies a cached tree on every use — same isolation, a fraction
of the cost.  All measurements are deterministic (the cost model is
exact), so a table regenerates identically on every run; the harness
exploits the same determinism to memoize whole *measurements*: a
``(workload, scale, engine, max_steps, tool, optimize-level,
options)`` run (see :func:`_result_key` — the engine and the
check-elimination level are always explicit in the key) yields the
same ``(cycles, status, steps, stdout, checks)`` every time, so
repeat requests across table tests are answered from
``_RESULT_CACHE`` instead of re-interpreting the program.
Executions themselves run on
the pristine cached trees — interpretation never mutates the IR (the
interpreter only stamps idempotent per-``Varinfo``/type caches), so
no defensive copy is needed for a measurement, and the closure
engine's per-``Fundec`` compilation is shared across every test.
"""

from __future__ import annotations

import copy
import difflib
import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.baselines import PurifyChecker, ValgrindChecker
from repro.cache import (canonical_options, cure_key, get_cache,
                         options_key as _options_key, parse_key)
from repro.cil.program import Program
from repro.core import CureOptions, CuredProgram, cure as _cure
from repro.cpp import PreprocessError
from repro.interp import ExecResult, run_cured, run_raw
from repro.runtime.checks import (CheckFailure, InterpreterLimitError,
                                  MemorySafetyError)
from repro.workloads import Workload


@dataclass
class ToolRun:
    tool: str
    cycles: int
    status: int
    steps: int
    stdout: str = ""
    #: run-time checks actually executed (0 for raw/baseline runs)
    checks: int = 0

    def ratio(self, base: "ToolRun") -> float:
        """Cycle ratio against ``base``; NaN when the base run did no
        work (a 0-cycle base means the ratio is undefined, and 0.0
        would silently read as 'no overhead' in a table)."""
        if not base.cycles:
            return math.nan
        return self.cycles / base.cycles


@dataclass
class BenchRow:
    """One row of a paper-style results table."""

    name: str
    lines: int
    kind_pct: dict[str, float]
    raw: ToolRun
    ccured: Optional[ToolRun] = None
    purify: Optional[ToolRun] = None
    valgrind: Optional[ToolRun] = None
    trusted_casts: int = 0
    census: dict[str, float] = field(default_factory=dict)
    split_fraction: float = 0.0
    meta_fraction: float = 0.0
    pointer_casts: int = 0

    @property
    def ccured_ratio(self) -> float:
        return self.ccured.ratio(self.raw) if self.ccured else 0.0

    @property
    def purify_ratio(self) -> float:
        return self.purify.ratio(self.raw) if self.purify else 0.0

    @property
    def valgrind_ratio(self) -> float:
        return self.valgrind.ratio(self.raw) if self.valgrind else 0.0

    def sf_sq_w_rt(self) -> str:
        p = self.kind_pct
        seq = p["seq"] + p.get("fseq", 0.0)  # CCured reported FSEQ
        return (f"{p['safe']*100:.0f}/{seq*100:.0f}/"          # as sq
                f"{p['wild']*100:.0f}/{p['rtti']*100:.0f}")


def count_lines(source: str) -> int:
    return sum(1 for line in source.splitlines()
               if line.strip() and not line.strip().startswith("//"))


# -- parse/cure cache --------------------------------------------------------
#
# Pristine trees keyed by workload identity; every use hands out a deep
# copy, so a caller curing (mutating) its tree can never poison the
# cache or a sibling tool's run.

_SOURCE_CACHE: dict[str, str] = {}
_PARSE_CACHE: dict[tuple, Program] = {}
_CURE_CACHE: dict[tuple, CuredProgram] = {}
#: preprocessed text + lint suppressions per (workload, scale) — the
#: content half of a disk-cache key (see :mod:`repro.cache.keys`)
_PP_CACHE: dict[tuple, tuple[str, tuple]] = {}
#: memoized measurements:
#: key -> (cycles, status, steps, stdout, checks executed)
_RESULT_CACHE: dict[tuple, tuple[int, int, int, str, int]] = {}

# The canonical CureOptions identity lives in repro.cache.keys now
# (imported above as _options_key): the in-process memoization and the
# on-disk cure cache key options the same way by construction.


def cached_source(w: Workload) -> str:
    """The workload's source text (generators like ijpeg are not free)."""
    src = _SOURCE_CACHE.get(w.name)
    if src is None:
        src = w.source()
        _SOURCE_CACHE[w.name] = src
    return src


def _preprocessed(w: Workload,
                  scale: Optional[int]) -> tuple[str, tuple]:
    """The preprocessed source text and the lint-suppression set —
    exactly what :meth:`Workload.parse` would feed the C parser, and
    therefore the content half of the workload's disk-cache key."""
    key = (w.name, scale if scale is not None else w.scale)
    got = _PP_CACHE.get(key)
    if got is None:
        from repro.cpp.preprocessor import Preprocessor
        from repro.workloads import PROGRAM_DIR
        pp = Preprocessor([PROGRAM_DIR], w._defines(scale))
        text = pp.preprocess(cached_source(w),
                             filename=w.name + ".c")
        got = (text, tuple(sorted(pp.lint_suppressions)))
        _PP_CACHE[key] = got
    return got


def pristine_parse(w: Workload,
                   scale: Optional[int] = None) -> Program:
    """The shared pristine parse — read/interpret only, never cure.

    Backed by the content-addressed disk cache: a warm process skips
    the preprocessor-to-lowering pipeline entirely and unpickles the
    stored tree (traced as a ``parse`` span with ``cached=True``)."""
    key = (w.name, scale if scale is not None else w.scale)
    prog = _PARSE_CACHE.get(key)
    if prog is None:
        disk = get_cache()
        dkey = None
        if disk.enabled:
            text, sup = _preprocessed(w, scale)
            dkey = parse_key(text, sup, w.name)
            from repro.obs.tracer import TRACER
            with TRACER.span("parse", name=w.name, cached=True):
                prog = disk.load(dkey)
        if prog is None:
            prog = w.parse(scale)
            if dkey is not None:
                disk.store(dkey, prog)
        _PARSE_CACHE[key] = prog
    return prog


def pristine_cure(w: Workload,
                  options: Optional[CureOptions] = None,
                  scale: Optional[int] = None) -> CuredProgram:
    """The shared pristine cure — read/interpret only, never mutate.

    Backed by the content-addressed disk cache keyed on
    ``hash(preprocessed source, canonical options, schema)``: a warm
    process unpickles the cured tree (plus its static metrics) instead
    of re-running constraints/solve/instrument (traced as a ``cure``
    span with ``cached=True``)."""
    key = (w.name, scale if scale is not None else w.scale,
           _options_key(options))
    cured = _CURE_CACHE.get(key)
    if cured is None:
        disk = get_cache()
        dkey = None
        if disk.enabled:
            text, sup = _preprocessed(w, scale)
            dkey = cure_key(
                text, sup, w.name,
                canonical_options(
                    options, trust_bad_casts=w.trust_bad_casts))
            from repro.obs.tracer import TRACER
            with TRACER.span("cure", name=w.name, cached=True):
                cured = disk.load(dkey)
        if cured is None:
            # Cure a copy of the cached parse: ``w.cure()`` would
            # re-parse from scratch, and parsing dominates the cure
            # pipeline.
            opts = options if options is not None else CureOptions(
                trust_bad_casts=w.trust_bad_casts)
            cured = _cure(copy.deepcopy(pristine_parse(w, scale)),
                          options=opts, name=w.name)
            if dkey is not None:
                disk.store(dkey, cured, static={
                    "kind_pct": cured.kind_percentages(),
                    "checks_emitted": {
                        k.value: v for k, v in
                        sorted(cured.check_counts.items(),
                               key=lambda kv: kv[0].value)},
                    "checks_removed": cured.checks_removed,
                    "optimize": cured.optimize_level,
                })
        _CURE_CACHE[key] = cured
    return cured


def cached_parse(w: Workload,
                 scale: Optional[int] = None) -> Program:
    """A fresh (deep-copied) parse of ``w`` from the pristine cache."""
    return copy.deepcopy(pristine_parse(w, scale))


def cached_cure(w: Workload,
                options: Optional[CureOptions] = None,
                scale: Optional[int] = None) -> CuredProgram:
    """A fresh (deep-copied) cure of ``w`` from the pristine cache."""
    return copy.deepcopy(pristine_cure(w, options, scale))


def clear_program_cache() -> None:
    """Drop all in-process cached parses/cures (tests poking at tree
    internals).  The on-disk cure cache is untouched: a disk hit hands
    back a freshly unpickled tree, which is exactly the isolation this
    reset exists to restore."""
    _SOURCE_CACHE.clear()
    _PARSE_CACHE.clear()
    _CURE_CACHE.clear()
    _PP_CACHE.clear()
    _RESULT_CACHE.clear()


def _result_key(w: Workload, scale: Optional[int], engine: str,
                max_steps: int, tool: str,
                options: Optional[CureOptions]) -> tuple:
    """The memoization key of one measurement — every dimension that
    can change the numbers, explicit in one place.  The engine name
    and the check-elimination level are always present, so a
    closures-vs-tree or a none/local/flow sweep can never reuse a
    stale cached result; the full options identity rides along for
    the remaining cure flags."""
    level = (options.optimize_level if options is not None
             else CureOptions().optimize_level)
    return (w.name, scale if scale is not None else w.scale,
            engine, max_steps, tool, level, _options_key(options))


def _measure(key: tuple, tool: str, runner) -> ToolRun:
    """A memoized measurement; ``runner`` executes on a cache miss."""
    got = _RESULT_CACHE.get(key)
    if got is None:
        res: ExecResult = runner()
        got = (res.cycles, res.status, res.steps, res.stdout,
               res.checks_executed)
        _RESULT_CACHE[key] = got
    return ToolRun(tool, *got)


def run_workload(w: Workload, *,
                 tools: tuple[str, ...] = ("ccured",),
                 options: Optional[CureOptions] = None,
                 scale: Optional[int] = None,
                 max_steps: int = 50_000_000,
                 engine: str = "closures") -> BenchRow:
    """Run one workload under raw + the requested tools."""
    src = cached_source(w)
    args = list(w.args) or None
    raw = _measure(
        _result_key(w, scale, engine, max_steps, "raw", None), "raw",
        lambda: run_raw(pristine_parse(w, scale), args=args,
                        stdin=w.stdin, max_steps=max_steps,
                        engine=engine))
    cured = pristine_cure(w, options=options, scale=scale)
    row = BenchRow(
        name=w.name,
        lines=count_lines(src),
        kind_pct=cured.kind_percentages(),
        raw=raw,
        trusted_casts=cured.trusted_casts,
        census=cured.census.fractions(),
        split_fraction=cured.split_result.split_fraction,
        meta_fraction=cured.split_result.meta_fraction,
        pointer_casts=cured.census.pointer_casts,
    )
    if "ccured" in tools:
        row.ccured = _measure(
            _result_key(w, scale, engine, max_steps, "ccured",
                        options), "ccured",
            lambda: run_cured(cured, args=args, stdin=w.stdin,
                              max_steps=max_steps, engine=engine))
        _assert_same_behaviour(w.name, raw, row.ccured)
    if "purify" in tools:
        row.purify = _measure(
            _result_key(w, scale, engine, max_steps, "purify", None),
            "purify",
            lambda: run_raw(pristine_parse(w, scale), args=args,
                            stdin=w.stdin, shadow=PurifyChecker(),
                            max_steps=max_steps, engine=engine))
    if "valgrind" in tools:
        row.valgrind = _measure(
            _result_key(w, scale, engine, max_steps, "valgrind",
                        None), "valgrind",
            lambda: run_raw(pristine_parse(w, scale), args=args,
                            stdin=w.stdin, shadow=ValgrindChecker(),
                            max_steps=max_steps, engine=engine))
    return row


def _assert_same_behaviour(name: str, raw: ToolRun,
                           cured: ToolRun) -> None:
    """The cure must not change the observable behaviour of a correct
    program — checked on every benchmark run.  On a mismatch the
    error carries a stdout diff plus the cycle/step deltas, so a
    diverging workload is diagnosable from the failure alone."""
    if raw.status == cured.status and raw.stdout == cured.stdout:
        return
    lines = [f"{name}: cured behaviour diverged from raw "
             f"(status {raw.status} vs {cured.status})",
             f"  cycles: raw {raw.cycles} vs cured {cured.cycles} "
             f"(delta {cured.cycles - raw.cycles:+d})",
             f"  steps:  raw {raw.steps} vs cured {cured.steps} "
             f"(delta {cured.steps - raw.steps:+d})"]
    if raw.stdout != cured.stdout:
        diff = list(difflib.unified_diff(
            raw.stdout.splitlines(keepends=True),
            cured.stdout.splitlines(keepends=True),
            fromfile=f"{name}.raw.stdout",
            tofile=f"{name}.cured.stdout"))
        shown = diff[:40]
        lines.append("  stdout diff:")
        lines.extend("    " + d.rstrip("\n") for d in shown)
        if len(diff) > len(shown):
            lines.append(f"    ... {len(diff) - len(shown)} more "
                         "diff lines")
    raise AssertionError("\n".join(lines))


# -- failure-contained suite runs -------------------------------------------


@dataclass
class FailureRow:
    """A workload that failed somewhere in the bench pipeline."""

    name: str
    phase: str        # parse | cure | run | compare
    error: str        # exception class name
    detail: str       # str(exception), first line
    attempts: int = 1
    failure: Optional[dict] = None  # CheckFailure record, if any


@dataclass
class SuiteResult:
    """Outcome of a failure-contained benchmark sweep."""

    rows: list[BenchRow] = field(default_factory=list)
    failures: list[FailureRow] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _is_transient(exc: BaseException) -> bool:
    """Errors worth one retry: machine pressure, not program facts."""
    if isinstance(exc, (MemoryError, OSError)):
        return True
    return (isinstance(exc, InterpreterLimitError)
            and "wall-clock" in str(exc))


def _failure_phase(exc: BaseException) -> str:
    if isinstance(exc, PreprocessError):
        return "parse"
    if isinstance(exc, AssertionError):
        return "compare"
    return "run"


def run_suite(workloads: Iterable[Workload], *,
              tools: tuple[str, ...] = ("ccured",),
              options: Optional[CureOptions] = None,
              scale: Optional[int] = None,
              max_steps: int = 50_000_000,
              engine: str = "closures",
              retries: int = 1) -> SuiteResult:
    """Run a set of workloads, containing per-workload failures.

    A crashing, hanging (step/deadline-limited) or diverging workload
    becomes a :class:`FailureRow` instead of aborting the whole sweep;
    transient-looking errors get one bounded retry.  Only
    ``KeyboardInterrupt`` (and other non-``Exception`` exits) still
    propagates."""
    result = SuiteResult()
    for w in workloads:
        attempts = 0
        while True:
            attempts += 1
            try:
                result.rows.append(run_workload(
                    w, tools=tools, options=options, scale=scale,
                    max_steps=max_steps, engine=engine))
                break
            except Exception as exc:
                if _is_transient(exc) and attempts <= retries:
                    continue
                detail = str(exc).splitlines()[0] if str(exc) else ""
                failure = None
                if isinstance(exc, MemorySafetyError):
                    failure = CheckFailure.from_exception(
                        exc).to_json()
                result.failures.append(FailureRow(
                    name=w.name, phase=_failure_phase(exc),
                    error=type(exc).__name__, detail=detail,
                    attempts=attempts, failure=failure))
                break
    return result
