"""Command-line interface: a ccured-like driver.

Usage (also available as ``python -m repro``)::

    python -m repro cure prog.c            # report + instrumented C
    python -m repro cure prog.c --report   # analysis report only
    python -m repro run prog.c [args...]   # cure then execute
    python -m repro run --raw prog.c       # uncured (hardware) run
    python -m repro bench NAME             # measure one workload
    python -m repro bench [--quick]        # pinned steps/sec suite,
                                           # appended to the
                                           # BENCH_history.jsonl ledger
    python -m repro bench diff --baseline baselines/bench-baseline.json
                                           # perf regression gate
                                           # (counts exact, speedup
                                           # ratio with slack)
    python -m repro profile --all-workloads
                                           # per-phase pipeline
                                           # breakdown (deterministic
                                           # counts; --timing for wall)
    python -m repro workloads              # list the benchmark suite
    python -m repro analyze prog.c         # per-function CFG/dataflow
                                           # and check-elimination stats
    python -m repro lint prog.c            # static must-fail
                                           # diagnostics (text/json/
                                           # sarif, blame-chain paths)
    python -m repro faults lint            # validate lint against the
                                           # fault campaign's variants
    python -m repro faults list            # list mutation classes
    python -m repro faults run --seed 1 --campaign smoke
                                           # fault-injection campaign
    python -m repro metrics --all-workloads --json
                                           # deterministic pipeline
                                           # metrics (checks, kinds,
                                           # per-site histograms)
    python -m repro metrics diff --baseline old.json --fail-on-regress
                                           # CI regression gate
    python -m repro explain NAME|FILE      # blame chains + root-cause
                                           # ranking per pointer kind
    python -m repro explain diff --baseline a.json --current b.json
                                           # did the annotation
                                           # shrink WILD?
    python -m repro sweep --jobs auto --out artifacts/
                                           # the full workload matrix,
                                           # sharded across cores
    python -m repro sweep --jobs 2 --trace out.json
                                           # one merged Chrome trace:
                                           # every worker's spans on
                                           # real pid/tid lanes
    python -m repro cache stats|clear      # the content-addressed
                                           # cure cache

Sweep-shaped commands (``metrics``, ``lint``, ``analyze``, ``faults
run``, ``faults lint``, ``sweep``) accept ``--jobs N|auto`` to shard
their workload loop across processes; sharded output is byte-identical
to the serial output, and all of them share the on-disk cure cache
(``REPRO_CACHE_DIR``; ``REPRO_CACHE=off`` disables it).

The exit status of ``run`` is the program's exit status; memory-safety
failures exit with status 99 after printing the check that fired,
mirroring how a cured binary aborts with a check message.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.core import CureOptions, cure
from repro.core.options import OPTIMIZE_LEVELS
from repro.frontend import parse_program
from repro.interp import ENGINES, run_cured, run_raw
from repro.runtime.checks import (MemorySafetyError, ProgramAbort,
                                  SegmentationFault)

SAFETY_EXIT = 99


def _read_source(path: str) -> str:
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def _optimize_level(args: argparse.Namespace) -> Optional[str]:
    # --no-optimize is the historical spelling of --optimize=none and
    # wins when both are given.
    if getattr(args, "no_optimize", False):
        return "none"
    return getattr(args, "optimize", None)


def _options(args: argparse.Namespace,
             provenance: bool = False) -> CureOptions:
    return CureOptions(
        use_physical=not args.no_physical,
        use_rtti=not args.no_rtti,
        trust_bad_casts=args.trust_bad_casts,
        all_split=args.all_split,
        optimize=_optimize_level(args),
        provenance=provenance,
        temporal=getattr(args, "temporal", False),
    )


def _add_engine_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument("--engine", choices=ENGINES, default="closures",
                   help="execution engine: the closure compiler "
                        "(default) or the tree-walking oracle")


def _jobs_value(text: str):
    """``--jobs`` values: a positive integer, or ``auto`` for one
    worker per core (:func:`repro.sweep.resolve_jobs` resolves it)."""
    s = text.strip().lower()
    if s == "auto":
        return "auto"
    try:
        n = int(s)
    except ValueError:
        n = 0
    if n < 1:
        raise argparse.ArgumentTypeError(
            f"invalid --jobs value {text!r} (a positive integer, "
            "or 'auto')")
    return n


def _shared_flags(*, jobs: bool = False, quiet: bool = False,
                  json_path: bool = False, json_const: bool = False,
                  progress: bool = False) -> argparse.ArgumentParser:
    """A parent parser carrying the flags every sweep-shaped command
    spells the same way: ``--jobs N|auto``, ``--quiet``, and
    ``--json PATH`` (``json_const`` selects the optional-PATH variant
    where a bare ``--json`` means stdout)."""
    p = argparse.ArgumentParser(add_help=False)
    if jobs:
        p.add_argument("--jobs", type=_jobs_value, default=None,
                       metavar="N",
                       help="parallel worker processes ('auto' = one "
                            "per core; default: serial)")
    if quiet:
        p.add_argument("--quiet", action="store_true",
                       help="suppress progress lines")
    if progress:
        p.add_argument("--progress", action="store_true",
                       help="live '[done/total shards] elapsed' line "
                            "on stderr (auto-disabled when stderr is "
                            "not a TTY; --quiet suppresses it)")
    if json_path:
        if json_const:
            p.add_argument("--json", nargs="?", const="-",
                           default=None, metavar="PATH",
                           help="emit deterministic JSON (to PATH, "
                                "or stdout when no PATH is given)")
        else:
            p.add_argument("--json", default=None, metavar="PATH",
                           help="write the JSON report here "
                                "('-' for stdout)")
    return p


def _progress_line(args: argparse.Namespace, total: int):
    """An active :class:`~repro.sweep.ProgressLine` when
    ``--progress`` was given (and ``--quiet`` was not), else None.
    The line itself writes to stderr only and auto-disables when
    stderr is not a TTY, so it can never contaminate stdout/JSON."""
    if not getattr(args, "progress", False) \
            or getattr(args, "quiet", False):
        return None
    from repro.sweep import ProgressLine
    return ProgressLine(total)


def _add_cure_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--no-physical", action="store_true",
                   help="disable physical subtyping (upcasts go WILD)")
    p.add_argument("--no-rtti", action="store_true",
                   help="disable RTTI pointers (downcasts go WILD)")
    p.add_argument("--trust-bad-casts", action="store_true",
                   help="trust remaining bad casts instead of WILD")
    p.add_argument("--all-split", action="store_true",
                   help="use the compatible representation everywhere")
    p.add_argument("--temporal", action="store_true",
                   help="also emit lock-and-key temporal checks "
                        "(CHECK_ALIVE): use-after-free traps even "
                        "when the allocator recycles addresses")
    p.add_argument("--no-optimize", action="store_true",
                   help="keep redundant checks "
                        "(alias for --optimize=none)")
    p.add_argument("--optimize", choices=OPTIMIZE_LEVELS,
                   default=None, metavar="LEVEL",
                   help="check-elimination level: none, local "
                        "(straight-line), or flow (whole-function "
                        "dataflow, the default)")
    p.add_argument("-I", "--include", action="append", default=[],
                   metavar="DIR", help="extra include directory")


def cmd_cure(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    cured = cure(source, options=_options(args), name=args.file,
                 include_dirs=args.include or None)
    print(cured.report())
    if not args.report:
        print()
        print(cured.to_c(annotate_kinds=not args.plain))
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    source = _read_source(args.file)
    stdin = sys.stdin.read() if args.stdin else ""
    try:
        if args.raw:
            prog = parse_program(source, args.file,
                                 include_dirs=args.include or None)
            result = run_raw(prog, args=args.args, stdin=stdin,
                             engine=args.engine,
                             reuse_freed=args.reuse_freed)
        else:
            # provenance on: a trapping run explains the failing
            # pointer's kind with its blame chain
            cured = cure(source,
                         options=_options(args, provenance=True),
                         name=args.file,
                         include_dirs=args.include or None)
            result = run_cured(cured, args=args.args, stdin=stdin,
                               engine=args.engine,
                               reuse_freed=args.reuse_freed)
    except MemorySafetyError as exc:
        print(result_stdout_of(exc), end="")
        print(f"[{type(exc).__name__}] {exc}", file=sys.stderr)
        _print_blame(exc)
        return SAFETY_EXIT
    except (SegmentationFault, ProgramAbort) as exc:
        print(f"[{type(exc).__name__}] {exc}", file=sys.stderr)
        return SAFETY_EXIT
    sys.stdout.write(result.stdout)
    if args.stats:
        print(f"[exit {result.status}; {result.steps} steps; "
              f"{result.cost.total} cycles]", file=sys.stderr)
    return result.status


def result_stdout_of(exc: BaseException) -> str:
    # Output produced before the failing check is not tracked on the
    # exception; keep the hook for future use.
    return ""


def _print_blame(exc: BaseException) -> None:
    """Print the failing pointer's blame chain, if one was attached
    (failure forensics, stderr)."""
    failure = getattr(exc, "failure", None)
    if failure is None or not getattr(failure, "blame", None):
        return
    from repro.obs.blame import render_chain
    chain = {"kind": failure.pointer_kind or "?",
             "where": (f"pointer checked by {failure.check} "
                       f"in {failure.function}"),
             "steps": failure.blame}
    print("blame chain of the failing pointer:", file=sys.stderr)
    for ln in render_chain(chain):
        print("  " + ln, file=sys.stderr)


def cmd_workloads(args: argparse.Namespace) -> int:
    from repro.workloads import all_workloads
    for w in sorted(all_workloads(), key=lambda w: (w.category,
                                                    w.name)):
        print(f"{w.name:<18} [{w.category}] {w.description}")
        print(f"{'':18} -> {w.paper_row}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    if args.name == "diff":
        from repro.bench import (diff_bench, load_record,
                                 render_diff, run_bench)
        if not args.baseline:
            print("bench diff: --baseline is required",
                  file=sys.stderr)
            return 2
        try:
            baseline = load_record(args.baseline)
        except (OSError, ValueError) as exc:
            print(f"bench diff: cannot read baseline "
                  f"{args.baseline!r}: {exc}", file=sys.stderr)
            return 2
        if args.current:
            current = load_record(args.current)
        else:
            current = run_bench(
                quick=args.quick,
                progress=(None if args.quiet else
                          lambda line: print(line,
                                             file=sys.stderr)))
        failures = diff_bench(baseline, current,
                              slack_pct=args.slack)
        print(render_diff(baseline, current, failures,
                          slack_pct=args.slack))
        return 2 if failures else 0

    if args.name is None:
        # suite mode: run the pinned micro-suite, append one record
        # to the trajectory ledger
        from repro.bench import (append_history, render_record,
                                 run_bench)
        record = run_bench(
            quick=args.quick,
            progress=(None if args.quiet else
                      lambda line: print(line, file=sys.stderr)))
        append_history(record, args.history)
        if args.json:
            text = json.dumps(record, indent=2, sort_keys=True)
            _emit_json(text + "\n", args.json, "bench record")
        print(render_record(record))
        print(f"record appended to {args.history}", file=sys.stderr)
        return 0

    from repro.bench import run_workload
    from repro.workloads import get
    try:
        w = get(args.name)
    except KeyError:
        print(f"unknown workload {args.name!r} "
              "(see `python -m repro workloads`)", file=sys.stderr)
        return 2
    tools = tuple(args.tools.split(",")) if args.tools else ("ccured",)
    row = run_workload(w, tools=tools, scale=args.scale,
                       engine=args.engine)
    print(f"{row.name}: {row.lines} LoC, kinds {row.sf_sq_w_rt()}")
    print(f"  raw      {row.raw.cycles:>12} cycles  1.00x")
    for tool in ("ccured", "purify", "valgrind"):
        tr = getattr(row, tool)
        if tr is not None:
            print(f"  {tool:<8} {tr.cycles:>12} cycles  "
                  f"{tr.ratio(row.raw):.2f}x")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import analyze_source, render_table
    reports = []
    if args.all_workloads or args.workload:
        from repro.sweep import sharded_analyze
        try:
            selected = _select_workloads(args.workload,
                                         args.all_workloads)
        except KeyError as exc:
            print(f"unknown workload {exc.args[0]!r} "
                  "(see `python -m repro workloads`)",
                  file=sys.stderr)
            return 2
        reports = sharded_analyze(selected, scale=args.scale,
                                  jobs=args.jobs)
    else:
        if not args.file:
            print("analyze: give a FILE, --workload NAME or "
                  "--all-workloads", file=sys.stderr)
            return 2
        reports.append(analyze_source(
            _read_source(args.file), name=args.file,
            include_dirs=args.include or None))
    if args.json:
        payload = reports[0] if len(reports) == 1 else reports
        text = json.dumps(payload, indent=2, sort_keys=True)
        if args.json == "-":
            print(text)
        else:
            with open(args.json, "w", encoding="utf-8") as f:
                f.write(text + "\n")
            print(f"stats written to {args.json}", file=sys.stderr)
    else:
        for i, r in enumerate(reports):
            if i:
                print()
            print(render_table(r))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (SEVERITIES, lint_source,
                                reports_json, reports_sarif)
    optimize = args.optimize or "flow"
    reports = []
    if args.all_workloads or args.workload:
        from repro.sweep import sharded_lint
        try:
            selected = _select_workloads(args.workload,
                                         args.all_workloads)
        except KeyError as exc:
            print(f"unknown workload {exc.args[0]!r} "
                  "(see `python -m repro workloads`)",
                  file=sys.stderr)
            return 2
        pl = _progress_line(args, len(selected))
        show = not args.quiet and args.format == "text" \
            and pl is None
        try:
            reports = sharded_lint(
                selected, optimize=optimize, scale=args.scale,
                jobs=args.jobs,
                progress=(pl.tick if pl is not None else
                          (lambda line: print(line,
                                              file=sys.stderr))
                          if show else None))
        finally:
            if pl is not None:
                pl.close()
    else:
        if not args.file:
            print("lint: give a FILE, --workload NAME[,NAME...] or "
                  "--all-workloads", file=sys.stderr)
            return 2
        # parse_program appends ".c" to the unit name, so strip a
        # trailing ".c" to keep reported file names exact
        unit = (args.file[:-2] if args.file.endswith(".c")
                else args.file)
        reports.append(lint_source(
            _read_source(args.file), name=unit,
            optimize=optimize, temporal=args.temporal,
            include_dirs=args.include or None))
    if args.format == "json":
        text = reports_json(reports)
    elif args.format == "sarif":
        text = reports_sarif(reports)
    else:
        text = "\n".join(r.render() for r in reports) + "\n"
    if args.output == "-":
        print(text, end="")
    else:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text)
        print(f"lint report written to {args.output}",
              file=sys.stderr)
    if args.fail_on != "never":
        threshold = SEVERITIES.index(args.fail_on)
        for r in reports:
            worst = r.worst_severity()
            if worst is not None \
                    and SEVERITIES.index(worst) >= threshold:
                return 1
    return 0


def _emit_json(text: str, path: str, what: str = "report") -> None:
    """Write a JSON document to ``path``, with ``-`` meaning stdout —
    the one spelling every ``--json PATH`` flag shares."""
    if path == "-":
        sys.stdout.write(text)
        return
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)
    print(f"{what} written to {path}", file=sys.stderr)


def cmd_faults(args: argparse.Namespace) -> int:
    from repro.faults import MUTATORS, report_to_json, \
        report_to_markdown
    if args.faults_command == "list":
        for name, builder in MUTATORS.items():
            import random
            spec = builder(random.Random(f"0:doc:{name}"))
            print(f"{name:<20} -> {spec.expected.__name__}")
            print(f"{'':20}    {spec.description}")
        return 0
    if args.faults_command == "lint":
        from repro.sweep import sharded_lintval
        try:
            selected = _select_workloads(args.workloads,
                                         args.all_workloads)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        val = sharded_lintval(
            args.seed,
            workloads=selected or None,
            classes=(args.classes.split(",") if args.classes
                     else None),
            optimize=args.optimize or "flow", scale=args.scale,
            jobs=args.jobs,
            progress=(None if args.quiet
                      else lambda line: print(line,
                                              file=sys.stderr)))
        if args.json:
            _emit_json(val.dumps(), args.json)
        print(val.render())
        return 0 if val.ok else 2
    # faults run
    from repro.sweep import sharded_campaign
    workloads = (args.workloads.split(",") if args.workloads
                 else None)
    classes = args.classes.split(",") if args.classes else None
    pl = None
    if getattr(args, "progress", False) and not args.quiet:
        from repro.faults.campaign import CAMPAIGNS
        from repro.workloads import all_workloads
        names = (workloads or CAMPAIGNS.get(args.campaign)
                 or [w.name for w in all_workloads()])
        pl = _progress_line(args, len(names))
    try:
        report = sharded_campaign(
            args.seed, args.campaign, workloads=workloads,
            classes=classes, scale=args.scale,
            optimize=args.optimize, jobs=args.jobs,
            progress=(pl.tick if pl is not None else
                      None if args.quiet
                      else lambda line: print(line,
                                              file=sys.stderr)))
    except KeyError as exc:
        if pl is not None:
            pl.close()
        print(exc.args[0], file=sys.stderr)
        return 2
    if pl is not None:
        pl.close()
    if args.json:
        _emit_json(report_to_json(report), args.json)
    print(report_to_markdown(report), end="")
    return 0 if report.ok else 2


def cmd_explain(args: argparse.Namespace) -> int:
    import os

    from repro.obs import (EXPLAIN_SCHEMA, diff_explain,
                           explain_report, load_json, render_explain,
                           render_explain_diff, write_json)

    if args.target == "diff":
        if not (args.baseline and args.current):
            print("explain diff: --baseline and --current are "
                  "required", file=sys.stderr)
            return 2
        baseline = load_json(args.baseline)
        current = load_json(args.current)
        for side, payload in (("baseline", baseline),
                              ("current", current)):
            if payload.get("schema") != EXPLAIN_SCHEMA:
                print(f"explain diff: {side} has schema "
                      f"{payload.get('schema')!r}, expected "
                      f"{EXPLAIN_SCHEMA!r}", file=sys.stderr)
                return 2
        d = diff_explain(baseline, current)
        print(render_explain_diff(d))
        return 1 if d["verdict"] == "regressed" else 0

    target = args.target
    opts = _options(args, provenance=True)
    looks_like_file = (target.endswith(".c") or os.sep in target
                       or os.path.exists(target))
    if looks_like_file:
        try:
            source = _read_source(target)
        except OSError as exc:
            print(f"explain: cannot read {target!r}: {exc}",
                  file=sys.stderr)
            return 2
        cured = cure(source, options=opts, name=target,
                     include_dirs=args.include or None)
        name = target
    else:
        from repro.bench.harness import pristine_cure
        from repro.workloads import get
        try:
            w = get(target)
        except KeyError:
            print(f"unknown workload {target!r} "
                  "(see `python -m repro workloads`)",
                  file=sys.stderr)
            return 2
        # honor the workload's own trust default unless overridden
        opts.trust_bad_casts = (args.trust_bad_casts
                                or w.trust_bad_casts)
        cured = pristine_cure(w, options=opts, scale=args.scale)
        name = w.name
    report = explain_report(cured, name, function=args.function,
                            var=args.var)
    if args.json:
        write_json(report, args.json)
        if args.json != "-":
            print(f"explain report written to {args.json}",
                  file=sys.stderr)
    else:
        print(render_explain(report, top=args.top))
    return 0


def _select_workloads(names: Optional[str], all_workloads: bool):
    """Resolve a ``--workload a,b``/``--all-workloads`` selection."""
    from repro.workloads import all_workloads as _all, get
    if all_workloads:
        return list(_all())
    selected = []
    for name in (names or "").split(","):
        name = name.strip()
        if not name:
            continue
        selected.append(get(name))  # KeyError -> caller reports
    return selected


def cmd_metrics(args: argparse.Namespace) -> int:
    from repro.obs import (Thresholds, diff_reports, load_json,
                           render_diff, render_report, write_json)
    from repro.sweep import sharded_metrics

    if getattr(args, "metrics_command", None) == "diff":
        baseline = load_json(args.baseline)
        if args.current:
            current = load_json(args.current)
        else:
            # Collect a fresh report under the baseline's own
            # configuration, over the full suite (so brand-new
            # workloads surface as notes).
            from repro.workloads import all_workloads
            report = sharded_metrics(
                list(all_workloads()),
                engine=baseline.get("engine", "closures"),
                optimize=baseline.get("optimize"),
                scale=baseline.get("scale"),
                jobs=args.jobs,
                progress=(None if args.quiet else
                          lambda line: print(line, file=sys.stderr)))
            current = report.to_json()
        res = diff_reports(baseline, current, Thresholds(
            checks_pct=args.max_checks_pct,
            cycles_pct=args.max_cycles_pct,
            elided_drop=args.max_elided_drop,
            phase_pct=args.max_phase_pct))
        print(render_diff(res, verbose=args.verbose))
        if not res.ok:
            if args.fail_on_regress:
                print("metrics diff: regression gate FAILED",
                      file=sys.stderr)
                return 2
            return 1
        return 0

    # run mode: collect and emit a report
    try:
        selected = _select_workloads(args.workload,
                                     args.all_workloads)
    except KeyError as exc:
        print(f"unknown workload {exc.args[0]!r} "
              "(see `python -m repro workloads`)", file=sys.stderr)
        return 2
    if not selected:
        print("metrics: give --workload NAME[,NAME...] or "
              "--all-workloads", file=sys.stderr)
        return 2
    trace_records: Optional[list] = [] if args.trace else None
    pl = _progress_line(args, len(selected))
    def _echo(line: str) -> None:
        print(line, file=sys.stderr)

    if pl is not None:
        progress = pl.tick
    elif args.quiet or not args.json:
        progress = None
    else:
        progress = _echo
    try:
        report = sharded_metrics(
            selected, engine=args.engine, optimize=args.optimize,
            scale=args.scale, timing=args.timing,
            provenance=args.provenance, temporal=args.temporal,
            trace=trace_records, jobs=args.jobs, progress=progress)
    finally:
        if pl is not None:
            pl.close()
    if args.trace:
        from repro.obs.tracer import write_chrome_trace
        write_chrome_trace(trace_records or [], args.trace)
        if args.trace != "-":
            print(f"chrome trace written to {args.trace} "
                  "(load in chrome://tracing or ui.perfetto.dev)",
                  file=sys.stderr)
    if args.json:
        write_json(report.to_json(include_timing=args.timing),
                   args.json)
        if args.json != "-":
            print(f"metrics written to {args.json}",
                  file=sys.stderr)
    else:
        print(render_report(report, top_sites=args.top))
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import (collect_profile, render_profile,
                           stable_dumps)
    try:
        selected = _select_workloads(args.workload,
                                     args.all_workloads)
    except KeyError as exc:
        print(f"unknown workload {exc.args[0]!r} "
              "(see `python -m repro workloads`)", file=sys.stderr)
        return 2
    if not selected:
        print("profile: give --workload NAME[,NAME...] or "
              "--all-workloads", file=sys.stderr)
        return 2
    trace_records: Optional[list] = [] if args.trace else None
    pl = _progress_line(args, len(selected))
    try:
        report = collect_profile(
            selected, engine=args.engine, optimize=args.optimize,
            scale=args.scale, jobs=args.jobs, trace=trace_records,
            progress=(pl.tick if pl is not None else None))
    finally:
        if pl is not None:
            pl.close()
    if args.trace:
        from repro.obs.tracer import write_chrome_trace
        write_chrome_trace(trace_records or [], args.trace)
        if args.trace != "-":
            print(f"chrome trace written to {args.trace}",
                  file=sys.stderr)
    if args.json:
        _emit_json(stable_dumps(
            report.to_json(include_timing=args.timing)),
            args.json, "profile")
    else:
        print(render_profile(report, include_timing=args.timing))
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache import get_cache
    from repro.obs.serialize import stable_dumps
    disk = get_cache()
    if args.cache_command == "clear":
        removed = disk.clear()
        print(f"cure cache cleared: {removed} entries removed "
              f"({disk.root})")
        return 0
    # cache stats
    stats = disk.stats()
    session = disk.session
    if args.json:
        payload = stats.to_json()
        payload["session"] = {
            "hits": session.hits, "misses": session.misses,
            "stores": session.stores,
            "hit_rate_pct": session.hit_rate_pct}
        _emit_json(stable_dumps(payload), args.json, "cache stats")
        return 0

    def rate(s) -> str:
        pct = s.hit_rate_pct
        return "n/a (no lookups)" if pct is None else f"{pct:.1f}%"

    state = "enabled" if stats.enabled else "DISABLED (REPRO_CACHE)"
    print(f"cure cache at {stats.root} [{state}]")
    print(f"  entries     {stats.entries:>8}  "
          f"({stats.bytes / 1024:.0f} KiB)")
    print(f"  hits        {stats.hits:>8}")
    print(f"  misses      {stats.misses:>8}")
    print(f"  stores      {stats.stores:>8}")
    print(f"  invalidated {stats.invalidated:>8}")
    print(f"  hit rate    {rate(stats):>8}  (cross-process)")
    print(f"  session     {rate(session):>8}  (this process: "
          f"{session.hits} hits / {session.misses} misses)")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.obs.serialize import stable_dumps
    from repro.sweep import count_sweep_shards, run_sweep
    targets = tuple(t.strip() for t in args.targets.split(",")
                    if t.strip())
    engines = tuple(e.strip() for e in args.engines.split(",")
                    if e.strip())
    levels = tuple(lv.strip() for lv in args.optimize.split(",")
                   if lv.strip())
    for e in engines:
        if e not in ENGINES:
            print(f"sweep: unknown engine {e!r}", file=sys.stderr)
            return 2
    for lv in levels:
        if lv not in OPTIMIZE_LEVELS:
            print(f"sweep: unknown optimize level {lv!r}",
                  file=sys.stderr)
            return 2
    trace_records: Optional[list] = [] if args.trace else None
    pl = _progress_line(args, count_sweep_shards(
        targets=targets, engines=engines, levels=levels,
        campaign=args.campaign))
    try:
        summary = run_sweep(
            targets=targets, engines=engines, levels=levels,
            jobs=args.jobs, out_dir=args.out, seed=args.seed,
            campaign=args.campaign, scale=args.scale,
            progress=(None if args.quiet
                      else lambda line: print(line,
                                              file=sys.stderr)),
            shard_progress=(pl.tick if pl is not None else None),
            trace=trace_records)
    except KeyError as exc:
        if pl is not None:
            pl.close()
        print(f"sweep: {exc.args[0]}", file=sys.stderr)
        return 2
    if pl is not None:
        pl.close()
    if args.trace:
        from repro.obs.tracer import write_chrome_trace
        write_chrome_trace(trace_records or [], args.trace)
        if args.trace != "-":
            print(f"chrome trace written to {args.trace} "
                  "(load in chrome://tracing or ui.perfetto.dev)",
                  file=sys.stderr)
    if args.json:
        _emit_json(stable_dumps(summary.to_json()), args.json,
                   "sweep summary")
    print(summary.render())
    return 0 if summary.ok else 2


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CCured-in-the-Real-World reproduction driver")
    sub = parser.add_subparsers(dest="command", required=True)

    p_cure = sub.add_parser("cure",
                            help="analyze + instrument a C file")
    p_cure.add_argument("file")
    p_cure.add_argument("--report", action="store_true",
                        help="print only the analysis report")
    p_cure.add_argument("--plain", action="store_true",
                        help="omit kind annotations in the output")
    _add_cure_flags(p_cure)
    p_cure.set_defaults(fn=cmd_cure)

    p_run = sub.add_parser("run", help="cure and execute a C file")
    p_run.add_argument("file")
    p_run.add_argument("args", nargs="*",
                       help="argv for the program")
    p_run.add_argument("--raw", action="store_true",
                       help="run uncured (hardware semantics)")
    p_run.add_argument("--stdin", action="store_true",
                       help="pass this process's stdin to the program")
    p_run.add_argument("--stats", action="store_true",
                       help="print steps/cycles to stderr")
    p_run.add_argument("--reuse-freed", action="store_true",
                       help="allocator recycles freed heap addresses "
                            "(pair with --temporal: the cured run "
                            "traps stale pointers a raw run reads "
                            "silently)")
    _add_engine_flag(p_run)
    _add_cure_flags(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_wl = sub.add_parser("workloads",
                          help="list the benchmark workloads")
    p_wl.set_defaults(fn=cmd_workloads)

    p_bench = sub.add_parser(
        "bench",
        parents=[_shared_flags(quiet=True, json_path=True,
                               json_const=True)],
        help="measure one workload; with no NAME, run the pinned "
             "steps/sec micro-suite and append to the trajectory "
             "ledger; 'diff' gates against a baseline record")
    p_bench.add_argument("name", nargs="?", default=None,
                         help="a workload name, 'diff', or nothing "
                              "(= run the micro-suite)")
    p_bench.add_argument("--tools", default="ccured,valgrind",
                         help="comma list: ccured,purify,valgrind")
    p_bench.add_argument("--scale", type=int, default=None)
    p_bench.add_argument("--quick", action="store_true",
                         help="the CI smoke subset of the suite "
                              "(one workload, both modes)")
    p_bench.add_argument("--history", default="BENCH_history.jsonl",
                         metavar="PATH",
                         help="the append-only ledger "
                              "(default: BENCH_history.jsonl)")
    p_bench.add_argument("--baseline", default=None, metavar="PATH",
                         help="(diff) the committed baseline record")
    p_bench.add_argument("--current", default=None, metavar="PATH",
                         help="(diff) record to gate — a JSON file "
                              "or the last line of a .jsonl ledger "
                              "(omitted: measure one now)")
    p_bench.add_argument("--slack", type=float, default=50.0,
                         metavar="PCT",
                         help="(diff) allowed %% drop in the "
                              "closures-vs-tree speedup ratio "
                              "(default 50; steps/cycles/status are "
                              "always exact)")
    _add_engine_flag(p_bench)
    p_bench.set_defaults(fn=cmd_bench)

    p_an = sub.add_parser(
        "analyze",
        parents=[_shared_flags(jobs=True, json_path=True)],
        help="per-function CFG, dataflow-fact and check-elimination "
             "statistics")
    p_an.add_argument("file", nargs="?", default=None,
                      help="a C file to analyze")
    p_an.add_argument("--workload", default=None, metavar="NAMES",
                      help="analyze benchmark workload(s) "
                           "(comma list) instead")
    p_an.add_argument("--all-workloads", action="store_true",
                      help="analyze every benchmark workload")
    p_an.add_argument("--scale", type=int, default=None,
                      help="workload problem size")
    p_an.add_argument("-I", "--include", action="append", default=[],
                      metavar="DIR", help="extra include directory")
    p_an.set_defaults(fn=cmd_analyze)

    p_lint = sub.add_parser(
        "lint",
        parents=[_shared_flags(jobs=True, quiet=True,
                               progress=True)],
        help="cure-time static diagnostics: sites the must-analysis "
             "proves fail on every path (with blame-chain paths)")
    p_lint.add_argument("file", nargs="?", default=None,
                        help="a C file to lint")
    p_lint.add_argument("--workload", default=None, metavar="NAME",
                        help="lint benchmark workload(s) "
                             "(comma list) instead")
    p_lint.add_argument("--all-workloads", action="store_true",
                        help="lint every benchmark workload")
    p_lint.add_argument("--scale", type=int, default=None,
                        help="workload problem size")
    p_lint.add_argument("--optimize", choices=OPTIMIZE_LEVELS,
                        default=None, metavar="LEVEL",
                        help="check-elimination level to lint under "
                             "(default flow)")
    p_lint.add_argument("--temporal", action="store_true",
                        help="cure FILE with lock-and-key temporal "
                             "checking")
    p_lint.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="output format (json is byte-"
                             "deterministic; see the CI lint gate)")
    p_lint.add_argument("-o", "--output", default="-", metavar="PATH",
                        help="write the report here ('-' for stdout)")
    p_lint.add_argument("--fail-on",
                        choices=("never", "warning", "error"),
                        default="error",
                        help="exit 1 when a diagnostic of at least "
                             "this severity is found")
    p_lint.add_argument("-I", "--include", action="append",
                        default=[], metavar="DIR",
                        help="extra include directory")
    p_lint.set_defaults(fn=cmd_lint)

    p_exp = sub.add_parser(
        "explain",
        help="explain pointer-kind inference: per-pointer blame "
             "chains and a root-cause ranking (the paper's 'CCured "
             "browser' workflow)")
    p_exp.add_argument("target",
                       help="a workload name, a C file path, or "
                            "'diff' to compare two explain reports "
                            "(exit 1 when WILD regressed)")
    p_exp.add_argument("--baseline", default=None, metavar="PATH",
                       help="(diff) explain JSON before the change")
    p_exp.add_argument("--current", default=None, metavar="PATH",
                       help="(diff) explain JSON after the change")
    p_exp.add_argument("--function", default=None, metavar="F",
                       help="only pointers declared in function F")
    p_exp.add_argument("--var", default=None, metavar="V",
                       help="only pointers named V")
    p_exp.add_argument("--json", nargs="?", const="-", default=None,
                       metavar="PATH",
                       help="emit the deterministic JSON report (to "
                            "PATH, or stdout when no PATH is given)")
    p_exp.add_argument("--top", type=int, default=10, metavar="N",
                       help="root causes listed per state in table "
                            "output")
    p_exp.add_argument("--scale", type=int, default=None,
                       help="workload problem size")
    _add_cure_flags(p_exp)
    p_exp.set_defaults(fn=cmd_explain)

    p_prof = sub.add_parser(
        "profile",
        parents=[_shared_flags(jobs=True, quiet=True,
                               json_path=True, json_const=True,
                               progress=True)],
        help="per-phase pipeline breakdown (parse, solve, dataflow, "
             "exec per engine) folded from span captures; counts are "
             "byte-deterministic, timing opt-in")
    p_prof.add_argument("--workload", default=None, metavar="NAMES",
                        help="comma list of workloads to profile")
    p_prof.add_argument("--all-workloads", action="store_true",
                        help="profile every benchmark workload")
    p_prof.add_argument("--scale", type=int, default=None,
                        help="workload problem size")
    p_prof.add_argument("--optimize", choices=OPTIMIZE_LEVELS,
                        default=None, metavar="LEVEL",
                        help="check-elimination level "
                             "(default: flow)")
    p_prof.add_argument("--timing", action="store_true",
                        help="include wall seconds and cache phases "
                             "(non-deterministic)")
    p_prof.add_argument("--trace", default=None, metavar="PATH",
                        help="also write the captured spans as "
                             "Chrome trace_event JSON")
    _add_engine_flag(p_prof)
    p_prof.set_defaults(fn=cmd_profile)

    p_met = sub.add_parser(
        "metrics",
        parents=[_shared_flags(jobs=True, quiet=True,
                               json_path=True, json_const=True,
                               progress=True)],
        help="pipeline observability: per-phase timings, check-site "
             "histograms, pointer-kind distributions, and regression "
             "diffs")
    p_met.add_argument("--workload", default=None, metavar="NAMES",
                       help="comma list of workloads to measure")
    p_met.add_argument("--all-workloads", action="store_true",
                       help="measure every benchmark workload")
    p_met.add_argument("--scale", type=int, default=None,
                       help="workload problem size")
    p_met.add_argument("--optimize", choices=OPTIMIZE_LEVELS,
                       default=None, metavar="LEVEL",
                       help="check-elimination level (default: flow)")
    p_met.add_argument("--timing", action="store_true",
                       help="also collect per-phase wall times "
                            "(non-deterministic; excluded from the "
                            "regression gate)")
    p_met.add_argument("--trace", default=None, metavar="PATH",
                       help="write pipeline spans as Chrome "
                            "trace_event JSON (load in "
                            "chrome://tracing or ui.perfetto.dev)")
    p_met.add_argument("--provenance", action="store_true",
                       help="record blame provenance and include "
                            "per-state root-cause counts in the "
                            "report (gated by `metrics diff`)")
    p_met.add_argument("--temporal", action="store_true",
                       help="also cure+run each workload with "
                            "lock-and-key temporal checking and "
                            "include its CHECK_ALIVE counts and "
                            "cycle overhead (gated by "
                            "`metrics diff`)")
    p_met.add_argument("--top", type=int, default=5, metavar="N",
                       help="hottest check sites listed per workload "
                            "in table output")
    _add_engine_flag(p_met)
    p_met.set_defaults(fn=cmd_metrics, metrics_command=None)
    msub = p_met.add_subparsers(dest="metrics_command")
    p_mdiff = msub.add_parser(
        "diff",
        parents=[_shared_flags(jobs=True, quiet=True)],
        help="compare a metrics report against a baseline and gate "
             "on regressions")
    p_mdiff.add_argument("--baseline", required=True, metavar="PATH",
                         help="the committed baseline report")
    p_mdiff.add_argument("--current", default=None, metavar="PATH",
                         help="a freshly collected report (omitted: "
                              "collect one now under the baseline's "
                              "configuration)")
    p_mdiff.add_argument("--fail-on-regress", action="store_true",
                         help="exit 2 on any regression (the CI "
                              "gate); without this, regressions "
                              "still exit 1")
    p_mdiff.add_argument("--max-checks-pct", type=float, default=0.0,
                         metavar="PCT",
                         help="allowed %% growth in checks executed "
                              "or surviving per workload (default 0)")
    p_mdiff.add_argument("--max-cycles-pct", type=float, default=0.0,
                         metavar="PCT",
                         help="allowed %% growth in cured cycles per "
                              "workload (default 0)")
    p_mdiff.add_argument("--max-elided-drop", type=int, default=0,
                         metavar="N",
                         help="allowed drop in statically elided "
                              "checks per workload (default 0)")
    p_mdiff.add_argument("--max-phase-pct", type=float, default=50.0,
                         metavar="PCT",
                         help="allowed %% growth in per-phase wall "
                              "time when both reports carry timings")
    p_mdiff.add_argument("--verbose", action="store_true",
                         help="print improvements and notes, not "
                              "just regressions")
    p_mdiff.set_defaults(fn=cmd_metrics)

    p_faults = sub.add_parser(
        "faults", help="seeded fault-injection campaigns")
    fsub = p_faults.add_subparsers(dest="faults_command",
                                   required=True)
    p_flist = fsub.add_parser("list",
                              help="list the mutation classes")
    p_flist.set_defaults(fn=cmd_faults)
    p_frun = fsub.add_parser(
        "run",
        parents=[_shared_flags(jobs=True, quiet=True,
                               json_path=True, progress=True)],
        help="inject faults and assert the cured runs trap")
    p_frun.add_argument("--seed", type=int, default=1337,
                        help="campaign seed (same seed, same report)")
    p_frun.add_argument("--campaign", default="smoke",
                        choices=("smoke", "full"),
                        help="smoke: 4 workloads; full: all 27")
    p_frun.add_argument("--workloads", default=None,
                        help="comma list overriding the campaign's "
                             "workload set")
    p_frun.add_argument("--classes", default=None,
                        help="comma list of mutation classes "
                             "(default: all)")
    p_frun.add_argument("--scale", type=int, default=None)
    p_frun.add_argument("--optimize", choices=OPTIMIZE_LEVELS,
                        default=None, metavar="LEVEL",
                        help="check-elimination level of the cured "
                             "side (none, local, flow)")
    p_frun.set_defaults(fn=cmd_faults)
    p_flint = fsub.add_parser(
        "lint",
        parents=[_shared_flags(jobs=True, quiet=True,
                               json_path=True)],
        help="validate repro lint against the campaign's "
             "variants (static precision/recall)")
    p_flint.add_argument("--seed", type=int, default=1,
                         help="campaign seed")
    p_flint.add_argument("--workloads", default=None,
                         help="comma list of workloads "
                              "(default: all 27)")
    p_flint.add_argument("--all-workloads", action="store_true",
                         help="validate over every workload "
                              "(the default)")
    p_flint.add_argument("--classes", default=None,
                         help="comma list of mutation classes "
                              "(default: all 13)")
    p_flint.add_argument("--optimize", choices=OPTIMIZE_LEVELS,
                         default=None, metavar="LEVEL")
    p_flint.add_argument("--scale", type=int, default=None)
    p_flint.set_defaults(fn=cmd_faults)

    p_cache = sub.add_parser(
        "cache", help="the content-addressed cure cache")
    csub = p_cache.add_subparsers(dest="cache_command",
                                  required=True)
    p_cstats = csub.add_parser(
        "stats",
        parents=[_shared_flags(json_path=True)],
        help="hit/miss/store counters and entry census")
    p_cstats.set_defaults(fn=cmd_cache)
    p_cclear = csub.add_parser(
        "clear", help="delete every entry and reset the counters")
    p_cclear.set_defaults(fn=cmd_cache)

    p_sweep = sub.add_parser(
        "sweep",
        parents=[_shared_flags(jobs=True, quiet=True,
                               json_path=True, progress=True)],
        help="run the workload x engine x optimize matrix sharded "
             "across cores, one deterministic artifact per cell")
    p_sweep.add_argument("--targets",
                         default="metrics,lint,campaign",
                         metavar="LIST",
                         help="comma list of metrics, lint, "
                              "campaign, analyze "
                              "(default: metrics,lint,campaign)")
    p_sweep.add_argument("--engines", default="closures",
                         metavar="LIST",
                         help="comma list of execution engines "
                              "(metrics cells; default: closures)")
    p_sweep.add_argument("--optimize", default="flow",
                         metavar="LIST",
                         help="comma list of check-elimination "
                              "levels (default: flow)")
    p_sweep.add_argument("--out", default=None, metavar="DIR",
                         help="write per-cell JSON artifacts into "
                              "this directory")
    p_sweep.add_argument("--seed", type=int, default=1337,
                         help="campaign seed for campaign cells")
    p_sweep.add_argument("--campaign", default="smoke",
                         choices=("smoke", "full"),
                         help="campaign preset for campaign cells")
    p_sweep.add_argument("--scale", type=int, default=None,
                         help="workload problem size")
    p_sweep.add_argument("--trace", default=None, metavar="PATH",
                         help="write one merged Chrome trace of the "
                              "whole sweep — dispatch spans plus "
                              "every worker's pipeline and cache "
                              "spans on real pid/tid lanes")
    p_sweep.set_defaults(fn=cmd_sweep)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
