"""C frontend: preprocess, parse (pycparser), lower to CIL.

The whole-program entry points here produce a single
:class:`repro.cil.Program` from one or more C source texts or files,
which is the unit CCured's whole-program inference operates on.
"""

from typing import Mapping, Optional, Sequence

from pycparser import c_parser

from repro.cil.program import Program
from repro.cpp import Preprocessor
from repro.frontend.lower import Lowerer, UnsupportedCError, fresh_type

__all__ = ["parse_program", "parse_files", "Lowerer",
           "UnsupportedCError", "fresh_type"]


def parse_program(source: str, name: str = "program",
                  include_dirs: Optional[Sequence[str]] = None,
                  defines: Optional[Mapping[str, str]] = None) -> Program:
    """Parse one C source text into a lowered whole program."""
    return parse_files([(name + ".c", source)], name=name,
                       include_dirs=include_dirs, defines=defines)


def parse_files(sources: Sequence[tuple[str, str]], name: str = "program",
                include_dirs: Optional[Sequence[str]] = None,
                defines: Optional[Mapping[str, str]] = None) -> Program:
    """Parse and link several ``(filename, source)`` translation units
    into one whole program, as CCured's whole-program analysis requires."""
    from repro.obs.tracer import TRACER
    with TRACER.span("parse", name=name, files=len(sources)):
        lowerer = Lowerer(name=name)
        parser = c_parser.CParser()
        for filename, source in sources:
            with TRACER.span("preprocess", file=filename):
                pp = Preprocessor(include_dirs, defines)
                text = pp.preprocess(source, filename=filename)
            lowerer.prog.lint_suppressions |= pp.lint_suppressions
            # pycparser chokes on #pragma lines at certain positions
            # only if malformed; ours are kept verbatim and parsed as
            # Pragma nodes.
            ast = parser.parse(text, filename=filename)
            lowerer.lower_file(ast)
        return lowerer.prog
