"""Lowering from the pycparser AST to the CIL-like IR.

This pass plays the role of CIL's "simplification" of C: after it, the
program consists of side-effect-free expressions, explicit casts at every
conversion, three-address-style instructions, and structured control
flow.  The properties the analysis relies on are established here:

* every implicit conversion becomes an explicit :class:`CastE` so the
  cast census and constraint generation see all of them;
* ``e1[e2]`` on pointers becomes ``*(e1 + e2)`` with the dedicated
  ``PLUS_PI`` operator, so every occurrence of pointer arithmetic is
  syntactically identifiable (paper appendix: "we will only consider
  pointer arithmetic");
* array values decay via :class:`StartOf`, preserving whole-array bounds
  for SEQ pointers;
* typedefs are structurally expanded with *fresh* ``TPtr`` instances so
  each syntactic pointer occurrence has its own qualifier variable;
* ``(T *)__trusted_cast(e)`` becomes a ``CastE`` with ``trusted=True``
  (the escape hatch of Section 3 of the paper).

Unsupported constructs (goto, setjmp, bitfields, real switch
fall-through) raise :class:`UnsupportedCError` with a source location.
"""

from __future__ import annotations

from typing import Optional, Sequence

from pycparser import c_ast

from repro.cil import expr as E
from repro.cil import stmt as S
from repro.cil import types as T
from repro.cil.program import (GCompTag, GEnumTag, GFun, GPragma, GType,
                               GVar, GVarDecl, Program)


class UnsupportedCError(Exception):
    """A C construct outside the supported C99 subset."""

    def __init__(self, message: str, node: Optional[c_ast.Node] = None):
        coord = getattr(node, "coord", None)
        where = f" at {coord}" if coord else ""
        super().__init__(message + where)


_INT_TYPE_NAMES = {
    ("char",): T.IKind.CHAR,
    ("signed", "char"): T.IKind.SCHAR,
    ("unsigned", "char"): T.IKind.UCHAR,
    ("short",): T.IKind.SHORT,
    ("short", "int"): T.IKind.SHORT,
    ("signed", "short"): T.IKind.SHORT,
    ("signed", "short", "int"): T.IKind.SHORT,
    ("unsigned", "short"): T.IKind.USHORT,
    ("unsigned", "short", "int"): T.IKind.USHORT,
    ("int",): T.IKind.INT,
    ("signed",): T.IKind.INT,
    ("signed", "int"): T.IKind.INT,
    ("unsigned",): T.IKind.UINT,
    ("unsigned", "int"): T.IKind.UINT,
    ("long",): T.IKind.LONG,
    ("long", "int"): T.IKind.LONG,
    ("signed", "long"): T.IKind.LONG,
    ("signed", "long", "int"): T.IKind.LONG,
    ("unsigned", "long"): T.IKind.ULONG,
    ("unsigned", "long", "int"): T.IKind.ULONG,
    ("long", "long"): T.IKind.LLONG,
    ("long", "long", "int"): T.IKind.LLONG,
    ("signed", "long", "long"): T.IKind.LLONG,
    ("signed", "long", "long", "int"): T.IKind.LLONG,
    ("unsigned", "long", "long"): T.IKind.ULLONG,
    ("unsigned", "long", "long", "int"): T.IKind.ULLONG,
    ("_Bool",): T.IKind.BOOL,
}

#: allocation functions whose results are polymorphic fresh memory.
_ALLOCATORS = {"malloc", "calloc", "realloc", "strdup"}

_ASSIGN_OPS = {
    "+=": E.BinopKind.ADD, "-=": E.BinopKind.SUB, "*=": E.BinopKind.MUL,
    "/=": E.BinopKind.DIV, "%=": E.BinopKind.MOD, "<<=": E.BinopKind.SHL,
    ">>=": E.BinopKind.SHR, "&=": E.BinopKind.BAND,
    "^=": E.BinopKind.BXOR, "|=": E.BinopKind.BOR,
}

_BIN_OPS = {
    "+": E.BinopKind.ADD, "-": E.BinopKind.SUB, "*": E.BinopKind.MUL,
    "/": E.BinopKind.DIV, "%": E.BinopKind.MOD, "<<": E.BinopKind.SHL,
    ">>": E.BinopKind.SHR, "<": E.BinopKind.LT, ">": E.BinopKind.GT,
    "<=": E.BinopKind.LE, ">=": E.BinopKind.GE, "==": E.BinopKind.EQ,
    "!=": E.BinopKind.NE, "&": E.BinopKind.BAND, "^": E.BinopKind.BXOR,
    "|": E.BinopKind.BOR,
}


def fresh_type(t: T.CType) -> T.CType:
    """Deep-copy a type so every pointer occurrence is a fresh ``TPtr``.

    Composite references are shared (their fields are global
    declarations with their own, shared, qualifier variables — exactly
    CCured's treatment of "the address of every structure field").
    """
    if isinstance(t, T.TPtr):
        return T.TPtr(fresh_type(t.base))
    if isinstance(t, T.TArray):
        return T.TArray(fresh_type(t.base), t.length)
    if isinstance(t, T.TNamed):
        return fresh_type(t.actual)
    if isinstance(t, T.TFun):
        params = None
        if t.params is not None:
            params = [(n, fresh_type(pt)) for n, pt in t.params]
        return T.TFun(fresh_type(t.ret), params, t.varargs)
    return t


class _BlockBuilder:
    """Accumulates statements, merging consecutive instructions.

    ``owner`` (the :class:`Lowerer`) supplies the current source
    location, stamped onto every emitted instruction for diagnostics.
    """

    def __init__(self, owner: Optional["Lowerer"] = None) -> None:
        self.stmts: list[S.Stmt] = []
        self.owner = owner

    def emit(self, instr: S.Instr) -> None:
        if instr.loc is None and self.owner is not None:
            instr.loc = self.owner._cur_loc
        if self.stmts and isinstance(self.stmts[-1], S.InstrStmt):
            self.stmts[-1].instrs.append(instr)
        else:
            self.stmts.append(S.InstrStmt([instr]))

    def add(self, stmt: S.Stmt) -> None:
        self.stmts.append(stmt)

    def block(self) -> S.Block:
        return S.Block(self.stmts)


class Lowerer:
    """Lowers one or more pycparser translation units into a Program."""

    def __init__(self, prog: Optional[Program] = None,
                 name: str = "a") -> None:
        self.prog = prog if prog is not None else Program(name)
        self.scopes: list[dict[str, object]] = [dict()]
        self.cur_fun: Optional[S.Fundec] = None
        self.builder: Optional[_BlockBuilder] = None
        self._anon_counter = 0
        self._forbid_effects = False
        #: (file, line) of the statement currently being lowered.
        self._cur_loc: Optional[tuple[str, int]] = None

    # ------------------------------------------------------------------
    # Scope handling
    # ------------------------------------------------------------------

    def push_scope(self) -> None:
        self.scopes.append({})

    def pop_scope(self) -> None:
        self.scopes.pop()

    def bind(self, name: str, entry: object) -> None:
        self.scopes[-1][name] = entry

    def lookup(self, name: str) -> Optional[object]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # ------------------------------------------------------------------
    # Types
    # ------------------------------------------------------------------

    def conv_type(self, node: c_ast.Node) -> T.CType:
        if isinstance(node, c_ast.TypeDecl):
            return self.conv_base_type(node.type)
        if isinstance(node, c_ast.PtrDecl):
            return T.TPtr(self.conv_type(node.type))
        if isinstance(node, c_ast.ArrayDecl):
            length = None
            if node.dim is not None:
                length = self.const_eval(node.dim)
            return T.TArray(self.conv_type(node.type), length)
        if isinstance(node, c_ast.FuncDecl):
            ret = self.conv_type(node.type)
            params: Optional[list[tuple[str, T.CType]]] = None
            varargs = False
            if node.args is not None:
                params = []
                for p in node.args.params:
                    if isinstance(p, c_ast.EllipsisParam):
                        varargs = True
                        continue
                    pt = self.conv_type(p.type) if not isinstance(
                        p, c_ast.ID) else T.int_t()
                    if T.is_void(pt):
                        continue  # (void) parameter list
                    # Array parameters decay to pointers.
                    if isinstance(T.unroll(pt), T.TArray):
                        pt = T.TPtr(T.unroll(pt).base)
                    pname = getattr(p, "name", None) or ""
                    params.append((pname, pt))
            return T.TFun(ret, params, varargs)
        if isinstance(node, c_ast.Typename):
            return self.conv_type(node.type)
        raise UnsupportedCError(f"type node {type(node).__name__}", node)

    def conv_base_type(self, node: c_ast.Node) -> T.CType:
        if isinstance(node, c_ast.IdentifierType):
            names = tuple(n for n in node.names if n not in
                          ("const", "volatile", "restrict"))
            if names == ("void",):
                return T.TVoid()
            if names == ("float",):
                return T.TFloat(T.FKind.FLOAT)
            if names == ("double",):
                return T.TFloat(T.FKind.DOUBLE)
            if names == ("long", "double"):
                return T.TFloat(T.FKind.LDOUBLE)
            if names in _INT_TYPE_NAMES:
                return T.TInt(_INT_TYPE_NAMES[names])
            if len(names) == 1:
                td = self.prog.typedefs.get(names[0])
                if td is not None:
                    return fresh_type(td)
            raise UnsupportedCError(f"unknown type {' '.join(names)}",
                                    node)
        if isinstance(node, (c_ast.Struct, c_ast.Union)):
            return T.TComp(self.conv_comp(node))
        if isinstance(node, c_ast.Enum):
            return T.TEnum(self.conv_enum(node))
        raise UnsupportedCError(f"base type {type(node).__name__}", node)

    def conv_comp(self, node: c_ast.Node) -> T.CompInfo:
        is_struct = isinstance(node, c_ast.Struct)
        name = node.name
        if name is None:
            self._anon_counter += 1
            name = f"__anon{self._anon_counter}"
        comp = self.prog.comps.get(name)
        if comp is None:
            comp = T.CompInfo(is_struct, name)
            self.prog.comps[name] = comp
            self.prog.add(GCompTag(comp))
        if node.decls is not None and not comp.defined:
            fields = []
            for d in node.decls:
                if d.name is None and isinstance(
                        d.type, c_ast.TypeDecl) and isinstance(
                        d.type.type, (c_ast.Struct, c_ast.Union)):
                    raise UnsupportedCError(
                        "anonymous struct/union members", d)
                if getattr(d, "bitsize", None) is not None:
                    raise UnsupportedCError("bitfields", d)
                fields.append(T.FieldInfo(d.name,
                                          self.conv_type(d.type)))
            comp.set_fields(fields)
        return comp

    def conv_enum(self, node: c_ast.Enum) -> T.EnumInfo:
        name = node.name
        if name is None:
            self._anon_counter += 1
            name = f"__anonenum{self._anon_counter}"
        info = self.prog.enums.get(name)
        if info is None:
            info = T.EnumInfo(name)
            self.prog.enums[name] = info
            self.prog.add(GEnumTag(info))
        if node.values is not None and not info.items:
            next_val = 0
            for enumerator in node.values.enumerators:
                if enumerator.value is not None:
                    next_val = self.const_eval(enumerator.value)
                info.items.append((enumerator.name, next_val))
                self.scopes[0][enumerator.name] = ("enumconst", next_val)
                next_val += 1
        return info

    # ------------------------------------------------------------------
    # Constant evaluation (array dims, enum values, #if already handled)
    # ------------------------------------------------------------------

    def const_eval(self, node: c_ast.Node) -> int:
        if isinstance(node, c_ast.Constant):
            if node.type in ("int", "long int", "unsigned int",
                             "long long int", "char"):
                return _parse_int_const(node.value)
            raise UnsupportedCError(
                f"non-integer constant {node.value}", node)
        if isinstance(node, c_ast.UnaryOp):
            v = self.const_eval(node.expr)
            return {"-": -v, "+": v, "~": ~v, "!": int(not v)}[node.op]
        if isinstance(node, c_ast.BinaryOp):
            a = self.const_eval(node.left)
            b = self.const_eval(node.right)
            return {
                "+": a + b, "-": a - b, "*": a * b,
                "/": int(a / b) if b else 0, "%": a % b if b else 0,
                "<<": a << b, ">>": a >> b, "&": a & b, "|": a | b,
                "^": a ^ b, "==": int(a == b), "!=": int(a != b),
                "<": int(a < b), ">": int(a > b), "<=": int(a <= b),
                ">=": int(a >= b), "&&": int(bool(a and b)),
                "||": int(bool(a or b)),
            }[node.op]
        if isinstance(node, c_ast.ID):
            entry = self.lookup(node.name)
            if isinstance(entry, tuple) and entry[0] == "enumconst":
                return entry[1]
            raise UnsupportedCError(
                f"non-constant identifier {node.name}", node)
        if isinstance(node, c_ast.Cast):
            return self.const_eval(node.expr)
        if isinstance(node, c_ast.UnaryOp):
            raise UnsupportedCError("constant op", node)
        if isinstance(node, c_ast.TernaryOp):
            return (self.const_eval(node.iftrue)
                    if self.const_eval(node.cond)
                    else self.const_eval(node.iffalse))
        if (isinstance(node, c_ast.UnaryOp)
                and node.op == "sizeof"):  # pragma: no cover
            return 0
        raise UnsupportedCError(
            f"non-constant expression {type(node).__name__}", node)

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def lower_file(self, ast: c_ast.FileAST) -> Program:
        for ext in ast.ext:
            if isinstance(ext, c_ast.Decl):
                self.global_decl(ext)
            elif isinstance(ext, c_ast.Typedef):
                t = self.conv_type(ext.type)
                self.prog.typedefs[ext.name] = t
                self.prog.add(GType(ext.name, t))
            elif isinstance(ext, c_ast.FuncDef):
                self.func_def(ext)
            elif isinstance(ext, c_ast.Pragma):
                self._pragma(ext)
            elif isinstance(ext, c_ast.Ellipsis):  # pragma: no cover
                pass
            else:
                raise UnsupportedCError(
                    f"top-level {type(ext).__name__}", ext)
        return self.prog

    def _pragma(self, node: c_ast.Pragma) -> None:
        text = node.string or ""
        name, args = text, []
        if "(" in text:
            name = text[:text.index("(")].strip()
            inner = text[text.index("(") + 1:text.rindex(")")]
            args = [a.strip().strip('"') for a in inner.split(",")
                    if a.strip()]
        self.prog.add(GPragma(name.strip(), args))

    def global_decl(self, node: c_ast.Decl) -> None:
        # Bare struct/union/enum declaration.
        if node.name is None:
            if isinstance(node.type, (c_ast.Struct, c_ast.Union)):
                self.conv_comp(node.type)
            elif isinstance(node.type, c_ast.Enum):
                self.conv_enum(node.type)
            return
        t = self.conv_type(node.type)
        storage = "default"
        if "extern" in (node.storage or []):
            storage = "extern"
        elif "static" in (node.storage or []):
            storage = "static"
        existing = self.lookup(node.name)
        if isinstance(existing, E.Varinfo):
            var = existing
            if T.is_function(t) or isinstance(T.unroll(var.type),
                                              T.TFun):
                pass  # re-declaration of a function: keep first type
            else:
                var.type = t
        else:
            var = E.Varinfo(node.name, t, is_global=True,
                            storage=storage)
            self.scopes[0][node.name] = var
        if T.is_function(t) or storage == "extern":
            if (node.name not in self.prog.functions
                    and node.name not in self.prog.global_vars):
                self.prog.add(GVarDecl(var))
            return
        init = None
        if node.init is not None:
            init = self.conv_init(node.init, t)
        # Complete array lengths from string/brace initializers.
        ut = T.unroll(var.type)
        if isinstance(ut, T.TArray) and ut.length is None and init:
            ut.length = _init_length(init)
        self.prog.add(GVar(var, init))

    # ------------------------------------------------------------------
    # Initializers
    # ------------------------------------------------------------------

    def conv_init(self, node: c_ast.Node, t: T.CType) -> S.Init:
        if isinstance(node, c_ast.InitList):
            ut = T.unroll(t)
            entries: list[tuple[object, S.Init]] = []
            if isinstance(ut, T.TArray):
                idx = 0
                for item in node.exprs:
                    if isinstance(item, c_ast.NamedInitializer):
                        raise UnsupportedCError(
                            "designated array initializers", item)
                    entries.append(
                        (idx, self.conv_init(item, ut.base)))
                    idx += 1
            elif isinstance(ut, T.TComp):
                fields = ut.comp.fields
                fi = 0
                for item in node.exprs:
                    if isinstance(item, c_ast.NamedInitializer):
                        fname = item.name[0].name
                        field = ut.comp.field(fname)
                        fi = fields.index(field) + 1
                        entries.append(
                            (fname, self.conv_init(item.expr,
                                                   field.type)))
                    else:
                        if fi >= len(fields):
                            raise UnsupportedCError(
                                "too many initializers", item)
                        field = fields[fi]
                        fi += 1
                        entries.append(
                            (field.name,
                             self.conv_init(item, field.type)))
            else:
                if len(node.exprs) != 1:
                    raise UnsupportedCError("scalar brace init", node)
                return self.conv_init(node.exprs[0], t)
            return S.CompoundInit(t, entries)
        # Single expression initializer — must be effect-free at top
        # level; the caller enforces context.
        prev = self._forbid_effects
        if self.cur_fun is None:
            self._forbid_effects = True
        try:
            e = self._rvalue_nodecay(node)
        finally:
            self._forbid_effects = prev
        # char arr[] = "text": the string initializes the array
        # in place, no conversion involved.
        if isinstance(T.unroll(t), T.TArray) and isinstance(
                e, E.StrConst):
            return S.SingleInit(e)
        e = self._decay(e)
        return S.SingleInit(self.coerce(e, t))

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------

    def func_def(self, node: c_ast.FuncDef) -> None:
        decl = node.decl
        ftype = self.conv_type(decl.type)
        uft = T.unroll(ftype)
        assert isinstance(uft, T.TFun)
        existing = self.lookup(decl.name)
        if isinstance(existing, E.Varinfo):
            svar = existing
            svar.type = ftype
        else:
            svar = E.Varinfo(decl.name, ftype, is_global=True)
            self.scopes[0][decl.name] = svar
        formals = []
        for pname, ptype in (uft.params or []):
            formals.append(E.Varinfo(pname or f"__arg{len(formals)}",
                                     ptype, is_formal=True))
        fd = S.Fundec(svar, formals)
        self.cur_fun = fd
        self.push_scope()
        for v in formals:
            self.bind(v.name, v)
        builder = _BlockBuilder(self)
        prev_builder = self.builder
        self.builder = builder
        self.compound(node.body, new_scope=True)
        fd.body = builder.block()
        self.builder = prev_builder
        self.pop_scope()
        self.cur_fun = None
        self.prog.add(GFun(fd))

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def compound(self, node: c_ast.Compound,
                 new_scope: bool = False) -> None:
        if new_scope:
            self.push_scope()
        for item in (node.block_items or []):
            self.statement(item)
        if new_scope:
            self.pop_scope()

    def _loc_of(self, node: c_ast.Node) -> Optional[tuple[str, int]]:
        coord = getattr(node, "coord", None)
        if coord is None or coord.file is None:
            return None
        return (coord.file, coord.line)

    def statement(self, node: c_ast.Node) -> None:
        assert self.builder is not None
        b = self.builder
        loc = self._loc_of(node)
        if loc is not None:
            self._cur_loc = loc
        if isinstance(node, c_ast.Decl):
            self.local_decl(node)
        elif isinstance(node, c_ast.Typedef):
            t = self.conv_type(node.type)
            self.prog.typedefs[node.name] = t
        elif isinstance(node, c_ast.Compound):
            inner = self.in_new_block(lambda: self.compound(
                node, new_scope=True))
            b.add(inner)
        elif isinstance(node, c_ast.If):
            cond = self.rvalue(node.cond)
            then = self.in_new_block(
                lambda: self.statement(node.iftrue)
                if node.iftrue else None)
            els = self.in_new_block(
                lambda: self.statement(node.iffalse)
                if node.iffalse else None)
            s = S.If(cond, then, els)
            s.loc = loc
            b.add(s)
        elif isinstance(node, c_ast.While):
            self._loop(cond_node=node.cond, body_node=node.stmt,
                       post=None, test_first=True)
        elif isinstance(node, c_ast.DoWhile):
            self._loop(cond_node=node.cond, body_node=node.stmt,
                       post=None, test_first=False)
        elif isinstance(node, c_ast.For):
            self.push_scope()
            if node.init is not None:
                if isinstance(node.init, c_ast.DeclList):
                    for d in node.init.decls:
                        self.local_decl(d)
                else:
                    self.expr_effect(node.init)
            self._loop(cond_node=node.cond, body_node=node.stmt,
                       post=node.next, test_first=True)
            self.pop_scope()
        elif isinstance(node, c_ast.Return):
            e = None
            if node.expr is not None:
                e = self.rvalue(node.expr)
                rt = T.unroll(self.cur_fun.svar.type).ret \
                    if self.cur_fun else T.int_t()
                if not T.is_void(rt):
                    e = self.coerce(e, rt)
            ret = S.Return(e)
            ret.loc = loc
            b.add(ret)
        elif isinstance(node, c_ast.Break):
            b.add(S.Break())
        elif isinstance(node, c_ast.Continue):
            b.add(S.Continue())
        elif isinstance(node, c_ast.Switch):
            self._switch(node)
        elif isinstance(node, c_ast.EmptyStatement):
            pass
        elif isinstance(node, c_ast.Pragma):
            self._pragma(node)
        elif isinstance(node, (c_ast.Goto, c_ast.Label)):
            raise UnsupportedCError("goto/labels", node)
        else:
            self.expr_effect(node)

    def in_new_block(self, fn) -> S.Block:
        assert self.builder is not None
        saved = self.builder
        self.builder = _BlockBuilder(self)
        try:
            fn()
            return self.builder.block()
        finally:
            self.builder = saved

    def _loop(self, cond_node, body_node, post, test_first: bool) -> None:
        """Lower while/do/for into CIL's ``Loop`` + explicit break test."""
        assert self.builder is not None

        def build_body() -> None:
            assert self.builder is not None
            if test_first and cond_node is not None:
                cloc = self._loc_of(cond_node)
                if cloc is not None:
                    self._cur_loc = cloc
                cond = self.rvalue(cond_node)
                test = S.If(E.UnOp(E.UnopKind.LNOT, cond, T.int_t()),
                            S.Block([S.Break()]), S.Block())
                test.loc = cloc
                self.builder.add(test)
            if body_node is not None:
                # ``continue`` must run the post-expression; we wrap the
                # body so that continue in for-loops is handled by
                # placing post inside a trailing block. Continue jumps to
                # the end of Loop body in our interpreter, which runs the
                # post expression placed after the user body.
                self.statement(body_node)
            if post is not None:
                self.expr_effect(post)
            if not test_first and cond_node is not None:
                cloc = self._loc_of(cond_node)
                if cloc is not None:
                    self._cur_loc = cloc
                cond = self.rvalue(cond_node)
                test = S.If(E.UnOp(E.UnopKind.LNOT, cond, T.int_t()),
                            S.Block([S.Break()]), S.Block())
                test.loc = cloc
                self.builder.add(test)

        body = self.in_new_block(build_body)
        # Mark the trailing statements that `continue` must still run
        # (the for-loop post expression and do-while test).
        loop = S.Loop(body)
        n_trailing = 0
        if post is not None:
            n_trailing += 1
        if not test_first and cond_node is not None:
            n_trailing += 1
        loop.continue_runs_trailing = n_trailing  # type: ignore[attr-defined]
        self.builder.add(loop)

    def _switch(self, node: c_ast.Switch) -> None:
        """Lower switch into an if-else chain on a temporary.

        Case bodies that fall through to the next non-empty case are not
        supported (the workloads use break-terminated cases); stacked
        labels (``case 1: case 2: body`` and ``default:`` stacked with
        cases) are.  The default arm, if present, must come last.
        """
        assert self.builder is not None and self.cur_fun is not None
        scrut = self.rvalue(node.cond)
        tmp = self.cur_fun.new_temp(T.int_t(), "switch")
        self.builder.emit(S.Set(E.var_lval(tmp),
                                self.coerce(scrut, T.int_t())))
        if not isinstance(node.stmt, c_ast.Compound):
            raise UnsupportedCError("switch body must be a block", node)

        # Flatten into a stream of labels and plain statements.
        tokens: list[tuple[str, object]] = []

        def flatten(item: c_ast.Node) -> None:
            if isinstance(item, c_ast.Case):
                tokens.append(("label", self.const_eval(item.expr)))
                for s in (item.stmts or []):
                    flatten(s)
            elif isinstance(item, c_ast.Default):
                tokens.append(("label", None))
                for s in (item.stmts or []):
                    flatten(s)
            else:
                tokens.append(("stmt", item))

        for item in (node.stmt.block_items or []):
            flatten(item)

        # Group into arms: runs of labels followed by runs of statements.
        arms: list[tuple[list[Optional[int]], list[c_ast.Node]]] = []
        labels: list[Optional[int]] = []
        stmts: list[c_ast.Node] = []
        for kind, payload in tokens:
            if kind == "label":
                if stmts:
                    arms.append((labels, stmts))
                    labels, stmts = [], []
                labels.append(payload)  # type: ignore[arg-type]
            else:
                if not labels and not arms and not stmts:
                    raise UnsupportedCError(
                        "statement before first case label", node)
                stmts.append(payload)  # type: ignore[arg-type]
        if labels or stmts:
            arms.append((labels, stmts))

        def exits(sts: list[c_ast.Node]) -> bool:
            return bool(sts) and isinstance(
                sts[-1], (c_ast.Break, c_ast.Return))

        for i, (_, sts) in enumerate(arms):
            if i != len(arms) - 1 and not exits(sts):
                raise UnsupportedCError(
                    "switch fall-through between non-empty cases", node)

        def arm_block(sts: list[c_ast.Node]) -> S.Block:
            if sts and isinstance(sts[-1], c_ast.Break):
                sts = sts[:-1]

            def build() -> None:
                for s in sts:
                    self.statement(s)

            return self.in_new_block(build)

        default_body = S.Block()
        if arms and None in arms[-1][0]:
            default_body = arm_block(arms[-1][1])
            arms = arms[:-1]
        if any(None in labs for labs, _ in arms):
            raise UnsupportedCError(
                "default arm must come last in switch", node)

        chain = default_body
        for labs, sts in reversed(arms):
            cond: Optional[E.Exp] = None
            for lab in labs:
                test = E.BinOp(E.BinopKind.EQ,
                               E.LvalExp(E.var_lval(tmp)),
                               E.Const(lab), T.int_t())
                cond = test if cond is None else E.BinOp(
                    E.BinopKind.BOR, cond, test, T.int_t())
            assert cond is not None
            chain = S.Block([S.If(cond, arm_block(sts), chain)])
        # A switch is a break target: wrap in a run-once Loop so that
        # ``break`` inside arms targets the switch, not an outer loop.
        wrapper = S.Loop(S.Block(list(chain.stmts) + [S.Break()]))
        self.builder.add(wrapper)

    # ------------------------------------------------------------------
    # Local declarations
    # ------------------------------------------------------------------

    def local_decl(self, node: c_ast.Decl) -> None:
        assert self.cur_fun is not None and self.builder is not None
        loc = self._loc_of(node)
        if loc is not None:
            self._cur_loc = loc
        if node.name is None:
            if isinstance(node.type, (c_ast.Struct, c_ast.Union)):
                self.conv_comp(node.type)
            elif isinstance(node.type, c_ast.Enum):
                self.conv_enum(node.type)
            return
        t = self.conv_type(node.type)
        if "static" in (node.storage or []):
            mangled = f"__static_{self.cur_fun.name}_{node.name}"
            var = E.Varinfo(mangled, t, is_global=True, storage="static")
            init = self.conv_init(node.init, t) if node.init else None
            self.prog.add(GVar(var, init))
            self.bind(node.name, var)
            return
        if "extern" in (node.storage or []):
            var = E.Varinfo(node.name, t, is_global=True,
                            storage="extern")
            self.prog.add(GVarDecl(var))
            self.bind(node.name, var)
            return
        ut = T.unroll(t)
        if isinstance(ut, T.TArray) and ut.length is None and node.init:
            init0 = self.conv_init(node.init, t)
            ut.length = _init_length(init0)
            var = self.cur_fun.new_local(node.name, t)
            var.decl_loc = loc
            self.bind(node.name, var)
            self._assign_init(E.var_lval(var), init0, t)
            return
        var = self.cur_fun.new_local(node.name, t)
        var.decl_loc = loc
        self.bind(node.name, var)
        if node.init is not None:
            init = self.conv_init(node.init, t)
            self._assign_init(E.var_lval(var), init, t)

    def _assign_init(self, lv: E.Lval, init: S.Init,
                     t: T.CType) -> None:
        assert self.builder is not None
        if isinstance(init, S.SingleInit):
            ut = T.unroll(t)
            if isinstance(ut, T.TArray):
                # char arr[] = "str"
                e = init.exp
                if isinstance(e, E.StrConst):
                    for i, ch in enumerate(e.value + "\0"):
                        self.builder.emit(S.Set(
                            E.Lval(lv.host, _append_offset(
                                lv.offset,
                                E.Index(E.Const(i)))),
                            E.Const(ord(ch), T.char_t())))
                    return
                raise UnsupportedCError("array initializer form")
            self.builder.emit(S.Set(lv, init.exp))
            return
        assert isinstance(init, S.CompoundInit)
        ut = T.unroll(t)
        if isinstance(ut, T.TArray):
            for idx, sub in init.entries:
                self._assign_init(
                    E.Lval(lv.host, _append_offset(
                        lv.offset, E.Index(E.Const(idx)))),
                    sub, ut.base)
        elif isinstance(ut, T.TComp):
            for fname, sub in init.entries:
                field = ut.comp.field(str(fname))
                self._assign_init(
                    E.Lval(lv.host, _append_offset(
                        lv.offset, E.Field(field))),
                    sub, field.type)
        else:
            raise UnsupportedCError("compound init for scalar")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def expr_effect(self, node: c_ast.Node) -> None:
        """Convert an expression evaluated for its side effects only."""
        if isinstance(node, c_ast.Assignment):
            self.assignment(node)
        elif isinstance(node, c_ast.UnaryOp) and node.op in (
                "p++", "p--", "++", "--"):
            self._incdec(node)
        elif isinstance(node, c_ast.FuncCall):
            self.call(node, want_result=False)
        elif isinstance(node, c_ast.ExprList):
            for sub in node.exprs:
                self.expr_effect(sub)
        else:
            # Evaluate and discard (may still have effects inside).
            self.rvalue(node)

    def emit(self, instr: S.Instr) -> None:
        if self._forbid_effects:
            raise UnsupportedCError(
                "side effect in constant initializer context")
        assert self.builder is not None
        self.builder.emit(instr)

    def rvalue(self, node: c_ast.Node) -> E.Exp:
        e = self._rvalue_nodecay(node)
        return self._decay(e)

    def _decay(self, e: E.Exp) -> E.Exp:
        t = T.unroll(e.type())
        if isinstance(t, T.TArray) and isinstance(e, E.LvalExp):
            return E.StartOf(e.lval)
        if isinstance(t, T.TFun) and isinstance(e, E.LvalExp):
            return E.AddrOf(e.lval)
        return e

    def _rvalue_nodecay(self, node: c_ast.Node) -> E.Exp:
        if isinstance(node, c_ast.Constant):
            return self._constant(node)
        if isinstance(node, c_ast.ID):
            entry = self.lookup(node.name)
            if isinstance(entry, tuple) and entry[0] == "enumconst":
                return E.Const(entry[1])
            if entry is None:
                entry = self._implicit_extern(node)
            assert isinstance(entry, E.Varinfo)
            return E.LvalExp(E.var_lval(entry))
        if isinstance(node, (c_ast.ArrayRef, c_ast.StructRef)):
            return E.LvalExp(self.lvalue(node))
        if isinstance(node, c_ast.UnaryOp):
            return self._unary(node)
        if isinstance(node, c_ast.BinaryOp):
            return self._binary(node)
        if isinstance(node, c_ast.Assignment):
            lv = self.assignment(node)
            return E.LvalExp(lv)
        if isinstance(node, c_ast.TernaryOp):
            return self._ternary(node)
        if isinstance(node, c_ast.FuncCall):
            result = self.call(node, want_result=True)
            assert result is not None
            return result
        if isinstance(node, c_ast.Cast):
            return self._cast(node)
        if isinstance(node, c_ast.ExprList):
            for sub in node.exprs[:-1]:
                self.expr_effect(sub)
            return self.rvalue(node.exprs[-1])
        raise UnsupportedCError(
            f"expression {type(node).__name__}", node)

    def _implicit_extern(self, node: c_ast.ID) -> E.Varinfo:
        """An undeclared identifier used as a function: implicit
        ``extern int f()`` per K&R rules."""
        var = E.Varinfo(node.name,
                        T.TFun(T.int_t(), None, False),
                        is_global=True, storage="extern")
        self.scopes[0][node.name] = var
        self.prog.add(GVarDecl(var))
        return var

    def _constant(self, node: c_ast.Constant) -> E.Exp:
        kind = node.type
        v = node.value
        if kind == "string":
            text = _parse_c_string(v)
            return E.StrConst(text, T.TPtr(T.char_t()))
        if kind == "char":
            body = v[v.index("'") + 1:v.rindex("'")]
            text = _unescape(body)
            return E.Const(ord(text) if text else 0, T.char_t())
        if "float" in kind or "double" in kind:
            return E.Const(float(v.rstrip("fFlL")),
                           T.TFloat(T.FKind.DOUBLE if "f" not in
                                    v[-1].lower() else T.FKind.FLOAT))
        value = _parse_int_const(v)
        ik = T.IKind.INT
        suffix = v.lower()
        if "u" in suffix and "ll" in suffix:
            ik = T.IKind.ULLONG
        elif "ll" in suffix:
            ik = T.IKind.LLONG
        elif "u" in suffix and "l" in suffix:
            ik = T.IKind.ULONG
        elif suffix.endswith("l"):
            ik = T.IKind.LONG
        elif "u" in suffix:
            ik = T.IKind.UINT
        elif value > 0x7FFFFFFF:
            ik = T.IKind.UINT
        return E.Const(value, T.TInt(ik))

    def lvalue(self, node: c_ast.Node) -> E.Lval:
        if isinstance(node, c_ast.ID):
            entry = self.lookup(node.name)
            if not isinstance(entry, E.Varinfo):
                raise UnsupportedCError(
                    f"unknown variable {node.name}", node)
            return E.var_lval(entry)
        if isinstance(node, c_ast.UnaryOp) and node.op == "*":
            ptr = self.rvalue(node.expr)
            if not T.is_pointer(ptr.type()):
                raise UnsupportedCError("dereference of non-pointer",
                                        node)
            return E.mem_lval(ptr)
        if isinstance(node, c_ast.StructRef):
            if node.type == "->":
                base = self.rvalue(node.name)
                pt = T.unroll(base.type())
                if not isinstance(pt, T.TPtr):
                    raise UnsupportedCError("-> on non-pointer", node)
                comp_t = T.unroll(pt.base)
                if not isinstance(comp_t, T.TComp):
                    raise UnsupportedCError("-> on non-struct", node)
                field = comp_t.comp.field(node.field.name)
                return E.mem_lval(base, E.Field(field))
            lv = self.lvalue(node.name)
            comp_t = T.unroll(lv.type())
            if not isinstance(comp_t, T.TComp):
                raise UnsupportedCError(". on non-struct", node)
            field = comp_t.comp.field(node.field.name)
            return E.Lval(lv.host,
                          _append_offset(lv.offset, E.Field(field)))
        if isinstance(node, c_ast.ArrayRef):
            base = self._rvalue_nodecay(node.name)
            idx = self.rvalue(node.subscript)
            bt = T.unroll(base.type())
            if isinstance(bt, T.TArray) and isinstance(base, E.LvalExp):
                lv = base.lval
                return E.Lval(lv.host, _append_offset(
                    lv.offset, E.Index(idx)))
            base = self._decay(base)
            bt = T.unroll(base.type())
            if isinstance(bt, T.TPtr):
                return E.mem_lval(E.BinOp(E.BinopKind.PLUS_PI, base,
                                          idx, base.type()))
            raise UnsupportedCError("indexing non-pointer", node)
        if isinstance(node, c_ast.Cast):
            raise UnsupportedCError("cast as lvalue", node)
        raise UnsupportedCError(
            f"lvalue {type(node).__name__}", node)

    def _unary(self, node: c_ast.UnaryOp) -> E.Exp:
        op = node.op
        if op == "&":
            inner = node.expr
            lv = self.lvalue(inner)
            lt = T.unroll(lv.type())
            if isinstance(lt, T.TArray):
                return E.StartOf(lv)
            if isinstance(lt, T.TFun):
                return E.AddrOf(lv)
            if isinstance(lv.host, E.Var):
                lv.host.var.address_taken = True
            return E.AddrOf(lv)
        if op == "*":
            return E.LvalExp(self.lvalue(node))
        if op == "sizeof":
            if isinstance(node.expr, c_ast.Typename):
                return E.SizeOfT(self.conv_type(node.expr))
            e = self._rvalue_nodecay(node.expr)
            return E.SizeOfT(e.type())
        if op in ("++", "--", "p++", "p--"):
            return self._incdec(node)
        e = self.rvalue(node.expr)
        t = e.type()
        if op == "-":
            # Fold negated constants so the analysis sees their sign
            # (e.g. `p + (-1)` is backward pointer motion).
            if isinstance(e, E.Const) and isinstance(e.value,
                                                     (int, float)):
                return E.Const(-e.value, _promote(t))
            return E.UnOp(E.UnopKind.NEG, e, _promote(t))
        if op == "+":
            return e
        if op == "~":
            if isinstance(e, E.Const) and isinstance(e.value, int):
                return E.Const(~e.value, _promote(t))
            return E.UnOp(E.UnopKind.BNOT, e, _promote(t))
        if op == "!":
            return E.UnOp(E.UnopKind.LNOT, e, T.int_t())
        raise UnsupportedCError(f"unary {op}", node)

    def _incdec(self, node: c_ast.UnaryOp) -> E.Exp:
        """++x / --x / x++ / x-- lowered to a Set (plus a saved temp for
        the postfix forms)."""
        assert self.cur_fun is not None
        lv = self.lvalue(node.expr)
        t = lv.type()
        old = E.LvalExp(lv)
        if T.is_pointer(t):
            opk = (E.BinopKind.PLUS_PI if "+" in node.op
                   else E.BinopKind.MINUS_PI)
            new = E.BinOp(opk, old, E.Const(1), t)
        else:
            opk = E.BinopKind.ADD if "+" in node.op else E.BinopKind.SUB
            new = self.coerce(
                E.BinOp(opk, old, E.Const(1), _promote(t)), t)
        if node.op.startswith("p"):
            tmp = self.cur_fun.new_temp(t, "post")
            self.emit(S.Set(E.var_lval(tmp), old))
            self.emit(S.Set(lv, new))
            return E.LvalExp(E.var_lval(tmp))
        self.emit(S.Set(lv, new))
        return E.LvalExp(lv)

    def _binary(self, node: c_ast.BinaryOp) -> E.Exp:
        op = node.op
        if op in ("&&", "||"):
            return self._shortcircuit(node)
        e1 = self.rvalue(node.left)
        e2 = self.rvalue(node.right)
        t1, t2 = e1.type(), e2.type()
        p1, p2 = T.is_pointer(t1), T.is_pointer(t2)
        if op == "+":
            if p1 and T.is_integral(t2):
                return E.BinOp(E.BinopKind.PLUS_PI, e1, e2, t1)
            if p2 and T.is_integral(t1):
                return E.BinOp(E.BinopKind.PLUS_PI, e2, e1, t2)
        if op == "-":
            if p1 and T.is_integral(t2):
                return E.BinOp(E.BinopKind.MINUS_PI, e1, e2, t1)
            if p1 and p2:
                return E.BinOp(E.BinopKind.MINUS_PP, e1, e2, T.int_t())
        kind = _BIN_OPS.get(op)
        if kind is None:
            raise UnsupportedCError(f"binary {op}", node)
        if kind in E.COMPARISONS:
            if p1 and E.is_zero(e2):
                e2 = E.CastE(_same_ptr(t1), e2)
            elif p2 and E.is_zero(e1):
                e1 = E.CastE(_same_ptr(t2), e1)
            return E.BinOp(kind, e1, e2, T.int_t())
        rt = _usual_arith(t1, t2)
        return E.BinOp(kind, self.coerce(e1, rt), self.coerce(e2, rt),
                       rt)

    def _shortcircuit(self, node: c_ast.BinaryOp) -> E.Exp:
        assert self.cur_fun is not None and self.builder is not None
        tmp = self.cur_fun.new_temp(T.int_t(), "sc")
        a = self.rvalue(node.left)
        a_bool = _truth(a)

        def rhs() -> None:
            b = self.rvalue(node.right)
            self.emit(S.Set(E.var_lval(tmp), _truth(b)))

        if node.op == "&&":
            then = self.in_new_block(rhs)
            els = S.Block([S.InstrStmt(
                [S.Set(E.var_lval(tmp), E.Const(0))])])
            self.builder.add(S.If(a_bool, then, els))
        else:
            then = S.Block([S.InstrStmt(
                [S.Set(E.var_lval(tmp), E.Const(1))])])
            els = self.in_new_block(rhs)
            self.builder.add(S.If(a_bool, then, els))
        return E.LvalExp(E.var_lval(tmp))

    def _ternary(self, node: c_ast.TernaryOp) -> E.Exp:
        assert self.cur_fun is not None and self.builder is not None
        cond = self.rvalue(node.cond)
        # Determine the result type from both arms; convert both arms in
        # sub-blocks so their effects stay on the taken path.
        saved = self.builder
        self.builder = _BlockBuilder(self)
        a = self.rvalue(node.iftrue)
        then_bb = self.builder
        self.builder = _BlockBuilder(self)
        b = self.rvalue(node.iffalse)
        else_bb = self.builder
        self.builder = saved
        ta, tb = a.type(), b.type()
        if T.is_pointer(ta):
            rt: T.CType = ta if not E.is_zero(a) else (
                tb if T.is_pointer(tb) else ta)
        elif T.is_pointer(tb):
            rt = tb
        elif T.is_arithmetic(ta) and T.is_arithmetic(tb):
            rt = _usual_arith(ta, tb)
        else:
            rt = ta
        tmp = self.cur_fun.new_temp(rt, "cond")
        then_bb.emit(S.Set(E.var_lval(tmp), self.coerce(a, rt)))
        else_bb.emit(S.Set(E.var_lval(tmp), self.coerce(b, rt)))
        self.builder.add(S.If(cond, then_bb.block(), else_bb.block()))
        return E.LvalExp(E.var_lval(tmp))

    def _cast(self, node: c_ast.Cast) -> E.Exp:
        target = self.conv_type(node.to_type)
        # (T *)__trusted_cast(e): the trusted escape hatch.
        inner = node.expr
        if (isinstance(inner, c_ast.FuncCall)
                and isinstance(inner.name, c_ast.ID)
                and inner.name.name == "__trusted_cast"):
            args = inner.args.exprs if inner.args else []
            if len(args) != 1:
                raise UnsupportedCError("__trusted_cast takes one "
                                        "argument", node)
            e = self.rvalue(args[0])
            cast = E.CastE(target, e)
            cast.trusted = True
            self.prog.trusted_cast_count += 1
            return cast
        e = self.rvalue(inner)
        if T.is_void(target):
            return e
        return E.CastE(target, e)

    def assignment(self, node: c_ast.Assignment) -> E.Lval:
        lv = self.lvalue(node.lvalue)
        t = lv.type()
        if node.op == "=":
            rhs = self.coerce(self.rvalue(node.rvalue), t)
            self.emit(S.Set(lv, rhs))
            return lv
        opk = _ASSIGN_OPS.get(node.op)
        if opk is None:
            raise UnsupportedCError(f"assignment {node.op}", node)
        rhs = self.rvalue(node.rvalue)
        old = E.LvalExp(lv)
        if T.is_pointer(t) and opk in (E.BinopKind.ADD, E.BinopKind.SUB):
            pk = (E.BinopKind.PLUS_PI if opk is E.BinopKind.ADD
                  else E.BinopKind.MINUS_PI)
            new: E.Exp = E.BinOp(pk, old, rhs, t)
        else:
            rt = _usual_arith(t, rhs.type())
            new = self.coerce(
                E.BinOp(opk, self.coerce(old, rt),
                        self.coerce(rhs, rt), rt), t)
        self.emit(S.Set(lv, new))
        return lv

    def call(self, node: c_ast.FuncCall,
             want_result: bool) -> Optional[E.Exp]:
        assert self.cur_fun is not None
        if isinstance(node.name, c_ast.ID) and \
                node.name.name == "__trusted_cast":
            # A bare __trusted_cast(e) without an enclosing cast: treat
            # as a trusted cast to void*.
            args = node.args.exprs if node.args else []
            e = self.rvalue(args[0])
            cast = E.CastE(T.TPtr(T.void_t()), e)
            cast.trusted = True
            self.prog.trusted_cast_count += 1
            return cast
        fn = self._rvalue_nodecay(node.name)
        ft = T.unroll(fn.type())
        if isinstance(ft, T.TFun):
            pass
        else:
            fn = self._decay(fn)
            ft = T.unroll(fn.type())
            if isinstance(ft, T.TPtr):
                ft2 = T.unroll(ft.base)
                if not isinstance(ft2, T.TFun):
                    raise UnsupportedCError("call of non-function",
                                            node)
                ft = ft2
            else:
                raise UnsupportedCError("call of non-function", node)
        raw_args = node.args.exprs if node.args else []
        args: list[E.Exp] = []
        params = ft.params
        for i, a in enumerate(raw_args):
            e = self.rvalue(a)
            if params is not None and i < len(params):
                e = self.coerce(e, params[i][1])
            args.append(e)
        ret_t = ft.ret
        if want_result and not T.is_void(ret_t):
            # Allocator results get a recognizable temp name: casting
            # a fresh allocation to its intended type is not a checked
            # downcast (CCured recognizes allocators specially).
            callee = node.name.name if isinstance(
                node.name, c_ast.ID) else ""
            hint = "alloc" if callee in _ALLOCATORS else "call"
            tmp = self.cur_fun.new_temp(fresh_type(ret_t), hint)
            self.emit(S.Call(E.var_lval(tmp), fn, args))
            return E.LvalExp(E.var_lval(tmp))
        self.emit(S.Call(None, fn, args))
        if want_result:
            return E.Const(0)
        return None

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def coerce(self, e: E.Exp, target: T.CType) -> E.Exp:
        """Insert an explicit cast when ``e`` must convert to ``target``.

        Making *implicit* conversions explicit is what lets the
        constraint generator see, e.g., a ``void*`` flowing into a
        ``struct foo*`` parameter (a downcast needing RTTI).
        """
        ts, es = target.sig(), e.type().sig()
        if ts == es:
            return e
        ut = T.unroll(target)
        ue = T.unroll(e.type())
        if isinstance(ut, (T.TInt, T.TFloat, T.TEnum)) and isinstance(
                ue, (T.TInt, T.TFloat, T.TEnum)):
            return E.CastE(target, e)
        if isinstance(ut, T.TPtr):
            return E.CastE(target, e)
        if isinstance(ut, (T.TInt, T.TEnum)) and isinstance(ue, T.TPtr):
            return E.CastE(target, e)
        if isinstance(ut, T.TComp) and isinstance(ue, T.TComp) \
                and ut.comp is ue.comp:
            return e
        if T.is_void(target):
            return e
        raise UnsupportedCError(
            f"cannot convert {e.type()!r} to {target!r}")


def _append_offset(off: E.Offset, new: E.Offset) -> E.Offset:
    if isinstance(off, E.NoOffset):
        return new
    if isinstance(off, E.Field):
        return E.Field(off.field, _append_offset(off.rest, new))
    assert isinstance(off, E.Index)
    return E.Index(off.index, _append_offset(off.rest, new))


def _seq_blocks(body: S.Block, chain_is_else: S.Block) -> S.Block:
    out = S.Block(list(body.stmts) + list(chain_is_else.stmts))
    return out


def _truth(e: E.Exp) -> E.Exp:
    """Normalize an expression to 0/1 for storing into an int temp."""
    t = e.type()
    if T.is_pointer(t):
        return E.BinOp(E.BinopKind.NE, e,
                       E.CastE(_same_ptr(t), E.Const(0)), T.int_t())
    if isinstance(e, E.BinOp) and e.op in E.COMPARISONS:
        return e
    return E.BinOp(E.BinopKind.NE, e, E.Const(0), T.int_t())


def _same_ptr(t: T.CType) -> T.CType:
    """The same pointer type object, for null-constant casts.

    Sharing the ``TPtr`` (and hence its qualifier node) keeps the null
    literal from generating any constraints of its own.
    """
    return t


def _promote(t: T.CType) -> T.CType:
    u = T.unroll(t)
    if isinstance(u, T.TInt) and u.size() < 4:
        return T.int_t()
    if isinstance(u, T.TEnum):
        return T.int_t()
    return t


_RANK = {T.IKind.BOOL: 0, T.IKind.CHAR: 1, T.IKind.SCHAR: 1,
         T.IKind.UCHAR: 1, T.IKind.SHORT: 2, T.IKind.USHORT: 2,
         T.IKind.INT: 3, T.IKind.UINT: 4, T.IKind.LONG: 5,
         T.IKind.ULONG: 6, T.IKind.LLONG: 7, T.IKind.ULLONG: 8}


def _usual_arith(t1: T.CType, t2: T.CType) -> T.CType:
    u1, u2 = T.unroll(t1), T.unroll(t2)
    if isinstance(u1, T.TPtr):
        return t1
    if isinstance(u2, T.TPtr):
        return t2
    if isinstance(u1, T.TFloat) or isinstance(u2, T.TFloat):
        k1 = u1.kind if isinstance(u1, T.TFloat) else T.FKind.FLOAT
        k2 = u2.kind if isinstance(u2, T.TFloat) else T.FKind.FLOAT
        order = [T.FKind.FLOAT, T.FKind.DOUBLE, T.FKind.LDOUBLE]
        return T.TFloat(max(k1, k2, key=order.index))
    k1 = u1.kind if isinstance(u1, T.TInt) else T.IKind.INT
    k2 = u2.kind if isinstance(u2, T.TInt) else T.IKind.INT
    kind = k1 if _RANK[k1] >= _RANK[k2] else k2
    if _RANK[kind] < _RANK[T.IKind.INT]:
        kind = T.IKind.INT
    return T.TInt(kind)


def _parse_int_const(text: str) -> int:
    t = text.rstrip("uUlL")
    if t.lower().startswith("0x"):
        return int(t, 16)
    if t.startswith("0") and len(t) > 1:
        return int(t, 8)
    return int(t)


def _unescape(body: str) -> str:
    return (body.encode("latin-1", "backslashreplace")
            .decode("unicode_escape"))


def _parse_c_string(raw: str) -> str:
    # pycparser hands us the literal with quotes, possibly adjacent
    # concatenated segments.
    out = []
    i = 0
    while i < len(raw):
        if raw[i] == '"':
            j = i + 1
            while j < len(raw):
                if raw[j] == "\\":
                    j += 2
                    continue
                if raw[j] == '"':
                    break
                j += 1
            out.append(_unescape(raw[i + 1:j]))
            i = j + 1
        else:
            i += 1
    return "".join(out)


def _init_length(init: S.Init) -> int:
    if isinstance(init, S.CompoundInit):
        return len(init.entries)
    if isinstance(init, S.SingleInit) and isinstance(
            init.exp, E.StrConst):
        return len(init.exp.value) + 1
    raise UnsupportedCError("cannot size incomplete array")
