/* spec_go.c — a Spec95 099.go-like workload.
 *
 * Board-game position evaluation: 2-D arrays accessed through flat
 * pointers (the multi-dimensional SEQ cast rule of Section 3.1),
 * bounded recursion, and integer-heavy scoring.
 */
#include <stdio.h>

#ifndef SCALE
#define SCALE 4
#endif

#define BOARD 9
#define EMPTY 0
#define BLACK 1
#define WHITE 2

static int board[BOARD][BOARD];
static unsigned int seed = 99;

static int prand(int limit) {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 8) % (unsigned int)limit);
}

static int liberties(int row, int col) {
    int libs = 0;
    if (row > 0 && board[row - 1][col] == EMPTY)
        libs++;
    if (row < BOARD - 1 && board[row + 1][col] == EMPTY)
        libs++;
    if (col > 0 && board[row][col - 1] == EMPTY)
        libs++;
    if (col < BOARD - 1 && board[row][col + 1] == EMPTY)
        libs++;
    return libs;
}

static int friends(int row, int col, int color) {
    int n = 0;
    if (row > 0 && board[row - 1][col] == color)
        n++;
    if (row < BOARD - 1 && board[row + 1][col] == color)
        n++;
    if (col > 0 && board[row][col - 1] == color)
        n++;
    if (col < BOARD - 1 && board[row][col + 1] == color)
        n++;
    return n;
}

static int score_board(void) {
    /* scan the board through a flat pointer: int[9]* -> int* is the
     * size-commensurate SEQ cast the paper's rule admits */
    int *flat = (int *)board;
    int i, score = 0;
    for (i = 0; i < BOARD * BOARD; i++) {
        if (flat[i] == BLACK)
            score++;
        else if (flat[i] == WHITE)
            score--;
    }
    return score;
}

static int play_move(int color) {
    int best_r = -1, best_c = -1, best_v = -1000;
    int tries;
    for (tries = 0; tries < 12; tries++) {
        int r = prand(BOARD);
        int c = prand(BOARD);
        int v;
        if (board[r][c] != EMPTY)
            continue;
        v = liberties(r, c) * 4 + friends(r, c, color) * 3
            - friends(r, c, 3 - color) + prand(3);
        if (v > best_v) {
            best_v = v;
            best_r = r;
            best_c = c;
        }
    }
    if (best_r >= 0) {
        board[best_r][best_c] = color;
        return 1;
    }
    return 0;
}

int main(void) {
    int game, moves = 0;
    long total = 0;
    for (game = 0; game < SCALE; game++) {
        int r, c, m;
        for (r = 0; r < BOARD; r++)
            for (c = 0; c < BOARD; c++)
                board[r][c] = EMPTY;
        for (m = 0; m < 30; m++) {
            if (!play_move(m % 2 == 0 ? BLACK : WHITE))
                break;
            moves++;
        }
        total += score_board() + 100;
    }
    printf("go: moves=%d total=%ld\n", moves, total);
    return (int)(total % 97);
}
