/* apache_urlcount.c — urlcount-like: count visits per URL in a small
 * hash table with chaining in a pool (paper Fig. 8, 702 LoC). */
#include "apache_core.h"

#define BUCKETS 8

struct count_node {
    char url[64];
    int hits;
    struct count_node *next;
};

static struct count_node *buckets[BUCKETS];
static struct pool *count_pool;

static int hash_url(const char *s) {
    unsigned int h = 5381;
    while (*s != 0) {
        h = h * 33 + (unsigned int)*s;
        s++;
    }
    return (int)(h % BUCKETS);
}

static struct count_node *lookup_or_add(const char *url) {
    int b = hash_url(url);
    struct count_node *n = buckets[b];
    while (n != (struct count_node *)0) {
        if (strcmp(n->url, url) == 0)
            return n;
        n = n->next;
    }
    n = (struct count_node *)__trusted_cast(
        ap_palloc(count_pool, (int)sizeof(struct count_node)));
    if (n == (struct count_node *)0)
        return n;
    strncpy(n->url, url, 63);
    n->url[63] = 0;
    n->hits = 0;
    n->next = buckets[b];
    buckets[b] = n;
    return n;
}

static int module_handler(struct request_rec *r) {
    struct count_node *n;
    if (count_pool == (struct pool *)0)
        count_pool = ap_make_pool(8192);
    n = lookup_or_add(r->uri);
    if (n == (struct count_node *)0)
        return DECLINED;
    n->hits++;
    r->bytes_sent = n->hits;
    return OK;
}
