/* ftpd.c — a scaled-down ftpd-BSD-like daemon.
 *
 * The paper: "we ran ftpd-BSD 0.3.2-5 through CCured.  This version of
 * ftpd has a known vulnerability (buffer overflow) in the
 * replydirname function, and we verified that CCured prevents this
 * error."
 *
 * This program reproduces that daemon's shape: a command loop parsing
 * FTP verbs, a current-directory tracker, a tiny in-memory filesystem,
 * and — crucially — the real replydirname off-by-one: the function
 * copies the directory name into a fixed buffer while escaping '"'
 * characters, and its bounds test fails to account for the escape
 * expansion (CVE-2001-0053 family).  A deep path of quote characters
 * overruns npath[].
 *
 * Requests come from stdin, one command per line, e.g.:
 *   USER anonymous / PASS x / CWD dir / PWD / MKD name / LIST / QUIT
 */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#ifndef SCALE
#define SCALE 1
#endif

#define MAXPATHLEN 64
#define MAX_FILES 16

static char cwd[MAXPATHLEN * 4];
static int logged_in;
static int replies;

struct vfile {
    char name[24];
    int size;
    int is_dir;
};

static struct vfile files[MAX_FILES];
static int n_files;

static void addfile(const char *name, int size, int is_dir) {
    if (n_files >= MAX_FILES)
        return;
    strncpy(files[n_files].name, name, 23);
    files[n_files].name[23] = 0;
    files[n_files].size = size;
    files[n_files].is_dir = is_dir;
    n_files++;
}

static void reply(int code, const char *text) {
    printf("%d %s\r\n", code, text);
    replies++;
}

/* The vulnerable function, structurally faithful to ftpd-BSD: quotes
 * in the directory name are doubled while copying into a fixed-size
 * buffer, but the guard only counts input characters. */
static void replydirname(const char *name, const char *message) {
    char npath[MAXPATHLEN];
    int i;
    for (i = 0; *name != 0 && i < MAXPATHLEN - 1; i++, name++) {
        npath[i] = *name;
        if (*name == '"') {
            npath[i + 1] = '"';   /* off-by-one: i+1 can hit the end */
            i++;
        }
    }
    npath[i] = 0;
    printf("257 \"%s\" %s\r\n", npath, message);
    replies++;
}

static void do_cwd(const char *arg) {
    if ((int)(strlen(cwd) + strlen(arg)) + 2
            >= (int)sizeof(cwd)) {
        reply(550, "path too long");
        return;
    }
    strcat(cwd, "/");
    strcat(cwd, arg);
    reply(250, "CWD command successful");
}

static void do_list(void) {
    int i;
    for (i = 0; i < n_files; i++) {
        printf("%s %8d %s\r\n", files[i].is_dir ? "d" : "-",
               files[i].size, files[i].name);
    }
    reply(226, "Transfer complete");
}

static void do_mkd(const char *arg) {
    addfile(arg, 0, 1);
    replydirname(arg, "directory created");
}

static int split_cmd(char *line, char **arg_out) {
    char *sp = strchr(line, ' ');
    if (sp == (char *)0) {
        *arg_out = line + strlen(line);
        return (int)strlen(line);
    }
    *sp = 0;
    *arg_out = sp + 1;
    return (int)(sp - line);
}

int main(void) {
    char line[256];
    char *arg;
    int quit = 0;

    strcpy(cwd, "/home/ftp");
    addfile("README", 1024, 0);
    addfile("pub", 0, 1);
    addfile("incoming", 0, 1);
    reply(220, "FTP server ready");

    while (!quit && fgets(line, (int)sizeof(line), stdin)
           != (char *)0) {
        int len = (int)strlen(line);
        while (len > 0 && (line[len - 1] == '\n'
                           || line[len - 1] == '\r')) {
            line[len - 1] = 0;
            len--;
        }
        if (len == 0)
            continue;
        split_cmd(line, &arg);
        if (strcmp(line, "USER") == 0) {
            reply(331, "User name okay, need password");
        } else if (strcmp(line, "PASS") == 0) {
            logged_in = 1;
            reply(230, "User logged in");
        } else if (!logged_in) {
            reply(530, "Not logged in");
        } else if (strcmp(line, "CWD") == 0) {
            do_cwd(arg);
        } else if (strcmp(line, "PWD") == 0) {
            replydirname(cwd, "is current directory");
        } else if (strcmp(line, "MKD") == 0) {
            do_mkd(arg);
        } else if (strcmp(line, "LIST") == 0) {
            do_list();
        } else if (strcmp(line, "NOOP") == 0) {
            reply(200, "NOOP command successful");
        } else if (strcmp(line, "QUIT") == 0) {
            reply(221, "Goodbye");
            quit = 1;
        } else {
            reply(500, "Command not understood");
        }
    }
    printf("session: %d replies\n", replies);
    return replies > 0 ? 0 : 1;
}
