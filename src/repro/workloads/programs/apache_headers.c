/* apache_headers.c — mod_headers-like: add/append/unset response
 * headers from a rule list (paper Fig. 8, 281 LoC). */
#include "apache_core.h"

struct header_rule {
    int action;          /* 0=set 1=append 2=unset 3=echo */
    const char *name;
    const char *value;
};

static const struct header_rule hrules[4] = {
    { 0, "X-Server", "repro/1.0" },
    { 1, "Cache-Control", "private" },
    { 3, "Host", "" },
    { 0, "X-Frame-Options", "DENY" },
};

static int module_handler(struct request_rec *r) {
    int i, applied = 0;
    char merged[64];
    for (i = 0; i < 4; i++) {
        const struct header_rule *h = &hrules[i];
        if (h->action == 0) {
            ap_table_set(r->pool, r->headers_out, h->name, h->value);
            applied++;
        } else if (h->action == 1) {
            char *old = ap_table_get(r->headers_out, h->name);
            if (old != (char *)0 && (int)(strlen(old)
                    + strlen(h->value)) + 3 < (int)sizeof(merged)) {
                strcpy(merged, old);
                strcat(merged, ", ");
                strcat(merged, h->value);
                ap_table_set(r->pool, r->headers_out, h->name,
                             merged);
            } else {
                ap_table_set(r->pool, r->headers_out, h->name,
                             h->value);
            }
            applied++;
        } else if (h->action == 3) {
            char *in = ap_table_get(r->headers_in, h->name);
            if (in != (char *)0) {
                ap_table_set(r->pool, r->headers_out, "X-Echo", in);
                applied++;
            }
        }
    }
    r->bytes_sent = applied * 16;
    return OK;
}
