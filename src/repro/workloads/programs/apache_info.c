/* apache_info.c — mod_info-like: render the server configuration into
 * an HTML-ish buffer (paper Fig. 8, 786 LoC). */
#include "apache_core.h"

struct directive {
    const char *name;
    const char *value;
};

static const struct directive config[6] = {
    { "ServerRoot", "/usr/local/apache" },
    { "Timeout", "300" },
    { "KeepAlive", "On" },
    { "MaxClients", "150" },
    { "DocumentRoot", "/var/www" },
    { "LogLevel", "warn" },
};

static int emit(char *out, int pos, int max, const char *text) {
    int n = (int)strlen(text);
    if (pos + n >= max)
        return pos;
    strcpy(out + pos, text);
    return pos + n;
}

static int module_handler(struct request_rec *r) {
    char page[512];
    int pos = 0, i;
    if (strstr(r->uri, "page7") == (char *)0)
        return DECLINED;   /* only the /server-info style page */
    pos = emit(page, pos, 512, "<html><h1>Server Info</h1><dl>");
    for (i = 0; i < 6; i++) {
        pos = emit(page, pos, 512, "<dt>");
        pos = emit(page, pos, 512, config[i].name);
        pos = emit(page, pos, 512, "</dt><dd>");
        pos = emit(page, pos, 512, config[i].value);
        pos = emit(page, pos, 512, "</dd>");
    }
    pos = emit(page, pos, 512, "</dl></html>");
    r->bytes_sent = pos;
    return OK;
}
