/* ptrdist_ks.c — a Ptrdist ks-like workload (Kernighan-Schweikert
 * graph partitioning): adjacency lists on the heap, gain computation,
 * node swapping between partitions. */
#include <stdio.h>
#include <stdlib.h>

#ifndef SCALE
#define SCALE 2
#endif

#define N_NODES 24
#define MAX_DEG 4

struct gnode {
    int id;
    int part;              /* 0 or 1 */
    int degree;
    struct gnode *adj[MAX_DEG];
};

static struct gnode *nodes[N_NODES];
static unsigned int seed = 13;

static int prand(int limit) {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 8) % (unsigned int)limit);
}

static void build_graph(void) {
    int i, k;
    for (i = 0; i < N_NODES; i++) {
        struct gnode *n =
            (struct gnode *)malloc(sizeof(struct gnode));
        n->id = i;
        n->part = i % 2;
        n->degree = 0;
        nodes[i] = n;
    }
    for (i = 0; i < N_NODES; i++) {
        struct gnode *n = nodes[i];
        for (k = n->degree; k < MAX_DEG; k++) {
            struct gnode *m = nodes[prand(N_NODES)];
            if (m != n && m->degree < MAX_DEG) {
                n->adj[n->degree] = m;
                n->degree++;
                m->adj[m->degree] = n;
                m->degree++;
            }
            if (n->degree >= MAX_DEG)
                break;
        }
    }
}

static int cut_size(void) {
    int cut = 0, i, k;
    for (i = 0; i < N_NODES; i++) {
        struct gnode *n = nodes[i];
        for (k = 0; k < n->degree; k++)
            if (n->adj[k]->part != n->part)
                cut++;
    }
    return cut / 2;
}

static int gain(struct gnode *n) {
    int g = 0, k;
    for (k = 0; k < n->degree; k++)
        g += (n->adj[k]->part != n->part) ? 1 : -1;
    return g;
}

static int improve_once(void) {
    int best_i = -1, best_j = -1, best_g = 0;
    int i, j;
    for (i = 0; i < N_NODES; i++) {
        if (nodes[i]->part != 0)
            continue;
        for (j = 0; j < N_NODES; j++) {
            int g;
            if (nodes[j]->part != 1)
                continue;
            g = gain(nodes[i]) + gain(nodes[j]);
            if (g > best_g) {
                best_g = g;
                best_i = i;
                best_j = j;
            }
        }
    }
    if (best_i >= 0) {
        nodes[best_i]->part = 1;
        nodes[best_j]->part = 0;
        return 1;
    }
    return 0;
}

int main(void) {
    int round;
    long total = 0;
    for (round = 0; round < SCALE; round++) {
        int before, after, passes = 0;
        int i;
        seed = 13 + (unsigned int)round;
        build_graph();
        before = cut_size();
        while (improve_once() && passes < 10)
            passes++;
        after = cut_size();
        total += before - after + passes;
        for (i = 0; i < N_NODES; i++)
            free(nodes[i]);
    }
    printf("ks: improved=%ld\n", total);
    return (int)(total % 97);
}
