/* apache_random.c — mod_random-like: redirect to a randomly chosen
 * target URL (paper Fig. 8, 131 LoC). */
#include "apache_core.h"

static const char *targets[5] = {
    "/mirror/a", "/mirror/b", "/mirror/c", "/mirror/d", "/mirror/e",
};

static int module_handler(struct request_rec *r) {
    int pick = ap_rand(5);
    char location[64];
    if (strncmp(r->uri, "/site/", 6) != 0)
        return DECLINED;
    sprintf(location, "%s%s", targets[pick], r->uri + 5);
    ap_table_set(r->pool, r->headers_out, "Location", location);
    r->status = 302;
    r->bytes_sent = (int)strlen(location);
    return OK;
}
