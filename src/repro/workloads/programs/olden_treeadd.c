/* olden_treeadd.c — the Olden treeadd benchmark: build a balanced
 * binary tree on the heap, then sum it recursively.  Pure
 * pointer-chasing with SAFE pointers: the cheapest case for CCured
 * (null checks only). */
#include <stdio.h>
#include <stdlib.h>

#ifndef SCALE
#define SCALE 8
#endif

struct tree {
    int value;
    struct tree *left;
    struct tree *right;
};

static struct tree *build(int depth, int value) {
    struct tree *t;
    if (depth <= 0)
        return (struct tree *)0;
    t = (struct tree *)malloc(sizeof(struct tree));
    t->value = value;
    t->left = build(depth - 1, 2 * value);
    t->right = build(depth - 1, 2 * value + 1);
    return t;
}

static long tree_add(struct tree *t) {
    if (t == (struct tree *)0)
        return 0;
    return t->value + tree_add(t->left) + tree_add(t->right);
}

int main(void) {
    struct tree *root = build(SCALE, 1);
    long total = tree_add(root);
    printf("treeadd: depth=%d total=%ld\n", SCALE, total);
    return (int)(total % 97);
}
