/* pcnet32.c — a PCnet32-like PCI Ethernet driver workload.
 *
 * The paper's pcnet32 row (Fig. 9: 1661 LoC, 92/8/0/0, 0.99x —
 * throughput unchanged because I/O dominates).  Reproduced structure:
 * descriptor rings of DMA buffers, an interrupt-style rx/tx service
 * loop, and MMIO register access through a trusted window (the
 * paper's Linux drivers treated low-level macros as trusted).
 */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <ccured.h>

#ifndef SCALE
#define SCALE 3
#endif

#define RING 8
#define MTU 64

struct rx_desc {
    unsigned char buf[MTU];
    int length;
    int own;           /* 1 = owned by device */
};

struct tx_desc {
    unsigned char buf[MTU];
    int length;
    int own;
};

struct pcnet_dev {
    struct rx_desc rx_ring[RING];
    struct tx_desc tx_ring[RING];
    int rx_head;
    int tx_tail;
    long rx_packets;
    long tx_packets;
    long rx_bytes;
    long tx_bytes;
    int irq_count;
};

static unsigned int seed = 21;

static int prand(int limit) {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 8) % (unsigned int)limit);
}

/* the "device": fills rx descriptors it owns */
static void device_dma(struct pcnet_dev *d) {
    int i;
    for (i = 0; i < RING; i++) {
        struct rx_desc *rx = &d->rx_ring[i];
        if (rx->own) {
            int n = 16 + prand(MTU - 16);
            int k;
            for (k = 0; k < n; k++)
                rx->buf[k] = (unsigned char)(k ^ i);
            rx->length = n;
            rx->own = 0;       /* hand to the host */
        }
    }
}

static int pcnet_rx(struct pcnet_dev *d) {
    int serviced = 0;
    while (serviced < RING) {
        struct rx_desc *rx = &d->rx_ring[d->rx_head];
        int sum = 0, k;
        if (rx->own)
            break;
        for (k = 0; k < rx->length; k++)
            sum += rx->buf[k];
        /* wire time for the received frame */
        __io_write((void *)rx->buf, (unsigned int)rx->length * 48);
        d->rx_packets++;
        d->rx_bytes += rx->length + (sum & 1);
        rx->own = 1;           /* recycle to the device */
        d->rx_head = (d->rx_head + 1) % RING;
        serviced++;
    }
    return serviced;
}

static int pcnet_start_xmit(struct pcnet_dev *d,
                            const unsigned char *data, int len) {
    struct tx_desc *tx = &d->tx_ring[d->tx_tail];
    if (tx->own)
        return -1;             /* ring full */
    if (len > MTU)
        len = MTU;
    memcpy((void *)tx->buf, (void *)data, (unsigned int)len);
    tx->length = len;
    tx->own = 1;
    __io_write((void *)tx->buf, (unsigned int)len * 48);
    d->tx_tail = (d->tx_tail + 1) % RING;
    d->tx_packets++;
    d->tx_bytes += len;
    return 0;
}

static void device_tx_complete(struct pcnet_dev *d) {
    int i;
    for (i = 0; i < RING; i++)
        d->tx_ring[i].own = 0;
}

static void pcnet_interrupt(struct pcnet_dev *d) {
    d->irq_count++;
    device_dma(d);
    pcnet_rx(d);
    device_tx_complete(d);
}

int main(void) {
    struct pcnet_dev *dev =
        (struct pcnet_dev *)malloc(sizeof(struct pcnet_dev));
    unsigned char frame[MTU];
    int tick, i;

    memset((void *)dev, 0, (unsigned int)sizeof(struct pcnet_dev));
    for (i = 0; i < RING; i++)
        dev->rx_ring[i].own = 1;

    for (tick = 0; tick < SCALE * 12; tick++) {
        int n = 20 + prand(32);
        for (i = 0; i < n; i++)
            frame[i] = (unsigned char)(tick + i);
        pcnet_start_xmit(dev, frame, n);
        if (tick % 2 == 0)
            pcnet_interrupt(dev);
    }
    pcnet_interrupt(dev);
    printf("pcnet32: rx=%ld tx=%ld rxb=%ld txb=%ld irq=%d\n",
           dev->rx_packets, dev->tx_packets, dev->rx_bytes,
           dev->tx_bytes, dev->irq_count);
    return (int)((dev->rx_bytes + dev->tx_bytes) % 97);
}
