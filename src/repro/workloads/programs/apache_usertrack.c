/* apache_usertrack.c — mod_usertrack-like: parse/issue tracking
 * cookies (paper Fig. 8, 409 LoC). */
#include "apache_core.h"

static int parse_cookie(const char *header, char *id_out, int max) {
    const char *p = strstr(header, "Apache=");
    int n = 0;
    if (p == (const char *)0)
        return 0;
    p = p + 7;
    while (*p != 0 && *p != ';' && n + 1 < max) {
        id_out[n] = *p;
        n++;
        p++;
    }
    id_out[n] = 0;
    return n;
}

static int module_handler(struct request_rec *r) {
    char *cookie = ap_table_get(r->headers_in, "Cookie");
    char id[32];
    char setc[64];
    if (cookie != (char *)0 && parse_cookie(cookie, id, 32) > 0) {
        ap_table_set(r->pool, r->headers_out, "X-Returning", id);
        r->bytes_sent = (int)strlen(id);
        return OK;
    }
    sprintf(setc, "Apache=%d%d", 100000 + ap_rand(899999),
            ap_rand(997));
    ap_table_set(r->pool, r->headers_out, "Set-Cookie", setc);
    /* remember it for the next request of this simulation */
    ap_table_set(r->pool, r->headers_in, "Cookie", setc);
    r->bytes_sent = (int)strlen(setc);
    return OK;
}
