/* olden_bisort.c — an Olden bisort-like workload.
 *
 * Pointer-chasing over a heap-allocated binary tree: the Olden suite's
 * profile (SAFE pointers everywhere, null checks dominate, very little
 * arithmetic).  Builds a random tree, bitonic-ish sorts it by value
 * swapping, then sums in order.
 */
#include <stdlib.h>
#include <stdio.h>

#ifndef SCALE
#define SCALE 7
#endif

struct node {
    int value;
    struct node *left;
    struct node *right;
};

static unsigned int seed = 7;

static int prand(int limit) {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 8) % (unsigned int)limit);
}

static struct node *build(int depth) {
    struct node *n;
    if (depth == 0)
        return 0;
    n = (struct node *)malloc(sizeof(struct node));
    n->value = prand(1000);
    n->left = build(depth - 1);
    n->right = build(depth - 1);
    return n;
}

static void swap_if(struct node *a, struct node *b, int up) {
    int t;
    if (a == 0 || b == 0)
        return;
    if ((up && a->value > b->value) || (!up && a->value < b->value)) {
        t = a->value;
        a->value = b->value;
        b->value = t;
    }
}

static void merge_pass(struct node *n, int up) {
    if (n == 0)
        return;
    swap_if(n->left, n->right, up);
    swap_if(n, n->left, up);
    merge_pass(n->left, up);
    merge_pass(n->right, !up);
}

static long sum_tree(struct node *n, int depth) {
    if (n == 0)
        return 0;
    return n->value * (depth + 1) + sum_tree(n->left, depth + 1)
        + sum_tree(n->right, depth + 1);
}

static int count_nodes(struct node *n) {
    if (n == 0)
        return 0;
    return 1 + count_nodes(n->left) + count_nodes(n->right);
}

int main(void) {
    struct node *root = build(SCALE);
    int pass;
    long sum;
    for (pass = 0; pass < 6; pass++)
        merge_pass(root, pass % 2);
    sum = sum_tree(root, 0);
    printf("bisort: nodes=%d sum=%ld\n", count_nodes(root),
           sum % 1000000);
    return (int)(sum % 97);
}
