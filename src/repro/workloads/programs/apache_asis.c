/* apache_asis.c — mod_asis-like: send a stored file verbatim,
 * parsing an embedded status/header prefix (paper Fig. 8, 149 LoC). */
#include "apache_core.h"

static const char *asis_body =
    "Status: 200 OK\n"
    "Content-Type: text/plain\n"
    "\n"
    "This file is sent as-is by the asis handler.\n";

static int module_handler(struct request_rec *r) {
    const char *p = asis_body;
    char header[48];
    int hlen;
    /* parse the leading header block (lines until the blank line) */
    while (*p != 0) {
        const char *nl = strchr(p, '\n');
        if (nl == (const char *)0)
            break;
        hlen = (int)(nl - p);
        if (hlen == 0) {
            p = nl + 1;
            break;  /* end of headers: rest is the body */
        }
        if (hlen < (int)sizeof(header)) {
            strncpy(header, p, hlen);
            header[hlen] = 0;
            if (strncmp(header, "Status:", 7) == 0)
                r->status = atoi(header + 7);
            else {
                char *colon = strchr(header, ':');
                if (colon != (char *)0) {
                    *colon = 0;
                    ap_table_set(r->pool, r->headers_out, header,
                                 colon + 1);
                }
            }
        }
        p = nl + 1;
    }
    r->bytes_sent = (int)strlen(p);
    return OK;
}
