/* olden_em3d.c — an Olden em3d-like workload.
 *
 * Electromagnetic wave propagation on a bipartite graph: each node
 * holds an array of pointers to neighbour values plus coefficients.
 * This is the paper's worst case for the all-SPLIT ablation (+58%):
 * the hot loop dereferences pointer arrays, so parallel metadata costs
 * a second dereference per access.
 */
#include <stdlib.h>
#include <stdio.h>

#ifndef SCALE
#define SCALE 5
#endif

#define NODES (SCALE * 10)
#define DEGREE 4
#define ITERS 8

struct enode {
    int slot;                      /* index of this node's value */
    double coeffs[DEGREE];
    double **from_values;          /* malloc'd array of interior
                                    * pointers: a SEQ field, so in the
                                    * split representation *every*
                                    * enode pointer needs a metadata
                                    * link (Section 4.2's rule) */
    struct enode *next;
};

/* the field values live in flat arrays; nodes hold interior
 * pointers into the *other* array (this is what makes em3d the
 * paper's worst case for the all-split ablation: the hot loop loads
 * SEQ pointers whose bounds live in the parallel metadata) */
static double e_values[NODES];
static double h_values[NODES];

static unsigned int seed = 3;

static int prand(int limit) {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 8) % (unsigned int)limit);
}

static struct enode *make_list(double *values, int n) {
    struct enode *head = 0;
    int i, k;
    for (i = 0; i < n; i++) {
        struct enode *e =
            (struct enode *)malloc(sizeof(struct enode));
        e->slot = i;
        values[i] = (double)prand(100) / 10.0;
        e->from_values =
            (double **)malloc(DEGREE * sizeof(double *));
        for (k = 0; k < DEGREE; k++) {
            e->coeffs[k] = (double)prand(50) / 100.0;
            e->from_values[k] = 0;
        }
        e->next = head;
        head = e;
    }
    return head;
}

static void wire(double *from_values, struct enode *to_list,
                 int n) {
    struct enode *e;
    int k;
    for (e = to_list; e != 0; e = e->next)
        for (k = 0; k < DEGREE; k++)
            e->from_values[k] = from_values + prand(n);
}

static void compute(struct enode *list, double *values) {
    struct enode *e;
    int k;
    for (e = list; e != 0; e = e->next) {
        double acc = values[e->slot];
        for (k = 0; k < DEGREE; k++) {
            double *pv = e->from_values[k];
            if (pv != 0)
                acc = acc - e->coeffs[k] * (*pv);
        }
        values[e->slot] = acc;
    }
}

int main(void) {
    struct enode *e_nodes = make_list(e_values, NODES);
    struct enode *h_nodes = make_list(h_values, NODES);
    int it, i;
    double total = 0.0;
    wire(h_values, e_nodes, NODES);
    wire(e_values, h_nodes, NODES);
    for (it = 0; it < ITERS; it++) {
        compute(e_nodes, e_values);
        compute(h_nodes, h_values);
    }
    for (i = 0; i < NODES; i++)
        total += e_values[i];
    printf("em3d: nodes=%d total=%d\n", NODES * 2,
           (int)(total * 10.0));
    return ((int)(total * 10.0) % 97 + 97) % 97;
}
