/* olden_power.c — an Olden power-like workload: a three-level
 * hierarchy (root -> laterals -> branches -> leaves) optimized with a
 * downward pass and an upward accumulation; all heap pointers, deeper
 * structures than treeadd. */
#include <stdio.h>
#include <stdlib.h>

#ifndef SCALE
#define SCALE 3
#endif

#define N_LATERAL SCALE
#define N_BRANCH 4
#define N_LEAF 5

struct leaf {
    double demand;
    double price;
};

struct branch {
    double current;
    struct leaf *leaves[N_LEAF];
};

struct lateral {
    double current;
    struct branch *branches[N_BRANCH];
};

struct root {
    double total;
    struct lateral *laterals[N_LATERAL];
};

static unsigned int seed = 41;

static int prand(int limit) {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 8) % (unsigned int)limit);
}

static struct root *build_network(void) {
    struct root *r = (struct root *)malloc(sizeof(struct root));
    int i, j, k;
    r->total = 0.0;
    for (i = 0; i < N_LATERAL; i++) {
        struct lateral *lat =
            (struct lateral *)malloc(sizeof(struct lateral));
        lat->current = 0.0;
        for (j = 0; j < N_BRANCH; j++) {
            struct branch *br =
                (struct branch *)malloc(sizeof(struct branch));
            br->current = 0.0;
            for (k = 0; k < N_LEAF; k++) {
                struct leaf *lf =
                    (struct leaf *)malloc(sizeof(struct leaf));
                lf->demand = 1.0 + (double)prand(100) / 50.0;
                lf->price = 1.0;
                br->leaves[k] = lf;
            }
            lat->branches[j] = br;
        }
        r->laterals[i] = lat;
    }
    return r;
}

static double optimize_branch(struct branch *br, double price) {
    double flow = 0.0;
    int k;
    for (k = 0; k < N_LEAF; k++) {
        struct leaf *lf = br->leaves[k];
        lf->price = price;
        flow += lf->demand / lf->price;
    }
    br->current = flow;
    return flow;
}

static double optimize_lateral(struct lateral *lat, double price) {
    double flow = 0.0;
    int j;
    for (j = 0; j < N_BRANCH; j++)
        flow += optimize_branch(lat->branches[j], price * 1.05);
    lat->current = flow;
    return flow;
}

int main(void) {
    struct root *net = build_network();
    int iter, i;
    double price = 1.0;
    for (iter = 0; iter < 6; iter++) {
        double total = 0.0;
        for (i = 0; i < N_LATERAL; i++)
            total += optimize_lateral(net->laterals[i], price);
        net->total = total;
        /* adjust the price toward a target flow */
        if (total > 60.0 * N_LATERAL)
            price = price * 1.1;
        else
            price = price * 0.97;
    }
    printf("power: total=%d price=%d\n", (int)net->total,
           (int)(price * 1000.0));
    return (int)net->total % 97;
}
