/* spec_li.c — a Spec95 130.li-like workload: a tiny Lisp evaluator.
 *
 * The classic dynamically-typed interpreter in C: tagged cells behind
 * a common header, cons pairs, symbols, fixnums, a mark-free arena,
 * and a recursive evaluator.  Exercises exactly the patterns the
 * paper's RTTI machinery exists for — every cell access is a checked
 * downcast from the common header.
 *
 * The program evaluates a few closed-form expressions built
 * programmatically (no reader needed): arithmetic, conditionals, and
 * a recursive factorial via a one-slot function table.
 */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#ifndef SCALE
#define SCALE 3
#endif

#define T_FIXNUM 1
#define T_SYMBOL 2
#define T_CONS 3

struct object {
    int tag;
};

struct fixnum {
    int tag;
    long value;
};

struct symbol {
    int tag;
    char name[12];
};

struct cons {
    int tag;
    void *car;
    void *cdr;
};

/* ---- allocation ---------------------------------------------------- */

static int cells_allocated;

static void *make_fixnum(long v) {
    struct fixnum *f =
        (struct fixnum *)malloc(sizeof(struct fixnum));
    f->tag = T_FIXNUM;
    f->value = v;
    cells_allocated++;
    return (void *)f;
}

static void *make_symbol(const char *name) {
    struct symbol *s =
        (struct symbol *)malloc(sizeof(struct symbol));
    s->tag = T_SYMBOL;
    strncpy(s->name, name, 11);
    s->name[11] = 0;
    cells_allocated++;
    return (void *)s;
}

static void *make_cons(void *car, void *cdr) {
    struct cons *c = (struct cons *)malloc(sizeof(struct cons));
    c->tag = T_CONS;
    c->car = car;
    c->cdr = cdr;
    cells_allocated++;
    return (void *)c;
}

/* ---- accessors (checked downcasts everywhere) ---------------------- */

static int tag_of(void *obj) {
    struct object *o = (struct object *)obj;   /* downcast */
    return o->tag;
}

static long fixnum_value(void *obj) {
    struct fixnum *f = (struct fixnum *)obj;   /* downcast */
    return f->value;
}

static void *car_of(void *obj) {
    struct cons *c = (struct cons *)obj;       /* downcast */
    return c->car;
}

static void *cdr_of(void *obj) {
    struct cons *c = (struct cons *)obj;       /* downcast */
    return c->cdr;
}

static const char *symbol_name(void *obj) {
    struct symbol *s = (struct symbol *)obj;   /* downcast */
    return s->name;
}

/* ---- the evaluator --------------------------------------------------- */

/* one user-definable function: (fact n) */
static void *fact_body;     /* expression with free symbol n */
static long fact_arg;       /* dynamic binding for n */

static long eval(void *expr);

static long apply_builtin(const char *op, void *args) {
    long a = eval(car_of(args));
    void *rest = cdr_of(args);
    if (strcmp(op, "neg") == 0)
        return -a;
    if (strcmp(op, "fact") == 0) {
        long saved = fact_arg;
        long out;
        fact_arg = a;
        out = eval(fact_body);
        fact_arg = saved;
        return out;
    }
    {
        long b = eval(car_of(rest));
        if (strcmp(op, "+") == 0)
            return a + b;
        if (strcmp(op, "-") == 0)
            return a - b;
        if (strcmp(op, "*") == 0)
            return a * b;
        if (strcmp(op, "<") == 0)
            return a < b ? 1 : 0;
        if (strcmp(op, "if") == 0) {
            /* (if c t e): a = cond, b = then, third = else */
            void *third = cdr_of(rest);
            if (a != 0)
                return b;
            return eval(car_of(third));
        }
    }
    return 0;
}

static long eval(void *expr) {
    int tag = tag_of(expr);
    if (tag == T_FIXNUM)
        return fixnum_value(expr);
    if (tag == T_SYMBOL) {
        if (strcmp(symbol_name(expr), "n") == 0)
            return fact_arg;
        return 0;
    }
    /* a cons: (op arg...) */
    {
        void *head = car_of(expr);
        return apply_builtin(symbol_name(head), cdr_of(expr));
    }
}

/* ---- expression builders ------------------------------------------- */

static void *list2(void *a, void *b) {
    return make_cons(a, make_cons(b, (void *)0));
}

static void *call2(const char *op, void *a, void *b) {
    return make_cons(make_symbol(op), list2(a, b));
}

static void *call1(const char *op, void *a) {
    return make_cons(make_symbol(op), make_cons(a, (void *)0));
}

static void *call3(const char *op, void *a, void *b, void *c) {
    return make_cons(make_symbol(op),
                     make_cons(a, list2(b, c)));
}

int main(void) {
    long total = 0;
    int round;

    /* fact(n) = if (n < 2) 1 else n * fact(n - 1)
     * (the "if" builtin evaluates its then-arm eagerly but the
     * else-arm lazily, so the recursion is properly guarded) */
    fact_body = call3(
        "if",
        call2("<", make_symbol("n"), make_fixnum(2)),
        make_fixnum(1),
        call2("*", make_symbol("n"),
              call1("fact",
                    call2("-", make_symbol("n"),
                          make_fixnum(1)))));

    for (round = 1; round <= SCALE; round++) {
        /* (3 + 4) * round - neg(round) */
        void *e = call2(
            "-",
            call2("*", call2("+", make_fixnum(3), make_fixnum(4)),
                  make_fixnum(round)),
            call1("neg", make_fixnum(round)));
        total += eval(e);
        total += eval(call1("fact", make_fixnum(6 + round % 3)));
    }
    printf("li: cells=%d total=%ld\n", cells_allocated, total);
    return (int)(total % 97);
}
