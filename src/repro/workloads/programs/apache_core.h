/* apache_core.h — the shared substrate for the Apache-module
 * workloads (paper Figure 8).
 *
 * Reproduces the parts of Apache 1.3's module API that the paper's
 * modules exercise: a request record, a pool allocator (the classic
 * custom-allocator-with-trusted-cast pattern the paper calls out), a
 * key/value table, and a request driver that simulates the paper's
 * test of "1,000 requests for files of sizes of 1, 10, and 100K".
 */
#ifndef APACHE_CORE_H
#define APACHE_CORE_H

#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <ccured.h>

#ifndef SCALE
#define SCALE 3
#endif
#define N_REQUESTS (SCALE * 20)

/* ---- pools: a bump allocator over malloc'd blocks ---------------- */

struct pool {
    char *block;
    int used;
    int size;
};

static struct pool *ap_make_pool(int size) {
    struct pool *p = (struct pool *)malloc(sizeof(struct pool));
    p->block = (char *)malloc(size);
    p->used = 0;
    p->size = size;
    return p;
}

static void *ap_palloc(struct pool *p, int n) {
    char *out;
    n = (n + 3) & ~3;
    if (p->used + n > p->size)
        return (void *)0;
    out = p->block + p->used;
    p->used += n;
    return (void *)out;
}

static char *ap_pstrdup(struct pool *p, const char *s) {
    int n = (int)strlen(s) + 1;
    /* carving typed data out of a char block: the custom-allocator
     * cast the paper handles with a trusted cast (Section 3) */
    char *out = (char *)__trusted_cast(ap_palloc(p, n));
    if (out != (char *)0)
        strcpy(out, s);
    return out;
}

/* ---- tables: linear key/value lists ------------------------------- */

#define TABLE_MAX 16

struct table {
    char *keys[TABLE_MAX];
    char *vals[TABLE_MAX];
    int n;
};

static struct table *ap_make_table(struct pool *p) {
    struct table *t = (struct table *)__trusted_cast(
        ap_palloc(p, (int)sizeof(struct table)));
    t->n = 0;
    return t;
}

static void ap_table_set(struct pool *p, struct table *t,
                         const char *key, const char *val) {
    int i;
    for (i = 0; i < t->n; i++) {
        if (strcmp(t->keys[i], key) == 0) {
            t->vals[i] = ap_pstrdup(p, val);
            return;
        }
    }
    if (t->n < TABLE_MAX) {
        t->keys[t->n] = ap_pstrdup(p, key);
        t->vals[t->n] = ap_pstrdup(p, val);
        t->n++;
    }
}

static char *ap_table_get(struct table *t, const char *key) {
    int i;
    for (i = 0; i < t->n; i++)
        if (strcmp(t->keys[i], key) == 0)
            return t->vals[i];
    return (char *)0;
}

/* ---- the request record ------------------------------------------- */

struct request_rec {
    struct pool *pool;
    char uri[64];
    char filename[64];
    int content_length;
    int status;
    struct table *headers_in;
    struct table *headers_out;
    int bytes_sent;
};

#define OK 0
#define DECLINED (-1)

/* ---- driver --------------------------------------------------------- */

static unsigned int ap_seed = 5;

static int ap_rand(int limit) {
    ap_seed = ap_seed * 1103515245 + 12345;
    return (int)((ap_seed >> 8) % (unsigned int)limit);
}

static const int ap_sizes[3] = { 1024, 10240, 102400 };

static void ap_init_request(struct request_rec *r, struct pool *p,
                            int reqno) {
    r->pool = p;
    sprintf(r->uri, "/site/page%d.html", reqno % 23);
    sprintf(r->filename, "/var/www%s", r->uri);
    r->content_length = ap_sizes[reqno % 3];
    r->status = 200;
    r->headers_in = ap_make_table(p);
    r->headers_out = ap_make_table(p);
    r->bytes_sent = 0;
    ap_table_set(p, r->headers_in, "Host", "www.example.org");
    ap_table_set(p, r->headers_in, "User-Agent",
                 reqno % 2 == 0 ? "WebStone/2.5" : "Mozilla/4.7");
    if (reqno % 4 == 0)
        ap_table_set(p, r->headers_in, "Accept-Encoding", "gzip");
}

/* each module defines this */
static int module_handler(struct request_rec *r);

int main(void) {
    int i;
    long handled = 0, declined = 0, bytes = 0;
    for (i = 0; i < N_REQUESTS; i++) {
        struct pool *p = ap_make_pool(4096);
        struct request_rec r;
        int rc;
        ap_init_request(&r, p, i);
        rc = module_handler(&r);
        if (rc == OK)
            handled++;
        else
            declined++;
        bytes += r.bytes_sent;
        /* send the response on the wire: the I/O that dominates the
         * paper's Apache measurements */
        __io_write((void *)r.uri, (unsigned int)r.content_length);
        free(p->block);
        free(p);
    }
    printf("module: handled=%ld declined=%ld bytes=%ld\n",
           handled, declined, bytes);
    return (int)((handled * 3 + bytes) % 97);
}

#endif /* APACHE_CORE_H */
