/* apache_expires.c — mod_expires-like: compute an Expires header from
 * per-type base + delta rules (paper Fig. 8, 525 LoC). */
#include "apache_core.h"

struct expire_rule {
    const char *suffix;
    int base;       /* 0 = access time, 1 = modification time */
    int seconds;
};

static const struct expire_rule rules[4] = {
    { ".html", 0, 3600 },
    { ".gif", 0, 86400 },
    { ".css", 1, 7200 },
    { ".js", 1, 7200 },
};

static int ends_with(const char *s, const char *suffix) {
    int ls = (int)strlen(s);
    int lt = (int)strlen(suffix);
    if (lt > ls)
        return 0;
    return strcmp(s + (ls - lt), suffix) == 0;
}

static int module_handler(struct request_rec *r) {
    int now = 1000000 + ap_rand(10000);
    int i;
    char buf[48];
    for (i = 0; i < 4; i++) {
        if (ends_with(r->uri, rules[i].suffix)) {
            int when = now + rules[i].seconds
                + (rules[i].base == 1 ? -137 : 0);
            sprintf(buf, "t=%d", when);
            ap_table_set(r->pool, r->headers_out, "Expires", buf);
            ap_table_set(r->pool, r->headers_out, "Cache-Control",
                         "max-age");
            r->bytes_sent = rules[i].seconds % 100;
            return OK;
        }
    }
    return DECLINED;
}
