/* apache_gzip.c — mod_gzip-like: compress response bodies when the
 * client accepts it.  The paper's largest module (11,648 LoC); here a
 * full LZ77-style window matcher with a greedy emitter stands in for
 * the deflate machinery. */
#include "apache_core.h"

#define WINDOW 24
#define MIN_MATCH 3
#define BODY_MAX 512

static int make_body(struct request_rec *r, char *body, int max) {
    /* synthesize a compressible body derived from the request */
    int n = 0;
    int target = r->content_length / 768;
    if (target > 120)
        target = 120;
    while (n < target) {
        int k = ap_rand(3);
        const char *chunk = k == 0 ? "<p>hello world</p>"
            : (k == 1 ? "<div class=x></div>" : "0123456789");
        int cl = (int)strlen(chunk);
        if (n + cl >= max)
            break;
        strcpy(body + n, chunk);
        n += cl;
    }
    body[n] = 0;
    return n;
}

static int find_match(const char *data, int pos, int len,
                      int *match_pos) {
    int best = 0, best_pos = -1;
    int start = pos - WINDOW;
    int i;
    if (start < 0)
        start = 0;
    for (i = start; i < pos; i++) {
        int l = 0;
        while (pos + l < len && data[i + l] == data[pos + l]
               && l < 255 && i + l < pos)
            l++;
        if (l > best) {
            best = l;
            best_pos = i;
        }
    }
    *match_pos = best_pos;
    return best;
}

static int gzip_compress(const char *data, int len, char *out,
                         int outmax) {
    int pos = 0, n = 0;
    while (pos < len && n + 4 < outmax) {
        int mp;
        int ml = find_match(data, pos, len, &mp);
        if (ml >= MIN_MATCH) {
            out[n] = (char)0x80;            /* match marker */
            out[n + 1] = (char)(pos - mp);  /* distance */
            out[n + 2] = (char)ml;          /* length */
            n += 3;
            pos += ml;
        } else {
            out[n] = data[pos];
            n++;
            pos++;
        }
    }
    return n;
}

static int module_handler(struct request_rec *r) {
    char body[BODY_MAX];
    char packed[BODY_MAX];
    char *accepts = ap_table_get(r->headers_in, "Accept-Encoding");
    int blen, plen;
    if (accepts == (char *)0
            || strstr(accepts, "gzip") == (char *)0)
        return DECLINED;
    blen = make_body(r, body, BODY_MAX);
    plen = gzip_compress(body, blen, packed, BODY_MAX);
    ap_table_set(r->pool, r->headers_out, "Content-Encoding", "gzip");
    r->bytes_sent = plen;
    return OK;
}
