/* sendmail_like.c — a sendmail-8.12-like workload.
 *
 * The paper's sendmail row (Fig. 9: 105k LoC, 65/34/0/1, 1.46x) plus
 * the CA-2003-12 class of bug: sendmail's crackaddr()-style header
 * parser tracks nesting with a counter used as a buffer offset, and a
 * crafted From: header with unbalanced angle brackets drives the
 * offset out of the buffer (the "prescan" overflow family).
 *
 * Structure: a message queue, an address parser (with the bug),
 * header rewriting, and delivery simulation.  Per the paper we also
 * reproduce the porting pattern "unions became structs": the message
 * payload uses a struct-of-variants instead of a union.
 */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#ifndef SCALE
#define SCALE 2
#endif

#define QUEUE_MAX 8
#define ADDR_MAX 48

struct message {
    char from[64];
    char to[64];
    char subject[32];
    int size;
    int delivered;
    /* "unions became structs": the envelope split-body variants */
    struct {
        int kind;          /* 0 = text, 1 = mime */
        char text[32];
        int mime_parts;
    } body;
};

static struct message queue[QUEUE_MAX];
static int q_len;
static int delivered, bounced;

/* The vulnerable address "cracker": copies an address while tracking
 * comment/angle-bracket nesting.  The bug: '>' decrements the write
 * position to "back out" of a bracket even when nothing was written,
 * so a leading run of '>' walks the cursor below the buffer start. */
static int crackaddr(const char *addr, char *out) {
    int pos = 0;
    int depth = 0;
    while (*addr != 0) {
        char c = *addr;
        if (c == '<') {
            depth++;
            out[pos] = c;
            pos++;
        } else if (c == '>') {
            depth--;
            pos--;            /* BUG: no lower-bound check */
            if (pos >= 0)
                out[pos] = 0;
        } else if (pos < ADDR_MAX - 1) {
            out[pos] = c;
            pos++;
        }
        addr++;
        if (pos >= ADDR_MAX - 1)
            break;
    }
    if (pos < 0)
        pos = 0;
    out[pos] = 0;
    return depth;
}

static int queue_message(const char *from, const char *to,
                         const char *subject, int size) {
    struct message *m;
    char cracked[ADDR_MAX];
    if (q_len >= QUEUE_MAX)
        return -1;
    m = &queue[q_len];
    crackaddr(from, cracked);
    strncpy(m->from, cracked, 63);
    m->from[63] = 0;
    strncpy(m->to, to, 63);
    m->to[63] = 0;
    strncpy(m->subject, subject, 31);
    m->subject[31] = 0;
    m->size = size;
    m->delivered = 0;
    if (size > 512) {
        m->body.kind = 1;
        m->body.mime_parts = size / 512;
    } else {
        m->body.kind = 0;
        snprintf(m->body.text, 32, "msg:%s", subject);
    }
    q_len++;
    return q_len - 1;
}

static void rewrite_headers(struct message *m) {
    char rewritten[80];
    char *at = strchr(m->to, '@');
    if (at == (char *)0) {
        snprintf(rewritten, 80, "%s@localhost", m->to);
        strncpy(m->to, rewritten, 63);
        m->to[63] = 0;
    }
}

static int run_queue(void) {
    int i, n = 0;
    for (i = 0; i < q_len; i++) {
        struct message *m = &queue[i];
        if (m->delivered)
            continue;
        rewrite_headers(m);
        /* "deliver": local if @localhost, else relay */
        if (strstr(m->to, "@localhost") != (char *)0
                || strchr(m->to, '@') == (char *)0) {
            delivered++;
        } else if (m->size < 4096) {
            delivered++;
        } else {
            bounced++;
        }
        m->delivered = 1;
        n++;
    }
    return n;
}

static unsigned int seed = 11;

static int prand(int limit) {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 8) % (unsigned int)limit);
}

int main(int argc, char **argv) {
    int round, i;
    const char *senders[4] = {
        "<alice@example.org>", "bob@example.net",
        "<carol<nested>@example.com>", "dave",
    };
    /* an attack From: header can be injected via argv[1] */
    if (argc > 1) {
        char out[ADDR_MAX];
        crackaddr(argv[1], out);
        printf("cracked: %s\n", out);
    }
    for (round = 0; round < SCALE; round++) {
        q_len = 0;
        for (i = 0; i < 6; i++) {
            char subj[24];
            snprintf(subj, 24, "mail %d-%d", round, i);
            queue_message(senders[i % 4],
                          i % 2 == 0 ? "postmaster"
                                     : "user@remote.example",
                          subj, 128 + prand(1024));
        }
        run_queue();
    }
    printf("sendmail: delivered=%d bounced=%d\n", delivered,
           bounced);
    return delivered > 0 ? 0 : 1;
}
