/* bind_like.c — a bind-9.2-like workload.
 *
 * The paper's largest subject (Fig. 9: 336k LoC, 79/21/0/0; tasks
 * 1.11x, sockaddr 1.50x, overall up to 1.81x).  Section 5 reports:
 * "CCured's qualifier inference classifies 30% of the pointers in
 * bind's unmodified source as WILD as a result of 530 bad casts...
 * Once we turn on the use of RTTI, 150 of the bad casts (28%) proved
 * to be downcasts that can be checked at run time.  We instructed
 * CCured to trust the remaining 380 bad casts."
 *
 * Reproduced traits:
 *  - DNS message parsing: label-compressed names in byte buffers;
 *  - a resource-record hierarchy (rr base + A/NS/TXT variants) stored
 *    behind void* — the RTTI-recoverable downcasts;
 *  - sockaddr/sockaddr_in casts — the incompatible-layout casts that
 *    stay bad and get trusted (the "sockaddr" trial, 1.50x);
 *  - a task system: a worker queue of closures ("tasks" trial, 1.11x).
 */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <ccured.h>

#ifndef SCALE
#define SCALE 2
#endif

/* ----------------------- sockaddr family -------------------------- */

struct sockaddr {
    short sa_family;
    char sa_data[14];
};

struct sockaddr_in {
    short sin_family;
    unsigned short sin_port;
    unsigned int sin_addr;
    char sin_zero[8];
};

static int bind_socket(struct sockaddr *sa) {
    /* the daemon-side view of the address */
    return sa->sa_family * 1000 + sa->sa_data[0];
}

static int make_endpoint(unsigned int addr, int port) {
    struct sockaddr_in sin;
    int h;
    sin.sin_family = 2;  /* AF_INET */
    sin.sin_port = (unsigned short)port;
    sin.sin_addr = addr;
    memset((void *)sin.sin_zero, 0, 8);
    /* sockaddr_in* -> sockaddr* : layouts differ (short+ushort+uint
     * vs short+char[14]); CCured cannot verify this — the canonical
     * trusted cast of the bind port (Section 5). */
    h = bind_socket((struct sockaddr *)__trusted_cast((void *)&sin));
    return h;
}

/* ----------------------- resource records ------------------------- */

struct rr {
    int type;            /* 1=A 2=NS 16=TXT */
    int ttl;
};

struct rr_a {
    int type;
    int ttl;
    unsigned int addr;
};

struct rr_ns {
    int type;
    int ttl;
    char nsname[32];
};

struct rr_txt {
    int type;
    int ttl;
    char text[48];
};

#define MAX_RRS 24

static void *rrset[MAX_RRS];
static int n_rrs;

static void add_a(unsigned int addr, int ttl) {
    struct rr_a *r = (struct rr_a *)malloc(sizeof(struct rr_a));
    r->type = 1;
    r->ttl = ttl;
    r->addr = addr;
    if (n_rrs < MAX_RRS) {
        rrset[n_rrs] = (void *)r;
        n_rrs++;
    }
}

static void add_ns(const char *name, int ttl) {
    struct rr_ns *r = (struct rr_ns *)malloc(sizeof(struct rr_ns));
    r->type = 2;
    r->ttl = ttl;
    strncpy(r->nsname, name, 31);
    r->nsname[31] = 0;
    if (n_rrs < MAX_RRS) {
        rrset[n_rrs] = (void *)r;
        n_rrs++;
    }
}

static void add_txt(const char *text, int ttl) {
    struct rr_txt *r = (struct rr_txt *)malloc(sizeof(struct rr_txt));
    r->type = 16;
    r->ttl = ttl;
    strncpy(r->text, text, 47);
    r->text[47] = 0;
    if (n_rrs < MAX_RRS) {
        rrset[n_rrs] = (void *)r;
        n_rrs++;
    }
}

static int rr_weight(void *rec) {
    struct rr *base = (struct rr *)rec;       /* checked downcast */
    if (base->type == 1) {
        struct rr_a *a = (struct rr_a *)rec;  /* checked downcast */
        return (int)(a->addr & 0xFF) + base->ttl / 60;
    }
    if (base->type == 2) {
        struct rr_ns *ns = (struct rr_ns *)rec;
        return (int)strlen(ns->nsname) + base->ttl / 60;
    }
    if (base->type == 16) {
        struct rr_txt *t = (struct rr_txt *)rec;
        return (int)strlen(t->text) / 2;
    }
    return 0;
}

/* ----------------------- message parsing -------------------------- */

/* wire format: sequence of length-prefixed labels, 0 terminates */
static int parse_name(const unsigned char *msg, int len, int off,
                      char *out, int outmax) {
    int n = 0;
    while (off < len) {
        int lab = msg[off];
        off++;
        if (lab == 0)
            break;
        if (off + lab > len || n + lab + 1 >= outmax)
            return -1;
        if (n > 0) {
            out[n] = '.';
            n++;
        }
        memcpy((void *)(out + n), (void *)(msg + off),
               (unsigned int)lab);
        n += lab;
        off += lab;
    }
    out[n] = 0;
    return off;
}

static int build_query(unsigned char *msg, int max,
                       const char *name) {
    int off = 0;
    const char *p = name;
    while (*p != 0 && off + 16 < max) {
        const char *dot = strchr(p, '.');
        int lab = dot == (const char *)0
            ? (int)strlen(p) : (int)(dot - p);
        msg[off] = (unsigned char)lab;
        off++;
        memcpy((void *)(msg + off), (void *)p,
               (unsigned int)lab);
        off += lab;
        if (dot == (const char *)0)
            break;
        p = dot + 1;
    }
    msg[off] = 0;
    off++;
    return off;
}

/* ----------------------- response sending -------------------------- */

struct dns_msghdr {
    char *base;    /* interior pointer into the response buffer: the
                    * nested-pointer structure that made the paper use
                    * split types for sendmsg when curing bind */
    int len;
};

extern int sendmsg(int s, void *msg, int flags);

static int send_response(unsigned char *msg, int qlen,
                         const char *name) {
    char resp[96];
    struct dns_msghdr hdr;
    int n = 0;
    const char *p;
    resp[n] = (char)qlen;
    n++;
    for (p = name; *p != 0 && n + 1 < 96; p++) {
        resp[n] = *p;
        n++;
    }
    resp[n] = 0;
    hdr.base = resp + 1;          /* skip the length byte */
    hdr.len = n - 1;
    /* verify the payload with an interior scan: base carries bounds
     * (SEQ), so the msghdr needs metadata and hence a SPLIT
     * representation at the sendmsg boundary */
    {
        char *q = hdr.base;
        int check = 0;
        while (*q != 0) {
            check += *q;
            q = q + 1;
        }
        if (check == 0)
            return -1;
    }
    return sendmsg(0, (void *)&hdr, 0);
}

/* ---------------------------- tasks -------------------------------- */

struct task {
    int (*action)(int arg);
    int arg;
    int done;
};

#define MAX_TASKS 12

static struct task tasks[MAX_TASKS];
static int n_tasks;

static int task_resolve(int arg) {
    return arg * 3 % 251;
}

static int task_refresh(int arg) {
    return arg + 17;
}

static void post_task(int (*fn)(int), int arg) {
    if (n_tasks < MAX_TASKS) {
        tasks[n_tasks].action = fn;
        tasks[n_tasks].arg = arg;
        tasks[n_tasks].done = 0;
        n_tasks++;
    }
}

static long run_tasks(void) {
    long total = 0;
    int i;
    for (i = 0; i < n_tasks; i++) {
        if (!tasks[i].done) {
            total += tasks[i].action(tasks[i].arg);
            tasks[i].done = 1;
        }
    }
    n_tasks = 0;
    return total;
}

/* ----------------------------- driver ------------------------------ */

int main(void) {
    unsigned char msg[96];
    char name[64];
    int round, i;
    long total = 0;

    add_a(0x7F000001u, 3600);
    add_a(0xC0A80001u, 600);
    add_ns("ns1.example.org", 86400);
    add_ns("ns2.example.org", 86400);
    add_txt("v=spf1 -all", 300);

    for (round = 0; round < SCALE * 3; round++) {
        int qlen = build_query(msg, 96,
                               round % 2 == 0 ? "www.example.org"
                                              : "mail.example.net");
        int end = parse_name(msg, qlen, 0, name, 64);
        if (end < 0) {
            printf("bind: parse error\n");
            return 1;
        }
        for (i = 0; i < n_rrs; i++)
            total += rr_weight(rrset[i]);
        total += make_endpoint(0x7F000001u, 53 + round);
        total += send_response(msg, qlen, name);
        post_task(task_resolve, round * 7);
        post_task(task_refresh, round);
        total += run_tasks();
        total += (long)strlen(name);
    }
    printf("bind: rrs=%d total=%ld\n", n_rrs, total % 1000000);
    return (int)(total % 97);
}
