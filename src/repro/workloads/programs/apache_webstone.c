/* apache_webstone.c — the WebStone 2.5 "manyfiles" row of Fig. 8:
 * every request is processed by a chain of five modules (expires,
 * gzip, headers, urlcount, usertrack), as in the paper's test. */
#include "apache_core.h"

/* ---- expires ---- */
static int h_expires(struct request_rec *r) {
    char buf[32];
    if (strstr(r->uri, ".html") == (char *)0)
        return DECLINED;
    sprintf(buf, "t=%d", 1000000 + r->content_length % 7777);
    ap_table_set(r->pool, r->headers_out, "Expires", buf);
    return OK;
}

/* ---- gzip (tiny RLE stand-in for the chained configuration) ---- */
static int h_gzip(struct request_rec *r) {
    char body[128];
    char out[128];
    int i, n = 0, o = 0;
    char *acc = ap_table_get(r->headers_in, "Accept-Encoding");
    if (acc == (char *)0)
        return DECLINED;
    for (i = 0; i < 96; i++)
        body[i] = (char)('a' + (i / 7) % 4);
    body[96] = 0;
    n = 96;
    for (i = 0; i < n && o + 2 < 128;) {
        int run = 1;
        while (i + run < n && body[i + run] == body[i] && run < 9)
            run++;
        out[o] = body[i];
        out[o + 1] = (char)('0' + run);
        o += 2;
        i += run;
    }
    ap_table_set(r->pool, r->headers_out, "Content-Encoding",
                 "gzip");
    r->bytes_sent += o;
    return OK;
}

/* ---- headers ---- */
static int h_headers(struct request_rec *r) {
    ap_table_set(r->pool, r->headers_out, "X-Server", "repro/1.0");
    char *host = ap_table_get(r->headers_in, "Host");
    if (host != (char *)0)
        ap_table_set(r->pool, r->headers_out, "X-Host", host);
    return OK;
}

/* ---- urlcount ---- */
#define WS_BUCKETS 8
struct ws_count {
    char url[64];
    int hits;
    struct ws_count *next;
};
static struct ws_count *ws_buckets[WS_BUCKETS];
static struct pool *ws_pool;

static int h_urlcount(struct request_rec *r) {
    unsigned int h = 5381;
    const char *s = r->uri;
    struct ws_count *n;
    int b;
    while (*s != 0) {
        h = h * 33 + (unsigned int)*s;
        s++;
    }
    b = (int)(h % WS_BUCKETS);
    if (ws_pool == (struct pool *)0)
        ws_pool = ap_make_pool(8192);
    n = ws_buckets[b];
    while (n != (struct ws_count *)0
           && strcmp(n->url, r->uri) != 0)
        n = n->next;
    if (n == (struct ws_count *)0) {
        n = (struct ws_count *)__trusted_cast(
            ap_palloc(ws_pool, (int)sizeof(struct ws_count)));
        if (n == (struct ws_count *)0)
            return DECLINED;
        strncpy(n->url, r->uri, 63);
        n->url[63] = 0;
        n->hits = 0;
        n->next = ws_buckets[b];
        ws_buckets[b] = n;
    }
    n->hits++;
    return OK;
}

/* ---- usertrack ---- */
static int h_usertrack(struct request_rec *r) {
    char setc[48];
    char *cookie = ap_table_get(r->headers_in, "Cookie");
    if (cookie != (char *)0)
        return OK;
    sprintf(setc, "Apache=%d", 100000 + ap_rand(899999));
    ap_table_set(r->pool, r->headers_out, "Set-Cookie", setc);
    return OK;
}

static int module_handler(struct request_rec *r) {
    int applied = 0;
    if (h_expires(r) == OK)
        applied++;
    if (h_gzip(r) == OK)
        applied++;
    if (h_headers(r) == OK)
        applied++;
    if (h_urlcount(r) == OK)
        applied++;
    if (h_usertrack(r) == OK)
        applied++;
    r->bytes_sent += applied * 11 + r->content_length / 1024;
    return applied > 0 ? OK : DECLINED;
}
