/* apache_layout.c — mod_layout-like: wrap the body with a header and
 * footer template, substituting %URI% (paper Fig. 8, 309 LoC). */
#include "apache_core.h"

static const char *tmpl_header =
    "<html><head><title>%URI%</title></head><body>";
static const char *tmpl_footer =
    "<hr>served: %URI%</body></html>";

static int substitute(const char *tmpl, const char *uri, char *out,
                      int max) {
    int n = 0;
    const char *p = tmpl;
    while (*p != 0 && n + 1 < max) {
        if (strncmp(p, "%URI%", 5) == 0) {
            int ul = (int)strlen(uri);
            if (n + ul >= max)
                break;
            strcpy(out + n, uri);
            n += ul;
            p = p + 5;
        } else {
            out[n] = *p;
            n++;
            p++;
        }
    }
    out[n] = 0;
    return n;
}

static int module_handler(struct request_rec *r) {
    char head[160];
    char foot[160];
    int hn = substitute(tmpl_header, r->uri, head, 160);
    int fn = substitute(tmpl_footer, r->uri, foot, 160);
    r->bytes_sent = hn + r->content_length / 512 + fn;
    return OK;
}
