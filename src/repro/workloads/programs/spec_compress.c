/* spec_compress.c — a Spec95 129.compress-like workload.
 *
 * Array-heavy compute with a hash table and code buffers: the pointer
 * profile the paper's Spec95 rows report (mostly SEQ arrays, no casts,
 * CCured overhead from bounds checks on hot loops).
 *
 * A tiny LZW-ish coder: builds a dictionary of byte-pair codes over a
 * pseudo-random input buffer, then "decompresses" and checksums.
 */
#include <stdlib.h>
#include <stdio.h>

#ifndef SCALE
#define SCALE 6
#endif

#define INPUT_LEN (SCALE * 256)
#define TABLE_SIZE 1024
#define FIRST_CODE 256

static unsigned int next_rand = 12345;

static int prand(int limit) {
    next_rand = next_rand * 1103515245 + 12345;
    return (int)((next_rand >> 8) % (unsigned int)limit);
}

struct entry {
    int prefix;   /* existing code */
    int suffix;   /* appended byte */
    int code;     /* assigned code, -1 if free */
};

static struct entry table[TABLE_SIZE];
static int n_codes;

static int hash_pair(int prefix, int suffix) {
    unsigned int h = (unsigned int)(prefix * 31 + suffix);
    return (int)(h % TABLE_SIZE);
}

static int lookup(int prefix, int suffix) {
    int idx = hash_pair(prefix, suffix);
    int probes = 0;
    while (probes < TABLE_SIZE) {
        struct entry *e = &table[idx];
        if (e->code == -1)
            return -1;
        if (e->prefix == prefix && e->suffix == suffix)
            return e->code;
        idx = (idx + 1) % TABLE_SIZE;
        probes++;
    }
    return -1;
}

static void insert(int prefix, int suffix) {
    int idx = hash_pair(prefix, suffix);
    while (table[idx].code != -1)
        idx = (idx + 1) % TABLE_SIZE;
    table[idx].prefix = prefix;
    table[idx].suffix = suffix;
    table[idx].code = n_codes;
    n_codes++;
}

static int compress(unsigned char *input, int len, int *out) {
    int n_out = 0;
    int prefix = input[0];
    int i;
    for (i = 1; i < len; i++) {
        int suffix = input[i];
        int code = lookup(prefix, suffix);
        if (code >= 0) {
            prefix = code;
        } else {
            out[n_out] = prefix;
            n_out++;
            if (n_codes < FIRST_CODE + 512)
                insert(prefix, suffix);
            prefix = suffix;
        }
    }
    out[n_out] = prefix;
    n_out++;
    return n_out;
}

int main(void) {
    unsigned char *input =
        (unsigned char *)malloc(INPUT_LEN);
    int *codes = (int *)malloc(INPUT_LEN * sizeof(int));
    int i, n, round;
    long checksum = 0;

    for (round = 0; round < 3; round++) {
        for (i = 0; i < TABLE_SIZE; i++) {
            table[i].code = -1;
            table[i].prefix = 0;
            table[i].suffix = 0;
        }
        n_codes = FIRST_CODE;
        for (i = 0; i < INPUT_LEN; i++)
            input[i] = (unsigned char)(prand(17) + prand(3) * 16);
        n = compress(input, INPUT_LEN, codes);
        for (i = 0; i < n; i++)
            checksum += codes[i] * (i % 7 + 1);
    }
    printf("compress: codes=%d checksum=%ld\n", n_codes,
           checksum % 1000000);
    free(input);
    free(codes);
    return (int)(checksum % 97);
}
