/* openssl_like.c — an OpenSSL-0.9.6-like workload.
 *
 * The paper's OpenSSL row (Fig. 9: 177k LoC, 67/27/0/6 sf/sq/w/rt,
 * 1.40x overall; "cast" cipher 1.87x, "bn" 1.01x).  Two famous traits
 * are reproduced:
 *
 *  - the CAST5-like block cipher ("cast" in Fig. 9): S-box lookups and
 *    rotate-heavy rounds over byte buffers — bounds checks on every
 *    table access make this the worst CCured case;
 *  - a bignum package ("bn"): word-array arithmetic whose inner loops
 *    CCured handles cheaply (1.01x);
 *  - EVP-style polymorphic container objects: ``void*``-keyed method
 *    tables with checked downcasts (the paper changed OpenSSL's
 *    ``char*`` polymorphism to ``void*`` to make exactly this work).
 */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#ifndef SCALE
#define SCALE 2
#endif

/* ------------------------- "cast" cipher ------------------------- */

static unsigned int sbox1[64];
static unsigned int sbox2[64];

static void init_sboxes(void) {
    int i;
    unsigned int s = 0x9E3779B9;
    for (i = 0; i < 64; i++) {
        s = s * 1664525 + 1013904223;
        sbox1[i] = s;
        s = s * 22695477 + 1;
        sbox2[i] = s;
    }
}

static unsigned int rotl(unsigned int v, int n) {
    return (v << n) | (v >> (32 - n));
}

static void cast_encrypt_block(unsigned int *block,
                               unsigned int *key) {
    unsigned int l = block[0];
    unsigned int r = block[1];
    int round;
    for (round = 0; round < 12; round++) {
        unsigned int t = rotl(r ^ key[round % 4], (round % 7) + 1);
        unsigned int f = sbox1[t & 63] ^ sbox2[(t >> 8) & 63];
        unsigned int tmp = l ^ f;
        l = r;
        r = tmp;
    }
    block[0] = r;
    block[1] = l;
}

static long run_cast(int blocks) {
    unsigned int key[4] = { 0x01234567, 0x89ABCDEF,
                            0xFEDCBA98, 0x76543210 };
    unsigned int data[2];
    long check = 0;
    int i;
    for (i = 0; i < blocks; i++) {
        data[0] = (unsigned int)i * 2654435761u;
        data[1] = (unsigned int)i ^ 0xDEADBEEF;
        cast_encrypt_block(data, key);
        check += (long)(data[0] & 0xFFFF);
    }
    return check;
}

/* --------------------------- "bn" package ------------------------ */

#define BN_WORDS 8

struct bignum {
    unsigned int d[BN_WORDS];
    int top;
};

static void bn_set_word(struct bignum *a, unsigned int w) {
    int i;
    for (i = 0; i < BN_WORDS; i++)
        a->d[i] = 0;
    a->d[0] = w;
    a->top = 1;
}

static void bn_add(struct bignum *r, struct bignum *a,
                   struct bignum *b) {
    unsigned int carry = 0;
    int i;
    for (i = 0; i < BN_WORDS; i++) {
        unsigned int s = a->d[i] + b->d[i];
        unsigned int c1 = s < a->d[i] ? 1u : 0u;
        unsigned int s2 = s + carry;
        unsigned int c2 = s2 < s ? 1u : 0u;
        r->d[i] = s2;
        carry = c1 + c2;
    }
    r->top = BN_WORDS;
}

static void bn_mul_word(struct bignum *r, struct bignum *a,
                        unsigned int w) {
    unsigned int carry = 0;
    int i;
    for (i = 0; i < BN_WORDS; i++) {
        /* 16x16 split multiply to stay in 32 bits */
        unsigned int lo = (a->d[i] & 0xFFFF) * w;
        unsigned int hi = (a->d[i] >> 16) * w;
        unsigned int s = lo + (hi << 16) + carry;
        r->d[i] = s;
        carry = (hi >> 16) + (s < lo ? 1u : 0u);
    }
    r->top = BN_WORDS;
}

static long run_bn(int iters) {
    struct bignum a, b, r;
    long check = 0;
    int i;
    bn_set_word(&a, 1);
    bn_set_word(&b, 0x10001);
    for (i = 0; i < iters; i++) {
        bn_mul_word(&r, &a, 65537u);
        bn_add(&a, &r, &b);
        check += (long)(a.d[0] & 0xFFF);
    }
    return check;
}

/* ------------------ EVP-style polymorphic objects ----------------- */

struct evp_cipher {
    int nid;
    int block_size;
    void *app_data;          /* polymorphic payload */
};

struct cast_ctx {
    int nid;
    unsigned int key[4];
};

struct bn_ctx {
    int nid;
    struct bignum acc;
};

static long evp_drive(int n) {
    struct evp_cipher ciphers[2];
    struct cast_ctx cctx;
    struct bn_ctx bctx;
    long check = 0;
    int i;

    cctx.nid = 1;
    for (i = 0; i < 4; i++)
        cctx.key[i] = (unsigned int)(i + 1) * 0x11111111;
    bctx.nid = 2;
    bn_set_word(&bctx.acc, 7);

    ciphers[0].nid = 1;
    ciphers[0].block_size = 8;
    ciphers[0].app_data = (void *)&cctx;
    ciphers[1].nid = 2;
    ciphers[1].block_size = 4;
    ciphers[1].app_data = (void *)&bctx;

    for (i = 0; i < n; i++) {
        struct evp_cipher *c = &ciphers[i % 2];
        if (c->nid == 1) {
            /* checked downcast of the polymorphic payload */
            struct cast_ctx *k = (struct cast_ctx *)c->app_data;
            unsigned int blk[2];
            blk[0] = (unsigned int)i;
            blk[1] = (unsigned int)(i * 3);
            cast_encrypt_block(blk, k->key);
            check += (long)(blk[1] & 0xFF);
        } else {
            struct bn_ctx *k = (struct bn_ctx *)c->app_data;
            struct bignum t;
            bn_mul_word(&t, &k->acc, 3u);
            bn_add(&k->acc, &t, &k->acc);
            check += (long)(k->acc.d[0] & 0xFF);
        }
    }
    return check;
}

int main(void) {
    long c1, c2, c3;
    init_sboxes();
    c1 = run_cast(SCALE * 40);
    c2 = run_bn(SCALE * 30);
    c3 = evp_drive(SCALE * 20);
    printf("openssl: cast=%ld bn=%ld evp=%ld\n",
           c1 % 100000, c2 % 100000, c3 % 100000);
    return (int)((c1 + c2 + c3) % 97);
}
