/* sbull.c — an sbull-like ramdisk block device workload.
 *
 * The paper's sbull row (Fig. 9: 1013 LoC, 85/15/0/0, 1.00x blocked
 * reads, 1.03x seeks).  Reproduced structure: a sector store, a
 * request queue with elevator-style merging, and the two measured
 * operations: sequential blocked reads and random seeks.
 */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <ccured.h>

#ifndef SCALE
#define SCALE 3
#endif

#define SECTOR_SIZE 64
#define N_SECTORS 64
#define QUEUE_LEN 8

static unsigned char disk[N_SECTORS][SECTOR_SIZE];

struct request {
    int sector;
    int count;
    int write;
    unsigned char *buffer;
    struct request *next;
};

static struct request *queue_head;
static long sectors_read, sectors_written, seeks;
static int head_pos;

static unsigned int seed = 77;

static int prand(int limit) {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 8) % (unsigned int)limit);
}

static void submit(struct request *rq) {
    /* elevator: insert sorted by sector to minimize seeks */
    struct request **pp = &queue_head;
    while (*pp != (struct request *)0
           && (*pp)->sector < rq->sector)
        pp = &(*pp)->next;
    rq->next = *pp;
    *pp = rq;
}

static void transfer(struct request *rq) {
    int s;
    if (rq->sector != head_pos) {
        seeks++;
        /* head movement: the dominant cost of the seeks trial */
        __io_write((void *)rq->buffer, 16384);
    }
    __io_write((void *)rq->buffer,
               (unsigned int)rq->count * SECTOR_SIZE * 24);
    for (s = 0; s < rq->count; s++) {
        int sec = rq->sector + s;
        if (sec >= N_SECTORS)
            break;
        if (rq->write) {
            memcpy((void *)disk[sec],
                   (void *)(rq->buffer + s * SECTOR_SIZE),
                   SECTOR_SIZE);
            sectors_written++;
        } else {
            memcpy((void *)(rq->buffer + s * SECTOR_SIZE),
                   (void *)disk[sec], SECTOR_SIZE);
            sectors_read++;
        }
    }
    head_pos = rq->sector + rq->count;
}

static void run_queue(void) {
    while (queue_head != (struct request *)0) {
        struct request *rq = queue_head;
        queue_head = rq->next;
        transfer(rq);
        free(rq->buffer);
        free(rq);
    }
}

static struct request *make_request(int sector, int count,
                                    int write) {
    struct request *rq =
        (struct request *)malloc(sizeof(struct request));
    rq->sector = sector;
    rq->count = count;
    rq->write = write;
    rq->buffer =
        (unsigned char *)malloc(count * SECTOR_SIZE);
    if (write) {
        int i;
        for (i = 0; i < count * SECTOR_SIZE; i++)
            rq->buffer[i] = (unsigned char)(sector + i);
    }
    rq->next = (struct request *)0;
    return rq;
}

int main(void) {
    int round, i;
    long checksum = 0;

    /* phase 1: blocked sequential writes then reads */
    for (round = 0; round < SCALE; round++) {
        for (i = 0; i + 4 <= N_SECTORS; i += 4)
            submit(make_request(i, 4, 1));
        run_queue();
        for (i = 0; i + 4 <= N_SECTORS; i += 4)
            submit(make_request(i, 4, 0));
        run_queue();
    }
    /* phase 2: random seeks */
    for (round = 0; round < SCALE * 10; round++) {
        submit(make_request(prand(N_SECTORS - 1), 1,
                            prand(2)));
        if (round % QUEUE_LEN == QUEUE_LEN - 1)
            run_queue();
    }
    run_queue();
    for (i = 0; i < N_SECTORS; i++)
        checksum += disk[i][0] + disk[i][SECTOR_SIZE - 1];
    printf("sbull: read=%ld written=%ld seeks=%ld sum=%ld\n",
           sectors_read, sectors_written, seeks, checksum);
    return (int)(checksum % 97);
}
