/* openssh_like.c — an OpenSSH-3.5-like workload.
 *
 * The paper's OpenSSH rows (Fig. 9: 65k LoC, 70/28/0/3; client 1.22x,
 * server 1.15x).  Reproduced traits:
 *
 *  - length-prefixed packet framing (buffer_get/put style) — the
 *    string-and-bounds-heavy core of ssh;
 *  - a Diffie-Hellman-flavoured key exchange over small modular
 *    arithmetic;
 *  - a channels table with polymorphic per-channel state (checked
 *    downcasts, the 3% RTTI of the row);
 *  - a call to the unwrapped library function ``sendmsg`` with a
 *    nested message structure — the paper used SPLIT types exactly
 *    here ("split types were used when calling the sendmsg function").
 */
#include <stdio.h>
#include <stdlib.h>
#include <string.h>

#ifndef SCALE
#define SCALE 2
#endif

/* ----------------------------- buffers ---------------------------- */

#define BUF_MAX 256

struct sshbuf {
    unsigned char data[BUF_MAX];
    int len;
    int off;
};

static void buf_clear(struct sshbuf *b) {
    b->len = 0;
    b->off = 0;
}

static int buf_put_u32(struct sshbuf *b, unsigned int v) {
    if (b->len + 4 > BUF_MAX)
        return -1;
    b->data[b->len] = (unsigned char)(v >> 24);
    b->data[b->len + 1] = (unsigned char)(v >> 16);
    b->data[b->len + 2] = (unsigned char)(v >> 8);
    b->data[b->len + 3] = (unsigned char)v;
    b->len += 4;
    return 0;
}

static int buf_put_string(struct sshbuf *b, const char *s) {
    int n = (int)strlen(s);
    if (buf_put_u32(b, (unsigned int)n) < 0)
        return -1;
    if (b->len + n > BUF_MAX)
        return -1;
    memcpy((void *)(b->data + b->len), (void *)s,
           (unsigned int)n);
    b->len += n;
    return 0;
}

static unsigned int buf_get_u32(struct sshbuf *b) {
    unsigned int v;
    if (b->off + 4 > b->len)
        return 0;
    v = ((unsigned int)b->data[b->off] << 24)
        | ((unsigned int)b->data[b->off + 1] << 16)
        | ((unsigned int)b->data[b->off + 2] << 8)
        | (unsigned int)b->data[b->off + 3];
    b->off += 4;
    return v;
}

static int buf_get_string(struct sshbuf *b, char *out, int max) {
    int n = (int)buf_get_u32(b);
    if (n < 0 || b->off + n > b->len || n + 1 > max)
        return -1;
    memcpy((void *)out, (void *)(b->data + b->off),
           (unsigned int)n);
    out[n] = 0;
    b->off += n;
    return n;
}

/* ------------------------- key exchange --------------------------- */

#define DH_P 2147483647u  /* 2^31 - 1, prime */

static unsigned int mod_pow(unsigned int base, unsigned int e) {
    unsigned long long acc = 1;
    unsigned long long b = base % DH_P;
    while (e > 0) {
        if ((e & 1u) != 0u)
            acc = (acc * b) % DH_P;
        b = (b * b) % DH_P;
        e = e >> 1;
    }
    return (unsigned int)acc;
}

/* --------------------------- channels ------------------------------ */

struct channel {
    int id;
    int type;            /* 1 = session, 2 = x11 */
    void *state;         /* polymorphic per-type state */
};

struct session_state {
    int type;
    char command[32];
    int exit_status;
};

struct x11_state {
    int type;
    int display;
    int packets;
};

#define MAX_CHANNELS 6

static struct channel channels[MAX_CHANNELS];
static int n_channels;

static int channel_open(int type) {
    struct channel *c;
    if (n_channels >= MAX_CHANNELS)
        return -1;
    c = &channels[n_channels];
    c->id = n_channels;
    c->type = type;
    if (type == 1) {
        struct session_state *s = (struct session_state *)
            malloc(sizeof(struct session_state));
        s->type = 1;
        strcpy(s->command, "exec");
        s->exit_status = -1;
        c->state = (void *)s;
    } else {
        struct x11_state *x = (struct x11_state *)
            malloc(sizeof(struct x11_state));
        x->type = 2;
        x->display = 10 + n_channels;
        x->packets = 0;
        c->state = (void *)x;
    }
    n_channels++;
    return c->id;
}

static int channel_service(struct channel *c) {
    if (c->type == 1) {
        struct session_state *s =
            (struct session_state *)c->state;   /* downcast */
        s->exit_status = (int)strlen(s->command);
        return s->exit_status;
    } else {
        struct x11_state *x = (struct x11_state *)c->state;
        x->packets++;
        return x->packets;
    }
}

/* ------------------------- the handshake -------------------------- */

struct msg_io {
    char *base;    /* an interior (SEQ) pointer into the payload:
                    * msg_io needs metadata, so passing it to the
                    * unwrapped sendmsg requires the SPLIT
                    * representation (paper Section 4.2) */
    int len;
};

extern int sendmsg(int s, void *msg, int flags);

static int handshake(struct sshbuf *wire) {
    unsigned int client_secret = 123457;
    unsigned int server_secret = 987631;
    unsigned int g = 5;
    unsigned int client_pub = mod_pow(g, client_secret);
    unsigned int server_pub = mod_pow(g, server_secret);
    unsigned int k_client = mod_pow(server_pub, client_secret);
    unsigned int k_server = mod_pow(client_pub, server_secret);
    char banner[40];

    if (k_client != k_server)
        return -1;
    buf_clear(wire);
    buf_put_string(wire, "SSH-2.0-repro_1.0");
    buf_put_u32(wire, client_pub);
    buf_put_u32(wire, server_pub);
    /* read it back on the "server" side */
    if (buf_get_string(wire, banner, 40) < 0)
        return -1;
    if (strncmp(banner, "SSH-2.0", 7) != 0)
        return -1;
    if (buf_get_u32(wire) != client_pub)
        return -1;
    return (int)(k_client & 0x7FFF);
}

int main(void) {
    struct sshbuf wire;
    struct msg_io mio;
    char payload[32];
    int round;
    long total = 0;

    for (round = 0; round < SCALE; round++) {
        int k = handshake(&wire);
        int i;
        if (k < 0) {
            printf("ssh: handshake failed\n");
            return 1;
        }
        total += k;
        n_channels = 0;
        channel_open(1);
        channel_open(2);
        channel_open(1);
        for (i = 0; i < n_channels; i++)
            total += channel_service(&channels[i]);
        /* flush a keepalive through the kernel interface */
        snprintf(payload, 32, "keepalive %d", round);
        mio.base = payload;
        mio.len = (int)strlen(payload);
        /* checksum via interior arithmetic: base must carry bounds */
        total += *(mio.base + (round % mio.len));
        total += sendmsg(0, (void *)&mio, 0);
    }
    printf("ssh: total=%ld channels=%d\n", total % 100000,
           n_channels);
    return (int)(total % 97);
}
