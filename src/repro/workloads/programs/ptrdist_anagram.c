/* ptrdist_anagram.c — a Ptrdist anagram-like workload.
 *
 * String-heavy pointer code: a small dictionary, letter-count
 * signatures, anagram matching.  SEQ char pointers everywhere; the
 * all-SPLIT ablation costs it ~7% in the paper.
 */
#include <stdlib.h>
#include <string.h>
#include <stdio.h>

#ifndef SCALE
#define SCALE 3
#endif

#define MAX_WORDS 48
#define ALPHA 26

static char *dictionary[MAX_WORDS];
static int sig[MAX_WORDS][ALPHA];
static int n_words;

static unsigned int seed = 31;

static int prand(int limit) {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 8) % (unsigned int)limit);
}

static void add_word(const char *w) {
    char *copy = strdup(w);
    const char *p;
    int i;
    for (i = 0; i < ALPHA; i++)
        sig[n_words][i] = 0;
    for (p = w; *p != 0; p++) {
        int c = *p - 'a';
        if (c >= 0 && c < ALPHA)
            sig[n_words][c]++;
    }
    dictionary[n_words] = copy;
    n_words++;
}

static void make_random_word(char *buf, int len) {
    int i;
    for (i = 0; i < len; i++)
        buf[i] = (char)('a' + prand(7));  /* few letters: collisions */
    buf[len] = 0;
}

static int is_anagram(int a, int b) {
    int i;
    for (i = 0; i < ALPHA; i++)
        if (sig[a][i] != sig[b][i])
            return 0;
    return 1;
}

int main(void) {
    int i, j, round;
    int pairs = 0;
    long letters = 0;
    char buf[16];

    add_word("listen");
    add_word("silent");
    add_word("enlist");
    add_word("google");
    add_word("cat");
    add_word("act");
    for (round = 0; round < SCALE; round++) {
        while (n_words < MAX_WORDS) {
            make_random_word(buf, 3 + prand(5));
            add_word(buf);
        }
        for (i = 0; i < n_words; i++)
            for (j = i + 1; j < n_words; j++)
                if (is_anagram(i, j))
                    pairs++;
        for (i = 0; i < n_words; i++)
            letters += (long)strlen(dictionary[i]);
        /* keep the seed words, drop the random ones */
        for (i = 6; i < n_words; i++)
            free(dictionary[i]);
        n_words = 6;
    }
    printf("anagram: pairs=%d letters=%ld\n", pairs, letters);
    return (int)((pairs + letters) % 97);
}
