"""The workload suite: synthetic stand-ins for the paper's benchmarks.

Each :class:`Workload` wraps a C program written in the supported C99
subset that reproduces the pointer-usage profile of one of the paper's
subjects (see DESIGN.md's substitution table).  Workloads know their
default inputs, their curing options (e.g. bind trusts its remaining
bad casts, per Section 5), their paper row, and — for the security
experiments — an *attack input* that triggers their embedded
vulnerability.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.cil.program import Program
from repro.core import CureOptions, CuredProgram, cure
from repro.frontend import parse_program
from repro.workloads import ijpeg_gen

PROGRAM_DIR = os.path.join(os.path.dirname(__file__), "programs")


@dataclass
class Workload:
    """One benchmark program plus its run/cure configuration."""

    name: str
    category: str          # spec | olden | ptrdist | apache | system
    description: str
    paper_row: str
    filename: Optional[str] = None
    generator: Optional[Callable[[], str]] = None
    stdin: str = ""
    args: Sequence[str] = field(default_factory=tuple)
    #: exploit input for the security experiments (E8), if any
    attack_stdin: Optional[str] = None
    attack_args: Optional[Sequence[str]] = None
    #: extra cure options (e.g. trust_bad_casts for bind)
    trust_bad_casts: bool = False
    #: default SCALE override (None keeps the program's default)
    scale: Optional[int] = None

    def source(self) -> str:
        if self.generator is not None:
            return self.generator()
        assert self.filename is not None
        path = os.path.join(PROGRAM_DIR, self.filename)
        with open(path, "r", encoding="utf-8") as f:
            return f.read()

    def _defines(self, scale: Optional[int]) -> Optional[dict]:
        s = scale if scale is not None else self.scale
        return {"SCALE": str(s)} if s is not None else None

    def parse(self, scale: Optional[int] = None) -> Program:
        return parse_program(self.source(), self.name,
                             include_dirs=[PROGRAM_DIR],
                             defines=self._defines(scale))

    def cure(self, options: Optional[CureOptions] = None,
             scale: Optional[int] = None) -> CuredProgram:
        opts = options if options is not None else CureOptions(
            trust_bad_casts=self.trust_bad_casts)
        return cure(self.parse(scale), options=opts, name=self.name)


def _w(name: str, category: str, description: str, paper_row: str,
       **kw) -> Workload:
    filename = kw.pop("filename", name + ".c")
    return Workload(name, category, description, paper_row,
                    filename=filename, **kw)


_FTPD_SESSION = ("USER anonymous\nPASS guest\nCWD pub\nPWD\n"
                 "MKD uploads\nLIST\nCWD uploads\nPWD\nNOOP\n"
                 "MKD deep\nLIST\nQUIT\n")
#: replydirname attack: 62 filler bytes, then a quote that doubles past
#: the end of npath[MAXPATHLEN] (the ftpd-BSD off-by-one).
FTPD_ATTACK = ("USER anonymous\nPASS guest\nMKD "
               + "a" * 62 + '"' + "\nQUIT\n")
#: crackaddr attack: leading '>' run walks the output cursor below the
#: buffer (the sendmail CA-2003-12 class).
SENDMAIL_ATTACK = [">>>>>>>>AAAAAAAA<x@evil.example>"]


WORKLOADS: dict[str, Workload] = {w.name: w for w in [
    # -- Spec95-like (E4) ------------------------------------------------
    _w("spec_compress", "spec",
       "LZW-style coder: hash table + code buffers (129.compress)",
       "Sec. 5 Spec95 overhead band"),
    _w("spec_go", "spec",
       "board evaluation with flat-pointer scans (099.go)",
       "Sec. 5 Spec95 overhead band"),
    _w("spec_li", "spec",
       "tagged-cell Lisp evaluator: downcast-per-access (130.li)",
       "Sec. 5 Spec95 overhead band"),
    Workload("spec_ijpeg", "spec",
             "OO hierarchy with ~100 checked downcasts (132.ijpeg)",
             "Sec. 5 RTTI experiment (E5)",
             generator=ijpeg_gen.generate),
    # -- Olden-like (E4, E7) ----------------------------------------------
    _w("olden_bisort", "olden",
       "heap binary tree with value swapping", "Sec. 5 Olden"),
    _w("olden_treeadd", "olden",
       "balanced-tree build and recursive sum", "Sec. 5 Olden"),
    _w("olden_power", "olden",
       "three-level power network optimization", "Sec. 5 Olden"),
    _w("olden_em3d", "olden",
       "bipartite graph with pointer arrays (the +58% split outlier)",
       "Sec. 5 split ablation (E7)"),
    # -- Ptrdist-like (E4, E7) ---------------------------------------------
    _w("ptrdist_anagram", "ptrdist",
       "dictionary + letter-signature matching (the +7% split case)",
       "Sec. 5 split ablation (E7)"),
    _w("ptrdist_ks", "ptrdist",
       "graph partitioning with adjacency pointers", "Sec. 5 Ptrdist"),
    # -- Apache modules (E1 / Fig. 8) ---------------------------------------
    _w("apache_asis", "apache", "serve stored files verbatim",
       "Fig. 8: asis (0.96)"),
    _w("apache_expires", "apache", "Expires header computation",
       "Fig. 8: expires (1.00)"),
    _w("apache_gzip", "apache", "LZ77-style response compression",
       "Fig. 8: gzip (0.94)"),
    _w("apache_headers", "apache", "response header rewriting",
       "Fig. 8: headers (1.00)"),
    _w("apache_info", "apache", "server-info page generation",
       "Fig. 8: info (1.00)"),
    _w("apache_layout", "apache", "header/footer templating",
       "Fig. 8: layout (1.01)"),
    _w("apache_random", "apache", "random mirror redirects",
       "Fig. 8: random (0.94)"),
    _w("apache_urlcount", "apache", "per-URL hit counting",
       "Fig. 8: urlcount (1.02)"),
    _w("apache_usertrack", "apache", "tracking cookie handling",
       "Fig. 8: usertrack (1.00)"),
    _w("apache_webstone", "apache",
       "five modules chained on every request",
       "Fig. 8: WebStone (1.04)"),
    # -- system software (E2 / Fig. 9) ---------------------------------------
    _w("pcnet32", "system", "PCI Ethernet driver: DMA rings",
       "Fig. 9: pcnet32 (0.99)"),
    _w("sbull", "system", "ramdisk block device: elevator + seeks",
       "Fig. 9: sbull (1.00/1.03)"),
    _w("ftpd", "system",
       "FTP daemon with the replydirname off-by-one",
       "Fig. 9: ftpd (1.01); exploit prevention",
       stdin=_FTPD_SESSION, attack_stdin=FTPD_ATTACK),
    _w("openssl_like", "system",
       "cast cipher + bignum + EVP polymorphism",
       "Fig. 9: OpenSSL (1.40; cast 1.87, bn 1.01)"),
    _w("openssh_like", "system",
       "packet framing, DH handshake, channels, sendmsg",
       "Fig. 9: OpenSSH (client 1.22, server 1.15)"),
    _w("sendmail_like", "system",
       "queue + crackaddr-style parser (CA-2003-12 class)",
       "Fig. 9: sendmail (1.46); exploit prevention",
       attack_args=SENDMAIL_ATTACK),
    _w("bind_like", "system",
       "DNS parsing, RR hierarchy, sockaddr casts, tasks",
       "Fig. 9: bind (1.81; tasks 1.11, sockaddr 1.50)",
       trust_bad_casts=True),
]}


def get(name: str) -> Workload:
    return WORKLOADS[name]


def by_category(category: str) -> list[Workload]:
    return [w for w in WORKLOADS.values() if w.category == category]


def all_workloads() -> list[Workload]:
    return list(WORKLOADS.values())
