"""Generator for the ijpeg-like object-oriented workload.

The paper revisits Spec95's ijpeg: "This benchmark is written in an
object-oriented style with a subtyping hierarchy of about 40 types and
100 downcasts.  With the original version of CCured the ijpeg test had
a slowdown of 115% due to about 60% of the pointers being WILD...
With RTTI pointers we eliminated all bad casts and WILD pointers with
only 1% of the pointers becoming RTTI.  Overall, the slowdown is
reduced to 45%."

:func:`generate` emits a C program with a parametric physical-subtype
hierarchy (a ``component`` base struct extended by N variants), a
processing pipeline that stores components behind ``void*`` and
dispatches through function-pointer-free tag switches plus checked
downcasts — the exact pattern whose cost profile the experiment
measures under (a) RTTI inference and (b) WILD-only inference.
"""

from __future__ import annotations


def generate(n_types: int = 12, n_objects: int = 24,
             n_rounds: int = 6) -> str:
    """Emit the C source of the hierarchy workload.

    ``n_types`` variants extend the base; every variant adds one field
    per level so the physical hierarchy is a chain (the deepest variant
    is a subtype of all shallower ones), plus the processing loop does
    about ``n_objects * n_rounds`` checked downcasts.
    """
    lines: list[str] = [
        "/* generated ijpeg-like OO workload: "
        f"{n_types} types, {n_objects} objects */",
        "#include <stdlib.h>",
        "#include <stdio.h>",
        "",
        # The `next` link matters for the ablation: WILD objects pay
        # tag checks/updates on every pointer load/store, which is
        # where the paper's 115% WILD slowdown came from.
        "struct component { int tag; int width;"
        " struct component *next; };",
    ]
    for i in range(1, n_types + 1):
        fields = " ".join(f"int c{j};" for j in range(1, i + 1))
        lines.append(
            f"struct comp{i} {{ int tag; int width;"
            f" struct component *next; {fields} }};")
    lines.append("""
static unsigned int seed = 17;
static int prand(int limit) {
    seed = seed * 1103515245 + 12345;
    return (int)((seed >> 8) % (unsigned int)limit);
}
""")
    # constructors
    for i in range(1, n_types + 1):
        inits = "\n    ".join(
            f"c->c{j} = prand(64);" for j in range(1, i + 1))
        lines.append(f"""
static void *make{i}(void) {{
    struct comp{i} *c =
        (struct comp{i} *)malloc(sizeof(struct comp{i}));
    c->tag = {i};
    c->width = {i} * 8;
    c->next = (struct component *)0;
    {inits}
    return (void *)c;
}}""")
    # per-type processors with checked downcast (the 100-downcast
    # pattern of the paper)
    for i in range(1, n_types + 1):
        acc = " + ".join(f"c->c{j}" for j in range(1, i + 1))
        lines.append(f"""
static int process{i}(void *obj) {{
    struct comp{i} *c = (struct comp{i} *)obj;   /* downcast */
    struct component *link = c->next;   /* pointer load (tagged) */
    int bonus = link != (struct component *)0 ? link->width : 0;
    return c->width + bonus + {acc};
}}""")
    # dispatch by tag (dynamic dispatch in the C style ijpeg uses)
    dispatch_cases = "\n".join(
        f"        case {i}: return process{i}(obj);"
        for i in range(1, n_types + 1))
    make_cases = "\n".join(
        f"        case {i}: return make{i}();"
        for i in range(1, n_types + 1))
    lines.append(f"""
static int dispatch(void *obj) {{
    struct component *base = (struct component *)obj;  /* downcast */
    switch (base->tag) {{
{dispatch_cases}
        default: return 0;
    }}
}}

static void *make_any(int which) {{
    switch (which) {{
{make_cases}
        default: return make1();
    }}
}}

int main(void) {{
    void *objects[{n_objects}];
    int i, r;
    long total = 0;
    for (i = 0; i < {n_objects}; i++)
        objects[i] = make_any(1 + prand({n_types}));
    /* chain the objects: every round re-links and re-walks the list,
     * so pointer loads/stores dominate (as in ijpeg's row pointers) */
    for (i = 0; i + 1 < {n_objects}; i++) {{
        struct component *base =
            (struct component *)objects[i];   /* downcast */
        base->next = (struct component *)objects[i + 1];
    }}
    for (r = 0; r < {n_rounds}; r++) {{
        struct component *walk =
            (struct component *)objects[0];
        while (walk != (struct component *)0) {{
            total += dispatch((void *)walk);
            walk = walk->next;
        }}
    }}
    printf("ijpeg: types={n_types} total=%ld\\n", total % 1000000);
    return (int)(total % 97);
}}""")
    return "\n".join(lines) + "\n"
