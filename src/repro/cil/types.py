"""C types for the CIL-like intermediate representation.

This module mirrors the type language of CIL (the C Intermediate Language
that the original CCured was built on): void, integer and floating kinds,
pointers, arrays, functions, named types (typedefs), and composite types
(structs/unions).

Pointer types carry an optional *qualifier node* slot (``TPtr.node``).
During constraint generation (:mod:`repro.core.constraints`) every syntactic
occurrence of a pointer type receives a fresh node; the solver then assigns
each node one of the CCured pointer kinds (SAFE/SEQ/WILD/RTTI).  Struct
fields are shared declarations, so all uses of a field share one node —
exactly as in CCured, where the inference associates "a qualifier variable
with each syntactic occurrence of the ``*`` pointer-type constructor".

The machine model is ILP32 with a 4-byte word, matching the paper's
appendix ("For simplicity word size is assumed to be 4").
"""

from __future__ import annotations

import enum
from typing import Iterable, Optional, Sequence


class IKind(enum.Enum):
    """Integer kinds, following CIL's ``ikind``."""

    BOOL = "_Bool"
    CHAR = "char"
    SCHAR = "signed char"
    UCHAR = "unsigned char"
    SHORT = "short"
    USHORT = "unsigned short"
    INT = "int"
    UINT = "unsigned int"
    LONG = "long"
    ULONG = "unsigned long"
    LLONG = "long long"
    ULLONG = "unsigned long long"

    @property
    def is_signed(self) -> bool:
        return self in _SIGNED_IKINDS


_SIGNED_IKINDS = {IKind.CHAR, IKind.SCHAR, IKind.SHORT, IKind.INT,
                  IKind.LONG, IKind.LLONG}


class FKind(enum.Enum):
    """Floating-point kinds."""

    FLOAT = "float"
    DOUBLE = "double"
    LDOUBLE = "long double"


class Machine:
    """Target machine layout parameters (sizes and alignments in bytes).

    The default models the paper's 32-bit x86 target: 4-byte words and
    4-byte one-word pointers in the *C representation*.  Cured "wide"
    representations (Figure 1 of the paper) are modelled by the runtime's
    shadow metadata rather than by growing ``sizeof`` — see
    ``repro/runtime/memory.py`` for the rationale.
    """

    def __init__(self) -> None:
        self.word = 4
        self.ptr_size = 4
        self.int_sizes = {
            IKind.BOOL: 1,
            IKind.CHAR: 1,
            IKind.SCHAR: 1,
            IKind.UCHAR: 1,
            IKind.SHORT: 2,
            IKind.USHORT: 2,
            IKind.INT: 4,
            IKind.UINT: 4,
            IKind.LONG: 4,
            IKind.ULONG: 4,
            IKind.LLONG: 8,
            IKind.ULLONG: 8,
        }
        self.float_sizes = {FKind.FLOAT: 4, FKind.DOUBLE: 8, FKind.LDOUBLE: 8}

    def int_size(self, kind: IKind) -> int:
        return self.int_sizes[kind]

    def float_size(self, kind: FKind) -> int:
        return self.float_sizes[kind]


#: The default machine used throughout the library.
MACHINE = Machine()


class CType:
    """Base class of all C types."""

    def size(self, machine: Machine = MACHINE) -> int:
        """Size of this type in bytes under the plain C layout."""
        raise NotImplementedError

    def align(self, machine: Machine = MACHINE) -> int:
        """Alignment requirement in bytes under the plain C layout."""
        raise NotImplementedError

    def sig(self) -> object:
        """A hashable signature identifying this type up to naming.

        Two types with equal signatures are *identical C types* in the
        sense used by the paper's cast census (Section 3): casts between
        them are not casts at all.  Qualifier nodes are ignored.
        """
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CType) and self.sig() == other.sig()

    def __hash__(self) -> int:
        return hash(self.sig())


class TVoid(CType):
    """The ``void`` type.

    Per Section 3.1 of the paper, ``void`` is treated as the *empty
    structure* for physical subtyping purposes: any type is a physical
    subtype of ``void``, and a cast to ``void*`` is always an upcast.
    """

    def size(self, machine: Machine = MACHINE) -> int:
        raise IncompleteTypeError("sizeof(void) is not defined")

    def align(self, machine: Machine = MACHINE) -> int:
        return 1

    def sig(self) -> object:
        return ("void",)

    def __repr__(self) -> str:
        return "void"


class TInt(CType):
    """Integer types, including ``char`` and ``_Bool``."""

    def __init__(self, kind: IKind = IKind.INT) -> None:
        self.kind = kind

    def size(self, machine: Machine = MACHINE) -> int:
        return machine.int_size(self.kind)

    def align(self, machine: Machine = MACHINE) -> int:
        return min(machine.int_size(self.kind), machine.word)

    def sig(self) -> object:
        return ("int", self.kind)

    def __repr__(self) -> str:
        return self.kind.value


class TFloat(CType):
    """Floating-point types."""

    def __init__(self, kind: FKind = FKind.DOUBLE) -> None:
        self.kind = kind

    def size(self, machine: Machine = MACHINE) -> int:
        return machine.float_size(self.kind)

    def align(self, machine: Machine = MACHINE) -> int:
        return min(machine.float_size(self.kind), machine.word)

    def sig(self) -> object:
        return ("float", self.kind)

    def __repr__(self) -> str:
        return self.kind.value


class TPtr(CType):
    """A pointer type with a qualifier-node slot.

    ``node`` is filled in during constraint generation; until then the
    pointer is unconstrained.  ``kind`` reads through to the node's solved
    pointer kind (defaulting to SAFE for un-analyzed types, which is the
    kind CCured infers for unconstrained pointers).
    """

    def __init__(self, base: CType, node: Optional[object] = None) -> None:
        self.base = base
        self.node = node  # repro.core.qualifiers.Node, assigned later

    @property
    def kind(self):
        from repro.core.qualifiers import PointerKind

        if self.node is None:
            return PointerKind.SAFE
        return self.node.kind

    def size(self, machine: Machine = MACHINE) -> int:
        return machine.ptr_size

    def align(self, machine: Machine = MACHINE) -> int:
        return machine.ptr_size

    def sig(self) -> object:
        return ("ptr", self.base.sig())

    def __repr__(self) -> str:
        return f"{self.base!r}*"


class TArray(CType):
    """An array type; ``length`` is ``None`` for incomplete arrays."""

    def __init__(self, base: CType, length: Optional[int]) -> None:
        self.base = base
        self.length = length

    def size(self, machine: Machine = MACHINE) -> int:
        if self.length is None:
            raise IncompleteTypeError("sizeof incomplete array")
        return self.base.size(machine) * self.length

    def align(self, machine: Machine = MACHINE) -> int:
        return self.base.align(machine)

    def sig(self) -> object:
        return ("array", self.base.sig(), self.length)

    def __repr__(self) -> str:
        n = "" if self.length is None else str(self.length)
        return f"{self.base!r}[{n}]"


class TFun(CType):
    """A function type.

    ``params`` is a sequence of ``(name, type)`` pairs; ``varargs`` marks
    ``...`` functions.  Function types have no size.
    """

    def __init__(self, ret: CType,
                 params: Optional[Sequence[tuple[str, CType]]],
                 varargs: bool = False) -> None:
        self.ret = ret
        self.params = list(params) if params is not None else None
        self.varargs = varargs

    def size(self, machine: Machine = MACHINE) -> int:
        raise IncompleteTypeError("sizeof function type")

    def align(self, machine: Machine = MACHINE) -> int:
        return 1

    def sig(self) -> object:
        if self.params is None:
            psig: object = None
        else:
            psig = tuple(t.sig() for _, t in self.params)
        return ("fun", self.ret.sig(), psig, self.varargs)

    def __repr__(self) -> str:
        if self.params is None:
            ps = ""
        else:
            ps = ", ".join(repr(t) for _, t in self.params)
            if self.varargs:
                ps += ", ..."
        return f"{self.ret!r}({ps})"


class FieldInfo:
    """A field of a composite type."""

    def __init__(self, name: str, ftype: CType) -> None:
        self.name = name
        self.type = ftype
        self.comp: Optional[CompInfo] = None  # backlink, set by CompInfo

    def __repr__(self) -> str:
        owner = self.comp.name if self.comp else "?"
        return f"{owner}.{self.name}"


class CompInfo:
    """A composite (struct or union) type declaration.

    Identity matters: two structs with the same fields are distinct C
    types, so ``CompInfo`` instances are compared by a unique key.
    """

    _next_key = 0

    def __init__(self, is_struct: bool, name: str,
                 fields: Optional[Iterable[FieldInfo]] = None) -> None:
        self.is_struct = is_struct
        self.name = name
        self.fields: list[FieldInfo] = []
        self.defined = False
        self.key = CompInfo._next_key
        CompInfo._next_key += 1
        if fields is not None:
            self.set_fields(fields)

    def set_fields(self, fields: Iterable[FieldInfo]) -> None:
        self.fields = list(fields)
        for f in self.fields:
            f.comp = self
        self.defined = True

    def field(self, name: str) -> FieldInfo:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"no field {name!r} in {self!r}")

    def __repr__(self) -> str:
        kw = "struct" if self.is_struct else "union"
        return f"{kw} {self.name}"


class TComp(CType):
    """A reference to a composite type."""

    def __init__(self, comp: CompInfo) -> None:
        self.comp = comp

    def size(self, machine: Machine = MACHINE) -> int:
        return comp_layout(self.comp, machine).size

    def align(self, machine: Machine = MACHINE) -> int:
        return comp_layout(self.comp, machine).align

    def sig(self) -> object:
        return ("comp", self.comp.key)

    def __repr__(self) -> str:
        return repr(self.comp)


class EnumInfo:
    """An enumeration declaration; items are ``(name, value)`` pairs."""

    _next_key = 0

    def __init__(self, name: str,
                 items: Optional[Sequence[tuple[str, int]]] = None) -> None:
        self.name = name
        self.items = list(items) if items else []
        self.key = EnumInfo._next_key
        EnumInfo._next_key += 1

    def __repr__(self) -> str:
        return f"enum {self.name}"


class TEnum(CType):
    """A reference to an enumeration type; layout-identical to ``int``."""

    def __init__(self, enuminfo: EnumInfo) -> None:
        self.enuminfo = enuminfo

    def size(self, machine: Machine = MACHINE) -> int:
        return machine.int_size(IKind.INT)

    def align(self, machine: Machine = MACHINE) -> int:
        return machine.int_size(IKind.INT)

    def sig(self) -> object:
        # Enums are layout- and conversion-compatible with int; treating
        # them as int keeps the cast census focused on pointer structure.
        return ("int", IKind.INT)

    def __repr__(self) -> str:
        return repr(self.enuminfo)


class TNamed(CType):
    """A typedef; transparent for layout and signatures."""

    def __init__(self, name: str, actual: CType) -> None:
        self.name = name
        self.actual = actual

    def size(self, machine: Machine = MACHINE) -> int:
        return self.actual.size(machine)

    def align(self, machine: Machine = MACHINE) -> int:
        return self.actual.align(machine)

    def sig(self) -> object:
        return self.actual.sig()

    def __repr__(self) -> str:
        return self.name


class IncompleteTypeError(Exception):
    """Raised when ``sizeof`` is applied to an incomplete type."""


def unroll(t: CType) -> CType:
    """Strip typedefs, returning the underlying type."""
    while isinstance(t, TNamed):
        t = t.actual
    return t


def is_pointer(t: CType) -> bool:
    return isinstance(unroll(t), TPtr)


def is_integral(t: CType) -> bool:
    return isinstance(unroll(t), (TInt, TEnum))


def is_arithmetic(t: CType) -> bool:
    return isinstance(unroll(t), (TInt, TEnum, TFloat))


def is_void(t: CType) -> bool:
    return isinstance(unroll(t), TVoid)


def is_function(t: CType) -> bool:
    return isinstance(unroll(t), TFun)


def is_scalar(t: CType) -> bool:
    return is_arithmetic(t) or is_pointer(t)


class CompLayout:
    """Byte layout of a composite: field offsets, total size, alignment."""

    def __init__(self, size: int, align: int,
                 offsets: dict[str, int]) -> None:
        self.size = size
        self.align = align
        self.offsets = offsets


def _round_up(n: int, align: int) -> int:
    return (n + align - 1) // align * align


def comp_layout(comp: CompInfo, machine: Machine = MACHINE) -> CompLayout:
    """Compute the C layout of a struct or union.

    Structs lay fields out sequentially with natural alignment padding;
    unions overlay all fields at offset 0.  The result is cached on the
    ``CompInfo`` per machine.
    """
    cache = getattr(comp, "_layout_cache", None)
    if cache is not None and cache[0] is machine:
        return cache[1]
    if not comp.defined:
        raise IncompleteTypeError(f"layout of incomplete {comp!r}")
    offsets: dict[str, int] = {}
    align = 1
    if comp.is_struct:
        off = 0
        for f in comp.fields:
            fa = f.type.align(machine)
            align = max(align, fa)
            off = _round_up(off, fa)
            offsets[f.name] = off
            off += f.type.size(machine)
        size = _round_up(off, align) if comp.fields else 0
    else:
        size = 0
        for f in comp.fields:
            offsets[f.name] = 0
            align = max(align, f.type.align(machine))
            size = max(size, f.type.size(machine))
        size = _round_up(size, align) if comp.fields else 0
    layout = CompLayout(size, align, offsets)
    comp._layout_cache = (machine, layout)
    return layout


def field_offset(field: FieldInfo, machine: Machine = MACHINE) -> int:
    """Byte offset of ``field`` within its composite."""
    assert field.comp is not None
    return comp_layout(field.comp, machine).offsets[field.name]


# Convenience constructors used pervasively in tests and the frontend.

def int_t() -> TInt:
    return TInt(IKind.INT)


def uint_t() -> TInt:
    return TInt(IKind.UINT)


def char_t() -> TInt:
    return TInt(IKind.CHAR)


def uchar_t() -> TInt:
    return TInt(IKind.UCHAR)


def long_t() -> TInt:
    return TInt(IKind.LONG)


def double_t() -> TFloat:
    return TFloat(FKind.DOUBLE)


def float_t() -> TFloat:
    return TFloat(FKind.FLOAT)


def void_t() -> TVoid:
    return TVoid()


def ptr(base: CType) -> TPtr:
    return TPtr(base)


def array(base: CType, length: Optional[int]) -> TArray:
    return TArray(base, length)


def type_of_pointed(t: CType) -> CType:
    """The base type of a pointer type (after unrolling typedefs)."""
    u = unroll(t)
    if not isinstance(u, TPtr):
        raise TypeError(f"not a pointer type: {t!r}")
    return u.base
