"""Instructions, statements and run-time checks of the CIL-like IR.

CIL distinguishes *instructions* (atomic effects: assignment, call) from
*statements* (control flow).  We add a third instruction form,
:class:`Check`, which carries one of CCured's run-time checks (Figures 2
and 11 of the paper).  The curing transformation inserts ``Check``
instructions immediately before the instruction whose memory access they
protect; the interpreter evaluates them and raises a
:class:`repro.runtime.checks.MemorySafetyError` subclass on failure; and
the printer renders them as ``__CHECK_*`` calls, matching the textual
output style of the original CCured compiler.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.cil.expr import Exp, Lval, Varinfo
from repro.cil.types import CType


# ---------------------------------------------------------------------------
# Run-time checks
# ---------------------------------------------------------------------------

class CheckKind(enum.Enum):
    """The run-time checks of the CCured system (paper Figs. 2 and 11)."""

    #: SAFE dereference: the pointer must be non-null.
    NULL = "CHECK_NULL"
    #: SEQ dereference of ``size`` bytes: non-int (``b != null``) and
    #: ``b <= p <= e - size``.
    SEQ_BOUNDS = "CHECK_SEQ_BOUNDS"
    #: Converting SEQ to SAFE (e.g. taking ``&p->f``): null is permitted,
    #: otherwise full bounds.
    SEQ_TO_SAFE = "CHECK_SEQ_TO_SAFE"
    #: FSEQ dereference: non-int and ``p <= e - size`` (forward-only
    #: sequences need no lower-bound compare).
    FSEQ_BOUNDS = "CHECK_FSEQ_BOUNDS"
    #: WILD dereference of ``size`` bytes: non-int and within the tagged
    #: area's length.
    WILD_BOUNDS = "CHECK_WILD_BOUNDS"
    #: Reading a pointer out of a WILD area: the tag bits must say the
    #: word holds a valid base pointer.
    WILD_READ_TAG = "CHECK_WILD_READ_TAG"
    #: Writing through any pointer into heap/global memory: the stored
    #: value must not be a stack pointer.
    STORE_STACK_PTR = "CHECK_STORE_STACK_PTR"
    #: RTTI downcast: ``isSubtype(x.t, rttiOf(target))``.
    RTTI_CAST = "CHECK_RTTI_CAST"
    #: Call through a function pointer: non-null (signature conformance
    #: is static in CCured).
    FUNPTR = "CHECK_FUNPTR"
    #: Wrapper helper: the argument string must be NUL-terminated within
    #: its home area (``__verify_nul`` of Section 4.1).
    VERIFY_NUL = "CHECK_VERIFY_NUL"
    #: Wrapper helper: pointer argument must have at least ``n`` bytes
    #: available (used by wrappers such as ``memcpy``'s).
    VERIFY_SIZE = "CHECK_VERIFY_SIZE"
    #: Indexing into an array *within* an object (not pointer
    #: arithmetic): the index must be within the static array length.
    INDEX = "CHECK_INDEX"
    #: Converting a SAFE pointer to SEQ: manufactures bounds
    #: ``{b=p, e=p+sizeof(t)}`` — no failure mode, charged for cost.
    SAFE_TO_SEQ = "CHECK_SAFE_TO_SEQ"
    #: Temporal (lock-and-key) check, emitted before dereferences when
    #: ``CureOptions.temporal`` is on: the home must not be freed, and
    #: a keyed pointer's key must match the home's current lock.
    ALIVE = "CHECK_ALIVE"


class Instr:
    """Base class of instructions (atomic, straight-line effects).

    ``loc`` is the ``(file, line)`` source position of the statement
    the instruction was lowered from (``None`` for synthesized code);
    checks inherit the location of the instruction they protect so
    diagnostics can be reported gcc-style.
    """

    loc: Optional[tuple[str, int]] = None


class Set(Instr):
    """``lval = exp;``"""

    def __init__(self, lval: Lval, exp: Exp) -> None:
        self.lval = lval
        self.exp = exp

    def __repr__(self) -> str:
        return f"{self.lval!r} = {self.exp!r};"


class Call(Instr):
    """``ret = fn(args);`` — ``ret`` may be ``None``."""

    def __init__(self, ret: Optional[Lval], fn: Exp,
                 args: Sequence[Exp]) -> None:
        self.ret = ret
        self.fn = fn
        self.args = list(args)

    def __repr__(self) -> str:
        r = f"{self.ret!r} = " if self.ret is not None else ""
        a = ", ".join(repr(x) for x in self.args)
        return f"{r}{self.fn!r}({a});"


class Check(Instr):
    """A CCured run-time check over the given argument expressions.

    ``size`` carries the access size in bytes for bounds checks; ``rtti``
    carries the destination type for RTTI downcast checks.
    """

    def __init__(self, kind: CheckKind, args: Sequence[Exp], *,
                 size: Optional[int] = None,
                 rtti: Optional[CType] = None) -> None:
        self.kind = kind
        self.args = list(args)
        self.size = size
        self.rtti = rtti
        #: statement id assigned by the curer after check optimization;
        #: reported in CheckFailure records so a failure names its site
        self.site: Optional[int] = None

    def __repr__(self) -> str:
        a = ", ".join(repr(x) for x in self.args)
        extra = ""
        if self.size is not None:
            extra = f", {self.size}"
        if self.rtti is not None:
            extra += f", rttiOf({self.rtti!r})"
        return f"__{self.kind.value}({a}{extra});"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

class Stmt:
    """Base class of statements."""

    loc: Optional[tuple[str, int]] = None


class InstrStmt(Stmt):
    """A run of consecutive instructions."""

    def __init__(self, instrs: Sequence[Instr]) -> None:
        self.instrs = list(instrs)

    def __repr__(self) -> str:
        return " ".join(repr(i) for i in self.instrs)


class Return(Stmt):
    def __init__(self, exp: Optional[Exp]) -> None:
        self.exp = exp

    def __repr__(self) -> str:
        return f"return {self.exp!r};" if self.exp else "return;"


class Break(Stmt):
    def __repr__(self) -> str:
        return "break;"


class Continue(Stmt):
    def __repr__(self) -> str:
        return "continue;"


class Block(Stmt):
    """A sequence of statements."""

    def __init__(self, stmts: Optional[Sequence[Stmt]] = None) -> None:
        self.stmts: list[Stmt] = list(stmts) if stmts else []

    def append(self, s: Stmt) -> None:
        self.stmts.append(s)

    def __repr__(self) -> str:
        return "{ " + " ".join(repr(s) for s in self.stmts) + " }"


class If(Stmt):
    def __init__(self, cond: Exp, then: Block, els: Block) -> None:
        self.cond = cond
        self.then = then
        self.els = els

    def __repr__(self) -> str:
        return f"if ({self.cond!r}) {self.then!r} else {self.els!r}"


class Loop(Stmt):
    """An infinite loop; the frontend lowers while/for/do into ``Loop``
    with explicit ``If``/``Break`` tests, as CIL does."""

    def __init__(self, body: Block) -> None:
        self.body = body

    def __repr__(self) -> str:
        return f"while (1) {self.body!r}"


# ---------------------------------------------------------------------------
# Initializers
# ---------------------------------------------------------------------------

class Init:
    """Base class of global/local initializers."""


class SingleInit(Init):
    def __init__(self, exp: Exp) -> None:
        self.exp = exp

    def __repr__(self) -> str:
        return repr(self.exp)


class CompoundInit(Init):
    """A brace initializer; ``entries`` pairs an offset description with a
    sub-initializer.  For arrays the offset is an integer index; for
    composites it is a field name."""

    def __init__(self, ctype: CType,
                 entries: Sequence[tuple[object, Init]]) -> None:
        self.ctype = ctype
        self.entries = list(entries)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.entries)
        return "{" + inner + "}"


# ---------------------------------------------------------------------------
# Function definitions
# ---------------------------------------------------------------------------

class Fundec:
    """A function definition: its variable, formals, locals and body."""

    def __init__(self, svar: Varinfo, formals: Sequence[Varinfo],
                 body: Optional[Block] = None) -> None:
        self.svar = svar
        self.formals = list(formals)
        self.locals: list[Varinfo] = []
        self.body = body if body is not None else Block()
        self._temp_counter = 0

    @property
    def name(self) -> str:
        return self.svar.name

    def new_local(self, name: str, vtype: CType) -> Varinfo:
        v = Varinfo(name, vtype)
        self.locals.append(v)
        return v

    def new_temp(self, vtype: CType, hint: str = "tmp") -> Varinfo:
        self._temp_counter += 1
        v = Varinfo(f"__cil_{hint}{self._temp_counter}", vtype,
                    is_temp=True)
        self.locals.append(v)
        return v

    def __repr__(self) -> str:
        return f"<fundec {self.name}>"
