"""A CIL-like intermediate representation for C.

This subpackage provides the typed IR that the rest of the system is
built on: types with pointer-qualifier slots, side-effect-free
expressions, CIL-style instructions and structured statements, a whole
program container, generic visitors, and a C pretty-printer.
"""

from repro.cil.types import (CType, TVoid, TInt, TFloat, TPtr, TArray,
                             TFun, TComp, TEnum, TNamed, CompInfo,
                             FieldInfo, EnumInfo, IKind, FKind, Machine,
                             MACHINE, unroll, is_pointer, is_integral,
                             is_arithmetic, is_void, is_scalar,
                             is_function, comp_layout, field_offset,
                             IncompleteTypeError, int_t, uint_t, char_t,
                             uchar_t, long_t, double_t, float_t, void_t,
                             ptr, array, type_of_pointed)
from repro.cil.expr import (Exp, Const, StrConst, LvalExp, SizeOfT, UnOp,
                            BinOp, CastE, AddrOf, StartOf, UnopKind,
                            BinopKind, Lval, Lhost, Var, Mem, Offset,
                            NoOffset, NO_OFFSET, Field, Index, Varinfo,
                            var_lval, mem_lval, is_zero, COMPARISONS,
                            POINTER_ARITH)
from repro.cil.stmt import (Instr, Set, Call, Check, CheckKind, Stmt,
                            InstrStmt, Return, Break, Continue, Block, If,
                            Loop, Init, SingleInit, CompoundInit, Fundec)
from repro.cil.program import (Program, Global, GVar, GVarDecl, GFun,
                               GCompTag, GEnumTag, GType, GPragma)
from repro.cil.visitor import (Visitor, walk_program, walk_stmt,
                               walk_instr, walk_exp, walk_lval,
                               type_occurrences, each_pointer)
from repro.cil.printer import (Printer, program_to_c, exp_to_c, type_to_c)

__all__ = [name for name in dir() if not name.startswith("_")]
