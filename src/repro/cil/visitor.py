"""Generic traversal over CIL programs.

Two facilities:

* :class:`Visitor` — a read-only callback visitor over globals,
  statements, instructions, expressions and lvalues, used by the
  constraint generator and by the various static censuses.
* :func:`walk_types` — enumerate every *syntactic type occurrence* in a
  program together with a context description.  CCured's inference
  "associates a qualifier variable with each syntactic occurrence of the
  ``*`` pointer-type constructor"; this walk is how those occurrences are
  found.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.cil import expr as E
from repro.cil import stmt as S
from repro.cil import types as T
from repro.cil.program import (GCompTag, GFun, GType, GVar, GVarDecl,
                               Global, Program)


class Visitor:
    """Override any subset of the ``visit_*`` hooks; traversal recurses
    into children after the hook runs."""

    def visit_global(self, g: Global) -> None: ...
    def visit_fundec(self, f: S.Fundec) -> None: ...
    def visit_stmt(self, s: S.Stmt) -> None: ...
    def visit_instr(self, i: S.Instr) -> None: ...
    def visit_exp(self, e: E.Exp) -> None: ...
    def visit_lval(self, lv: E.Lval) -> None: ...
    def visit_init(self, init: S.Init) -> None: ...


def walk_program(prog: Program, v: Visitor) -> None:
    for g in prog.globals:
        v.visit_global(g)
        if isinstance(g, GFun):
            v.visit_fundec(g.fundec)
            walk_stmt(S.Block(g.fundec.body.stmts), v)
        elif isinstance(g, GVar) and g.init is not None:
            walk_init(g.init, v)


def walk_init(init: S.Init, v: Visitor) -> None:
    v.visit_init(init)
    if isinstance(init, S.SingleInit):
        walk_exp(init.exp, v)
    elif isinstance(init, S.CompoundInit):
        for _, sub in init.entries:
            walk_init(sub, v)


def walk_stmt(s: S.Stmt, v: Visitor) -> None:
    v.visit_stmt(s)
    if isinstance(s, S.InstrStmt):
        for i in s.instrs:
            walk_instr(i, v)
    elif isinstance(s, S.Return):
        if s.exp is not None:
            walk_exp(s.exp, v)
    elif isinstance(s, S.Block):
        for sub in s.stmts:
            walk_stmt(sub, v)
    elif isinstance(s, S.If):
        walk_exp(s.cond, v)
        walk_stmt(s.then, v)
        walk_stmt(s.els, v)
    elif isinstance(s, S.Loop):
        walk_stmt(s.body, v)


def walk_instr(i: S.Instr, v: Visitor) -> None:
    v.visit_instr(i)
    if isinstance(i, S.Set):
        walk_lval(i.lval, v)
        walk_exp(i.exp, v)
    elif isinstance(i, S.Call):
        if i.ret is not None:
            walk_lval(i.ret, v)
        walk_exp(i.fn, v)
        for a in i.args:
            walk_exp(a, v)
    elif isinstance(i, S.Check):
        for a in i.args:
            walk_exp(a, v)


def walk_exp(e: E.Exp, v: Visitor) -> None:
    v.visit_exp(e)
    if isinstance(e, E.LvalExp):
        walk_lval(e.lval, v)
    elif isinstance(e, (E.AddrOf, E.StartOf)):
        walk_lval(e.lval, v)
    elif isinstance(e, E.UnOp):
        walk_exp(e.e, v)
    elif isinstance(e, E.BinOp):
        walk_exp(e.e1, v)
        walk_exp(e.e2, v)
    elif isinstance(e, E.CastE):
        walk_exp(e.e, v)


def walk_lval(lv: E.Lval, v: Visitor) -> None:
    v.visit_lval(lv)
    if isinstance(lv.host, E.Mem):
        walk_exp(lv.host.exp, v)
    off = lv.offset
    while not isinstance(off, E.NoOffset):
        if isinstance(off, E.Index):
            walk_exp(off.index, v)
        off = off.rest  # type: ignore[union-attr]


# ---------------------------------------------------------------------------
# Type-occurrence walks
# ---------------------------------------------------------------------------

def type_occurrences(prog: Program) -> Iterator[tuple[T.CType, str]]:
    """Yield ``(type, where)`` for every syntactic type occurrence.

    Occurrences comprise: global and local variable types, struct/union
    field types, typedef bodies, cast destination types, and ``sizeof``
    operand types.  Sub-types (e.g. the base of a pointer) are *not*
    yielded separately: consumers that need per-``*`` granularity recurse
    themselves (see :func:`each_pointer`).
    """
    seen_comps: set[int] = set()
    for g in prog.globals:
        if isinstance(g, GCompTag):
            if g.comp.key not in seen_comps:
                seen_comps.add(g.comp.key)
                for f in g.comp.fields:
                    yield f.type, f"field {g.comp.name}.{f.name}"
        elif isinstance(g, GType):
            yield g.type, f"typedef {g.name}"
        elif isinstance(g, GVar):
            yield g.var.type, f"var {g.var.name}"
        elif isinstance(g, GVarDecl):
            # Externals are declarations of *library* entities; they are
            # excluded from the "% of pointer declarations" metric,
            # which counts the program's own pointers (as the paper's
            # per-application tables do).
            yield g.var.type, f"extern {g.var.name}"
        elif isinstance(g, GFun):
            fd = g.fundec
            yield fd.svar.type, f"fun {fd.name}"
            for formal in fd.formals:
                yield formal.type, f"formal {fd.name}:{formal.name}"
            for loc in fd.locals:
                yield loc.type, f"local {fd.name}:{loc.name}"

    class _CastCollector(Visitor):
        def __init__(self) -> None:
            self.found: list[tuple[T.CType, str]] = []

        def visit_exp(self, e: E.Exp) -> None:
            if isinstance(e, E.CastE):
                self.found.append((e.t, "cast"))
            elif isinstance(e, E.SizeOfT):
                self.found.append((e.t, "sizeof"))

    cc = _CastCollector()
    walk_program(prog, cc)
    yield from cc.found


def each_pointer(t: T.CType,
                 fn: Callable[[T.TPtr], None],
                 _seen: set[int] | None = None) -> None:
    """Apply ``fn`` to every ``TPtr`` reachable inside ``t``.

    Recursion stops at composite references (their fields are separate
    occurrences walked once via :func:`type_occurrences`) and guards
    against typedef cycles.
    """
    if _seen is None:
        _seen = set()
    if id(t) in _seen:
        return
    _seen.add(id(t))
    if isinstance(t, T.TPtr):
        fn(t)
        each_pointer(t.base, fn, _seen)
    elif isinstance(t, T.TArray):
        each_pointer(t.base, fn, _seen)
    elif isinstance(t, T.TNamed):
        each_pointer(t.actual, fn, _seen)
    elif isinstance(t, T.TFun):
        each_pointer(t.ret, fn, _seen)
        for _, pt in (t.params or []):
            each_pointer(pt, fn, _seen)
    # TComp: fields are their own occurrences.
