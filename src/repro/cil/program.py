"""Whole-program container for the CIL-like IR."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from repro.cil.expr import Varinfo
from repro.cil.stmt import Fundec, Init
from repro.cil.types import CompInfo, CType, EnumInfo


class Global:
    """Base class of top-level program elements."""


class GVar(Global):
    """A global variable definition with an optional initializer."""

    def __init__(self, var: Varinfo, init: Optional[Init] = None) -> None:
        self.var = var
        self.init = init

    def __repr__(self) -> str:
        return f"<gvar {self.var.name}>"


class GVarDecl(Global):
    """A declaration (prototype / extern) without a definition."""

    def __init__(self, var: Varinfo) -> None:
        self.var = var

    def __repr__(self) -> str:
        return f"<gdecl {self.var.name}>"


class GFun(Global):
    """A function definition."""

    def __init__(self, fundec: Fundec) -> None:
        self.fundec = fundec

    def __repr__(self) -> str:
        return f"<gfun {self.fundec.name}>"


class GCompTag(Global):
    """A struct/union definition."""

    def __init__(self, comp: CompInfo) -> None:
        self.comp = comp


class GEnumTag(Global):
    def __init__(self, enuminfo: EnumInfo) -> None:
        self.enuminfo = enuminfo


class GType(Global):
    """A typedef."""

    def __init__(self, name: str, ctype: CType) -> None:
        self.name = name
        self.type = ctype


class GPragma(Global):
    """A ``#pragma`` retained from the source (e.g. ``ccuredWrapperOf``)."""

    def __init__(self, name: str, args: Sequence[str]) -> None:
        self.name = name
        self.args = list(args)


class Program:
    """A parsed and lowered translation unit (plus linked units).

    The program is the unit of analysis for CCured's *whole-program*
    pointer-kind inference, so all sources of an application are lowered
    into a single ``Program``.
    """

    def __init__(self, name: str = "a") -> None:
        self.name = name
        self.globals: list[Global] = []
        self.comps: dict[str, CompInfo] = {}
        self.enums: dict[str, EnumInfo] = {}
        self.typedefs: dict[str, CType] = {}
        self.global_vars: dict[str, Varinfo] = {}
        self.functions: dict[str, Fundec] = {}
        #: names declared but not defined here — resolved against the
        #: runtime's libc builtins / wrappers at interpretation time.
        self.externals: dict[str, Varinfo] = {}
        #: casts the user asserted trusted (Section 3's escape hatch).
        self.trusted_cast_count = 0
        #: ``(filename, line)`` pairs holding a ``repro-lint: ignore``
        #: comment; ``repro lint`` drops diagnostics on such a line or
        #: the line directly below it.
        self.lint_suppressions: set[tuple[str, int]] = set()

    def add(self, g: Global) -> None:
        self.globals.append(g)
        if isinstance(g, GCompTag):
            self.comps[g.comp.name] = g.comp
        elif isinstance(g, GEnumTag):
            self.enums[g.enuminfo.name] = g.enuminfo
        elif isinstance(g, GType):
            self.typedefs[g.name] = g.type
        elif isinstance(g, GVar):
            self.global_vars[g.var.name] = g.var
            self.externals.pop(g.var.name, None)
        elif isinstance(g, GVarDecl):
            if (g.var.name not in self.global_vars
                    and g.var.name not in self.functions):
                self.externals[g.var.name] = g.var
        elif isinstance(g, GFun):
            self.functions[g.fundec.name] = g.fundec
            self.externals.pop(g.fundec.name, None)

    def fundecs(self) -> Iterator[Fundec]:
        for g in self.globals:
            if isinstance(g, GFun):
                yield g.fundec

    def function(self, name: str) -> Fundec:
        return self.functions[name]

    def pragmas(self, name: str) -> list[GPragma]:
        return [g for g in self.globals
                if isinstance(g, GPragma) and g.name == name]

    def __repr__(self) -> str:
        return (f"<program {self.name}: {len(self.functions)} functions, "
                f"{len(self.globals)} globals>")
