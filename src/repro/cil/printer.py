"""Pretty-print CIL programs back to C.

The printer has two modes:

* plain mode — prints the program as ordinary C (useful for debugging the
  frontend: its output re-parses with pycparser, which is tested);
* annotated mode — prints inferred pointer kinds as ``* __SAFE`` /
  ``* __SEQ`` / ``* __WILD`` / ``* __RTTI`` qualifiers and renders the
  curing transformation's run-time checks as ``__CHECK_*`` statements,
  matching the presentation style of the original CCured's output.
"""

from __future__ import annotations

import io
from typing import Optional

from repro.cil import expr as E
from repro.cil import stmt as S
from repro.cil import types as T
from repro.cil.program import (GCompTag, GEnumTag, GFun, GPragma, GType,
                               GVar, GVarDecl, Program)


class Printer:
    def __init__(self, *, annotate_kinds: bool = False,
                 indent: str = "  ") -> None:
        self.annotate_kinds = annotate_kinds
        self.indent = indent

    # -- types --------------------------------------------------------

    def _kind_str(self, t: T.TPtr) -> str:
        if not self.annotate_kinds or t.node is None:
            return ""
        return f" __{t.node.kind.name}"

    def type_str(self, t: T.CType, decl: str = "") -> str:
        """Print a type around a declarator string (C inside-out rule)."""
        if isinstance(t, T.TVoid):
            return f"void {decl}".rstrip()
        if isinstance(t, T.TInt):
            return f"{t.kind.value} {decl}".rstrip()
        if isinstance(t, T.TFloat):
            return f"{t.kind.value} {decl}".rstrip()
        if isinstance(t, T.TNamed):
            return f"{t.name} {decl}".rstrip()
        if isinstance(t, T.TComp):
            kw = "struct" if t.comp.is_struct else "union"
            return f"{kw} {t.comp.name} {decl}".rstrip()
        if isinstance(t, T.TEnum):
            return f"enum {t.enuminfo.name} {decl}".rstrip()
        if isinstance(t, T.TPtr):
            inner = f"*{self._kind_str(t)} {decl}".rstrip() \
                if self._kind_str(t) else f"*{decl}"
            if isinstance(T.unroll(t.base), (T.TArray, T.TFun)) and not \
                    isinstance(t.base, T.TNamed):
                inner = f"({inner})"
            return self.type_str(t.base, inner)
        if isinstance(t, T.TArray):
            n = "" if t.length is None else str(t.length)
            return self.type_str(t.base, f"{decl}[{n}]")
        if isinstance(t, T.TFun):
            if t.params is None:
                ps = ""
            elif not t.params and not t.varargs:
                ps = "void"
            else:
                ps = ", ".join(self.type_str(pt, nm or "")
                               for nm, pt in t.params)
                if t.varargs:
                    ps = f"{ps}, ..." if ps else "..."
            return self.type_str(t.ret, f"{decl}({ps})")
        raise TypeError(f"unprintable type {t!r}")

    # -- expressions ---------------------------------------------------

    def exp_str(self, e: E.Exp) -> str:
        if isinstance(e, E.Const):
            if isinstance(e.value, float):
                return repr(e.value)
            return str(e.value)
        if isinstance(e, E.StrConst):
            escaped = (e.value.replace("\\", "\\\\").replace('"', '\\"')
                       .replace("\n", "\\n").replace("\t", "\\t")
                       .replace("\r", "\\r").replace("\0", "\\0"))
            return f'"{escaped}"'
        if isinstance(e, E.LvalExp):
            return self.lval_str(e.lval)
        if isinstance(e, E.SizeOfT):
            return f"sizeof({self.type_str(e.t)})"
        if isinstance(e, E.UnOp):
            return f"{e.op.value}({self.exp_str(e.e)})"
        if isinstance(e, E.BinOp):
            op = e.op.value
            if e.op in (E.BinopKind.PLUS_PI, E.BinopKind.MINUS_PI):
                op = op[0]
            elif e.op is E.BinopKind.MINUS_PP:
                op = "-"
            return f"({self.exp_str(e.e1)} {op} {self.exp_str(e.e2)})"
        if isinstance(e, E.CastE):
            trust = "/*trusted*/ " if e.trusted else ""
            return f"({trust}{self.type_str(e.t)})({self.exp_str(e.e)})"
        if isinstance(e, E.AddrOf):
            return f"&{self.lval_str(e.lval)}"
        if isinstance(e, E.StartOf):
            return self.lval_str(e.lval)
        raise TypeError(f"unprintable expression {e!r}")

    def lval_str(self, lv: E.Lval) -> str:
        if isinstance(lv.host, E.Var):
            base = lv.host.var.name
        else:
            assert isinstance(lv.host, E.Mem)
            inner = lv.host.exp
            # *p with an immediate field offset prints as p->f.
            if isinstance(lv.offset, E.Field):
                off = self.offset_str(lv.offset.rest)
                return (f"{self._mem_base_str(inner)}->"
                        f"{lv.offset.field.name}{off}")
            base = f"(*{self.exp_str(inner)})"
        return base + self.offset_str(lv.offset)

    def _mem_base_str(self, e: E.Exp) -> str:
        s = self.exp_str(e)
        if isinstance(e, (E.LvalExp, E.Const)):
            return s
        return f"({s})"

    def offset_str(self, off: E.Offset) -> str:
        parts = []
        while not isinstance(off, E.NoOffset):
            if isinstance(off, E.Field):
                parts.append(f".{off.field.name}")
                off = off.rest
            elif isinstance(off, E.Index):
                parts.append(f"[{self.exp_str(off.index)}]")
                off = off.rest
        return "".join(parts)

    # -- instructions and statements -----------------------------------

    def instr_str(self, i: S.Instr) -> str:
        if isinstance(i, S.Set):
            return f"{self.lval_str(i.lval)} = {self.exp_str(i.exp)};"
        if isinstance(i, S.Call):
            args = ", ".join(self.exp_str(a) for a in i.args)
            fn = self.exp_str(i.fn)
            if isinstance(i.fn, E.LvalExp) and isinstance(
                    i.fn.lval.host, E.Mem):
                fn = f"({fn})"
            call = f"{fn}({args})"
            if i.ret is not None:
                return f"{self.lval_str(i.ret)} = {call};"
            return f"{call};"
        if isinstance(i, S.Check):
            args = [self.exp_str(a) for a in i.args]
            if i.size is not None:
                args.append(str(i.size))
            if i.rtti is not None:
                args.append(f"__rttiOf({self.type_str(i.rtti)})")
            return f"__{i.kind.value}({', '.join(args)});"
        raise TypeError(f"unprintable instruction {i!r}")

    def stmt_lines(self, s: S.Stmt, depth: int) -> list[str]:
        pad = self.indent * depth
        if isinstance(s, S.InstrStmt):
            return [pad + self.instr_str(i) for i in s.instrs]
        if isinstance(s, S.Return):
            if s.exp is None:
                return [pad + "return;"]
            return [pad + f"return {self.exp_str(s.exp)};"]
        if isinstance(s, S.Break):
            return [pad + "break;"]
        if isinstance(s, S.Continue):
            return [pad + "continue;"]
        if isinstance(s, S.Block):
            out = [pad + "{"]
            for sub in s.stmts:
                out.extend(self.stmt_lines(sub, depth + 1))
            out.append(pad + "}")
            return out
        if isinstance(s, S.If):
            out = [pad + f"if ({self.exp_str(s.cond)})"]
            out.extend(self.stmt_lines(s.then, depth))
            if s.els.stmts:
                out.append(pad + "else")
                out.extend(self.stmt_lines(s.els, depth))
            return out
        if isinstance(s, S.Loop):
            out = [pad + "while (1)"]
            out.extend(self.stmt_lines(s.body, depth))
            return out
        raise TypeError(f"unprintable statement {s!r}")

    # -- initializers ---------------------------------------------------

    def init_str(self, init: S.Init) -> str:
        if isinstance(init, S.SingleInit):
            return self.exp_str(init.exp)
        assert isinstance(init, S.CompoundInit)
        return "{" + ", ".join(self.init_str(sub)
                               for _, sub in init.entries) + "}"

    # -- globals ---------------------------------------------------------

    def program_str(self, prog: Program) -> str:
        out = io.StringIO()
        for g in prog.globals:
            if isinstance(g, GCompTag):
                kw = "struct" if g.comp.is_struct else "union"
                out.write(f"{kw} {g.comp.name} {{\n")
                for f in g.comp.fields:
                    out.write(self.indent
                              + self.type_str(f.type, f.name) + ";\n")
                out.write("};\n")
            elif isinstance(g, GEnumTag):
                items = ", ".join(f"{n} = {v}"
                                  for n, v in g.enuminfo.items)
                out.write(f"enum {g.enuminfo.name} {{ {items} }};\n")
            elif isinstance(g, GType):
                out.write("typedef "
                          + self.type_str(g.type, g.name) + ";\n")
            elif isinstance(g, GVarDecl):
                out.write("extern "
                          + self.type_str(g.var.type, g.var.name) + ";\n")
            elif isinstance(g, GVar):
                decl = self.type_str(g.var.type, g.var.name)
                if g.var.storage == "static":
                    decl = "static " + decl
                if g.init is not None:
                    decl += " = " + self.init_str(g.init)
                out.write(decl + ";\n")
            elif isinstance(g, GFun):
                out.write(self.fundec_str(g.fundec))
            elif isinstance(g, GPragma):
                args = ", ".join(g.args)
                out.write(f"#pragma {g.name}({args})\n")
        return out.getvalue()

    def fundec_str(self, fd: S.Fundec) -> str:
        ft = T.unroll(fd.svar.type)
        assert isinstance(ft, T.TFun)
        params = ", ".join(self.type_str(v.type, v.name)
                           for v in fd.formals) or "void"
        head = self.type_str(ft.ret, f"{fd.name}({params})")
        lines = [head, "{"]
        for v in fd.locals:
            lines.append(self.indent + self.type_str(v.type, v.name) + ";")
        for s in fd.body.stmts:
            lines.extend(self.stmt_lines(s, 1))
        lines.append("}")
        return "\n".join(lines) + "\n"


def program_to_c(prog: Program, *, annotate_kinds: bool = False) -> str:
    """Render a whole program as C source text."""
    return Printer(annotate_kinds=annotate_kinds).program_str(prog)


def exp_to_c(e: E.Exp) -> str:
    return Printer().exp_str(e)


def type_to_c(t: T.CType, decl: str = "",
              annotate_kinds: bool = False) -> str:
    return Printer(annotate_kinds=annotate_kinds).type_str(t, decl)
