"""Expressions and lvalues of the CIL-like IR.

Following CIL, expressions are *side-effect free*; assignments and calls
are instructions (:mod:`repro.cil.stmt`).  Lvalues are a pair of a host
(a variable or a memory dereference) and an offset chain (field accesses
and array indexing).  ``e1[e2]`` is desugared by the frontend into
``*(e1 + e2)`` via :class:`StartOf` (array-to-pointer decay) so that, per
the paper's appendix, "we will only consider pointer arithmetic".
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.cil.types import (CType, FieldInfo, TArray, TInt, TPtr, IKind,
                             unroll, is_pointer, int_t)


class Varinfo:
    """A variable: global, formal parameter, local, or compiler temp."""

    _next_id = 0

    def __init__(self, name: str, vtype: CType, *, is_global: bool = False,
                 is_formal: bool = False, is_temp: bool = False,
                 storage: str = "default") -> None:
        self.name = name
        self.type = vtype
        self.is_global = is_global
        self.is_formal = is_formal
        self.is_temp = is_temp
        self.storage = storage  # "default" | "static" | "extern"
        self.address_taken = False
        #: (file, line) of the declaration, when the frontend knows it
        #: (used by lint to point at uninitialized locals).
        self.decl_loc: Optional[tuple[str, int]] = None
        self.vid = Varinfo._next_id
        Varinfo._next_id = Varinfo._next_id + 1

    def __repr__(self) -> str:
        return self.name


# ---------------------------------------------------------------------------
# Lvalues
# ---------------------------------------------------------------------------

class Offset:
    """Base class for lvalue offsets."""

    def __repr__(self) -> str:
        return ""


class NoOffset(Offset):
    """The empty offset."""


NO_OFFSET = NoOffset()


class Field(Offset):
    """A ``.field`` offset followed by a further offset."""

    def __init__(self, field: FieldInfo, rest: Offset = NO_OFFSET) -> None:
        self.field = field
        self.rest = rest

    def __repr__(self) -> str:
        return f".{self.field.name}{self.rest!r}"


class Index(Offset):
    """An array ``[index]`` offset followed by a further offset.

    Note: this is indexing *within* an array object (e.g. a struct field
    of array type), not pointer arithmetic — the frontend turns indexing
    of pointer values into explicit arithmetic.
    """

    def __init__(self, index: "Exp", rest: Offset = NO_OFFSET) -> None:
        self.index = index
        self.rest = rest

    def __repr__(self) -> str:
        return f"[{self.index!r}]{self.rest!r}"


class Lhost:
    """Base class of lvalue hosts."""


class Var(Lhost):
    """A named variable host."""

    def __init__(self, var: Varinfo) -> None:
        self.var = var

    def __repr__(self) -> str:
        return self.var.name


class Mem(Lhost):
    """A memory dereference host: ``*e``."""

    def __init__(self, exp: "Exp") -> None:
        self.exp = exp

    def __repr__(self) -> str:
        return f"*({self.exp!r})"


class Lval:
    """An lvalue: a host plus an offset chain."""

    def __init__(self, host: Lhost, offset: Offset = NO_OFFSET) -> None:
        self.host = host
        self.offset = offset
        self._type: Optional[CType] = None

    def type(self) -> CType:
        """The C type this lvalue denotes (cached: lvalues are static
        syntax, so their type never changes)."""
        if self._type is not None:
            return self._type
        self._type = self._compute_type()
        return self._type

    def _compute_type(self) -> CType:
        if isinstance(self.host, Var):
            t: CType = self.host.var.type
        else:
            assert isinstance(self.host, Mem)
            pt = unroll(self.host.exp.type())
            if not isinstance(pt, TPtr):
                raise TypeError(f"dereference of non-pointer {pt!r}")
            t = pt.base
        return _offset_type(t, self.offset)

    def __repr__(self) -> str:
        return f"{self.host!r}{self.offset!r}"


def _offset_type(t: CType, off: Offset) -> CType:
    while True:
        if isinstance(off, NoOffset):
            return t
        if isinstance(off, Field):
            t = off.field.type
            off = off.rest
        elif isinstance(off, Index):
            at = unroll(t)
            if not isinstance(at, TArray):
                raise TypeError(f"indexing non-array {t!r}")
            t = at.base
            off = off.rest
        else:  # pragma: no cover - defensive
            raise TypeError(f"bad offset {off!r}")


def var_lval(v: Varinfo, offset: Offset = NO_OFFSET) -> Lval:
    return Lval(Var(v), offset)


def mem_lval(e: "Exp", offset: Offset = NO_OFFSET) -> Lval:
    return Lval(Mem(e), offset)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

class UnopKind(enum.Enum):
    NEG = "-"
    BNOT = "~"
    LNOT = "!"


class BinopKind(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"
    SHL = "<<"
    SHR = ">>"
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    BAND = "&"
    BXOR = "^"
    BOR = "|"
    # Pointer forms, distinguished as in CIL so that instrumentation can
    # find every occurrence of pointer arithmetic syntactically:
    PLUS_PI = "+p"    # pointer + integer
    MINUS_PI = "-p"   # pointer - integer
    MINUS_PP = "-pp"  # pointer - pointer (an integer result)


COMPARISONS = {BinopKind.LT, BinopKind.GT, BinopKind.LE, BinopKind.GE,
               BinopKind.EQ, BinopKind.NE}
POINTER_ARITH = {BinopKind.PLUS_PI, BinopKind.MINUS_PI}


class Exp:
    """Base class of side-effect-free expressions."""

    def type(self) -> CType:
        raise NotImplementedError


class Const(Exp):
    """An integer, floating or character constant."""

    def __init__(self, value, ctype: Optional[CType] = None) -> None:
        self.value = value
        self._type = ctype if ctype is not None else int_t()

    def type(self) -> CType:
        return self._type

    def __repr__(self) -> str:
        return repr(self.value)


class StrConst(Exp):
    """A string literal; has type ``char[len+1]`` decayed by StartOf."""

    def __init__(self, value: str, ctype: CType) -> None:
        self.value = value
        self._type = ctype  # a TPtr(char) produced by the frontend

    def type(self) -> CType:
        return self._type

    def __repr__(self) -> str:
        return repr(self.value)


class LvalExp(Exp):
    """Reading an lvalue."""

    def __init__(self, lval: Lval) -> None:
        self.lval = lval

    def type(self) -> CType:
        return self.lval.type()

    def __repr__(self) -> str:
        return repr(self.lval)


class SizeOfT(Exp):
    """``sizeof(type)``; evaluated by the interpreter via the machine."""

    def __init__(self, t: CType) -> None:
        self.t = t

    def type(self) -> CType:
        return TInt(IKind.UINT)

    def __repr__(self) -> str:
        return f"sizeof({self.t!r})"


class UnOp(Exp):
    def __init__(self, op: UnopKind, e: Exp, ctype: CType) -> None:
        self.op = op
        self.e = e
        self._type = ctype

    def type(self) -> CType:
        return self._type

    def __repr__(self) -> str:
        return f"{self.op.value}({self.e!r})"


class BinOp(Exp):
    def __init__(self, op: BinopKind, e1: Exp, e2: Exp,
                 ctype: CType) -> None:
        self.op = op
        self.e1 = e1
        self.e2 = e2
        self._type = ctype

    def type(self) -> CType:
        return self._type

    def __repr__(self) -> str:
        return f"({self.e1!r} {self.op.value} {self.e2!r})"


class CastE(Exp):
    """An explicit or frontend-inserted cast.

    Casts are the central object of study of the paper; the constraint
    generator visits every ``CastE`` and classifies it (identical, upcast,
    downcast, or bad — Section 3).
    """

    def __init__(self, t: CType, e: Exp) -> None:
        self.t = t
        self.e = e
        self.trusted = False  # set for __trusted_cast escape hatches

    def type(self) -> CType:
        return self.t

    def __repr__(self) -> str:
        trust = "trusted " if self.trusted else ""
        return f"({trust}{self.t!r})({self.e!r})"


class AddrOf(Exp):
    """``&lval``; never applied to arrays (see :class:`StartOf`).

    The constructed pointer type is cached so that the qualifier node
    attached to this syntactic occurrence persists.
    """

    def __init__(self, lval: Lval) -> None:
        self.lval = lval
        self._type: Optional[CType] = None

    def type(self) -> CType:
        if self._type is None:
            self._type = TPtr(self.lval.type())
        return self._type

    def __repr__(self) -> str:
        return f"&({self.lval!r})"


class StartOf(Exp):
    """Array-to-pointer decay: the address of an array lvalue's start.

    CCured treats the resulting pointer as referring to the whole array,
    which is what makes SEQ bounds for stack and global arrays precise
    (and is exactly what Purify/Valgrind cannot see, per Section 5).
    The constructed pointer type is cached so the qualifier node
    attached to this occurrence persists.
    """

    def __init__(self, lval: Lval) -> None:
        self.lval = lval
        self._type: Optional[CType] = None

    def type(self) -> CType:
        if self._type is not None:
            return self._type
        at = unroll(self.lval.type())
        if not isinstance(at, TArray):
            raise TypeError(f"StartOf non-array {at!r}")
        self._type = TPtr(at.base)
        return self._type

    def __repr__(self) -> str:
        return f"startof({self.lval!r})"


def dummy_exp() -> Exp:
    return Const(0)


def is_zero(e: Exp) -> bool:
    """Is this expression a (possibly cast) literal zero/null?"""
    while isinstance(e, CastE):
        e = e.e
    return isinstance(e, Const) and e.value == 0


def exp_children(e: Exp) -> Sequence[Exp]:
    """The immediate sub-expressions of ``e`` (for generic walks)."""
    if isinstance(e, UnOp):
        return (e.e,)
    if isinstance(e, BinOp):
        return (e.e1, e.e2)
    if isinstance(e, CastE):
        return (e.e,)
    return ()
