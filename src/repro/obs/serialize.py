"""Stable JSON serialization for metrics reports.

The CI regression gate compares a freshly collected report against a
committed baseline, so serialization must be *stable*: the same
measurements always produce byte-identical text.  That means sorted
keys, a fixed indent, rounded floats (so incidental representation
noise can never leak into a diff) and a trailing newline (committed
files end in one).
"""

from __future__ import annotations

import json
import sys
from typing import Any

#: float precision of serialized reports; ratios and percentages are
#: meaningful to far fewer digits than this.
FLOAT_DIGITS = 6


def round_floats(obj: Any, digits: int = FLOAT_DIGITS) -> Any:
    """Recursively round every float in a JSON-ish structure."""
    if isinstance(obj, float):
        return round(obj, digits)
    if isinstance(obj, dict):
        return {k: round_floats(v, digits) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [round_floats(v, digits) for v in obj]
    return obj


def stable_dumps(payload: Any) -> str:
    """Canonical JSON text: sorted keys, 2-space indent, rounded
    floats, trailing newline."""
    return json.dumps(round_floats(payload), indent=2,
                      sort_keys=True) + "\n"


def write_json(payload: Any, path: str) -> None:
    """Write canonical JSON to ``path`` (``-`` writes stdout)."""
    text = stable_dumps(payload)
    if path == "-":
        sys.stdout.write(text)
        return
    with open(path, "w", encoding="utf-8") as f:
        f.write(text)


def load_json(path: str) -> Any:
    """Load a JSON report from ``path`` (``-`` reads stdin)."""
    if path == "-":
        return json.load(sys.stdin)
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)
