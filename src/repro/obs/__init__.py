"""Pipeline observability: structured tracing, per-site metrics, and
regression diffing.

Three layers, importable without pulling the heavy pipeline modules:

* :mod:`repro.obs.tracer` — span/event tracing with a shared global
  :data:`~repro.obs.tracer.TRACER`; zero-cost while disabled;
* :mod:`repro.obs.metrics` — per-workload static/dynamic check and
  pointer-kind accounting (:class:`~repro.obs.metrics.MetricsReport`),
  deterministic by construction;
* :mod:`repro.obs.diff` — threshold-gated comparison of two reports,
  the substrate of the CI regression gate
  (``repro metrics diff --fail-on-regress``);
* :mod:`repro.obs.provenance` / :mod:`repro.obs.blame` — the blame
  graph recorded during inference and the explain/forensics layer on
  top of it (``repro explain``, failure blame chains);
* :mod:`repro.obs.profile` — the phase profiler: folds span captures
  (single-process or merged multi-worker) into a deterministic
  per-phase/per-workload breakdown (``repro profile``).
"""

from repro.obs.blame import (EXPLAIN_SCHEMA, BlameChain, BlameGraph,
                             diff_explain, explain_report,
                             render_chain, render_explain,
                             render_explain_diff)
from repro.obs.diff import (DiffResult, Finding, Thresholds,
                            diff_reports, render_diff)
from repro.obs.provenance import (SEED_CAUSES, SPREAD_CAUSES,
                                  Provenance, describe)
from repro.obs.metrics import (SCHEMA, MetricsReport, SiteStat,
                               WorkloadMetrics,
                               collect_metrics,
                               collect_workload_metrics,
                               render_report, site_table)
from repro.obs.profile import (NONDET_PHASES, PROFILE_SCHEMA,
                               PhaseStat, ProfileReport,
                               collect_profile, fold_spans,
                               phase_key, profile_workload,
                               render_profile)
from repro.obs.serialize import (load_json, round_floats,
                                 stable_dumps, write_json)
from repro.obs.tracer import (TRACER, SpanRecord, Tracer,
                              chrome_trace, phase_seconds_of, span,
                              spans_from_wire, spans_to_wire,
                              write_chrome_trace)

__all__ = [
    "EXPLAIN_SCHEMA", "BlameChain", "BlameGraph", "diff_explain",
    "explain_report", "render_chain", "render_explain",
    "render_explain_diff",
    "SEED_CAUSES", "SPREAD_CAUSES", "Provenance", "describe",
    "chrome_trace", "write_chrome_trace",
    "DiffResult", "Finding", "Thresholds", "diff_reports",
    "render_diff",
    "SCHEMA", "MetricsReport", "SiteStat", "WorkloadMetrics",
    "collect_metrics", "collect_workload_metrics", "render_report",
    "site_table",
    "NONDET_PHASES", "PROFILE_SCHEMA", "PhaseStat", "ProfileReport",
    "collect_profile", "fold_spans", "phase_key",
    "profile_workload", "render_profile",
    "load_json", "round_floats", "stable_dumps", "write_json",
    "TRACER", "SpanRecord", "Tracer", "phase_seconds_of", "span",
    "spans_from_wire", "spans_to_wire",
]
