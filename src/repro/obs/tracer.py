"""Structured tracing for the curing/execution pipeline.

A :class:`Tracer` hands out *spans* — context managers timing one
phase of the pipeline (parse, cure, qualifier solving, dataflow,
execution).  Spans nest: each finished span records its name, its
depth in the stack of open spans, its start offset and its duration,
plus free-form attributes (engine name, workload, optimization
level).

The instrumented modules call :meth:`Tracer.span` unconditionally on
every pipeline entry, so the disabled path must cost nothing: when
``enabled`` is False the tracer returns one shared :class:`_NullSpan`
singleton — no allocation, no clock read, no record.  Enabling is a
per-collection decision (``repro metrics --timing``), never a global
default, which keeps benchmark measurements undisturbed.

Wall-clock durations are inherently non-deterministic; consumers that
need byte-identical output (the CI regression gate) simply leave the
tracer disabled and report only the deterministic counters of
:mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional, Sequence


@dataclass
class SpanRecord:
    """One finished span."""

    name: str
    depth: int          # nesting depth at entry (0 = top level)
    start: float        # seconds since the tracer's epoch
    duration: float     # wall seconds
    attrs: dict[str, Any] = field(default_factory=dict)
    pid: int = 0        # recording process (0 = unknown/legacy)
    tid: int = 0        # recording OS thread (0 = unknown/legacy)

    def to_json(self) -> dict:
        return {"name": self.name, "depth": self.depth,
                "start": round(self.start, 6),
                "duration": round(self.duration, 6),
                "attrs": dict(self.attrs),
                "pid": self.pid, "tid": self.tid}


class _NullSpan:
    """The shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span; records itself on exit (even when the body
    raises, so a failing phase still shows its time)."""

    __slots__ = ("_tracer", "name", "attrs", "depth", "_t0")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self._t0 = 0.0

    def __enter__(self) -> "_LiveSpan":
        t = self._tracer
        self.depth = len(t._stack)
        t._stack.append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        t1 = time.perf_counter()
        t = self._tracer
        if t._stack and t._stack[-1] is self:
            t._stack.pop()
        t.records.append(SpanRecord(
            self.name, self.depth, self._t0 - t._epoch,
            t1 - self._t0, self.attrs, os.getpid(),
            threading.get_native_id()))
        return False

    def set(self, **attrs: Any) -> "_LiveSpan":
        """Attach attributes discovered mid-span."""
        self.attrs.update(attrs)
        return self


class Tracer:
    """Collects span records; disabled (and free) by default."""

    def __init__(self) -> None:
        self.enabled = False
        self.records: list[SpanRecord] = []
        self._stack: list[_LiveSpan] = []
        self._epoch = time.perf_counter()

    def span(self, name: str, /, **attrs: Any) -> object:
        """A context manager timing ``name``; a shared no-op object
        when tracing is disabled.  ``name`` is positional-only so any
        keyword (even ``name=``) is a legal span attribute."""
        if not self.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name, attrs)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.records = []
        self._stack = []
        self._epoch = time.perf_counter()

    def epoch_wall(self) -> float:
        """The tracer's epoch as absolute (unix) wall time, computed
        on demand — the anchor that lets span records captured in a
        worker process be rebased onto another process's timeline."""
        return time.time() - (time.perf_counter() - self._epoch)

    def phase_seconds(self) -> dict[str, float]:
        """Total wall seconds per span name.  Nested spans count
        toward their own name only; a parent's time includes its
        children (phase names are chosen to make that reading
        natural: ``cure`` contains ``solve``, ``dataflow``, ...)."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.name] = out.get(r.name, 0.0) + r.duration
        return out

    @contextmanager
    def capture(self) -> Iterator[list[SpanRecord]]:
        """Enable tracing for a block, yielding the (live) list that
        collects its records; previous tracer state is restored on
        exit."""
        prev_enabled = self.enabled
        prev_records = self.records
        prev_stack = self._stack
        self.records = []
        self._stack = []
        self.enabled = True
        try:
            yield self.records
        finally:
            self.enabled = prev_enabled
            self.records = prev_records
            self._stack = prev_stack


#: the process-wide tracer every instrumented module reports to
TRACER = Tracer()


def span(name: str, /, **attrs: Any) -> object:
    """Convenience alias for ``TRACER.span``."""
    return TRACER.span(name, **attrs)


def phase_seconds_of(records: list[SpanRecord],
                     depth: Optional[int] = None) -> dict[str, float]:
    """Aggregate a captured record list into per-name wall seconds,
    optionally restricted to one nesting depth."""
    out: dict[str, float] = {}
    for r in records:
        if depth is not None and r.depth != depth:
            continue
        out[r.name] = out.get(r.name, 0.0) + r.duration
    return out


def spans_to_wire(records: Sequence[SpanRecord],
                  tracer: Optional[Tracer] = None) -> list[dict]:
    """Serialize span records for shipping across a process boundary.

    Each worker process has its own tracer epoch (an arbitrary
    ``perf_counter`` origin), so relative ``start`` offsets from two
    processes do not share a timeline.  The wire format therefore
    carries *absolute* wall-clock starts; :func:`spans_from_wire`
    rebases them onto the receiving tracer's epoch."""
    t = tracer if tracer is not None else TRACER
    wall0 = t.epoch_wall()
    return [{"name": r.name, "depth": r.depth,
             "wall": wall0 + r.start, "duration": r.duration,
             "attrs": dict(r.attrs), "pid": r.pid, "tid": r.tid}
            for r in records]


def spans_from_wire(wire: Sequence[dict],
                    epoch_wall: Optional[float] = None
                    ) -> list[SpanRecord]:
    """Reconstruct :class:`SpanRecord`\\ s from wire dicts, rebased so
    ``start`` is relative to ``epoch_wall`` (default: the receiving
    process's global tracer epoch)."""
    anchor = (epoch_wall if epoch_wall is not None
              else TRACER.epoch_wall())
    return [SpanRecord(w["name"], w["depth"], w["wall"] - anchor,
                       w["duration"], dict(w.get("attrs") or {}),
                       int(w.get("pid", 0)), int(w.get("tid", 0)))
            for w in wire]


def chrome_trace(records: list[SpanRecord],
                 process_name: str = "repro") -> dict:
    """Convert span records to the Chrome ``trace_event`` JSON format
    (load the file in ``chrome://tracing`` or https://ui.perfetto.dev).

    Each span becomes one complete ("X") event; timestamps and
    durations are microseconds from the tracer's epoch.  Records carry
    the pid/tid that recorded them, so a merged multi-worker capture
    (a sharded sweep) renders as one lane per process instead of
    interleaving on a single row; the exporting process sorts first
    and is labelled ``process_name``, workers are labelled by pid."""
    here = os.getpid()
    lanes = sorted({(r.pid or 1, r.tid or 1) for r in records})
    pids = sorted({p for p, _ in lanes})
    # the exporting process leads; workers follow in pid order
    order = sorted(pids, key=lambda p: (p != here, p))
    events: list[dict] = []
    for i, p in enumerate(order):
        label = (process_name if p == here or len(pids) == 1
                 else f"{process_name} worker {p}")
        events.append({"name": "process_name", "ph": "M", "pid": p,
                       "tid": 1, "args": {"name": label}})
        events.append({"name": "process_sort_index", "ph": "M",
                       "pid": p, "tid": 1,
                       "args": {"sort_index": i}})
    for p, t in lanes:
        events.append({"name": "thread_name", "ph": "M", "pid": p,
                       "tid": t, "args": {"name": "pipeline"}})
    for r in sorted(records, key=lambda r: (r.start, r.depth)):
        ev: dict = {"name": r.name, "ph": "X", "pid": r.pid or 1,
                    "tid": r.tid or 1,
                    "ts": round(r.start * 1e6, 3),
                    "dur": round(r.duration * 1e6, 3),
                    "cat": "pipeline"}
        if r.attrs:
            ev["args"] = {k: v for k, v in sorted(r.attrs.items())}
        events.append(ev)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: list[SpanRecord], path: str,
                       process_name: str = "repro") -> None:
    """Write :func:`chrome_trace` output to ``path`` (``-`` for
    stdout)."""
    import json
    import sys
    payload = json.dumps(chrome_trace(records, process_name),
                         indent=1, sort_keys=False)
    if path == "-":
        sys.stdout.write(payload + "\n")
    else:
        with open(path, "w") as fh:
            fh.write(payload + "\n")
