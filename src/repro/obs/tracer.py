"""Structured tracing for the curing/execution pipeline.

A :class:`Tracer` hands out *spans* — context managers timing one
phase of the pipeline (parse, cure, qualifier solving, dataflow,
execution).  Spans nest: each finished span records its name, its
depth in the stack of open spans, its start offset and its duration,
plus free-form attributes (engine name, workload, optimization
level).

The instrumented modules call :meth:`Tracer.span` unconditionally on
every pipeline entry, so the disabled path must cost nothing: when
``enabled`` is False the tracer returns one shared :class:`_NullSpan`
singleton — no allocation, no clock read, no record.  Enabling is a
per-collection decision (``repro metrics --timing``), never a global
default, which keeps benchmark measurements undisturbed.

Wall-clock durations are inherently non-deterministic; consumers that
need byte-identical output (the CI regression gate) simply leave the
tracer disabled and report only the deterministic counters of
:mod:`repro.obs.metrics`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional


@dataclass
class SpanRecord:
    """One finished span."""

    name: str
    depth: int          # nesting depth at entry (0 = top level)
    start: float        # seconds since the tracer's epoch
    duration: float     # wall seconds
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {"name": self.name, "depth": self.depth,
                "start": round(self.start, 6),
                "duration": round(self.duration, 6),
                "attrs": dict(self.attrs)}


class _NullSpan:
    """The shared no-op span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """An open span; records itself on exit (even when the body
    raises, so a failing phase still shows its time)."""

    __slots__ = ("_tracer", "name", "attrs", "depth", "_t0")

    def __init__(self, tracer: "Tracer", name: str,
                 attrs: dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.depth = 0
        self._t0 = 0.0

    def __enter__(self) -> "_LiveSpan":
        t = self._tracer
        self.depth = len(t._stack)
        t._stack.append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        t1 = time.perf_counter()
        t = self._tracer
        if t._stack and t._stack[-1] is self:
            t._stack.pop()
        t.records.append(SpanRecord(
            self.name, self.depth, self._t0 - t._epoch,
            t1 - self._t0, self.attrs))
        return False

    def set(self, **attrs: Any) -> "_LiveSpan":
        """Attach attributes discovered mid-span."""
        self.attrs.update(attrs)
        return self


class Tracer:
    """Collects span records; disabled (and free) by default."""

    def __init__(self) -> None:
        self.enabled = False
        self.records: list[SpanRecord] = []
        self._stack: list[_LiveSpan] = []
        self._epoch = time.perf_counter()

    def span(self, name: str, /, **attrs: Any) -> object:
        """A context manager timing ``name``; a shared no-op object
        when tracing is disabled.  ``name`` is positional-only so any
        keyword (even ``name=``) is a legal span attribute."""
        if not self.enabled:
            return _NULL_SPAN
        return _LiveSpan(self, name, attrs)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        self.records = []
        self._stack = []
        self._epoch = time.perf_counter()

    def phase_seconds(self) -> dict[str, float]:
        """Total wall seconds per span name.  Nested spans count
        toward their own name only; a parent's time includes its
        children (phase names are chosen to make that reading
        natural: ``cure`` contains ``solve``, ``dataflow``, ...)."""
        out: dict[str, float] = {}
        for r in self.records:
            out[r.name] = out.get(r.name, 0.0) + r.duration
        return out

    @contextmanager
    def capture(self) -> Iterator[list[SpanRecord]]:
        """Enable tracing for a block, yielding the (live) list that
        collects its records; previous tracer state is restored on
        exit."""
        prev_enabled = self.enabled
        prev_records = self.records
        prev_stack = self._stack
        self.records = []
        self._stack = []
        self.enabled = True
        try:
            yield self.records
        finally:
            self.enabled = prev_enabled
            self.records = prev_records
            self._stack = prev_stack


#: the process-wide tracer every instrumented module reports to
TRACER = Tracer()


def span(name: str, /, **attrs: Any) -> object:
    """Convenience alias for ``TRACER.span``."""
    return TRACER.span(name, **attrs)


def phase_seconds_of(records: list[SpanRecord],
                     depth: Optional[int] = None) -> dict[str, float]:
    """Aggregate a captured record list into per-name wall seconds,
    optionally restricted to one nesting depth."""
    out: dict[str, float] = {}
    for r in records:
        if depth is not None and r.depth != depth:
            continue
        out[r.name] = out.get(r.name, 0.0) + r.duration
    return out


def chrome_trace(records: list[SpanRecord],
                 process_name: str = "repro") -> dict:
    """Convert span records to the Chrome ``trace_event`` JSON format
    (load the file in ``chrome://tracing`` or https://ui.perfetto.dev).

    Each span becomes one complete ("X") event; timestamps and
    durations are microseconds from the tracer's epoch.  All spans go
    on one thread — the pipeline is single-threaded, and nesting is
    reconstructed by the viewer from the enclosing intervals.
    """
    events: list[dict] = [
        {"name": "process_name", "ph": "M", "pid": 1, "tid": 1,
         "args": {"name": process_name}},
        {"name": "thread_name", "ph": "M", "pid": 1, "tid": 1,
         "args": {"name": "pipeline"}},
    ]
    for r in sorted(records, key=lambda r: (r.start, r.depth)):
        ev: dict = {"name": r.name, "ph": "X", "pid": 1, "tid": 1,
                    "ts": round(r.start * 1e6, 3),
                    "dur": round(r.duration * 1e6, 3),
                    "cat": "pipeline"}
        if r.attrs:
            ev["args"] = {k: v for k, v in sorted(r.attrs.items())}
        events.append(ev)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(records: list[SpanRecord], path: str,
                       process_name: str = "repro") -> None:
    """Write :func:`chrome_trace` output to ``path`` (``-`` for
    stdout)."""
    import json
    import sys
    payload = json.dumps(chrome_trace(records, process_name),
                         indent=1, sort_keys=False)
    if path == "-":
        sys.stdout.write(payload + "\n")
    else:
        with open(path, "w") as fh:
            fh.write(payload + "\n")
