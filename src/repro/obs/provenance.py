"""Provenance records for pointer-kind inference (the blame graph).

CCured's porting workflow (paper Sections 2 and 5) relies on a browser
that explains *why* inference gave a pointer its kind, so that the
programmer can find the one bad cast whose fix collapses a whole WILD
region.  This module defines the record the constraint generator and
solver attach to qualifier nodes whenever they change a node's state:

* a **seed** record (``src is None``) marks a root cause written by the
  program itself — a bad cast, a ``ccuredWild`` pragma, pointer
  arithmetic, a downcast, an int-to-pointer cast, or a solver conflict;
* a **spread** record points (``src``) at the node the state arrived
  from and names the constraint edge it crossed (``via``).

A node stores at most one record per state (WILD/RTTI/SEQ), appended
only on the SAFE→state transition, so recording is allocation-light:
following ``src`` links therefore walks each state monotonically
earlier in solver time and must terminate at a seed.  The chain walk
itself lives in :mod:`repro.obs.blame`; this module is intentionally
dependency-free so :mod:`repro.core.qualifiers` can import it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: provenance states a node can enter (FSEQ is folded into SEQ: both
#: arise from the same ``arith`` flag and the same causes).
STATES = ("WILD", "RTTI", "SEQ")

#: causes that start a blame chain (their records have ``src is None``).
SEED_CAUSES = frozenset({
    "bad-cast",            # WILD: unclassifiable cast between types
    "wild-pragma",         # WILD: #pragma ccuredWild / wild_roots
    "seq-cast-incompat",   # WILD: SEQ cast with non-commensurate sizes
    "arith-rtti-conflict",  # WILD: arithmetic on an RTTI pointer
    "downcast",            # RTTI: source of a checked downcast
    "pointer-arith",       # SEQ:  p + i / p - i / p[i]
    "pointer-diff",        # SEQ:  p - q
    "int-to-ptr",          # SEQ:  (T *)some_int
    "solver",              # safety net: state forced at final assignment
})

#: causes that continue a chain (their records have a ``src`` node).
SPREAD_CAUSES = frozenset({
    "wild-spread",   # WILD crossing compat/same/group/base/cast
    "rtti-spread",   # RTTI flowing backwards along rtti_back edges
    "seq-spread",    # bounds obligation flowing along seq_back edges
    "int-taint",     # int-to-ptr taint following forward flows
})

#: constraint-graph edges a spread record can name.
VIA_EDGES = ("compat", "same", "group", "base", "cast",
             "rtti_back", "seq_back", "flow")


@dataclass(frozen=True)
class Provenance:
    """One state change on a qualifier node.

    ``state`` is the state entered (one of :data:`STATES`); ``cause``
    names why (:data:`SEED_CAUSES` or :data:`SPREAD_CAUSES`); ``via``
    is the constraint edge crossed (empty for seeds); ``src`` is the id
    of the node the state spread from (None for seeds); ``where`` is
    the program location — the seed's cast/arith site, or the node's
    own declaration site for spread records.
    """

    state: str
    cause: str
    via: str = ""
    src: Optional[int] = None
    where: str = ""

    @property
    def is_seed(self) -> bool:
        return self.src is None

    def to_json(self) -> dict:
        out: dict = {"state": self.state, "cause": self.cause,
                     "where": self.where}
        if self.src is not None:
            out["via"] = self.via
            out["src"] = self.src
        return out


#: legacy ``Node.reason`` strings, derived from provenance so the
#: one-line reason and the blame graph can never disagree.
_SEED_REASONS = {
    "bad-cast": "bad cast",
    "wild-pragma": "ccuredWild pragma",
    "seq-cast-incompat": "SEQ cast incompatible sizes",
    "arith-rtti-conflict": "arith+rtti conflict",
    "downcast": "downcast source",
    "pointer-arith": "pointer arithmetic",
    "pointer-diff": "pointer difference",
    "int-to-ptr": "int-to-ptr cast",
    "solver": "solver assignment",
}

_WILD_SPREAD_REASONS = {
    "compat": "flows to/from WILD",
    "cast": "flows to/from WILD",
    "same": "representation tied to WILD",
    "group": "representation tied to WILD",
    "base": "inside WILD referent",
}


def describe(p: Provenance) -> str:
    """The one-line human reason for a provenance record."""
    if p.cause in _SEED_REASONS:
        return _SEED_REASONS[p.cause]
    if p.cause == "wild-spread":
        return _WILD_SPREAD_REASONS.get(p.via, "flows to/from WILD")
    if p.cause == "rtti-spread":
        return "RTTI flows backwards here"
    if p.cause == "seq-spread":
        return "bounds must originate here"
    if p.cause == "int-taint":
        return "tainted by int-to-ptr value"
    return p.cause
