"""The phase profiler: fold span records into a per-phase breakdown.

EffectiveSan's diagnostic tables (PAPERS.md) attribute cost to
individual check kinds and pipeline phases; this module is the phase
half.  It folds a span capture — from one workload, a whole sweep, or
a merged multi-worker trace — into a deterministic table of *where the
pipeline spends itself*: parse, preprocess, constraints, solve,
dataflow, check elimination, execution per engine, cache load/store.

Two serialization rules keep the output CI-gateable, mirroring
:mod:`repro.obs.metrics`:

* **counts are byte-stable** — ``repro profile`` collects on a *fresh*
  pipeline (no in-process tree caches, no disk cure cache), so the
  number of spans per phase is a pure function of the program and the
  options: two runs serialize byte-identically;
* **timing is excluded from gated output** — wall seconds are real
  seconds and only appear with ``include_timing``/``--timing``, like
  the metrics report's ``phases`` field.

Cache traffic (``cache:load``/``cache:store`` phases) appears when the
folded spans came from a cache-enabled collection (``repro sweep
--trace`` + :func:`fold_spans`); it is inherently cache-state-
dependent, so those phases ride in the timing section only.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.obs.tracer import TRACER, SpanRecord

#: schema tag stamped into every serialized profile.
PROFILE_SCHEMA = "repro.obs.profile/1"

#: phases whose span counts depend on cache state rather than the
#: program; excluded from the deterministic (gated) serialization.
NONDET_PHASES = ("cache",)


def phase_key(record: SpanRecord) -> str:
    """The fold key of one span.  Span names are the phase; attrs that
    change what the phase *means* are appended — ``exec`` splits per
    engine and per raw/cured mode, ``cache`` per operation — so the
    breakdown answers "exec per engine, cache load vs store" directly.
    """
    a = record.attrs
    if record.name == "exec":
        return (f"exec:{a.get('engine', '?')}"
                f":{a.get('mode', '?')}")
    if record.name == "cache":
        return f"cache:{a.get('op', '?')}"
    if record.name == "optimize":
        return f"optimize:{a.get('level', '?')}"
    return record.name


@dataclass
class PhaseStat:
    """Aggregate of one phase: how many spans, how much wall."""

    count: int = 0
    seconds: float = 0.0

    def add(self, r: SpanRecord) -> None:
        self.count += 1
        self.seconds += r.duration

    def to_json(self, include_timing: bool = False) -> dict:
        out: dict[str, Any] = {"count": self.count}
        if include_timing:
            out["seconds"] = round(self.seconds, 6)
        return out


def fold_spans(records: Iterable[SpanRecord]
               ) -> dict[str, PhaseStat]:
    """Fold span records into ``{phase key: PhaseStat}``."""
    out: dict[str, PhaseStat] = {}
    for r in records:
        key = phase_key(r)
        stat = out.get(key)
        if stat is None:
            stat = out[key] = PhaseStat()
        stat.add(r)
    return out


def _is_nondet(phase: str) -> bool:
    return phase.split(":", 1)[0] in NONDET_PHASES


@dataclass
class ProfileReport:
    """Per-phase/per-workload breakdown of one profile collection."""

    engine: str
    optimize: str
    scale: Optional[int]
    #: workload name -> phase key -> stat
    workloads: dict[str, dict[str, PhaseStat]] = \
        field(default_factory=dict)

    def totals(self) -> dict[str, PhaseStat]:
        agg: dict[str, PhaseStat] = {}
        for phases in self.workloads.values():
            for key, stat in phases.items():
                t = agg.get(key)
                if t is None:
                    t = agg[key] = PhaseStat()
                t.count += stat.count
                t.seconds += stat.seconds
        return agg

    def to_json(self, include_timing: bool = False) -> dict:
        def fold(phases: dict[str, PhaseStat]) -> dict:
            return {k: s.to_json(include_timing)
                    for k, s in sorted(phases.items())
                    if include_timing or not _is_nondet(k)}
        return {"schema": PROFILE_SCHEMA,
                "engine": self.engine,
                "optimize": self.optimize,
                "scale": self.scale,
                "totals": fold(self.totals()),
                "workloads": {name: fold(phases)
                              for name, phases
                              in sorted(self.workloads.items())}}


# -- collection --------------------------------------------------------------


def profile_workload(w, *, engine: str = "closures",
                     optimize: Optional[str] = None,
                     scale: Optional[int] = None
                     ) -> list[SpanRecord]:
    """Capture the span stream of one workload's *fresh* pipeline.

    Deliberately bypasses the harness's pristine-tree caches and the
    on-disk cure cache: a cached collection would profile the cache,
    not the pipeline, and its span counts would depend on cache state.
    Here every phase runs for real — preprocess, parse, cure
    (constraints/solve/split/instrument/optimize/dataflow), then one
    raw and one cured execution on the selected engine — so the counts
    are a pure function of the program and the options."""
    from repro.core import CureOptions, cure as _cure
    from repro.interp import run_cured, run_raw

    opts = CureOptions(trust_bad_casts=w.trust_bad_casts,
                       optimize=optimize)
    args = list(w.args) or None
    with TRACER.capture() as records:
        with TRACER.span("workload", name=w.name):
            prog = w.parse(scale)
            cured = _cure(copy.deepcopy(prog), options=opts,
                          name=w.name)
            run_raw(prog, args=args, stdin=w.stdin, engine=engine)
            run_cured(cured, args=args, stdin=w.stdin, engine=engine)
    return records


def profile_workload_wire(w, *, engine: str = "closures",
                          optimize: Optional[str] = None,
                          scale: Optional[int] = None) -> list[dict]:
    """:func:`profile_workload` in wire form (the sweep-pool shard
    body: picklable, rebased by the parent)."""
    from repro.obs.tracer import spans_to_wire
    return spans_to_wire(profile_workload(
        w, engine=engine, optimize=optimize, scale=scale))


def collect_profile(workloads: Sequence, *,
                    engine: str = "closures",
                    optimize: Optional[str] = None,
                    scale: Optional[int] = None,
                    jobs=None,
                    trace: Optional[list] = None,
                    progress=None) -> ProfileReport:
    """Profile ``workloads`` (ordered by name) into a
    :class:`ProfileReport`; sharded across ``jobs`` workers with
    byte-identical deterministic output either way.  A ``trace`` list
    additionally accumulates the merged span records (rebased onto
    this process's timeline) for Chrome-trace export."""
    from repro.obs.tracer import spans_from_wire
    from repro.sweep.runner import resolve_jobs, run_sharded

    report = ProfileReport(
        engine=engine,
        optimize=optimize if optimize is not None else "flow",
        scale=scale)
    ordered = sorted(workloads, key=lambda w: w.name)
    n = resolve_jobs(jobs)
    anchor = TRACER.epoch_wall()
    if n <= 1 or len(ordered) <= 1:
        for w in ordered:
            records = profile_workload(w, engine=engine,
                                       optimize=optimize, scale=scale)
            report.workloads[w.name] = fold_spans(records)
            if trace is not None:
                trace.extend(records)
            if progress is not None:
                progress(f"profiled {w.name}")
    else:
        tasks = [("profile", dict(name=w.name, engine=engine,
                                  optimize=optimize, scale=scale))
                 for w in ordered]
        note = (None if progress is None else
                lambda kind, kw, r: progress(
                    f"profiled {kw['name']}"))
        wires = run_sharded(tasks, n, note)
        for w, wire in zip(ordered, wires):
            records = spans_from_wire(wire, anchor)
            report.workloads[w.name] = fold_spans(records)
            if trace is not None:
                trace.extend(records)
    return report


# -- rendering ---------------------------------------------------------------


def render_profile(report: ProfileReport,
                   include_timing: bool = False) -> str:
    """A fixed-width per-phase table (totals), then one block per
    workload.  Without timing the table is deterministic (counts
    only); with timing it adds wall seconds and cache phases."""
    def rows(phases: dict[str, PhaseStat], indent: str) -> list[str]:
        out = []
        for key in sorted(phases):
            if not include_timing and _is_nondet(key):
                continue
            s = phases[key]
            line = f"{indent}{key:<24} {s.count:>7}"
            if include_timing:
                line += f" {s.seconds:>9.3f}s"
            out.append(line)
        return out

    head = f"{'phase':<24} {'count':>7}"
    if include_timing:
        head += f" {'wall':>10}"
    lines = [f"engine: {report.engine}   "
             f"optimize: {report.optimize}   "
             f"workloads: {len(report.workloads)}",
             head, "-" * len(head)]
    lines += rows(report.totals(), "")
    for name in sorted(report.workloads):
        lines.append("")
        lines.append(f"{name}:")
        lines += rows(report.workloads[name], "  ")
    return "\n".join(lines)
