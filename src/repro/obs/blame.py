"""Blame graphs: explain *why* inference chose each pointer kind.

This is the repo's stand-in for the paper's "CCured browser"
(Sections 2 and 5): given a cured program whose analysis ran with
``CureOptions.provenance`` on, the :class:`BlameGraph` walks each
non-SAFE node's provenance records (:mod:`repro.obs.provenance`) back
to the seed that started the chain — the one bad cast, pragma,
downcast or arithmetic site the programmer should look at — and ranks
root causes by how many nodes they explain ("the cast in parse
explains 64% of WILD nodes").  ``repro explain`` renders these; the
``diff_explain`` comparison drives the annotate→re-infer→compare
porting loop, and failure forensics attach a chain to every
:class:`~repro.runtime.checks.CheckFailure`.

The module is duck-typed over qualifier nodes (it never imports
:mod:`repro.core`) so the ``repro.obs`` package stays importable from
inside the core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.cil.visitor import each_pointer, type_occurrences
from repro.obs.provenance import Provenance

#: schema tag of ``repro explain --json`` payloads
EXPLAIN_SCHEMA = "repro.obs.blame/1"

#: the provenance state a final kind maps to (SAFE has none)
_STATE_OF_KIND = {"WILD": "WILD", "RTTI": "RTTI",
                  "SEQ": "SEQ", "FSEQ": "SEQ"}


@dataclass
class BlameChain:
    """The provenance walk from one node back to its root cause.

    ``steps[0]`` is the record on the node itself; each following step
    is the record on the previous step's ``src`` node.  The chain is
    *complete* when it ends at a seed record.
    """

    node_id: int
    kind: str
    where: str
    steps: list[Provenance]

    @property
    def complete(self) -> bool:
        return bool(self.steps) and self.steps[-1].is_seed

    @property
    def root(self) -> Optional[Provenance]:
        return self.steps[-1] if self.complete else None

    def root_key(self) -> str:
        r = self.root
        if r is None:
            return "(unexplained)"
        return f"{r.cause}: {r.where}"

    def to_json(self) -> dict:
        return {"node": self.node_id, "kind": self.kind,
                "where": self.where, "complete": self.complete,
                "steps": [s.to_json() for s in self.steps]}


def render_chain(chain: dict, indent: str = "  ") -> list[str]:
    """Human-readable lines for a chain's JSON form."""
    lines = [f"{chain['where']} — {chain['kind']}"]
    for s in chain["steps"]:
        if "src" in s:
            lines.append(f"{indent}via {s['via']} edge from node "
                         f"{s['src']} ({s['cause']})")
        else:
            lines.append(f"{indent}ROOT {s['cause']}: {s['where']}")
    if not chain.get("complete", True):
        lines.append(f"{indent}(chain incomplete — provenance was "
                     "not recorded)")
    return lines


class BlameGraph:
    """All qualifier nodes of one analysis, indexed by id."""

    def __init__(self, nodes: dict[int, object]) -> None:
        self.nodes = nodes

    # -- construction -------------------------------------------------

    @classmethod
    def from_analysis(cls, an) -> "BlameGraph":
        """Collect every node of ``an``: the recorded ones, the ones
        attached to any syntactic type occurrence (this reaches nodes
        created lazily inside WILD base types), and the closure over
        constraint edges and provenance sources."""
        nodes: dict[int, object] = {}
        stack = list(an.nodes)
        for t, _where in type_occurrences(an.prog):
            each_pointer(t, lambda p: (
                stack.append(p.node) if p.node is not None else None))
        while stack:
            n = stack.pop()
            if n is None or n.id in nodes:
                continue
            nodes[n.id] = n
            stack.extend(n.compat)
            stack.extend(n.same)
            stack.extend(n.rtti_back)
            stack.extend(n.seq_back)
            stack.extend(n.flow_out)
        return cls(nodes)

    @classmethod
    def from_cured(cls, cured) -> "BlameGraph":
        return cls.from_analysis(cured.analysis)

    # -- chains -------------------------------------------------------

    def chain_of(self, node_id: int) -> Optional[BlameChain]:
        """The blame chain of a node, or None if it is SAFE/unknown."""
        n = self.nodes.get(node_id)
        if n is None or not n.solved:
            return None
        state = _STATE_OF_KIND.get(n.kind.name)
        if state is None:
            return None
        steps: list[Provenance] = []
        seen: set[int] = set()
        cur = n
        while cur is not None and cur.id not in seen:
            seen.add(cur.id)
            p = cur.prov_for(state)
            if p is None:
                break
            steps.append(p)
            if p.src is None:
                break
            cur = self.nodes.get(p.src)
        return BlameChain(n.id, n.kind.name, n.where, steps)

    def chains(self,
               nodes: Optional[Iterable] = None) -> list[BlameChain]:
        """Chains of all (or the given) non-SAFE nodes, by node id."""
        pool = self.nodes.values() if nodes is None else nodes
        out = []
        for n in sorted(pool, key=lambda n: n.id):
            ch = self.chain_of(n.id)
            if ch is not None:
                out.append(ch)
        return out

    # -- root-cause ranking -------------------------------------------

    def root_cause_counts(self) -> dict[str, dict[str, int]]:
        """Per state, how many nodes each root cause explains."""
        out: dict[str, dict[str, int]] = {}
        for ch in self.chains():
            state = _STATE_OF_KIND[ch.kind]
            per = out.setdefault(state, {})
            key = ch.root_key()
            per[key] = per.get(key, 0) + 1
        return out

    def ranking(self, state: str = "WILD") -> list[dict]:
        """Root causes of one state, most-explaining first."""
        per = self.root_cause_counts().get(state, {})
        total = sum(per.values()) or 1
        rows = [{"cause": k, "nodes": v, "share": v / total}
                for k, v in per.items()]
        rows.sort(key=lambda r: (-r["nodes"], r["cause"]))
        return rows


# -- explain reports ------------------------------------------------------


def explain_report(cured, name: str, *,
                   function: Optional[str] = None,
                   var: Optional[str] = None) -> dict:
    """The ``repro explain`` payload for one cured program."""
    graph = BlameGraph.from_cured(cured)
    an = cured.analysis
    counts: dict[str, int] = {}
    for ch in graph.chains():
        counts[ch.kind] = counts.get(ch.kind, 0) + 1
    decls = [n for n in an.decl_nodes
             if _match(n.where, function, var)]
    chains = [ch.to_json() for ch in graph.chains(decls)]
    return {
        "schema": EXPLAIN_SCHEMA,
        "name": name,
        "nodes": len(graph.nodes),
        "pointer_decls": len(an.decl_nodes),
        "kind_pct": cured.kind_percentages(),
        "non_safe_nodes": counts,
        "root_causes": {state: graph.ranking(state)
                        for state in sorted(
                            graph.root_cause_counts())},
        "chains": chains,
    }


def _match(where: str, function: Optional[str],
           var: Optional[str]) -> bool:
    """Filter declaration where-strings (``local f:x``, ``var x``,
    ``field c.f`` ...) by function and/or variable name."""
    if function is not None:
        if (f" {function}:" not in where
                and where != f"fun {function}"):
            return False
    if var is not None:
        name = where.split(" ", 1)[-1] if " " in where else where
        short = name.split(":")[-1].split(".")[-1]
        if var not in (name, short):
            return False
    return True


def render_explain(report: dict, top: int = 10,
                   max_chains: int = 40) -> str:
    """Human-readable form of an explain report."""
    pct = report["kind_pct"]
    kinds = " ".join(f"{k}={v:.1%}" for k, v in pct.items())
    lines = [f"{report['name']}: {report['pointer_decls']} pointer "
             f"declaration(s), {report['nodes']} node(s)",
             f"  kinds: {kinds}"]
    for state, rows in report["root_causes"].items():
        total = sum(r["nodes"] for r in rows)
        lines.append(f"{state} root causes ({total} node(s)):")
        for r in rows[:top]:
            lines.append(f"  {r['share'] * 100:5.1f}%  "
                         f"{r['nodes']:4d}  {r['cause']}")
        if len(rows) > top:
            lines.append(f"  ... {len(rows) - top} more")
    chains = report["chains"]
    if chains:
        lines.append(f"blame chains ({len(chains)} non-SAFE "
                     "declaration(s)):")
        for ch in chains[:max_chains]:
            for ln in render_chain(ch):
                lines.append("  " + ln)
        if len(chains) > max_chains:
            lines.append(f"  ... {len(chains) - max_chains} more "
                         "(use --function/--var to narrow)")
    else:
        lines.append("no non-SAFE declarations match")
    return "\n".join(lines)


# -- explain diff ---------------------------------------------------------


def diff_explain(baseline: dict, current: dict) -> dict:
    """Compare two explain reports: did the annotation shrink WILD?

    The verdict is ``regressed`` when WILD nodes grew or a new WILD
    root cause appeared, ``improved`` when WILD nodes shrank, else
    ``unchanged`` — the paper's fix-one-cast-watch-WILD-drop loop.
    """
    rows = []
    for state in sorted(set(baseline.get("root_causes", {}))
                        | set(current.get("root_causes", {}))):
        b = {r["cause"]: r["nodes"]
             for r in baseline.get("root_causes", {}).get(state, [])}
        c = {r["cause"]: r["nodes"]
             for r in current.get("root_causes", {}).get(state, [])}
        for cause in sorted(set(b) | set(c)):
            bn, cn = b.get(cause, 0), c.get(cause, 0)
            if bn != cn:
                rows.append({"state": state, "cause": cause,
                             "baseline": bn, "current": cn,
                             "delta": cn - bn})
    bw = baseline.get("non_safe_nodes", {}).get("WILD", 0)
    cw = current.get("non_safe_nodes", {}).get("WILD", 0)
    new_roots = [r for r in rows
                 if r["state"] == "WILD" and r["baseline"] == 0]
    if cw > bw or new_roots:
        verdict = "regressed"
    elif cw < bw:
        verdict = "improved"
    else:
        verdict = "unchanged"
    return {"schema": EXPLAIN_SCHEMA,
            "baseline": baseline.get("name", "?"),
            "current": current.get("name", "?"),
            "wild_nodes": {"baseline": bw, "current": cw},
            "causes": rows, "verdict": verdict}


def render_explain_diff(diff: dict) -> str:
    w = diff["wild_nodes"]
    lines = [f"explain diff: {diff['baseline']} -> "
             f"{diff['current']}",
             f"  WILD nodes: {w['baseline']} -> {w['current']}"]
    for r in diff["causes"]:
        sign = "+" if r["delta"] > 0 else ""
        lines.append(f"  [{r['state']}] {sign}{r['delta']:d}  "
                     f"{r['cause']} ({r['baseline']} -> "
                     f"{r['current']})")
    lines.append(f"verdict: {diff['verdict'].upper()}")
    return "\n".join(lines)
