"""Metrics regression diffing — what the CI gate runs.

Compares two serialized :class:`~repro.obs.metrics.MetricsReport`
payloads (a committed baseline and a fresh collection) and classifies
every difference:

* ``regress`` — a change past its threshold: more checks executed,
  fewer checks statically elided, more cured cycles, a workload that
  disappeared, or (when both reports carry timings) a phase that got
  slower than the generous wall-time allowance;
* ``improve`` — the same metrics moving the right way;
* ``note`` — neutral facts a reviewer should see: new workloads, new
  check sites in a function, configuration mismatches.

Thresholds are percentages of the baseline value (absolute for
``elided_drop``), so the gate scales from the 27-workload suite down
to a single workload.  The deterministic metrics use a default
threshold of 0: the cost model is exact, so *any* unexplained growth
in executed checks or cycles is a real regression, and intentional
changes update the committed baseline in the same PR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.metrics import SCHEMA


@dataclass
class Thresholds:
    """Allowed growth before a difference counts as a regression."""

    #: % increase allowed in checks executed per workload
    checks_pct: float = 0.0
    #: % increase allowed in cured cycles per workload
    cycles_pct: float = 0.0
    #: absolute drop allowed in statically elided checks per workload
    elided_drop: int = 0
    #: % increase allowed in per-phase wall time (timing reports only)
    phase_pct: float = 50.0


@dataclass
class Finding:
    """One classified difference between baseline and current."""

    severity: str        # regress | improve | note
    workload: str        # "" for report-level findings
    metric: str
    baseline: Optional[float]
    current: Optional[float]
    detail: str = ""

    def render(self) -> str:
        tag = {"regress": "REGRESS", "improve": "improve",
               "note": "note"}[self.severity]
        where = self.workload or "<report>"
        val = ""
        if self.baseline is not None or self.current is not None:
            val = f"  {self.baseline} -> {self.current}"
        out = f"{tag:<8} {where:<18} {self.metric:<18}{val}"
        if self.detail:
            out += f"  ({self.detail})"
        return out


@dataclass
class DiffResult:
    findings: list[Finding] = field(default_factory=list)

    @property
    def regressions(self) -> list[Finding]:
        return [f for f in self.findings if f.severity == "regress"]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _pct_over(baseline: float, current: float) -> float:
    """Percent growth of ``current`` over ``baseline`` (0 baseline:
    any growth is infinite)."""
    if baseline == 0:
        return float("inf") if current > 0 else 0.0
    return (current - baseline) / baseline * 100.0


def _site_kinds(wm: dict) -> dict[tuple[str, str], int]:
    """Surviving-site counts per (function, kind) — site *ids*
    renumber when unrelated code moves, so sites are compared by
    shape, not by id."""
    out: dict[tuple[str, str], int] = {}
    for s in wm.get("sites", ()):
        key = (s["function"], s["kind"])
        out[key] = out.get(key, 0) + 1
    return out


def _diff_workload(res: DiffResult, base: dict, cur: dict,
                   th: Thresholds) -> None:
    name = base["name"]

    def gate(metric: str, b: float, c: float, pct: float) -> None:
        """Gate one counter: growth past ``pct`` percent regresses,
        any shrink is an improvement."""
        over = _pct_over(b, c)
        if c > b and over > pct:
            res.findings.append(Finding(
                "regress", name, metric, b, c,
                f"+{over:.1f}% > {pct:g}% allowed"))
        elif c < b:
            res.findings.append(Finding("improve", name, metric,
                                        b, c))

    gate("checks_executed", base["checks_executed"],
         cur["checks_executed"], th.checks_pct)
    gate("cured_cycles", base["cured_cycles"], cur["cured_cycles"],
         th.cycles_pct)
    gate("checks_surviving", base["checks_surviving"],
         cur["checks_surviving"], th.checks_pct)

    b_rm, c_rm = base["checks_removed"], cur["checks_removed"]
    if b_rm - c_rm > th.elided_drop:
        res.findings.append(Finding(
            "regress", name, "checks_removed", b_rm, c_rm,
            f"elision dropped by {b_rm - c_rm} > "
            f"{th.elided_drop} allowed"))
    elif c_rm > b_rm:
        res.findings.append(Finding("improve", name,
                                    "checks_removed", b_rm, c_rm))

    # New check sites are surfaced by shape; the count gates above
    # decide whether the growth is acceptable.
    b_sites, c_sites = _site_kinds(base), _site_kinds(cur)
    for key in sorted(set(c_sites) - set(b_sites)):
        fn, kind = key
        res.findings.append(Finding(
            "note", name, "new-check-site", None, c_sites[key],
            f"{kind} in {fn}()"))
    for key in sorted(set(b_sites) - set(c_sites)):
        fn, kind = key
        res.findings.append(Finding(
            "note", name, "gone-check-site", b_sites[key], None,
            f"{kind} in {fn}()"))

    # Blame root causes: compared only when both collections recorded
    # provenance.  The counts are exact static facts, so any growth in
    # the nodes a root cause explains regresses — a SAFE→WILD slip
    # fails CI naming the *cause*, not just the count.
    b_rc, c_rc = base.get("root_causes"), cur.get("root_causes")
    if b_rc is not None and c_rc is not None:
        for state in sorted(set(b_rc) | set(c_rc)):
            b_per = b_rc.get(state, {})
            c_per = c_rc.get(state, {})
            for cause in sorted(set(b_per) | set(c_per)):
                bn = b_per.get(cause, 0)
                cn = c_per.get(cause, 0)
                if cn > bn:
                    res.findings.append(Finding(
                        "regress", name, f"root-cause:{state}",
                        bn, cn, cause))
                elif cn < bn:
                    res.findings.append(Finding(
                        "improve", name, f"root-cause:{state}",
                        bn, cn, cause))

    # Temporal-checking stats: compared only when both collections
    # measured the lock-and-key run.  The counts and cycles are exact
    # (same deterministic cost model as the spatial columns), so the
    # same thresholds apply.
    b_t, c_t = base.get("temporal"), cur.get("temporal")
    if b_t is not None and c_t is not None:
        gate("temporal:alive_executed",
             b_t["checks_alive_executed"],
             c_t["checks_alive_executed"], th.checks_pct)
        gate("temporal:alive_surviving",
             b_t["checks_alive_surviving"],
             c_t["checks_alive_surviving"], th.checks_pct)
        gate("temporal:cured_cycles", b_t["cured_cycles"],
             c_t["cured_cycles"], th.cycles_pct)

    # Wall-time phases: compared only when both sides measured them,
    # with a deliberately generous threshold (CI machines are noisy).
    b_ph, c_ph = base.get("phases"), cur.get("phases")
    if b_ph and c_ph:
        for phase in sorted(set(b_ph) & set(c_ph)):
            over = _pct_over(b_ph[phase], c_ph[phase])
            if over > th.phase_pct:
                res.findings.append(Finding(
                    "regress", name, f"phase:{phase}",
                    round(b_ph[phase], 4), round(c_ph[phase], 4),
                    f"+{over:.0f}% > {th.phase_pct:g}% allowed"))


def diff_reports(baseline: dict, current: dict,
                 thresholds: Optional[Thresholds] = None) -> DiffResult:
    """Diff two serialized reports; see the module docstring for the
    classification rules."""
    th = thresholds if thresholds is not None else Thresholds()
    res = DiffResult()

    for payload, side in ((baseline, "baseline"),
                          (current, "current")):
        schema = payload.get("schema")
        if schema != SCHEMA:
            res.findings.append(Finding(
                "regress", "", "schema", None, None,
                f"{side} has schema {schema!r}, expected {SCHEMA!r}"))
    if res.regressions:
        return res

    for key in ("engine", "optimize"):
        if baseline.get(key) != current.get(key):
            res.findings.append(Finding(
                "note", "", key, None, None,
                f"baseline={baseline.get(key)!r} "
                f"current={current.get(key)!r}"))

    base_wl = {w["name"]: w for w in baseline.get("workloads", ())}
    cur_wl = {w["name"]: w for w in current.get("workloads", ())}

    for name in sorted(set(base_wl) - set(cur_wl)):
        res.findings.append(Finding(
            "regress", name, "missing-workload", None, None,
            "present in baseline, absent in current run"))
    for name in sorted(set(cur_wl) - set(base_wl)):
        res.findings.append(Finding(
            "note", name, "new-workload", None,
            cur_wl[name]["checks_executed"],
            "not in baseline — update the baseline to gate it"))
    for name in sorted(set(base_wl) & set(cur_wl)):
        _diff_workload(res, base_wl[name], cur_wl[name], th)
    return res


def render_diff(res: DiffResult, verbose: bool = False) -> str:
    """Human-readable summary: regressions always, the rest with
    ``verbose``."""
    shown = [f for f in res.findings
             if verbose or f.severity == "regress"]
    lines = [f.render() for f in shown]
    n_imp = sum(1 for f in res.findings if f.severity == "improve")
    n_note = sum(1 for f in res.findings if f.severity == "note")
    lines.append(
        f"{len(res.regressions)} regression(s), {n_imp} "
        f"improvement(s), {n_note} note(s)"
        + ("" if verbose or not (n_imp or n_note)
           else " — rerun with --verbose for details"))
    return "\n".join(lines)
