"""Per-workload pipeline metrics: where the time, the checks and the
pointer kinds go.

One :func:`collect_workload_metrics` call runs a workload raw and
cured on the selected engine and produces a :class:`WorkloadMetrics`
holding everything the paper's Figure-8-style evaluation reports,
plus the per-check-site accounting CCured itself never had:

* the static side — pointer-kind distribution, checks emitted by the
  instrumenter (by kind), checks removed by the selected elimination
  level, surviving check sites;
* the dynamic side — deterministic cycle counts for raw and cured
  runs, executed checks by kind, and a per-site hit histogram (site
  id, enclosing function, check kind, hit count) collected by both
  engines through ``site_hits``;
* optionally the wall-clock side — per-phase tracer times (parse,
  cure, solve, dataflow, exec), which are real seconds and therefore
  excluded from deterministic serializations by default.

Everything except the ``phases`` timings is a pure function of the
program and the options, so a :class:`MetricsReport` serializes
byte-identically across runs — the property the CI regression gate
(:mod:`repro.obs.diff`) is built on.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.cil import stmt as S
from repro.cil.program import GFun, Program

#: schema tag stamped into every serialized report, so the diff tool
#: can refuse mismatched formats instead of mis-reading them.
SCHEMA = "repro.obs.metrics/1"


@dataclass
class SiteStat:
    """One surviving check site and its run-time hit count."""

    site: int           # stable statement id assigned by the curer
    function: str       # enclosing function
    kind: str           # CheckKind value, e.g. "CHECK_SEQ_BOUNDS"
    hits: int           # times the check executed (0 = never reached)

    def to_json(self) -> dict:
        return {"site": self.site, "function": self.function,
                "kind": self.kind, "hits": self.hits}


@dataclass
class WorkloadMetrics:
    """The full static + dynamic accounting of one workload."""

    name: str
    category: str
    scale: Optional[int]
    lines: int
    engine: str
    optimize: str
    kind_pct: dict[str, float]
    checks_emitted: dict[str, int]      # by kind, pre-elimination
    checks_removed: int                 # statically elided
    checks_surviving: int               # sites left in the program
    raw_cycles: int
    cured_cycles: int
    raw_steps: int
    cured_steps: int
    checks_executed: int
    check_events: dict[str, int]        # executed, by kind
    sites: list[SiteStat] = field(default_factory=list)
    function_hits: dict[str, int] = field(default_factory=dict)
    #: wall seconds per phase; non-deterministic, empty unless the
    #: collection ran with timing enabled
    phases: dict[str, float] = field(default_factory=dict)
    #: per-state root-cause node counts from the blame graph
    #: (``{"WILD": {"bad-cast: ...": 3}, ...}``); None unless the
    #: collection ran with provenance enabled, and omitted from JSON
    #: then — the committed baseline stays byte-identical
    root_causes: Optional[dict[str, dict[str, int]]] = None
    #: temporal-check overhead: a second cure/run of the same workload
    #: with ``CureOptions.temporal`` on (lock-and-key liveness checks)
    #: — emitted/surviving/executed ``CHECK_ALIVE`` counts, the
    #: temporal run's cycles, and its %% overhead over the spatial-only
    #: cured run.  None unless the collection ran with ``temporal``
    #: enabled, and omitted from JSON then — the committed baseline
    #: stays byte-identical
    temporal: Optional[dict] = None

    @property
    def ccured_ratio(self) -> float:
        if not self.raw_cycles:
            return 0.0
        return self.cured_cycles / self.raw_cycles

    def to_json(self, include_timing: bool = False) -> dict:
        out = {
            "name": self.name,
            "category": self.category,
            "scale": self.scale,
            "lines": self.lines,
            "engine": self.engine,
            "optimize": self.optimize,
            "kind_pct": dict(self.kind_pct),
            "checks_emitted": dict(self.checks_emitted),
            "checks_removed": self.checks_removed,
            "checks_surviving": self.checks_surviving,
            "raw_cycles": self.raw_cycles,
            "cured_cycles": self.cured_cycles,
            "raw_steps": self.raw_steps,
            "cured_steps": self.cured_steps,
            "ccured_ratio": self.ccured_ratio,
            "checks_executed": self.checks_executed,
            "check_events": dict(self.check_events),
            "sites": [s.to_json() for s in self.sites],
            "function_hits": dict(self.function_hits),
        }
        if include_timing and self.phases:
            out["phases"] = dict(self.phases)
        if self.root_causes is not None:
            out["root_causes"] = {
                state: dict(per)
                for state, per in sorted(self.root_causes.items())}
        if self.temporal is not None:
            out["temporal"] = dict(self.temporal)
        return out


@dataclass
class MetricsReport:
    """A set of workload metrics collected under one configuration."""

    engine: str
    optimize: str
    scale: Optional[int]
    workloads: list[WorkloadMetrics] = field(default_factory=list)

    def totals(self) -> dict:
        keys = ("checks_executed", "checks_removed",
                "checks_surviving", "raw_cycles", "cured_cycles")
        out = {k: sum(getattr(w, k) for w in self.workloads)
               for k in keys}
        out["checks_emitted"] = sum(
            sum(w.checks_emitted.values()) for w in self.workloads)
        return out

    def to_json(self, include_timing: bool = False) -> dict:
        return {"schema": SCHEMA,
                "engine": self.engine,
                "optimize": self.optimize,
                "scale": self.scale,
                "totals": self.totals(),
                "workloads": [w.to_json(include_timing)
                              for w in self.workloads]}


# -- site table --------------------------------------------------------------


def _checks_of_block(b: S.Block) -> Iterable[S.Check]:
    for s in b.stmts:
        if isinstance(s, S.InstrStmt):
            for i in s.instrs:
                if isinstance(i, S.Check):
                    yield i
        elif isinstance(s, S.Block):
            yield from _checks_of_block(s)
        elif isinstance(s, S.If):
            yield from _checks_of_block(s.then)
            yield from _checks_of_block(s.els)
        elif isinstance(s, S.Loop):
            yield from _checks_of_block(s.body)


def site_table(prog: Program) -> dict[int, tuple[str, str]]:
    """``site id -> (function, check kind)`` for every surviving
    check of an instrumented program."""
    table: dict[int, tuple[str, str]] = {}
    for g in prog.globals:
        if not isinstance(g, GFun):
            continue
        for c in _checks_of_block(g.fundec.body):
            if c.site is not None:
                table[c.site] = (g.fundec.name, c.kind.value)
    return table


# -- collection --------------------------------------------------------------


def collect_workload_metrics(w, *, engine: str = "closures",
                             optimize: Optional[str] = None,
                             scale: Optional[int] = None,
                             timing: bool = False,
                             provenance: bool = False,
                             temporal: bool = False,
                             trace: Optional[list] = None
                             ) -> WorkloadMetrics:
    """Measure one workload raw + cured and assemble its metrics.

    Uses the bench harness's pristine parse/cure caches, so repeated
    collections (and collections sharing trees with benchmark tests)
    pay the pipeline once.  With ``timing=True`` the tracer captures
    per-phase wall seconds around the same calls; passing a ``trace``
    list additionally accumulates the raw span records (for Chrome
    trace export).  With ``provenance=True`` the cure records blame
    provenance and the metrics carry per-state root-cause counts.
    With ``temporal=True`` the workload is cured and run a second
    time with lock-and-key liveness checking on, and the metrics
    carry its CHECK_ALIVE counts and cycle overhead; the main columns
    stay spatial-only, comparable against the committed baseline.
    """
    from repro.bench.harness import (cached_source, count_lines,
                                     pristine_cure, pristine_parse)
    from repro.core.options import CureOptions
    from repro.interp import run_cured, run_raw
    from repro.obs.tracer import TRACER, phase_seconds_of

    opts = CureOptions(trust_bad_casts=w.trust_bad_casts,
                       optimize=optimize, provenance=provenance)
    args = list(w.args) or None

    def _run() -> tuple:
        prog = pristine_parse(w, scale)
        cured = pristine_cure(w, options=opts, scale=scale)
        raw_res = run_raw(prog, args=args, stdin=w.stdin,
                          engine=engine)
        hits: Counter[int] = Counter()
        cured_res = run_cured(cured, args=args, stdin=w.stdin,
                              engine=engine, site_hits=hits)
        return cured, raw_res, cured_res, hits

    phases: dict[str, float] = {}
    if timing or trace is not None:
        with TRACER.capture() as records:
            with TRACER.span("workload", name=w.name):
                cured, raw_res, cured_res, hits = _run()
        if timing:
            phases = phase_seconds_of(records)
        if trace is not None:
            trace.extend(records)
    else:
        cured, raw_res, cured_res, hits = _run()

    root_causes: Optional[dict[str, dict[str, int]]] = None
    if provenance:
        from repro.obs.blame import BlameGraph
        root_causes = BlameGraph.from_cured(cured).root_cause_counts()

    temporal_stats: Optional[dict] = None
    if temporal:
        t_opts = CureOptions(trust_bad_casts=w.trust_bad_casts,
                             optimize=optimize, temporal=True)
        t_cured = pristine_cure(w, options=t_opts, scale=scale)
        t_res = run_cured(t_cured, args=args, stdin=w.stdin,
                          engine=engine)
        t_table = site_table(t_cured.prog)
        alive = S.CheckKind.ALIVE.value
        base_cycles = cured_res.cycles
        overhead = (0.0 if not base_cycles else
                    (t_res.cycles - base_cycles) / base_cycles * 100)
        temporal_stats = {
            "checks_alive_emitted":
                t_cured.check_counts.get(S.CheckKind.ALIVE, 0),
            "checks_alive_surviving":
                sum(1 for _, kind in t_table.values()
                    if kind == alive),
            "checks_alive_executed":
                t_res.cost.check_events().get(alive, 0),
            "cured_cycles": t_res.cycles,
            "overhead_pct": round(overhead, 4),
        }

    table = site_table(cured.prog)
    sites = [SiteStat(site, fn, kind, hits.get(site, 0))
             for site, (fn, kind) in sorted(table.items())]
    function_hits: dict[str, int] = {}
    for s in sites:
        function_hits[s.function] = (function_hits.get(s.function, 0)
                                     + s.hits)

    return WorkloadMetrics(
        name=w.name,
        category=w.category,
        scale=scale if scale is not None else w.scale,
        lines=count_lines(cached_source(w)),
        engine=engine,
        optimize=cured.optimize_level,
        kind_pct=cured.kind_percentages(),
        checks_emitted={k.value: v
                        for k, v in sorted(cured.check_counts.items(),
                                           key=lambda kv: kv[0].value)},
        checks_removed=cured.checks_removed,
        checks_surviving=len(table),
        raw_cycles=raw_res.cycles,
        cured_cycles=cured_res.cycles,
        raw_steps=raw_res.steps,
        cured_steps=cured_res.steps,
        checks_executed=cured_res.checks_executed,
        check_events={k: v for k, v in
                      sorted(cured_res.cost.check_events().items())},
        sites=sites,
        function_hits=function_hits,
        phases=phases,
        root_causes=root_causes,
        temporal=temporal_stats,
    )


def collect_metrics(workloads: Sequence, *, engine: str = "closures",
                    optimize: Optional[str] = None,
                    scale: Optional[int] = None,
                    timing: bool = False,
                    provenance: bool = False,
                    temporal: bool = False,
                    trace: Optional[list] = None,
                    progress=None) -> MetricsReport:
    """Collect a :class:`MetricsReport` over ``workloads`` (ordered
    by name, so reports are position-independent)."""
    report = MetricsReport(
        engine=engine,
        optimize=optimize if optimize is not None else "flow",
        scale=scale)
    for w in sorted(workloads, key=lambda w: w.name):
        wm = collect_workload_metrics(w, engine=engine,
                                      optimize=optimize, scale=scale,
                                      timing=timing,
                                      provenance=provenance,
                                      temporal=temporal,
                                      trace=trace)
        report.workloads.append(wm)
        if progress is not None:
            progress(f"{wm.name:>18}  ratio {wm.ccured_ratio:5.2f}x  "
                     f"checks {wm.checks_executed}")
    return report


# -- rendering ---------------------------------------------------------------


def render_report(report: MetricsReport, top_sites: int = 5) -> str:
    """A fixed-width per-workload table plus, per workload, its
    hottest check sites — the Figure-8 reading of the data."""
    header = (f"{'workload':<18} {'lines':>6} {'sf/sq/w/rt':<14} "
              f"{'ratio':>6} {'emitted':>8} {'elided':>7} "
              f"{'survive':>8} {'executed':>9}")
    lines = [f"engine: {report.engine}   optimize: {report.optimize}",
             header, "-" * len(header)]
    for wm in report.workloads:
        p = wm.kind_pct
        sq = p.get("seq", 0.0) + p.get("fseq", 0.0)
        kinds = (f"{p.get('safe', 0.0) * 100:.0f}/{sq * 100:.0f}/"
                 f"{p.get('wild', 0.0) * 100:.0f}/"
                 f"{p.get('rtti', 0.0) * 100:.0f}")
        lines.append(
            f"{wm.name:<18} {wm.lines:>6} {kinds:<14} "
            f"{wm.ccured_ratio:>6.2f} "
            f"{sum(wm.checks_emitted.values()):>8} "
            f"{wm.checks_removed:>7} {wm.checks_surviving:>8} "
            f"{wm.checks_executed:>9}")
    t = report.totals()
    lines.append("-" * len(header))
    lines.append(f"{'TOTAL':<18} {'':>6} {'':<14} {'':>6} "
                 f"{t['checks_emitted']:>8} {t['checks_removed']:>7} "
                 f"{t['checks_surviving']:>8} "
                 f"{t['checks_executed']:>9}")
    if top_sites > 0:
        lines.append("")
        lines.append(f"hottest {top_sites} check sites per workload:")
        for wm in report.workloads:
            hot = sorted(wm.sites, key=lambda s: (-s.hits, s.site))
            hot = [s for s in hot if s.hits > 0][:top_sites]
            if not hot:
                continue
            lines.append(f"  {wm.name}:")
            for s in hot:
                lines.append(f"    site {s.site:>4}  "
                             f"{s.kind:<22} {s.function:<20} "
                             f"{s.hits:>9} hits")
    if any(wm.temporal for wm in report.workloads):
        lines.append("")
        thdr = (f"{'workload':<18} {'alive emit':>10} "
                f"{'survive':>8} {'executed':>9} "
                f"{'cycles':>12} {'overhead':>9}")
        lines.append("temporal checking (CureOptions.temporal):")
        lines.append(thdr)
        lines.append("-" * len(thdr))
        for wm in report.workloads:
            t = wm.temporal
            if not t:
                continue
            lines.append(
                f"{wm.name:<18} {t['checks_alive_emitted']:>10} "
                f"{t['checks_alive_surviving']:>8} "
                f"{t['checks_alive_executed']:>9} "
                f"{t['cured_cycles']:>12} "
                f"{t['overhead_pct']:>8.2f}%")
    if any(wm.phases for wm in report.workloads):
        lines.append("")
        lines.append("per-phase wall time (seconds, non-deterministic):")
        agg: dict[str, float] = {}
        for wm in report.workloads:
            for k, v in wm.phases.items():
                agg[k] = agg.get(k, 0.0) + v
        for k in sorted(agg):
            lines.append(f"  {k:<12} {agg[k]:8.3f}s")
    return "\n".join(lines)
