"""Multiprocess sharded sweeps over the workload matrix.

:mod:`.runner` is the mechanism — picklable per-workload task
functions and a :class:`~concurrent.futures.ProcessPoolExecutor` pool
whose results merge in submission order.  :mod:`.drivers` is the
policy — one ``sharded_*`` driver per CLI sweep (metrics, lint,
campaign, analyze, lint validation) plus the ``repro sweep`` matrix
driver, each byte-identical to its serial counterpart by
construction.  Shards share the content-addressed cure cache
(:mod:`repro.cache`), so the matrix pays each parse/cure once.
"""

from repro.sweep.drivers import (SweepArtifact, SweepSummary,
                                 count_sweep_shards, run_sweep,
                                 sharded_analyze, sharded_campaign,
                                 sharded_lint, sharded_lintval,
                                 sharded_metrics)
from repro.sweep.progress import ProgressLine
from repro.sweep.runner import (resolve_jobs, run_sharded, run_task,
                                run_task_traced)

__all__ = [
    "SweepArtifact", "SweepSummary", "count_sweep_shards",
    "run_sweep",
    "sharded_analyze", "sharded_campaign", "sharded_lint",
    "sharded_lintval", "sharded_metrics",
    "ProgressLine",
    "resolve_jobs", "run_sharded", "run_task", "run_task_traced",
]
