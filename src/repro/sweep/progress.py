"""A live ``--progress`` line for long sweeps.

One carriage-return-overwritten stderr line — ``[done/total shards]
elapsed`` — updated per completed shard.  Three rules keep it from
ever corrupting machine-read output:

* it writes to **stderr only**, never stdout, so piped JSON stays
  byte-clean (a unit test asserts this);
* it auto-disables when stderr is not a TTY (CI logs, redirects)
  unless explicitly forced on — no ``\\r`` garbage in log files;
* ``--quiet`` (or ``enabled=False``) silences it entirely.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO


class ProgressLine:
    """Counts completed shards onto one overwritten stderr line."""

    def __init__(self, total: int, *,
                 stream: Optional[TextIO] = None,
                 enabled: Optional[bool] = None) -> None:
        self.total = max(0, total)
        self.done = 0
        self.stream = stream if stream is not None else sys.stderr
        if enabled is None:
            isatty = getattr(self.stream, "isatty", None)
            enabled = bool(isatty and isatty())
        self.enabled = enabled
        self._t0 = time.perf_counter()
        self._drew = False

    def tick(self, _line: str = "") -> None:
        """One shard finished (the driver's per-shard callback; the
        message argument is accepted and ignored so this plugs
        directly into ``shard_progress``)."""
        self.done += 1
        self._draw()

    def _draw(self) -> None:
        if not self.enabled:
            return
        shown = min(self.done, self.total) if self.total \
            else self.done
        dt = time.perf_counter() - self._t0
        line = (f"\r[{shown}/{self.total} shards] "
                f"{dt:.1f}s elapsed")
        self.stream.write(f"{line:<40}")
        self.stream.flush()
        self._drew = True

    def close(self) -> None:
        """End the line (newline) so subsequent stderr output starts
        clean; no-op if nothing was ever drawn."""
        if self._drew:
            self.stream.write("\n")
            self.stream.flush()
            self._drew = False

    def __enter__(self) -> "ProgressLine":
        return self

    def __exit__(self, *exc: object) -> bool:
        self.close()
        return False
