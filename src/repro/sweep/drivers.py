"""Sharded drivers for every sweep the CLI runs, plus the
``repro sweep`` matrix driver.

Each ``sharded_*`` function is a drop-in replacement for its serial
counterpart: with ``jobs`` ≤ 1 it *calls* the serial code, and with
more jobs it distributes one task per workload across the pool and
merges the per-shard results in the serial path's iteration order —
so the serialized output is byte-identical either way (the property
the CI determinism step ``cmp``'s).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.sweep.runner import resolve_jobs, run_sharded

Progress = Optional[Callable[[str], None]]


def _fan_out(progress: Progress, fmt: Callable) -> Optional[Callable]:
    if progress is None:
        return None
    return lambda kind, kwargs, result: progress(fmt(kwargs, result))


# -- per-command drivers -----------------------------------------------------


def sharded_metrics(workloads: Sequence, *, engine: str = "closures",
                    optimize: Optional[str] = None,
                    scale: Optional[int] = None,
                    timing: bool = False, provenance: bool = False,
                    temporal: bool = False,
                    trace: Optional[list] = None,
                    jobs=None, progress: Progress = None):
    """A :class:`~repro.obs.metrics.MetricsReport` over ``workloads``,
    sharded one workload per task.  ``trace`` collects the merged span
    records — under ``jobs > 1`` each worker captures its own spans
    (:func:`repro.sweep.runner.run_task_traced`) and the parent merges
    them onto its timeline, so the trace covers every worker pid while
    the report bytes stay identical to the serial path's."""
    from repro.obs.metrics import MetricsReport, collect_metrics
    n = resolve_jobs(jobs)
    if n <= 1 or len(workloads) <= 1:
        return collect_metrics(
            workloads, engine=engine, optimize=optimize, scale=scale,
            timing=timing, provenance=provenance, temporal=temporal,
            trace=trace, progress=progress)
    ordered = sorted(workloads, key=lambda w: w.name)
    tasks = [("metrics", dict(name=w.name, engine=engine,
                              optimize=optimize, scale=scale,
                              timing=timing, provenance=provenance,
                              temporal=temporal))
             for w in ordered]
    results = run_sharded(tasks, n, _fan_out(
        progress, lambda kw, wm: (f"{wm.name:>18}  ratio "
                                  f"{wm.ccured_ratio:5.2f}x  "
                                  f"checks {wm.checks_executed}")),
        span_sink=trace)
    report = MetricsReport(
        engine=engine,
        optimize=optimize if optimize is not None else "flow",
        scale=scale)
    report.workloads = results
    return report


def sharded_lint(workloads: Sequence, *, optimize: str = "flow",
                 scale: Optional[int] = None, jobs=None,
                 progress: Progress = None,
                 span_sink: Optional[list] = None) -> list:
    """Per-workload :class:`LintReport`s in input order."""
    n = resolve_jobs(jobs)
    if n <= 1 or len(workloads) <= 1:
        from repro.analysis import lint_workload
        reports = []
        for w in workloads:
            if progress is not None:
                progress(f"linting {w.name}...")
            reports.append(lint_workload(w, optimize=optimize,
                                         scale=scale))
        return reports
    tasks = [("lint", dict(name=w.name, optimize=optimize,
                           scale=scale)) for w in workloads]
    return run_sharded(tasks, n, _fan_out(
        progress, lambda kw, r: f"linted {kw['name']}"),
        span_sink=span_sink)


def sharded_campaign(seed: int, campaign: str = "smoke", *,
                     workloads: Optional[Sequence[str]] = None,
                     classes: Optional[Sequence[str]] = None,
                     scale: Optional[int] = None,
                     optimize: Optional[str] = None,
                     jobs=None, progress: Progress = None,
                     span_sink: Optional[list] = None):
    """A :class:`CampaignReport`, sharded one workload per task (every
    mutation class of that workload runs in its shard).  Selection
    errors surface before any worker starts, like the serial path."""
    from repro.faults.campaign import CAMPAIGNS, run_campaign
    from repro.faults.mutators import MUTATORS
    from repro.workloads import all_workloads
    n = resolve_jobs(jobs)
    if n <= 1:
        return run_campaign(seed, campaign, workloads=workloads,
                            classes=classes, scale=scale,
                            optimize=optimize, progress=progress)
    if campaign not in CAMPAIGNS:
        raise KeyError(f"unknown campaign {campaign!r} "
                       f"(known: {', '.join(CAMPAIGNS)})")
    if workloads is not None:
        names: Sequence[str] = list(workloads)
    else:
        preset = CAMPAIGNS[campaign]
        names = (preset if preset is not None
                 else tuple(w.name for w in all_workloads()))
    mclasses = tuple(classes) if classes is not None \
        else tuple(MUTATORS)
    for m in mclasses:
        if m not in MUTATORS:
            raise KeyError(f"unknown mutation class {m!r}")
    from repro.faults.campaign import CampaignReport
    from repro.workloads import get
    for name in names:
        get(name)                      # KeyError before the pool spins
    tasks = [("campaign", dict(name=name, seed=seed,
                               campaign=campaign,
                               classes=list(mclasses), scale=scale,
                               optimize=optimize))
             for name in names]

    def _note(kind, kwargs, variants):
        if progress is None:
            return
        caught = sum(1 for v in variants if v.caught)
        progress(f"{kwargs['name']:>18} {caught}/{len(variants)} "
                 "caught")

    results = run_sharded(tasks, n, _note if progress else None,
                          span_sink=span_sink)
    report = CampaignReport(seed=seed, campaign=campaign, scale=scale,
                            classes=mclasses, optimize=optimize)
    for variants in results:
        report.variants.extend(variants)
    return report


def sharded_analyze(workloads: Sequence, *,
                    scale: Optional[int] = None, jobs=None,
                    progress: Progress = None,
                    span_sink: Optional[list] = None) -> list[dict]:
    """Per-workload ``repro analyze`` stats dicts in input order."""
    n = resolve_jobs(jobs)
    if n <= 1 or len(workloads) <= 1:
        from repro.analysis import analyze_workload
        out = []
        for w in workloads:
            out.append(analyze_workload(w, scale=scale))
            if progress is not None:
                progress(f"analyzed {w.name}")
        return out
    tasks = [("analyze", dict(name=w.name, scale=scale))
             for w in workloads]
    return run_sharded(tasks, n, _fan_out(
        progress, lambda kw, r: f"analyzed {kw['name']}"),
        span_sink=span_sink)


def sharded_lintval(seed: int = 1, *,
                    workloads: Optional[Sequence] = None,
                    classes: Optional[Sequence[str]] = None,
                    optimize: str = "flow",
                    scale: Optional[int] = None, jobs=None,
                    progress: Progress = None):
    """The lint-validation differential, sharded per workload."""
    from repro.faults.lintval import (aggregate_validation,
                                      run_lint_validation)
    from repro.faults.mutators import MUTATORS
    from repro.workloads import all_workloads
    n = resolve_jobs(jobs)
    if n <= 1:
        return run_lint_validation(
            seed, workloads=workloads, classes=classes,
            optimize=optimize, scale=scale, progress=progress)
    ws = list(workloads) if workloads is not None \
        else list(all_workloads())
    cs = list(classes) if classes is not None else list(MUTATORS)
    tasks = [("lintval", dict(name=w.name, classes=cs, seed=seed,
                              optimize=optimize, scale=scale))
             for w in ws]

    def _note(kind, kwargs, variants):
        if progress is None:
            return
        hits = sum(1 for v in variants if v.hit)
        progress(f"lintval {kwargs['name']}: {hits} hits")

    results = run_sharded(tasks, n, _note if progress else None)
    collected = [v for variants in results for v in variants]
    return aggregate_validation(seed, optimize, cs, collected)


# -- the full-matrix driver (`repro sweep`) ----------------------------------


@dataclass
class SweepArtifact:
    """One artifact of a matrix sweep (one output file)."""

    name: str                # e.g. "metrics-closures-flow"
    kind: str                # metrics | lint | campaign | analyze
    seconds: float
    ok: bool
    detail: str
    path: Optional[str] = None

    def to_json(self) -> dict:
        return {"name": self.name, "kind": self.kind,
                "seconds": round(self.seconds, 3), "ok": self.ok,
                "detail": self.detail, "path": self.path}


@dataclass
class SweepSummary:
    """Everything ``repro sweep`` ran, plus cache traffic."""

    jobs: int
    artifacts: list[SweepArtifact] = field(default_factory=list)
    cache: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return all(a.ok for a in self.artifacts)

    def to_json(self) -> dict:
        return {"jobs": self.jobs, "ok": self.ok,
                "artifacts": [a.to_json() for a in self.artifacts],
                "cache": self.cache}

    def render(self) -> str:
        lines = [f"sweep: {len(self.artifacts)} artifacts, "
                 f"jobs={self.jobs}, "
                 f"{'ok' if self.ok else 'FAILURES'}"]
        width = max((len(a.name) for a in self.artifacts),
                    default=4)
        for a in self.artifacts:
            mark = "ok " if a.ok else "FAIL"
            lines.append(f"  {a.name:<{width}}  {mark} "
                         f"{a.seconds:7.2f}s  {a.detail}")
        if self.cache is not None:
            c = self.cache
            lines.append(f"  cure cache: {c['hits']} hits, "
                         f"{c['misses']} misses, "
                         f"{c['stores']} stores this sweep")
        return "\n".join(lines)


def count_sweep_shards(*, targets: Sequence[str],
                       engines: Sequence[str],
                       levels: Sequence[Optional[str]],
                       campaign: str = "smoke") -> int:
    """How many shard tasks :func:`run_sweep` will dispatch for this
    selection — the denominator of a live progress line."""
    from repro.faults.campaign import CAMPAIGNS
    from repro.workloads import all_workloads
    n_ws = len(list(all_workloads()))
    preset = CAMPAIGNS.get(campaign)
    n_camp = len(preset) if preset is not None else n_ws
    total = 0
    for target in targets:
        if target == "metrics":
            total += len(engines) * len(levels) * n_ws
        elif target == "lint":
            total += len(levels) * n_ws
        elif target == "campaign":
            total += len(levels) * n_camp
        elif target == "analyze":
            total += n_ws
    return total


def run_sweep(*, targets: Sequence[str] = ("metrics", "lint",
                                           "campaign"),
              engines: Sequence[str] = ("closures",),
              levels: Sequence[Optional[str]] = ("flow",),
              jobs=None, out_dir: Optional[str] = None,
              seed: int = 1337, campaign: str = "smoke",
              scale: Optional[int] = None,
              progress: Progress = None,
              shard_progress: Progress = None,
              trace: Optional[list] = None) -> SweepSummary:
    """Run the workload × engine × optimize matrix for the selected
    targets, sharding every sweep across ``jobs`` workers, and write
    one deterministic JSON artifact per matrix cell.

    ``shard_progress`` fires once per completed shard (per workload
    cell) — the hook the CLI's ``--progress`` line hangs off.  With
    ``trace`` a list, the whole sweep runs under span capture: the
    parent contributes one ``dispatch`` span per artifact and every
    worker ships its pipeline spans back (real pid/tid lanes), so one
    Chrome trace shows dispatch, per-shard parse/cure/exec, and cache
    hit/miss events across the entire pool."""
    import json as _json

    from repro.analysis import reports_json
    from repro.cache import get_cache
    from repro.faults.report import report_to_json
    from repro.obs.serialize import stable_dumps
    from repro.obs.tracer import TRACER
    from repro.workloads import all_workloads

    n = resolve_jobs(jobs)
    ws = list(all_workloads())
    summary = SweepSummary(jobs=n)
    # Cache traffic is measured through the persistent (cross-
    # process) counters so shard traffic counts under jobs > 1.
    disk = get_cache()
    base = disk._read_counters()

    def emit(name: str, text: str) -> Optional[str]:
        if out_dir is None:
            return None
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, name + ".json")
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def note(line: str) -> None:
        if progress is not None:
            progress(line)

    def tick(line: str) -> None:
        if shard_progress is not None:
            shard_progress(line)

    shard_cb = None if shard_progress is None else tick

    def body() -> None:
        for target in targets:
            if target == "metrics":
                for engine in engines:
                    for level in levels:
                        name = f"metrics-{engine}-{level or 'flow'}"
                        t0 = time.perf_counter()
                        with TRACER.span("dispatch", artifact=name,
                                         jobs=n):
                            report = sharded_metrics(
                                ws, engine=engine, optimize=level,
                                scale=scale, jobs=n, trace=trace,
                                progress=shard_cb)
                        dt = time.perf_counter() - t0
                        path = emit(name,
                                    stable_dumps(report.to_json()))
                        summary.artifacts.append(SweepArtifact(
                            name=name, kind="metrics", seconds=dt,
                            ok=True,
                            detail=(f"{len(report.workloads)} "
                                    "workloads"),
                            path=path))
                        note(f"{name}: {dt:.2f}s")
            elif target == "lint":
                for level in levels:
                    name = f"lint-{level or 'flow'}"
                    t0 = time.perf_counter()
                    with TRACER.span("dispatch", artifact=name,
                                     jobs=n):
                        reports = sharded_lint(
                            ws, optimize=level or "flow",
                            scale=scale, jobs=n, span_sink=trace,
                            progress=shard_cb)
                    dt = time.perf_counter() - t0
                    findings = sum(len(r.diagnostics)
                                   for r in reports)
                    path = emit(name, reports_json(reports))
                    summary.artifacts.append(SweepArtifact(
                        name=name, kind="lint", seconds=dt, ok=True,
                        detail=f"{findings} findings", path=path))
                    note(f"{name}: {dt:.2f}s")
            elif target == "campaign":
                for level in levels:
                    name = f"faults-{campaign}-{level or 'flow'}"
                    t0 = time.perf_counter()
                    with TRACER.span("dispatch", artifact=name,
                                     jobs=n):
                        report = sharded_campaign(
                            seed, campaign, scale=scale,
                            optimize=level, jobs=n, span_sink=trace,
                            progress=shard_cb)
                    dt = time.perf_counter() - t0
                    path = emit(name, report_to_json(report))
                    summary.artifacts.append(SweepArtifact(
                        name=name, kind="campaign", seconds=dt,
                        ok=report.ok,
                        detail=(f"{report.caught}/{report.injected} "
                                "caught"),
                        path=path))
                    note(f"{name}: {dt:.2f}s")
            elif target == "analyze":
                name = "analyze"
                t0 = time.perf_counter()
                with TRACER.span("dispatch", artifact=name, jobs=n):
                    stats = sharded_analyze(ws, scale=scale, jobs=n,
                                            span_sink=trace,
                                            progress=shard_cb)
                dt = time.perf_counter() - t0
                text = _json.dumps(stats, indent=2,
                                   sort_keys=True) + "\n"
                path = emit(name, text)
                summary.artifacts.append(SweepArtifact(
                    name=name, kind="analyze", seconds=dt, ok=True,
                    detail=f"{len(stats)} workloads", path=path))
                note(f"{name}: {dt:.2f}s")
            else:
                raise KeyError(
                    f"unknown sweep target {target!r} (known:"
                    " metrics, lint, campaign, analyze)")

    if trace is None:
        body()
    else:
        # Parent-side spans (dispatch, serial-path pipeline work,
        # cache traffic) record into the capture; worker spans arrive
        # through the drivers' span sinks, rebased onto the same
        # tracer epoch — one merged timeline.
        with TRACER.capture() as parent_records:
            body()
        trace.extend(parent_records)

    after = disk._read_counters()
    summary.cache = {k: after.get(k, 0) - base.get(k, 0)
                     for k in ("hits", "misses", "stores")}
    return summary
