"""The multiprocess shard pool: picklable tasks, ordered results.

A sweep is a list of ``(kind, kwargs)`` tasks — one per workload cell
of the workload × engine × optimize matrix — dispatched to a
:class:`concurrent.futures.ProcessPoolExecutor`.  Everything about the
machinery is chosen for determinism:

* task functions are module-level (picklable under every start
  method) and take only plain data, so a shard re-runs identically in
  any process;
* results land in a list indexed by submission order, so the merge
  never sees completion order — a sharded sweep's serialized output is
  byte-identical to the serial path's;
* every shard shares the content-addressed cure cache
  (:mod:`repro.cache`), so N workers curing the same 27 workloads pay
  each parse/cure once across the whole pool.

``jobs <= 1`` bypasses the pool entirely and runs the same task
functions inline — the serial path and the sharded path are the same
code by construction.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Any, Callable, Optional, Sequence, Union

Task = tuple[str, dict]


def resolve_jobs(jobs: Union[int, str, None]) -> int:
    """Normalize a ``--jobs`` value: ``None`` → 1 (serial),
    ``"auto"``/0 → every core, numeric strings pass through."""
    if jobs is None:
        return 1
    if isinstance(jobs, str):
        s = jobs.strip().lower()
        if s in ("auto", ""):
            jobs = 0
        else:
            jobs = int(s)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return max(1, jobs)


# -- shard bodies ------------------------------------------------------------
#
# One function per sweep kind.  Each takes plain data (workload names,
# option scalars), resolves it inside the worker, and returns picklable
# results; the parent merges them in submission order.


def _task_metrics(name: str, engine: str, optimize: Optional[str],
                  scale: Optional[int], timing: bool,
                  provenance: bool, temporal: bool) -> Any:
    from repro.obs.metrics import collect_workload_metrics
    from repro.workloads import get
    return collect_workload_metrics(
        get(name), engine=engine, optimize=optimize, scale=scale,
        timing=timing, provenance=provenance, temporal=temporal)


def _task_lint(name: str, optimize: str,
               scale: Optional[int]) -> Any:
    from repro.analysis import lint_workload
    from repro.workloads import get
    return lint_workload(get(name), optimize=optimize, scale=scale)


def _task_campaign(name: str, seed: int, campaign: str,
                   classes: Optional[Sequence[str]],
                   scale: Optional[int],
                   optimize: Optional[str]) -> Any:
    from repro.faults.campaign import run_campaign
    report = run_campaign(seed, campaign, workloads=[name],
                          classes=classes, scale=scale,
                          optimize=optimize)
    return report.variants


def _task_analyze(name: str, scale: Optional[int]) -> Any:
    from repro.analysis import analyze_workload
    from repro.workloads import get
    return analyze_workload(get(name), scale=scale)


def _task_lintval(name: str, classes: Sequence[str], seed: int,
                  optimize: str, scale: Optional[int]) -> Any:
    from repro.faults.lintval import validate_workload
    from repro.workloads import get
    return validate_workload(get(name), classes, seed,
                             optimize=optimize, scale=scale)


def _task_profile(name: str, engine: str, optimize: Optional[str],
                  scale: Optional[int]) -> Any:
    from repro.obs.profile import profile_workload_wire
    from repro.workloads import get
    return profile_workload_wire(get(name), engine=engine,
                                 optimize=optimize, scale=scale)


_TASKS: dict[str, Callable[..., Any]] = {
    "metrics": _task_metrics,
    "lint": _task_lint,
    "campaign": _task_campaign,
    "analyze": _task_analyze,
    "lintval": _task_lintval,
    "profile": _task_profile,
}


def run_task(kind: str, kwargs: dict) -> Any:
    """Execute one shard (also the pool's remote entry point)."""
    return _TASKS[kind](**kwargs)


def run_task_traced(kind: str, kwargs: dict) -> tuple[Any, list]:
    """Execute one shard under span capture (the pool's remote entry
    point when the parent is collecting a cross-process trace).

    Every span the shard's pipeline emits — parse, cure, solve,
    dataflow, exec, cache load/store — is captured and shipped back in
    wire form (absolute wall-clock starts, real pid/tid), wrapped in
    one ``shard`` span so the worker's task boundary is visible on the
    merged timeline.  Tracing happens *around* the task function, so a
    traced shard returns byte-identical results to an untraced one."""
    from repro.obs.tracer import TRACER, spans_to_wire
    with TRACER.capture() as records:
        with TRACER.span("shard", kind=kind,
                         name=kwargs.get("name")):
            result = run_task(kind, kwargs)
    wire = spans_to_wire(records)
    name = kwargs.get("name")
    if name is not None:
        for w in wire:
            w["attrs"].setdefault("workload", name)
    return result, wire


def _mp_context():
    """Prefer ``fork`` (cheap workers that inherit warm in-process
    caches); fall back to ``spawn`` where fork is unavailable.  The
    start method can never affect results — shards return pure data —
    so ``REPRO_MP_START=spawn|fork|forkserver`` may force one (tests
    exercise the spawn path on platforms whose default is fork)."""
    methods = multiprocessing.get_all_start_methods()
    forced = os.environ.get("REPRO_MP_START", "").strip().lower()
    if forced in methods:
        return multiprocessing.get_context(forced)
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _ensure_child_path() -> None:
    """Make sure spawned workers can import ``repro`` even when the
    parent got it from a bare ``sys.path`` entry (pytest, editors)."""
    import repro
    src = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    parts = existing.split(os.pathsep) if existing else []
    if src not in parts:
        os.environ["PYTHONPATH"] = os.pathsep.join([src] + parts)


def run_sharded(tasks: Sequence[Task], jobs: Union[int, str, None],
                progress: Optional[Callable[[str, dict, Any], None]]
                = None,
                span_sink: Optional[list] = None) -> list:
    """Run every task, ``jobs`` at a time, returning results in task
    order (never completion order).  A shard that raises aborts the
    sweep with the original exception, matching the serial path's
    failure semantics; ``progress`` fires per completed shard.

    With ``span_sink`` a list, every shard runs under span capture
    (:func:`run_task_traced`) — serial and pooled alike — and the
    captured records land in the sink in *task order*, rebased onto
    this process's tracer epoch, so a merged Chrome trace covers every
    worker with real pid/tid lanes.  Tracing never changes results:
    the sink only adds observability on the side."""
    if not tasks:
        return []
    from repro.obs.tracer import TRACER, spans_from_wire
    n = min(resolve_jobs(jobs), len(tasks))
    anchor = TRACER.epoch_wall() if span_sink is not None else 0.0
    if n <= 1:
        out = []
        for kind, kwargs in tasks:
            if span_sink is not None:
                result, wire = run_task_traced(kind, kwargs)
                span_sink.extend(spans_from_wire(wire, anchor))
            else:
                result = run_task(kind, kwargs)
            if progress is not None:
                progress(kind, kwargs, result)
            out.append(result)
        return out
    _ensure_child_path()
    results: list = [None] * len(tasks)
    wires: list = [None] * len(tasks)
    entry = run_task if span_sink is None else run_task_traced
    with ProcessPoolExecutor(max_workers=n,
                             mp_context=_mp_context()) as pool:
        futures = {pool.submit(entry, kind, kwargs): i
                   for i, (kind, kwargs) in enumerate(tasks)}
        for fut in as_completed(futures):
            i = futures[fut]
            got = fut.result()
            if span_sink is not None:
                results[i], wires[i] = got
            else:
                results[i] = got
            if progress is not None:
                kind, kwargs = tasks[i]
                progress(kind, kwargs, results[i])
    if span_sink is not None:
        for wire in wires:
            if wire:
                span_sink.extend(spans_from_wire(wire, anchor))
    return results
