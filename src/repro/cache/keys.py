"""Content-addressed identities for cure-cache entries.

A cache entry's key is a SHA-256 over every input that can change the
cured tree:

* the **preprocessed** source text — so edits to the program, to any
  ``#include``'d header, or to the effective ``-D`` defines (e.g. a
  workload's ``SCALE``) each produce a new key;
* the lint-suppression set the preprocessor collected — suppression
  comments are stripped before preprocessing, so they must be hashed
  separately or a comment-only edit would silently reuse a stale
  lint-relevant tree;
* the canonicalized :class:`~repro.core.options.CureOptions` (for cure
  entries) — the same canonical tuple the bench harness keys its
  in-process memoization on, so equivalent spellings
  (``optimize_checks=False`` vs ``optimize="none"``) share an entry;
* the :data:`CACHE_SCHEMA` version plus a fingerprint of the
  reproduction's own source code — any edit to the pipeline
  invalidates every entry, so a cached tree can never disagree with
  the code that would have produced it.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import fields as _dc_fields
from typing import Iterable, Optional

from repro.core.options import CureOptions

#: bump when the on-disk payload layout changes incompatibly.
CACHE_SCHEMA = "repro.cache/1"


def options_key(options: Optional[CureOptions]) -> Optional[tuple]:
    """A hashable identity for a :class:`CureOptions` (sets become
    sorted tuples).  ``None`` stays ``None``: callers that treat the
    absence of options as "the workload's own defaults" keep that
    distinction.  The ``optimize``/``optimize_checks`` pair is folded
    into the single canonical level entry, so equivalent spellings
    share one identity and an optimization sweep can never reuse a
    program cured at another level."""
    if options is None:
        return None
    parts = []
    for fld in _dc_fields(options):
        if fld.name in ("optimize", "optimize_checks"):
            continue
        v = getattr(options, fld.name)
        if isinstance(v, (set, frozenset)):
            v = tuple(sorted(v))
        parts.append((fld.name, v))
    parts.append(("optimize", options.optimize_level))
    return tuple(parts)


def canonical_options(options: Optional[CureOptions], *,
                      trust_bad_casts: bool = False) -> tuple:
    """The canonical identity of the *effective* options: ``None`` is
    resolved to the defaults a workload cure would actually use, so
    ``pristine_cure(w)`` and ``pristine_cure(w, CureOptions(
    trust_bad_casts=w.trust_bad_casts))`` address the same entry."""
    if options is None:
        options = CureOptions(trust_bad_casts=trust_bad_casts)
    key = options_key(options)
    assert key is not None
    return key


_CODE_FP: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over the reproduction's own ``*.py`` sources (sorted
    relative paths + contents), computed once per process.  Folding it
    into every key makes the cache self-invalidating across pipeline
    changes — no schema bump to forget."""
    global _CODE_FP
    if _CODE_FP is None:
        import repro
        root = os.path.dirname(os.path.abspath(repro.__file__))
        h = hashlib.sha256()
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames.sort()
            dirnames[:] = [d for d in dirnames
                           if d != "__pycache__"]
            for fn in sorted(filenames):
                if not fn.endswith(".py"):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, fn), root)
                h.update(rel.encode("utf-8"))
                h.update(b"\0")
                with open(os.path.join(dirpath, fn), "rb") as f:
                    h.update(f.read())
                h.update(b"\0")
        _CODE_FP = h.hexdigest()
    return _CODE_FP


def _digest(parts: Iterable[bytes]) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part)
        h.update(b"\0")
    return h.hexdigest()


def _base_parts(pp_text: str, suppressions: Iterable[tuple],
                name: str, schema: Optional[str]) -> list[bytes]:
    sup = ";".join(f"{f}:{ln}" for f, ln in sorted(suppressions))
    return [
        (schema if schema is not None else CACHE_SCHEMA).encode(),
        code_fingerprint().encode(),
        name.encode("utf-8"),
        pp_text.encode("utf-8"),
        sup.encode("utf-8"),
    ]


def parse_key(pp_text: str, suppressions: Iterable[tuple],
              name: str, *, schema: Optional[str] = None) -> str:
    """The content address of a pristine parse."""
    return _digest([b"parse"] + _base_parts(pp_text, suppressions,
                                            name, schema))


def cure_key(pp_text: str, suppressions: Iterable[tuple],
             name: str, options: tuple, *,
             schema: Optional[str] = None) -> str:
    """The content address of a cured program: the parse identity
    plus the canonicalized options tuple."""
    return _digest([b"cure", repr(options).encode("utf-8")]
                   + _base_parts(pp_text, suppressions, name, schema))
