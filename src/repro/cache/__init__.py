"""Content-addressed persistent cure cache.

Curing a workload is the bottleneck of every repeated workflow in the
reproduction — metrics sweeps, fault campaigns, lint validation,
explain diffs all re-run the parse → constraints → solve → instrument
pipeline on programs that have not changed.  This package makes the
re-run free: a cured CIL tree (and the pristine parse it came from) is
stored on disk under a key derived from the *content* of the problem —
the preprocessed source text, the canonicalized
:class:`~repro.core.options.CureOptions`, and a cache-schema version —
so any edit to the program, the options, or the pipeline itself
invalidates exactly the entries it affects and nothing else.

:mod:`.keys` derives the content hashes; :mod:`.store` owns the
on-disk layout, the atomic writers, the corrupt-entry recovery and the
hit/miss counters behind ``repro cache stats``.
"""

from repro.cache.keys import (CACHE_SCHEMA, canonical_options,
                              code_fingerprint, cure_key, options_key,
                              parse_key)
from repro.cache.store import (CacheStats, CureCache, cache_enabled,
                               default_root, get_cache)

__all__ = [
    "CACHE_SCHEMA", "canonical_options", "code_fingerprint",
    "cure_key", "options_key", "parse_key",
    "CacheStats", "CureCache", "cache_enabled", "default_root",
    "get_cache",
]
