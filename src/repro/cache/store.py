"""The on-disk cure cache: atomic writers, corrupt-entry recovery,
and deterministic hit/miss accounting.

Layout (under :func:`default_root`, overridable with
``REPRO_CACHE_DIR``; ``REPRO_CACHE=off`` disables the store entirely)::

    objects/<k[:2]>/<key>.pkl   one pickled entry per content address
    counters.json               cumulative hit/miss/store/invalidated
    counters.lock               flock guard for counters.json

Entries are written to a temp file in the final directory and
``os.replace``'d into place, so concurrent writers — two sweep shards
curing the same workload at the same time — race benignly: both write
a complete, identical payload and the last rename wins.  A reader that
finds a truncated, unpicklable or version-mismatched entry deletes it,
counts an invalidation, and reports a miss so the caller falls back to
a fresh cure; a corrupt cache can cost time but never correctness.

Counters are cumulative across processes (guarded by ``flock`` where
available), which is what makes ``repro cache stats`` deterministic:
after ``repro cache clear``, a scripted sequence of operations always
reports the same hit/miss counts.  Every load and store is also
surfaced through the PR-4 tracer as a ``cache`` span carrying the
operation and its outcome, so ``repro metrics --trace`` shows cache
traffic on the timeline.
"""

from __future__ import annotations

import json
import os
import pickle
import tempfile
from dataclasses import dataclass
from typing import Any, Optional

from repro.obs.tracer import TRACER

#: version stamp inside every pickled payload; a mismatch means the
#: entry predates an incompatible layout change and must be dropped.
PAYLOAD_VERSION = 1

_COUNTER_KEYS = ("hits", "misses", "stores", "invalidated")


def default_root() -> str:
    """The cache directory: ``REPRO_CACHE_DIR`` or
    ``~/.cache/repro-cure``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache",
                        "repro-cure")


def cache_enabled() -> bool:
    """The store is on unless ``REPRO_CACHE`` says otherwise."""
    return os.environ.get("REPRO_CACHE", "").strip().lower() \
        not in ("off", "0", "no", "false")


@dataclass
class CacheStats:
    """Counters plus a point-in-time scan of the store."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidated: int = 0     # corrupt/stale entries dropped
    entries: int = 0
    bytes: int = 0
    root: str = ""
    enabled: bool = True

    @property
    def hit_rate_pct(self) -> Optional[float]:
        """Hits as a percentage of lookups (hits + misses), or None
        before any lookup happened — 0% means "all misses", which is
        a different fact than "never asked"."""
        lookups = self.hits + self.misses
        if lookups == 0:
            return None
        return round(100.0 * self.hits / lookups, 1)

    def to_json(self) -> dict:
        return {"hits": self.hits, "misses": self.misses,
                "stores": self.stores,
                "invalidated": self.invalidated,
                "hit_rate_pct": self.hit_rate_pct,
                "entries": self.entries, "bytes": self.bytes,
                "root": self.root, "enabled": self.enabled}


class CureCache:
    """A content-addressed pickle store for parses and cures."""

    def __init__(self, root: Optional[str] = None,
                 enabled: Optional[bool] = None) -> None:
        self.root = root if root is not None else default_root()
        self.enabled = (cache_enabled() if enabled is None
                        else enabled)
        #: this process's own traffic (the persistent counters
        #: aggregate every process that touched the store)
        self.session = CacheStats(root=self.root,
                                  enabled=self.enabled)

    # -- paths ---------------------------------------------------------------

    def _objects_dir(self) -> str:
        return os.path.join(self.root, "objects")

    def _path(self, key: str) -> str:
        return os.path.join(self._objects_dir(), key[:2],
                            key + ".pkl")

    # -- entries -------------------------------------------------------------

    def load(self, key: str) -> Optional[Any]:
        """The stored object for ``key``, or None on a miss.  Corrupt
        entries are deleted and reported as misses."""
        if not self.enabled:
            return None
        path = self._path(key)
        with TRACER.span("cache", op="load", key=key[:12]) as span:
            try:
                with open(path, "rb") as f:
                    payload = pickle.load(f)
                if (not isinstance(payload, dict)
                        or payload.get("version") != PAYLOAD_VERSION
                        or "value" not in payload):
                    raise ValueError("payload version mismatch")
            except FileNotFoundError:
                span.set(event="miss")
                self._bump(misses=1)
                return None
            except Exception:
                # Truncated write, stale pickle, version bump: drop
                # the entry and fall back to a fresh cure.
                try:
                    os.remove(path)
                except OSError:
                    pass
                span.set(event="invalidated")
                self._bump(invalidated=1, misses=1)
                return None
            span.set(event="hit")
            self._bump(hits=1)
            return payload["value"]

    def static_of(self, key: str) -> Optional[dict]:
        """The static-metrics side record of an entry, if present
        (stored beside the tree so quick inspection never has to
        materialize the full cure)."""
        if not self.enabled:
            return None
        try:
            with open(self._path(key), "rb") as f:
                payload = pickle.load(f)
            if payload.get("version") != PAYLOAD_VERSION:
                return None
            return payload.get("static")
        except Exception:
            return None

    def store(self, key: str, value: Any,
              static: Optional[dict] = None) -> bool:
        """Atomically persist ``value`` (plus an optional static
        metrics record) under ``key``."""
        if not self.enabled:
            return False
        path = self._path(key)
        with TRACER.span("cache", op="store", key=key[:12]):
            payload = {"version": PAYLOAD_VERSION, "value": value,
                       "static": static}
            try:
                blob = pickle.dumps(
                    payload, protocol=pickle.HIGHEST_PROTOCOL)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    dir=os.path.dirname(path), prefix=".tmp-")
                try:
                    with os.fdopen(fd, "wb") as f:
                        f.write(blob)
                    os.replace(tmp, path)
                except BaseException:
                    try:
                        os.remove(tmp)
                    except OSError:
                        pass
                    raise
            except Exception:
                # The cache is an accelerator: failing to persist
                # (disk full, unpicklable tree) must never fail the
                # pipeline that produced the value.
                return False
            self._bump(stores=1)
            return True

    # -- counters ------------------------------------------------------------

    def _bump(self, **deltas: int) -> None:
        for k, v in deltas.items():
            setattr(self.session, k, getattr(self.session, k) + v)
        self._bump_persistent(deltas)

    def _bump_persistent(self, deltas: dict) -> None:
        """Fold deltas into ``counters.json`` under an flock (where
        the platform has one).  Best effort: counter loss is
        acceptable, counter corruption is not."""
        try:
            os.makedirs(self.root, exist_ok=True)
            lock_path = os.path.join(self.root, "counters.lock")
            with open(lock_path, "a+") as lock:
                try:
                    import fcntl
                    fcntl.flock(lock, fcntl.LOCK_EX)
                except ImportError:      # non-POSIX: lockless
                    pass
                counters = self._read_counters()
                for k, v in deltas.items():
                    counters[k] = counters.get(k, 0) + v
                tmp = os.path.join(self.root, ".counters.tmp")
                with open(tmp, "w", encoding="utf-8") as f:
                    json.dump(counters, f, sort_keys=True)
                os.replace(tmp, os.path.join(self.root,
                                             "counters.json"))
        except Exception:
            pass

    def _read_counters(self) -> dict:
        try:
            with open(os.path.join(self.root, "counters.json"),
                      "r", encoding="utf-8") as f:
                data = json.load(f)
            if isinstance(data, dict):
                return {k: int(data.get(k, 0))
                        for k in _COUNTER_KEYS}
        except Exception:
            pass
        return {k: 0 for k in _COUNTER_KEYS}

    # -- maintenance ---------------------------------------------------------

    def stats(self) -> CacheStats:
        """Cumulative counters plus a scan of the store."""
        counters = self._read_counters()
        entries = 0
        size = 0
        objects = self._objects_dir()
        if os.path.isdir(objects):
            for dirpath, _dirnames, filenames in os.walk(objects):
                for fn in filenames:
                    if not fn.endswith(".pkl"):
                        continue
                    entries += 1
                    try:
                        size += os.path.getsize(
                            os.path.join(dirpath, fn))
                    except OSError:
                        pass
        return CacheStats(entries=entries, bytes=size,
                          root=self.root, enabled=self.enabled,
                          **counters)

    def clear(self) -> int:
        """Delete every entry and reset the counters; returns the
        number of entries removed."""
        removed = 0
        objects = self._objects_dir()
        if os.path.isdir(objects):
            for dirpath, _dirnames, filenames in os.walk(objects):
                for fn in filenames:
                    try:
                        os.remove(os.path.join(dirpath, fn))
                        if fn.endswith(".pkl"):
                            removed += 1
                    except OSError:
                        pass
        for name in ("counters.json", "counters.lock"):
            try:
                os.remove(os.path.join(self.root, name))
            except OSError:
                pass
        self.session = CacheStats(root=self.root,
                                  enabled=self.enabled)
        return removed


_CACHE: Optional[CureCache] = None


def get_cache() -> CureCache:
    """The process-wide cache, re-created whenever the governing
    environment (``REPRO_CACHE_DIR``/``REPRO_CACHE``) changes — so
    tests and subprocesses that point the cache elsewhere just work."""
    global _CACHE
    root = default_root()
    enabled = cache_enabled()
    if (_CACHE is None or _CACHE.root != root
            or _CACHE.enabled != enabled):
        _CACHE = CureCache(root, enabled)
    return _CACHE
