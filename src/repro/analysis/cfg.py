"""Control-flow graphs over the CIL statement tree.

The curing pipeline keeps function bodies as structured statement
trees (``If``/``Loop``/``Break``/``Continue``), which is the right
shape for instrumentation and printing but the wrong shape for
dataflow.  This module flattens a :class:`repro.cil.stmt.Fundec` body
into basic blocks of *instruction references* — the blocks alias the
very ``Instr`` objects stored in the tree, so a fact proven for a
block instruction can be mapped back to its tree position by identity
when the eliminator rewrites the body.

Edges preserve what the dataflow needs:

* branch edges carry the ``If`` condition plus a polarity, so the
  solver can refine facts per arm (``if (p)`` proves ``NonNull(p)``
  on the true edge);
* loop back-edges are marked, both for reporting and so a reader of
  ``repro analyze`` output can see where fixpoint iteration happened;
* ``continue_runs_trailing`` (the frontend's encoding of ``for``
  increments) is honoured: ``continue`` targets the block holding the
  trailing statements, not the loop header, exactly as both engines
  execute it.

Unreachable statements (code after ``return``/``break``) land in
predecessor-less blocks; the solver treats those as having *no* proven
facts, so nothing is ever eliminated on the strength of being dead.
"""

from __future__ import annotations

from typing import Optional

from repro.cil import expr as E
from repro.cil import stmt as S


class Edge:
    """A CFG edge, optionally carrying a branch condition."""

    __slots__ = ("src", "dst", "cond", "polarity", "back")

    def __init__(self, src: "BasicBlock", dst: "BasicBlock",
                 cond: Optional[E.Exp] = None,
                 polarity: Optional[bool] = None,
                 back: bool = False) -> None:
        self.src = src
        self.dst = dst
        self.cond = cond          # If condition on branch edges
        self.polarity = polarity  # True = then-edge, False = else-edge
        self.back = back          # loop back-edge

    def __repr__(self) -> str:
        c = ""
        if self.cond is not None:
            c = f" [{'' if self.polarity else '!'}{self.cond!r}]"
        b = " (back)" if self.back else ""
        return f"b{self.src.bid}->b{self.dst.bid}{c}{b}"


class BasicBlock:
    """A maximal straight-line run of instructions."""

    __slots__ = ("bid", "instrs", "succs", "preds")

    def __init__(self, bid: int) -> None:
        self.bid = bid
        self.instrs: list[S.Instr] = []
        self.succs: list[Edge] = []
        self.preds: list[Edge] = []

    def __repr__(self) -> str:
        return f"<block b{self.bid}: {len(self.instrs)} instrs>"


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, fundec: S.Fundec) -> None:
        self.fundec = fundec
        self.blocks: list[BasicBlock] = []
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self) -> BasicBlock:
        b = BasicBlock(len(self.blocks))
        self.blocks.append(b)
        return b

    def add_edge(self, src: BasicBlock, dst: BasicBlock,
                 cond: Optional[E.Exp] = None,
                 polarity: Optional[bool] = None,
                 back: bool = False) -> Edge:
        e = Edge(src, dst, cond, polarity, back)
        src.succs.append(e)
        dst.preds.append(e)
        return e

    @property
    def n_edges(self) -> int:
        return sum(len(b.succs) for b in self.blocks)

    @property
    def n_back_edges(self) -> int:
        return sum(1 for b in self.blocks for e in b.succs if e.back)

    def rpo(self) -> list[BasicBlock]:
        """Blocks in reverse postorder from the entry, followed by any
        unreachable blocks (in creation order)."""
        seen: set[int] = set()
        post: list[BasicBlock] = []

        def dfs(root: BasicBlock) -> None:
            stack: list[tuple[BasicBlock, int]] = [(root, 0)]
            seen.add(root.bid)
            while stack:
                b, i = stack.pop()
                if i < len(b.succs):
                    stack.append((b, i + 1))
                    nxt = b.succs[i].dst
                    if nxt.bid not in seen:
                        seen.add(nxt.bid)
                        stack.append((nxt, 0))
                else:
                    post.append(b)

        dfs(self.entry)
        order = list(reversed(post))
        order.extend(b for b in self.blocks if b.bid not in seen)
        return order


class _Builder:
    def __init__(self, fd: S.Fundec) -> None:
        self.cfg = CFG(fd)
        #: enclosing loops: (break target, continue target, header)
        self._loops: list[tuple[BasicBlock, BasicBlock,
                                BasicBlock]] = []

    def build(self) -> CFG:
        end = self._stmts(self.cfg.fundec.body.stmts, self.cfg.entry)
        if end is not None:  # implicit return at the end of the body
            self.cfg.add_edge(end, self.cfg.exit)
        return self.cfg

    def _stmts(self, stmts: list[S.Stmt],
               cur: Optional[BasicBlock]) -> Optional[BasicBlock]:
        for s in stmts:
            if cur is None:
                # Code after return/break/continue: park it in a
                # predecessor-less block so its checks are never
                # "proven" by the must-analysis.
                cur = self.cfg.new_block()
            cur = self._stmt(s, cur)
        return cur

    def _stmt(self, s: S.Stmt,
              cur: BasicBlock) -> Optional[BasicBlock]:
        if isinstance(s, S.InstrStmt):
            cur.instrs.extend(s.instrs)
            return cur
        if isinstance(s, S.Return):
            self.cfg.add_edge(cur, self.cfg.exit)
            return None
        if isinstance(s, S.Break):
            if not self._loops:  # defensive: treat as function exit
                self.cfg.add_edge(cur, self.cfg.exit)
            else:
                self.cfg.add_edge(cur, self._loops[-1][0])
            return None
        if isinstance(s, S.Continue):
            if not self._loops:
                self.cfg.add_edge(cur, self.cfg.exit)
            else:
                _, cont, header = self._loops[-1]
                self.cfg.add_edge(cur, cont, back=(cont is header))
            return None
        if isinstance(s, S.Block):
            return self._stmts(s.stmts, cur)
        if isinstance(s, S.If):
            return self._if(s, cur)
        if isinstance(s, S.Loop):
            return self._loop(s, cur)
        return cur  # unknown statement kinds: straight through

    def _if(self, s: S.If, cur: BasicBlock) -> Optional[BasicBlock]:
        then_b = self.cfg.new_block()
        else_b = self.cfg.new_block()
        self.cfg.add_edge(cur, then_b, cond=s.cond, polarity=True)
        self.cfg.add_edge(cur, else_b, cond=s.cond, polarity=False)
        t_end = self._stmts(s.then.stmts, then_b)
        e_end = self._stmts(s.els.stmts, else_b)
        if t_end is None and e_end is None:
            return None
        join = self.cfg.new_block()
        if t_end is not None:
            self.cfg.add_edge(t_end, join)
        if e_end is not None:
            self.cfg.add_edge(e_end, join)
        return join

    def _loop(self, s: S.Loop,
              cur: BasicBlock) -> Optional[BasicBlock]:
        header = self.cfg.new_block()
        self.cfg.add_edge(cur, header)
        after = self.cfg.new_block()
        stmts = s.body.stmts
        n = getattr(s, "continue_runs_trailing", 0) or 0
        n = min(n, len(stmts))
        tail_entry: Optional[BasicBlock] = None
        if n:
            # ``continue`` executes the trailing n statements (the
            # ``for`` increment) before re-testing the loop.
            tail_entry = self.cfg.new_block()
            cont: BasicBlock = tail_entry
        else:
            cont = header
        self._loops.append((after, cont, header))
        end = self._stmts(stmts[:len(stmts) - n], header)
        if tail_entry is not None:
            if end is not None:
                self.cfg.add_edge(end, tail_entry)
            end = self._stmts(stmts[len(stmts) - n:], tail_entry)
        self._loops.pop()
        if end is not None:
            self.cfg.add_edge(end, header, back=True)
        # a loop with no break never reaches the code after it
        return after if after.preds else None


def build_cfg(fd: S.Fundec) -> CFG:
    """Build the CFG of one function definition."""
    return _Builder(fd).build()
