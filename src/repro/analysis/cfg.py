"""Control-flow graphs over the CIL statement tree.

The curing pipeline keeps function bodies as structured statement
trees (``If``/``Loop``/``Break``/``Continue``), which is the right
shape for instrumentation and printing but the wrong shape for
dataflow.  This module flattens a :class:`repro.cil.stmt.Fundec` body
into basic blocks of *instruction references* — the blocks alias the
very ``Instr`` objects stored in the tree, so a fact proven for a
block instruction can be mapped back to its tree position by identity
when the eliminator rewrites the body.

Edges preserve what the dataflow needs:

* branch edges carry the ``If`` condition plus a polarity, so the
  solver can refine facts per arm (``if (p)`` proves ``NonNull(p)``
  on the true edge);
* loop back-edges are marked, both for reporting and so a reader of
  ``repro analyze`` output can see where fixpoint iteration happened;
* ``continue_runs_trailing`` (the frontend's encoding of ``for``
  increments) is honoured: ``continue`` targets the block holding the
  trailing statements, not the loop header, exactly as both engines
  execute it.

Unreachable statements (code after ``return``/``break``) land in
predecessor-less blocks; the solver treats those as having *no* proven
facts, so nothing is ever eliminated on the strength of being dead.
"""

from __future__ import annotations

from typing import Optional

from repro.cil import expr as E
from repro.cil import stmt as S


class Edge:
    """A CFG edge, optionally carrying branch conditions.

    ``conds`` is the list of ``(cond, polarity, loc)`` refinements the
    edge asserts.  Builder-produced edges carry at most one; forwarding
    an empty join block (see :func:`_forward_empty_joins`) composes the
    conditions of the two edges it replaces, which is what lets the
    must-analysis see through the frontend's short-circuit lowering.
    ``cond``/``polarity`` remain as views of the first entry.
    """

    __slots__ = ("src", "dst", "conds", "back")

    def __init__(self, src: "BasicBlock", dst: "BasicBlock",
                 cond: Optional[E.Exp] = None,
                 polarity: Optional[bool] = None,
                 back: bool = False,
                 conds: Optional[list] = None,
                 loc: Optional[tuple] = None) -> None:
        self.src = src
        self.dst = dst
        if conds is not None:
            self.conds: list[tuple] = list(conds)
        elif cond is not None:
            self.conds = [(cond, polarity, loc)]
        else:
            self.conds = []
        self.back = back          # loop back-edge

    @property
    def cond(self) -> Optional[E.Exp]:
        """First branch condition (None on plain edges)."""
        return self.conds[0][0] if self.conds else None

    @property
    def polarity(self) -> Optional[bool]:
        """Polarity of the first condition: True = then-edge."""
        return self.conds[0][1] if self.conds else None

    def __repr__(self) -> str:
        c = "".join(f" [{'' if pol else '!'}{cond!r}]"
                    for cond, pol, _ in self.conds)
        b = " (back)" if self.back else ""
        return f"b{self.src.bid}->b{self.dst.bid}{c}{b}"


class BasicBlock:
    """A maximal straight-line run of instructions."""

    __slots__ = ("bid", "instrs", "succs", "preds")

    def __init__(self, bid: int) -> None:
        self.bid = bid
        self.instrs: list[S.Instr] = []
        self.succs: list[Edge] = []
        self.preds: list[Edge] = []

    def __repr__(self) -> str:
        return f"<block b{self.bid}: {len(self.instrs)} instrs>"


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, fundec: S.Fundec) -> None:
        self.fundec = fundec
        self.blocks: list[BasicBlock] = []
        self.entry = self.new_block()
        self.exit = self.new_block()

    def new_block(self) -> BasicBlock:
        b = BasicBlock(len(self.blocks))
        self.blocks.append(b)
        return b

    def add_edge(self, src: BasicBlock, dst: BasicBlock,
                 cond: Optional[E.Exp] = None,
                 polarity: Optional[bool] = None,
                 back: bool = False,
                 conds: Optional[list] = None,
                 loc: Optional[tuple] = None) -> Edge:
        e = Edge(src, dst, cond, polarity, back, conds=conds, loc=loc)
        src.succs.append(e)
        dst.preds.append(e)
        return e

    @property
    def n_edges(self) -> int:
        return sum(len(b.succs) for b in self.blocks)

    @property
    def n_back_edges(self) -> int:
        return sum(1 for b in self.blocks for e in b.succs if e.back)

    def rpo(self) -> list[BasicBlock]:
        """Blocks in reverse postorder from the entry, followed by any
        unreachable blocks (in creation order)."""
        seen: set[int] = set()
        post: list[BasicBlock] = []

        def dfs(root: BasicBlock) -> None:
            stack: list[tuple[BasicBlock, int]] = [(root, 0)]
            seen.add(root.bid)
            while stack:
                b, i = stack.pop()
                if i < len(b.succs):
                    stack.append((b, i + 1))
                    nxt = b.succs[i].dst
                    if nxt.bid not in seen:
                        seen.add(nxt.bid)
                        stack.append((nxt, 0))
                else:
                    post.append(b)

        dfs(self.entry)
        order = list(reversed(post))
        order.extend(b for b in self.blocks if b.bid not in seen)
        return order


class _Builder:
    def __init__(self, fd: S.Fundec) -> None:
        self.cfg = CFG(fd)
        #: enclosing loops: (break target, continue target, header)
        self._loops: list[tuple[BasicBlock, BasicBlock,
                                BasicBlock]] = []

    def build(self) -> CFG:
        end = self._stmts(self.cfg.fundec.body.stmts, self.cfg.entry)
        if end is not None:  # implicit return at the end of the body
            self.cfg.add_edge(end, self.cfg.exit)
        return self.cfg

    def _stmts(self, stmts: list[S.Stmt],
               cur: Optional[BasicBlock]) -> Optional[BasicBlock]:
        for s in stmts:
            if cur is None:
                # Code after return/break/continue: park it in a
                # predecessor-less block so its checks are never
                # "proven" by the must-analysis.
                cur = self.cfg.new_block()
            cur = self._stmt(s, cur)
        return cur

    def _stmt(self, s: S.Stmt,
              cur: BasicBlock) -> Optional[BasicBlock]:
        if isinstance(s, S.InstrStmt):
            cur.instrs.extend(s.instrs)
            return cur
        if isinstance(s, S.Return):
            self.cfg.add_edge(cur, self.cfg.exit)
            return None
        if isinstance(s, S.Break):
            if not self._loops:  # defensive: treat as function exit
                self.cfg.add_edge(cur, self.cfg.exit)
            else:
                self.cfg.add_edge(cur, self._loops[-1][0])
            return None
        if isinstance(s, S.Continue):
            if not self._loops:
                self.cfg.add_edge(cur, self.cfg.exit)
            else:
                _, cont, header = self._loops[-1]
                self.cfg.add_edge(cur, cont, back=(cont is header))
            return None
        if isinstance(s, S.Block):
            return self._stmts(s.stmts, cur)
        if isinstance(s, S.If):
            return self._if(s, cur)
        if isinstance(s, S.Loop):
            return self._loop(s, cur)
        return cur  # unknown statement kinds: straight through

    def _if(self, s: S.If, cur: BasicBlock) -> Optional[BasicBlock]:
        then_b = self.cfg.new_block()
        else_b = self.cfg.new_block()
        loc = getattr(s, "loc", None)
        self.cfg.add_edge(cur, then_b, cond=s.cond, polarity=True,
                          loc=loc)
        self.cfg.add_edge(cur, else_b, cond=s.cond, polarity=False,
                          loc=loc)
        t_end = self._stmts(s.then.stmts, then_b)
        e_end = self._stmts(s.els.stmts, else_b)
        if t_end is None and e_end is None:
            return None
        join = self.cfg.new_block()
        if t_end is not None:
            self.cfg.add_edge(t_end, join)
        if e_end is not None:
            self.cfg.add_edge(e_end, join)
        return join

    def _loop(self, s: S.Loop,
              cur: BasicBlock) -> Optional[BasicBlock]:
        header = self.cfg.new_block()
        self.cfg.add_edge(cur, header)
        after = self.cfg.new_block()
        stmts = s.body.stmts
        n = getattr(s, "continue_runs_trailing", 0) or 0
        n = min(n, len(stmts))
        tail_entry: Optional[BasicBlock] = None
        if n:
            # ``continue`` executes the trailing n statements (the
            # ``for`` increment) before re-testing the loop.
            tail_entry = self.cfg.new_block()
            cont: BasicBlock = tail_entry
        else:
            cont = header
        self._loops.append((after, cont, header))
        end = self._stmts(stmts[:len(stmts) - n], header)
        if tail_entry is not None:
            if end is not None:
                self.cfg.add_edge(end, tail_entry)
            end = self._stmts(stmts[len(stmts) - n:], tail_entry)
        self._loops.pop()
        if end is not None:
            self.cfg.add_edge(end, header, back=True)
        # a loop with no break never reaches the code after it
        return after if after.preds else None


#: forwarding an empty join multiplies edges (preds × succs); bail out
#: beyond this product so pathological chains stay linear.
_MAX_FORWARD_FANOUT = 8


def _forward_empty_joins(cfg: CFG) -> None:
    """Bypass instruction-less join blocks whose successors branch.

    The frontend lowers ``a || b`` / ``a && b`` through a compiler
    temp: a diamond assigns ``__cil_scN`` per arm, the arms meet in an
    empty join, and the *next* ``If`` branches on the temp.  A meet at
    the join intersects away everything the arms knew, so branch
    refinement on the temp learns nothing.  Re-routing each pred edge
    directly to each successor — composing the two edges' condition
    lists — lets the solver refine each arm's out-set separately and
    prune arm/branch combinations that are contradictory (the arm that
    set ``__cil_scN = 1`` cannot reach the ``__cil_scN == 0`` edge).
    The meet still happens, at the successor, over exactly the same
    set of execution paths, so the transformation is must-sound; it is
    purely a precision (path-sensitivity) device.
    """
    changed = True
    while changed:
        changed = False
        for b in cfg.blocks:
            if b is cfg.entry or b is cfg.exit or b.instrs:
                continue
            if len(b.preds) < 2 or not b.succs:
                continue
            if not any(e.conds for e in b.succs):
                continue  # nothing downstream to refine
            if any(e.back or e.src is b for e in b.preds) \
                    or any(e.back or e.dst is b for e in b.succs):
                continue  # keep loop structure intact
            if len(b.preds) * len(b.succs) > _MAX_FORWARD_FANOUT:
                continue
            preds, succs = list(b.preds), list(b.succs)
            for pe in preds:
                pe.src.succs.remove(pe)
            for se in succs:
                se.dst.preds.remove(se)
            b.preds.clear()
            b.succs.clear()
            for pe in preds:
                for se in succs:
                    cfg.add_edge(pe.src, se.dst,
                                 conds=pe.conds + se.conds)
            changed = True


def build_cfg(fd: S.Fundec) -> CFG:
    """Build the CFG of one function definition."""
    cfg = _Builder(fd).build()
    _forward_empty_joins(cfg)
    return cfg
