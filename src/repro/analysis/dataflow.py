"""Forward *must* dataflow over proven pointer facts.

The lattice element at each program point is a set of facts known to
hold on **every** path reaching that point (so the meet at a join is
set intersection).  Facts are plain tuples:

``("done", sig)``
    A check with signature ``sig`` (see
    :func:`repro.core.optimize._check_signature`) has already been
    performed — with its *full* semantics, including the runtime's
    liveness/poison screening — and its operands have not been
    written since.  This is the strongest fact: an identical later
    check is removable outright.

``("nonnull", vid)``
    The register pointer variable ``vid`` is non-null.  Produced by
    branch refinement (``if (p)`` / ``p != 0`` edges), by address
    provenance (``p = &x``), and by a passed dereference check on
    ``p``.  A non-null value may still be dangling or poisoned, so
    this fact alone never removes a ``CHECK_NULL`` — it must be
    paired with ``("alive", vid)``.

``("alive", vid)``
    ``vid`` holds the address of storage that is mapped and live for
    the remainder of the function unless the fact is killed: the
    address of an in-scope local or global (``p = &x`` /
    ``p = startof(arr)``), or a value that just passed a dereference
    check (which performs the liveness screening).  ``nonnull`` +
    ``alive`` together prove a ``CHECK_NULL`` passes.

``("inb", vid, n)``
    ``vid`` points at the start of an object with ``n`` addressable
    bytes and carries matching bounds metadata — ``p = startof(arr)``
    with a statically sized array.  Any SEQ/FSEQ bounds check of
    ``size <= n`` on ``vid`` passes.

``("rtti", vid, t)``
    ``vid`` passed an RTTI downcast check against destination type
    ``t``.  Re-checking the same value against ``t`` is redundant:
    the value's dynamic type does not change, and effective-type
    brands only ever refine to subtypes (a would-be conflicting
    refinement raises before this point is reached).

``("tempok", vid)``
    ``vid`` passed a temporal ``CHECK_ALIVE`` (lock-and-key) check.
    Only ``free``/frame-pop can invalidate a lock, and both happen
    inside calls — which clear every fact — so a later ``CHECK_ALIVE``
    on the unwritten ``vid`` must pass too.  Note the *spatial*
    ``("alive", vid)`` fact does **not** imply this one: the spatial
    liveness screen lets freed heap homes through (the conservative-GC
    accident), so only a passed temporal check may elide a temporal
    check.

``("eqz", vid)`` / ``("nez", vid)``
    The register variable ``vid`` is definitely zero / definitely
    non-zero: constant assignments (``v = 0`` / ``v = 1``) and branch
    refinement produce them for scalars and pointers alike.  They are
    the contradiction detectors behind infeasible-edge pruning (a
    ``v == 0`` edge out of a state proving ``nez(v)`` is never taken,
    so its contribution is dropped from the meet), which is what makes
    the short-circuit diamonds the frontend lowers ``&&``/``||`` into
    transparent.  For a pointer, ``eqz`` is the *definitely-null* fact
    ``repro lint`` reports dereferences of.

Kill sets are conservative and reuse the straight-line pass's alias
reasoning (:func:`repro.core.optimize._vars_of_exp`):

* a write to a scalar register variable kills the facts depending on
  that variable;
* a write to a global or address-taken variable, or through memory,
  additionally kills every fact whose value can be read through
  memory (the ``reads_mem`` bit of the dependency table);
* a ``Call`` kills everything — callees may write any memory, free
  heap homes, and pop stack frames, all of which can invalidate the
  liveness component of ``done``/``alive`` facts.

``CHECK_WILD_READ_TAG`` is special-cased as memory-reading even when
its arguments are register-only: the tag word it inspects lives in
memory and any store can flip it.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set, Tuple

from repro.cil import expr as E
from repro.cil import stmt as S
from repro.cil import types as T
from repro.analysis.cfg import CFG, BasicBlock
from repro.core.optimize import _check_signature, _vars_of_exp

Fact = Tuple
FactSet = Set[Fact]

#: check kinds whose *semantics* read mutable memory even when their
#: argument expressions are register-only (the WILD tag word can be
#: rewritten by any store).
MEM_SEMANTIC_KINDS = frozenset({S.CheckKind.WILD_READ_TAG})

#: dereference checks that, once passed, prove their pointer variable
#: non-null *and* alive (they all run the liveness screening).
_DEREF_CHECKS = frozenset({S.CheckKind.NULL, S.CheckKind.SEQ_BOUNDS,
                           S.CheckKind.FSEQ_BOUNDS,
                           S.CheckKind.WILD_BOUNDS})


def strip_casts(e: E.Exp) -> E.Exp:
    while isinstance(e, E.CastE):
        e = e.e
    return e


def ptr_var(e: E.Exp) -> Optional[E.Varinfo]:
    """The register variable a (possibly cast) pointer expression
    reads, if it is exactly a whole-variable read."""
    e = strip_casts(e)
    if isinstance(e, E.LvalExp) and isinstance(e.lval.host, E.Var) \
            and isinstance(e.lval.offset, E.NoOffset):
        return e.lval.host.var
    return None


def _static_offsets(off: E.Offset) -> bool:
    """Offset chains whose address is statically inside the host
    object: fields only, no (possibly wild) array indexing."""
    while not isinstance(off, E.NoOffset):
        if not isinstance(off, E.Field):
            return False
        off = off.rest
    return True


def _array_bytes(lv: E.Lval) -> Optional[int]:
    try:
        t = T.unroll(lv.type())
    except TypeError:
        return None
    if not isinstance(t, T.TArray):
        return None
    try:
        return t.size()
    except T.IncompleteTypeError:
        return None


class FactDomain:
    """The fact universe of one function: tracks, per fact, the
    variable ids it depends on and whether its value can be read
    through memory (the kill-set index)."""

    def __init__(self) -> None:
        self.deps: Dict[Fact, Tuple[frozenset, bool]] = {}

    # -- gen ---------------------------------------------------------------

    def add(self, facts: FactSet, fact: Fact,
            vids: Iterable[int], reads_mem: bool) -> None:
        if fact not in self.deps:
            self.deps[fact] = (frozenset(vids), reads_mem)
        facts.add(fact)

    def add_var_fact(self, facts: FactSet, fact: Fact,
                     var: E.Varinfo) -> None:
        # A global/address-taken variable can be rewritten through
        # memory, so facts about it die with every memory write.
        self.add(facts, fact, (var.vid,),
                 var.is_global or var.address_taken)

    # -- kill --------------------------------------------------------------

    def kill_var(self, facts: FactSet, vid: int) -> None:
        dead = [f for f in facts if vid in self.deps[f][0]]
        facts.difference_update(dead)

    def kill_memory(self, facts: FactSet) -> None:
        dead = [f for f in facts if self.deps[f][1]]
        facts.difference_update(dead)


def gen_check_facts(dom: FactDomain, facts: FactSet,
                    c: S.Check) -> None:
    """Facts established by ``c`` having *passed* (a failed check
    terminates the program, so every later point may assume it
    passed)."""
    deps: set[int] = set()
    reads_mem = False
    for a in c.args:
        if _vars_of_exp(a, deps):
            reads_mem = True
    if c.kind in MEM_SEMANTIC_KINDS:
        reads_mem = True
    dom.add(facts, ("done", _check_signature(c)), deps, reads_mem)
    if c.kind in _DEREF_CHECKS:
        v = ptr_var(c.args[0])
        if v is not None:
            dom.add_var_fact(facts, ("nonnull", v.vid), v)
            dom.add_var_fact(facts, ("nez", v.vid), v)
            dom.add_var_fact(facts, ("alive", v.vid), v)
    if c.kind is S.CheckKind.ALIVE:
        v = ptr_var(c.args[0])
        if v is not None:
            # a passed temporal check screens the lock *and* the
            # spatial home state (for non-null values)
            dom.add_var_fact(facts, ("tempok", v.vid), v)
            dom.add_var_fact(facts, ("alive", v.vid), v)
    if c.kind is S.CheckKind.RTTI_CAST and c.rtti is not None:
        v = ptr_var(c.args[0])
        if v is not None:
            dom.add_var_fact(facts, ("rtti", v.vid, repr(c.rtti)), v)


def transfer_instr(dom: FactDomain, facts: FactSet,
                   i: S.Instr) -> None:
    """Apply one instruction's kills and gens to ``facts`` in place."""
    if isinstance(i, S.Check):
        gen_check_facts(dom, facts, i)
        return
    if isinstance(i, S.Set):
        host = i.lval.host
        whole_var = (isinstance(host, E.Var)
                     and isinstance(i.lval.offset, E.NoOffset))
        if whole_var:
            var = host.var
            dom.kill_var(facts, var.vid)
            if var.is_global or var.address_taken:
                dom.kill_memory(facts)
        else:
            if isinstance(host, E.Var):
                dom.kill_var(facts, host.var.vid)
            dom.kill_memory(facts)
        if whole_var:
            _gen_set_facts(dom, facts, host.var, i.exp)
        return
    # Calls can write any memory, free homes and pop frames.
    facts.clear()


def _gen_set_facts(dom: FactDomain, facts: FactSet, var: E.Varinfo,
                   exp: E.Exp) -> None:
    """Address provenance: ``p = &x`` / ``p = startof(arr)`` yields a
    non-null pointer into in-scope storage (never poison), so the
    NULL check on ``p`` is statically proven; ``startof`` of a sized
    array additionally proves its bounds.  Constant assignments yield
    the zero/non-zero flags."""
    src = strip_casts(exp)
    if isinstance(src, E.Const) and isinstance(src.value, int):
        if src.value == 0:
            dom.add_var_fact(facts, ("eqz", var.vid), var)
        else:
            dom.add_var_fact(facts, ("nez", var.vid), var)
        return
    if not isinstance(src, (E.AddrOf, E.StartOf)):
        return
    lv = src.lval
    if not isinstance(lv.host, E.Var) or not _static_offsets(lv.offset):
        return
    dom.add_var_fact(facts, ("nonnull", var.vid), var)
    dom.add_var_fact(facts, ("alive", var.vid), var)
    dom.add_var_fact(facts, ("nez", var.vid), var)
    if isinstance(src, E.StartOf):
        n = _array_bytes(lv)
        if n:
            dom.add_var_fact(facts, ("inb", var.vid, n), var)


def branch_facts(dom: FactDomain, facts: FactSet, cond: E.Exp,
                 polarity: bool) -> None:
    """Facts proven by taking the ``polarity`` edge of ``cond``:
    ``if (p)`` / ``if (p != 0)`` true edges and ``if (!p)`` /
    ``if (p == 0)`` false edges prove ``NonNull(p)`` (plus ``nez``);
    the opposite edges prove ``eqz`` — definitely-null for pointers."""
    e = strip_casts(cond)
    if isinstance(e, E.UnOp) and e.op is E.UnopKind.LNOT:
        branch_facts(dom, facts, e.e, not polarity)
        return
    if isinstance(e, E.BinOp) and e.op in (E.BinopKind.EQ,
                                           E.BinopKind.NE):
        tgt = None
        if E.is_zero(e.e2):
            tgt = e.e1
        elif E.is_zero(e.e1):
            tgt = e.e2
        if tgt is not None:
            if polarity == (e.op is E.BinopKind.NE):
                _gen_nonzero(dom, facts, tgt)
            else:
                _gen_zero(dom, facts, tgt)
        return
    if polarity:
        _gen_nonzero(dom, facts, e)
    else:
        _gen_zero(dom, facts, e)


def _gen_nonzero(dom: FactDomain, facts: FactSet, e: E.Exp) -> None:
    var = ptr_var(e)
    if var is None:
        return
    dom.add_var_fact(facts, ("nez", var.vid), var)
    if T.is_pointer(var.type):
        dom.add_var_fact(facts, ("nonnull", var.vid), var)


def _gen_zero(dom: FactDomain, facts: FactSet, e: E.Exp) -> None:
    var = ptr_var(e)
    if var is None:
        return
    dom.add_var_fact(facts, ("eqz", var.vid), var)


def infeasible(facts: FactSet) -> bool:
    """A program point whose facts are contradictory cannot be reached
    along the path(s) that produced them: ``eqz`` meets ``nez`` (or a
    proven-non-null pointer).  Used to prune edge contributions from
    the meet and to suppress diagnostics in unreachable arms."""
    for f in facts:
        if f[0] == "eqz" and (("nez", f[1]) in facts
                              or ("nonnull", f[1]) in facts):
            return True
    return False


def edge_contrib(dom: FactDomain, src_out: FactSet,
                 e) -> Optional[FactSet]:
    """The fact-set an edge delivers to its destination: the source's
    out-set refined by every branch condition on the edge — or ``None``
    when the refinements contradict the out-set, i.e. the edge is
    provably never taken from that state (infeasible path)."""
    contrib = set(src_out)
    for cond, pol, _loc in e.conds:
        branch_facts(dom, contrib, cond, pol)
    if infeasible(contrib):
        return None
    return contrib


def solve(cfg: CFG, *,
          transfer=transfer_instr,
          entry_facts: Optional[FactSet] = None,
          dom: Optional[FactDomain] = None,
          ) -> Tuple[FactDomain, Dict[int, FactSet]]:
    """Iterate the transfer functions to a fixpoint; returns the fact
    domain and the in-set of every block (keyed by block id).

    The analysis is optimistic-iterative: unvisited predecessors are
    treated as top (the meet identity) until their out-sets are
    computed, after which in-sets only shrink — the standard must-
    dataflow schedule, which converges because the fact universe is
    finite and all transfer functions are monotone.  Infeasible edge
    contributions (see :func:`edge_contrib`) are excluded from the
    meet; feasibility of a shrinking contribution is monotone (a
    contradiction, once broken, stays broken), so convergence is
    unaffected.

    ``transfer`` and ``entry_facts`` let clients reuse the engine with
    a different instruction semantics and non-empty entry state —
    ``repro lint`` solves the same CFGs with violation facts added.
    """
    if dom is None:
        dom = FactDomain()
    order = cfg.rpo()
    ins: Dict[int, Optional[FactSet]] = {b.bid: None
                                         for b in cfg.blocks}
    outs: Dict[int, Optional[FactSet]] = dict(ins)

    def block_in(b: BasicBlock) -> Optional[FactSet]:
        if b is cfg.entry or not b.preds:
            return set(entry_facts or ()) if b is cfg.entry else set()
        acc: Optional[FactSet] = None
        fallback: Optional[FactSet] = None
        for e in b.preds:
            src_out = outs[e.src.bid]
            if src_out is None:
                continue  # top: identity of the meet
            contrib = set(src_out)
            for cond, pol, _loc in e.conds:
                branch_facts(dom, contrib, cond, pol)
            if infeasible(contrib):
                # The edge is provably never taken; keep its refined
                # contribution aside so that a block *all* of whose
                # incoming edges are infeasible — statically dead code
                # — still gets the plain (unpruned) meet: its checks
                # never execute, so eliminating on vacuous facts is
                # sound, while lint separately refuses to diagnose
                # contradictory states.
                fallback = contrib if fallback is None \
                    else (fallback & contrib)
                continue
            acc = contrib if acc is None else (acc & contrib)
        return acc if acc is not None else fallback

    changed = True
    while changed:
        changed = False
        for b in order:
            new_in = block_in(b)
            if new_in is None:
                continue
            if new_in != ins[b.bid] or outs[b.bid] is None:
                ins[b.bid] = new_in
                new_out = set(new_in)
                for i in b.instrs:
                    transfer(dom, new_out, i)
                if new_out != outs[b.bid]:
                    outs[b.bid] = new_out
                    changed = True

    final: Dict[int, FactSet] = {
        bid: (s if s is not None else set())
        for bid, s in ins.items()}
    return dom, final
