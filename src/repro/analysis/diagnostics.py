"""Diagnostic records and renderers for ``repro lint``.

A :class:`Diagnostic` is one *must-fail* finding: the dataflow engine
proved that a surviving run-time check (or a ``free`` call) fails on
every execution reaching it.  This module owns the record shape, the
stable ordering, and the three output formats — gcc-style text, the
byte-deterministic JSON report the CI baseline gate diffs, and SARIF
2.1.0 for editor/CI integrations.

Determinism contract: diagnostics are sorted by ``(file, line, site,
code)``; JSON is produced with :func:`repro.obs.serialize.stable_dumps`
(sorted keys, rounded floats, trailing newline), so two lints of the
same program are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.obs.serialize import stable_dumps

#: schema tag of the JSON report (bump on shape changes).
LINT_SCHEMA = "repro.analysis.lint/1"

#: every diagnostic code, its short name and its one-line meaning.
CODES: dict[str, tuple[str, str]] = {
    "repro-E001": ("null-dereference",
                   "dereference of a definitely-null pointer"),
    "repro-E002": ("out-of-bounds",
                   "access provably outside the pointed-to object"),
    "repro-E003": ("double-free",
                   "free of a block that is already freed"),
    "repro-E004": ("use-after-free",
                   "use of a pointer whose block was freed"),
    "repro-E005": ("uninitialized-pointer",
                   "use of a pointer local never assigned on any path"),
    "repro-E006": ("invalid-free",
                   "free of a non-heap or interior pointer"),
}

#: ordering for ``--fail-on`` comparisons.
SEVERITIES = ("note", "warning", "error")


@dataclass
class PathStep:
    """One event on the CFG path that forces the violation."""

    file: Optional[str]
    line: Optional[int]
    note: str

    def to_json(self) -> dict:
        return {"file": self.file or "<unknown>",
                "line": self.line or 0, "note": self.note}


@dataclass
class Diagnostic:
    """One must-fail finding at a concrete program point."""

    code: str                 # "repro-E001" ... "repro-E006"
    message: str              # the human sentence, var names inlined
    file: str                 # source file of the doomed site
    line: int                 # 1-based source line
    function: str             # enclosing function
    check: str                # check kind name, or "free" for calls
    site: int                 # curer check-site id (-1 for calls)
    severity: str = "error"
    path: list[PathStep] = field(default_factory=list)
    #: blame-chain JSON (see :mod:`repro.obs.blame`) of the guarded
    #: pointer's kind, when the program was cured with provenance on.
    blame: Optional[dict] = None

    def sort_key(self) -> tuple:
        return (self.file, self.line, self.site, self.code)

    def to_json(self) -> dict:
        out: dict = {"code": self.code, "severity": self.severity,
                     "message": self.message, "file": self.file,
                     "line": self.line, "function": self.function,
                     "check": self.check, "site": self.site,
                     "path": [s.to_json() for s in self.path]}
        if self.blame is not None:
            out["blame"] = self.blame
        return out


def render_diagnostic(d: Diagnostic) -> str:
    """gcc-style text: location line, context line, path notes and —
    when present — the pointer-kind blame chain."""
    from repro.obs.blame import render_chain
    lines = [f"{d.file}:{d.line}: {d.severity}: {d.message} [{d.code}]"]
    where = f"  in function '{d.function}', at {d.check}"
    if d.site >= 0:
        where += f" (site {d.site})"
    lines.append(where)
    for s in d.path:
        lines.append(f"  {s.file or '<unknown>'}:{s.line or 0}: "
                     f"note: {s.note}")
    if d.blame is not None:
        lines.append("  pointer kind blame:")
        lines.extend("    " + ln for ln in render_chain(d.blame))
    return "\n".join(lines)


@dataclass
class LintReport:
    """All findings of one lint run over one program."""

    name: str
    optimize: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    suppressed: int = 0        # dropped by repro-lint: ignore comments
    functions: int = 0         # functions analyzed

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for d in self.diagnostics:
            out[d.code] = out.get(d.code, 0) + 1
        return out

    def worst_severity(self) -> Optional[str]:
        worst = -1
        for d in self.diagnostics:
            worst = max(worst, SEVERITIES.index(d.severity))
        return SEVERITIES[worst] if worst >= 0 else None

    def to_json(self) -> dict:
        return {"schema": LINT_SCHEMA, "name": self.name,
                "optimize": self.optimize,
                "functions": self.functions,
                "suppressed": self.suppressed,
                "counts": self.counts(),
                "diagnostics": [d.to_json()
                                for d in self.diagnostics]}

    def render(self) -> str:
        if not self.diagnostics:
            tail = (f" ({self.suppressed} suppressed)"
                    if self.suppressed else "")
            return (f"{self.name}: no must-fail sites "
                    f"({self.functions} functions, "
                    f"optimize={self.optimize}){tail}")
        blocks = [render_diagnostic(d) for d in self.diagnostics]
        summary = ", ".join(f"{n}× {c}"
                            for c, n in sorted(self.counts().items()))
        tail = (f", {self.suppressed} suppressed"
                if self.suppressed else "")
        blocks.append(f"{self.name}: {len(self.diagnostics)} "
                      f"must-fail site(s): {summary}{tail}")
        return "\n".join(blocks)


def reports_json(reports: list[LintReport]) -> str:
    """The byte-deterministic multi-target JSON document the CI
    lint gate diffs against its committed baseline."""
    payload = {"schema": LINT_SCHEMA,
               "reports": [r.to_json() for r in reports]}
    return stable_dumps(payload)


def reports_sarif(reports: list[LintReport]) -> str:
    """SARIF 2.1.0 document over all reports (one run)."""
    rules = [{"id": code,
              "name": short,
              "shortDescription": {"text": desc}}
             for code, (short, desc) in sorted(CODES.items())]
    results = []
    for r in reports:
        for d in r.diagnostics:
            res: dict = {
                "ruleId": d.code,
                "level": d.severity,
                "message": {"text": f"[{r.name}] {d.message}"},
                "locations": [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": d.file},
                        "region": {"startLine": max(d.line, 1)},
                    }}],
            }
            if d.path:
                res["codeFlows"] = [{
                    "threadFlows": [{"locations": [
                        {"location": {
                            "physicalLocation": {
                                "artifactLocation":
                                    {"uri": s.file or "<unknown>"},
                                "region":
                                    {"startLine": max(s.line or 1, 1)},
                            },
                            "message": {"text": s.note},
                        }} for s in d.path]}]}]
            results.append(res)
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri":
                    "https://github.com/ccured/repro",
                "rules": rules,
            }},
            "results": results,
        }],
    }
    return stable_dumps(doc)
