"""Flow-sensitive static analysis over the CIL IR.

The reproduction's first genuine static-analysis subsystem: a CFG
builder over the structured statement trees (:mod:`.cfg`), a forward
*must* dataflow engine over proven pointer facts (:mod:`.dataflow`),
the whole-function check eliminator built on its fixpoint
(:mod:`.eliminate`), the per-function statistics backing
``repro analyze`` (:mod:`.stats`), and the must-fail static
diagnostics behind ``repro lint`` (:mod:`.lint` / :mod:`.diagnostics`).

This is the machinery behind the paper's contrast with binary-level
tools: "without the source code and the type information it contains,
Purify cannot statically remove checks as CCured does."  The
straight-line pass in :mod:`repro.core.optimize` remains available as
``optimize="local"`` and serves as a differential oracle.
"""

from repro.analysis.cfg import CFG, BasicBlock, Edge, build_cfg
from repro.analysis.dataflow import (FactDomain, branch_facts,
                                     edge_contrib, gen_check_facts,
                                     infeasible, ptr_var, solve,
                                     transfer_instr)
from repro.analysis.diagnostics import (CODES, LINT_SCHEMA, SEVERITIES,
                                        Diagnostic, LintReport,
                                        render_diagnostic,
                                        reports_json, reports_sarif)
from repro.analysis.eliminate import (FunctionAnalysis, analyze_fundec,
                                      eliminate_checks_flow)
from repro.analysis.lint import (lint_cured, lint_source,
                                 lint_workload)
from repro.analysis.stats import (analyze_cured, analyze_fundec_stats,
                                  analyze_source, analyze_workload,
                                  render_table)

__all__ = [
    "CFG", "BasicBlock", "Edge", "build_cfg",
    "FactDomain", "branch_facts", "edge_contrib", "gen_check_facts",
    "infeasible", "ptr_var", "solve", "transfer_instr",
    "CODES", "LINT_SCHEMA", "SEVERITIES", "Diagnostic", "LintReport",
    "render_diagnostic", "reports_json", "reports_sarif",
    "lint_cured", "lint_source", "lint_workload",
    "FunctionAnalysis", "analyze_fundec", "eliminate_checks_flow",
    "analyze_cured", "analyze_fundec_stats", "analyze_source",
    "analyze_workload", "render_table",
]
