"""Per-function analysis statistics for ``repro analyze``.

Reports, for each function of a cured program, the CFG shape (blocks,
edges, back-edges), the number of dataflow facts generated, and how
many of its emitted checks each optimization level removes — the
straight-line ``local`` pass versus the flow-sensitive ``flow`` pass.

The program is cured with ``optimize="none"`` so the *emitted* check
set is the baseline; the two eliminators are then measured against
that same instrumentation (the local pass on a scratch copy of each
function, the flow pass read-only via :func:`analyze_fundec`).
"""

from __future__ import annotations

import copy
from typing import Optional, Sequence, Union

from repro.cil import stmt as S
from repro.cil.program import GFun, Program
from repro.analysis.eliminate import analyze_fundec
from repro.core.curer import CuredProgram, cure
from repro.core.optimize import _do_block
from repro.core.options import CureOptions


def _count_checks(b: S.Block) -> int:
    n = 0
    for s in b.stmts:
        if isinstance(s, S.InstrStmt):
            n += sum(1 for i in s.instrs if isinstance(i, S.Check))
        elif isinstance(s, S.Block):
            n += _count_checks(s)
        elif isinstance(s, S.If):
            n += _count_checks(s.then) + _count_checks(s.els)
        elif isinstance(s, S.Loop):
            n += _count_checks(s.body)
    return n


def analyze_fundec_stats(fd: S.Fundec) -> dict:
    """CFG/fact/elimination statistics for one (unoptimized-level)
    function definition."""
    fa = analyze_fundec(fd)
    scratch = copy.deepcopy(fd)
    elided_local = _do_block(scratch.body)
    return {
        "function": fd.name,
        "blocks": fa.n_blocks,
        "edges": fa.n_edges,
        "back_edges": fa.n_back_edges,
        "facts": fa.n_facts,
        "checks": fa.n_checks,
        "elided_local": elided_local,
        "elided_flow": fa.n_removable,
    }


def analyze_cured(cured: Union[CuredProgram, Program]) -> dict:
    """Statistics for every function of a cured program.  The program
    should have been cured with ``optimize="none"`` so the emitted
    check set is intact (``analyze_source`` arranges this)."""
    prog = cured.prog if isinstance(cured, CuredProgram) else cured
    functions = [analyze_fundec_stats(g.fundec)
                 for g in prog.globals if isinstance(g, GFun)]
    keys = ("blocks", "edges", "back_edges", "facts", "checks",
            "elided_local", "elided_flow")
    totals = {k: sum(f[k] for f in functions) for k in keys}
    return {"program": prog.name,
            "functions": functions,
            "totals": totals}


def analyze_source(source: str, name: str = "program",
                   options: Optional[CureOptions] = None,
                   include_dirs: Optional[Sequence[str]] = None) -> dict:
    """Cure ``source`` at ``optimize="none"`` and analyze it."""
    opts = copy.deepcopy(options) if options is not None \
        else CureOptions()
    opts.optimize = "none"
    cured = cure(source, options=opts, name=name,
                 include_dirs=include_dirs)
    return analyze_cured(cured)


def analyze_workload(w, scale: Optional[int] = None) -> dict:
    """Analyze one benchmark workload at ``optimize="none"`` through
    the shared pristine parse/cure caches — the unit of work both the
    serial ``repro analyze`` loop and the sharded sweep run."""
    from repro.bench.harness import cached_cure
    cured = cached_cure(w, options=CureOptions(optimize="none"),
                        scale=scale)
    return analyze_cured(cured)


def render_table(stats: dict) -> str:
    """A readable fixed-width table of per-function statistics."""
    cols = ("function", "blocks", "edges", "back_edges", "facts",
            "checks", "elided_local", "elided_flow")
    rows = [dict(f) for f in stats["functions"]]
    rows.append({"function": "TOTAL", **stats["totals"]})
    widths = {c: max(len(c), *(len(str(r[c])) for r in rows))
              for c in cols}
    lines = [f"program: {stats['program']}",
             "  ".join(c.ljust(widths[c]) for c in cols),
             "  ".join("-" * widths[c] for c in cols)]
    for r in rows:
        lines.append("  ".join(
            (str(r[c]).ljust(widths[c]) if c == "function"
             else str(r[c]).rjust(widths[c])) for c in cols))
    return "\n".join(lines)
