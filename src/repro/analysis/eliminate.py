"""The flow-sensitive check eliminator.

For each function: build the CFG, solve the must-dataflow to a
fixpoint, then walk every block once more with the fixed in-set,
deciding per :class:`~repro.cil.stmt.Check` whether the facts at that
point prove it passes.  Proven checks are removed from the statement
tree (blocks alias the tree's ``Instr`` objects, so removal is an
identity-filter over each ``InstrStmt``).

Removal rules — a check is removable when:

* an identical check (same signature) is ``done`` on every path and
  its operands are unwritten since — any kind;
* ``CHECK_NULL(p)``: ``NonNull(p)`` **and** ``Alive(p)`` hold.
  Non-nullness alone is not enough: the runtime's NULL check also
  screens for dangling/poisoned pointers, which are non-null, so a
  bare ``if (p)`` guard keeps the check unless ``p``'s provenance is
  also proven (``p = &x``, or ``p`` passed a prior dereference
  check);
* ``CHECK_SEQ_BOUNDS`` / ``CHECK_FSEQ_BOUNDS`` / ``CHECK_SEQ_TO_SAFE``
  of ``size`` bytes on ``p``: ``InBounds(p, n)`` holds with
  ``n >= size``;
* ``CHECK_RTTI_CAST`` against ``t`` on ``p``: ``Rtti(p, t)`` holds;
* ``CHECK_ALIVE`` on ``p``: ``TempOk(p)`` holds — ``p`` passed a
  temporal check and nothing since could have freed its home (frees
  live inside calls, which clear all facts).

Everything else (``CHECK_FUNPTR``, ``CHECK_INDEX``, WILD checks,
stack-escape stores) is only ever removed through an identical
``done`` check.

The transfer function is applied identically whether or not a check
is removed: a statically proven check still *would have passed*, so
the facts it establishes hold at run time even though no code runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cil import stmt as S
from repro.cil.program import GFun, Program
from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import (FactDomain, FactSet, ptr_var,
                                     solve, transfer_instr)
from repro.core.optimize import _check_signature


def _removable(facts: FactSet, c: S.Check) -> bool:
    if ("done", _check_signature(c)) in facts:
        return True
    K = S.CheckKind
    if c.kind is K.NULL:
        v = ptr_var(c.args[0])
        return (v is not None
                and ("nonnull", v.vid) in facts
                and ("alive", v.vid) in facts)
    if c.kind in (K.SEQ_BOUNDS, K.FSEQ_BOUNDS, K.SEQ_TO_SAFE):
        v = ptr_var(c.args[0])
        if v is None:
            return False
        need = c.size or 1
        return any(f[0] == "inb" and f[1] == v.vid and f[2] >= need
                   for f in facts)
    if c.kind is K.RTTI_CAST and c.rtti is not None:
        v = ptr_var(c.args[0])
        return (v is not None
                and ("rtti", v.vid, repr(c.rtti)) in facts)
    if c.kind is K.ALIVE:
        # only a previously passed temporal check proves a temporal
        # check — spatial Alive(p) is NOT enough (freed heap homes
        # pass the spatial screen)
        v = ptr_var(c.args[0])
        return v is not None and ("tempok", v.vid) in facts
    return False


@dataclass
class FunctionAnalysis:
    """The flow analysis of one function, for elimination or stats."""

    name: str
    cfg: CFG
    dom: FactDomain
    removable: list = field(default_factory=list)  # list[S.Check]
    n_checks: int = 0

    @property
    def n_blocks(self) -> int:
        return len(self.cfg.blocks)

    @property
    def n_edges(self) -> int:
        return self.cfg.n_edges

    @property
    def n_back_edges(self) -> int:
        return self.cfg.n_back_edges

    @property
    def n_facts(self) -> int:
        """Distinct facts generated anywhere in the function."""
        return len(self.dom.deps)

    @property
    def n_removable(self) -> int:
        return len(self.removable)


def analyze_fundec(fd: S.Fundec) -> FunctionAnalysis:
    """Analyze one function (read-only: the body is not rewritten)."""
    cfg = build_cfg(fd)
    dom, ins = solve(cfg)
    fa = FunctionAnalysis(name=fd.name, cfg=cfg, dom=dom)
    for b in cfg.blocks:
        facts = set(ins[b.bid])
        for i in b.instrs:
            if isinstance(i, S.Check):
                fa.n_checks += 1
                if _removable(facts, i):
                    fa.removable.append(i)
            transfer_instr(dom, facts, i)
    return fa


def _prune_block(b: S.Block, drop: set) -> None:
    for s in b.stmts:
        if isinstance(s, S.InstrStmt):
            s.instrs = [i for i in s.instrs if id(i) not in drop]
        elif isinstance(s, S.Block):
            _prune_block(s, drop)
        elif isinstance(s, S.If):
            _prune_block(s.then, drop)
            _prune_block(s.els, drop)
        elif isinstance(s, S.Loop):
            _prune_block(s.body, drop)


def eliminate_checks_flow(prog: Program) -> int:
    """Remove every flow-provable check from ``prog``; returns the
    count of checks removed."""
    from repro.obs.tracer import TRACER
    removed = 0
    with TRACER.span("dataflow", program=prog.name) as sp:
        for g in prog.globals:
            if isinstance(g, GFun):
                fa = analyze_fundec(g.fundec)
                if fa.removable:
                    drop = {id(c) for c in fa.removable}
                    _prune_block(g.fundec.body, drop)
                    removed += len(fa.removable)
        sp.set(removed=removed)
    return removed
