"""``repro lint``: cure-time static must-fail diagnostics.

The check eliminator proves checks *pass*; this module runs the same
must-dataflow engine in the opposite direction and proves surviving
checks **fail**.  Because the facts are must-facts (they hold on every
path reaching the point) and diagnostics are only reported in blocks
reachable over feasible edges, a finding means every execution that
reaches the site traps — a program that runs to completion can have
zero findings, which is the precision contract the fault-campaign
validation (:mod:`repro.faults.lintval`) enforces.

On top of the base domain (``eqz``/``nez``/``nonnull``/``inb``/…) the
lint transfer adds three *violation* fact kinds:

``("freed", vid)``
    ``vid`` still holds the address of a heap block that was passed to
    ``free`` (and has provably not been reassigned since).  A deref
    check is a use-after-free; another ``free`` is a double free.

``("uninit", vid)``
    The pointer local ``vid`` has not been assigned on *any* path from
    function entry.  Seeded as an entry fact for every non-formal,
    non-temp pointer local; a deref check on it reads indeterminate
    memory.

``("heapstart", vid)``
    ``vid`` holds exactly the address an allocator returned — the only
    address ``free`` accepts — so ``free(vid + k)`` with ``k != 0`` is
    an invalid (interior) free.

Unlike the eliminator's transfer, calls do not clear everything: a
callee cannot write a register-only local (not global, never
address-taken), so constant flags and heap-state facts about such
locals survive calls.  Facts whose dependency can be read through
memory (the ``reads_mem`` bit) are still dropped at every call.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, Optional, Tuple

from repro.analysis.cfg import CFG, build_cfg
from repro.analysis.dataflow import (FactDomain, FactSet, edge_contrib,
                                     infeasible, ptr_var, solve,
                                     strip_casts, transfer_instr)
from repro.analysis.diagnostics import (Diagnostic, LintReport,
                                        PathStep)
from repro.cil import expr as E
from repro.cil import stmt as S
from repro.cil import types as T
from repro.cil.program import Program

#: fact kinds that survive a call when their variable is register-only.
_PERSISTENT = frozenset({"eqz", "nez", "nonnull", "freed", "uninit",
                         "heapstart", "inb"})

#: callees that return the start of a fresh heap block.
_ALLOCATORS = frozenset({"malloc", "calloc"})

#: deref checks: the guarded pointer is read through.
_DEREF = frozenset({S.CheckKind.NULL, S.CheckKind.SEQ_BOUNDS,
                    S.CheckKind.FSEQ_BOUNDS, S.CheckKind.WILD_BOUNDS})

#: checks whose bounds component can be refuted against an ``inb`` fact.
_BOUNDS = frozenset({S.CheckKind.SEQ_BOUNDS, S.CheckKind.FSEQ_BOUNDS,
                     S.CheckKind.WILD_BOUNDS})

#: origin-note labels per violation fact kind (see ``_Origins``).
Origin = Tuple[Optional[tuple], str]


def callee_name(fn: E.Exp) -> Optional[str]:
    """The name of a direct callee (``free``/``malloc`` detection)."""
    v = ptr_var(fn)
    return v.name if v is not None else None


def base_and_offset(e: E.Exp) -> Tuple[Optional[E.Varinfo],
                                       Optional[int]]:
    """Decompose a pointer expression into ``(base var, constant
    element offset)``: ``p`` -> ``(p, 0)``, ``p +p 3`` -> ``(p, 3)``,
    ``p +p i`` -> ``(p, None)``, anything else -> ``(None, None)``."""
    e = strip_casts(e)
    v = ptr_var(e)
    if v is not None:
        return v, 0
    if isinstance(e, E.BinOp) and e.op in (E.BinopKind.PLUS_PI,
                                           E.BinopKind.MINUS_PI):
        base = ptr_var(e.e1)
        if base is None:
            return None, None
        k = strip_casts(e.e2)
        if isinstance(k, E.Const) and isinstance(k.value, int):
            off = k.value
            if e.op is E.BinopKind.MINUS_PI:
                off = -off
            return base, off
        return base, None
    return None, None


def _inb_bytes(facts: FactSet, vid: int) -> Optional[int]:
    for f in facts:
        if f[0] == "inb" and f[1] == vid:
            return f[2]
    return None


def make_lint_transfer(origins: Dict[tuple, Origin]
                       ) -> Callable[[FactDomain, FactSet, S.Instr],
                                     None]:
    """The lint transfer function: the base semantics plus violation
    facts, call-surviving register facts, copy propagation, and a
    side table of fact *origins* (where was it freed / assigned null /
    allocated) for diagnostic path rendering.  Origins are first-write
    wins under the solver's deterministic schedule."""

    def _copy_facts(dom: FactDomain, facts: FactSet,
                    dst: E.Varinfo, src: E.Varinfo) -> None:
        # v = w: whole-register copies carry w's register-only facts.
        for f in list(facts):
            if f[0] in _PERSISTENT and f[1] == src.vid \
                    and not dom.deps[f][1]:
                nf = (f[0], dst.vid) + f[2:]
                dom.add_var_fact(facts, nf, dst)
                if f in origins:
                    origins.setdefault(nf, origins[f])

    def _ret_var(ret: Optional[E.Lval]) -> Optional[E.Varinfo]:
        if ret is not None and isinstance(ret.host, E.Var) \
                and isinstance(ret.offset, E.NoOffset):
            return ret.host.var
        return None

    def transfer(dom: FactDomain, facts: FactSet,
                 i: S.Instr) -> None:
        if isinstance(i, S.Call):
            kept = {f for f in facts
                    if f[0] in _PERSISTENT and not dom.deps[f][1]}
            facts.clear()
            facts.update(kept)
            rv = _ret_var(i.ret)
            if rv is not None:
                dom.kill_var(facts, rv.vid)
            name = callee_name(i.fn)
            loc = getattr(i, "loc", None)
            if name == "free" and i.args:
                v = ptr_var(i.args[0])
                if v is not None and ("eqz", v.vid) not in facts:
                    f = ("freed", v.vid)
                    dom.add_var_fact(facts, f, v)
                    origins.setdefault(
                        f, (loc, f"the block '{v.name}' points to "
                                 "is freed here"))
            elif name in _ALLOCATORS and rv is not None:
                f = ("heapstart", rv.vid)
                dom.add_var_fact(facts, f, rv)
                origins.setdefault(
                    f, (loc, "heap block allocated here"))
            elif name == "realloc" and rv is not None:
                # the returned pointer is again a block start
                dom.add_var_fact(facts, ("heapstart", rv.vid), rv)
            return
        transfer_instr(dom, facts, i)
        if isinstance(i, S.Set) and isinstance(i.lval.host, E.Var) \
                and isinstance(i.lval.offset, E.NoOffset):
            var = i.lval.host.var
            loc = getattr(i, "loc", None)
            if ("eqz", var.vid) in facts:
                what = ("null" if T.is_pointer(var.type) else "0")
                origins.setdefault(
                    ("eqz", var.vid),
                    (loc, f"'{var.name}' is assigned {what} here"))
            for f in facts:
                if f[0] == "inb" and f[1] == var.vid:
                    origins.setdefault(
                        f, (loc, f"'{var.name}' points at the start "
                                 f"of a {f[2]}-byte object here"))
            src = ptr_var(i.exp)
            if src is not None and src.vid != var.vid:
                _copy_facts(dom, facts, var, src)

    return transfer


class _FunctionLint:
    """Lint one function: solve, compute reachability, walk blocks."""

    def __init__(self, fd: S.Fundec, blame: Optional[Callable]) -> None:
        self.fd = fd
        self.blame = blame
        self.origins: Dict[tuple, Origin] = {}
        self.diags: Dict[tuple, Diagnostic] = {}
        self.cfg: CFG = build_cfg(fd)
        self.dom = FactDomain()
        self.transfer = make_lint_transfer(self.origins)
        entry = self._entry_facts()
        _, self.ins = solve(self.cfg, transfer=self.transfer,
                            entry_facts=entry, dom=self.dom)
        self._reach()

    # -- setup -------------------------------------------------------

    def _entry_facts(self) -> FactSet:
        facts: FactSet = set()
        for v in self.fd.locals:
            if v.is_temp or v.is_formal:
                continue
            if not T.is_pointer(v.type):
                continue
            f = ("uninit", v.vid)
            self.dom.add_var_fact(facts, f, v)
            self.origins[f] = (
                v.decl_loc,
                f"'{v.name}' declared here without an initializer")
        return facts

    def _reach(self) -> None:
        """Blocks reachable from entry over feasible edges, plus the
        tree edge that discovered each (for path rendering)."""
        outs: Dict[int, FactSet] = {}
        for b in self.cfg.blocks:
            out = set(self.ins[b.bid])
            for i in b.instrs:
                self.transfer(self.dom, out, i)
            outs[b.bid] = out
        self.parent: Dict[int, Optional[object]] = {
            self.cfg.entry.bid: None}
        q = deque([self.cfg.entry])
        while q:
            b = q.popleft()
            for e in b.succs:
                if e.dst.bid in self.parent:
                    continue
                if edge_contrib(self.dom, outs[b.bid], e) is None:
                    continue  # provably never taken from this state
                self.parent[e.dst.bid] = e
                q.append(e.dst)

    # -- diagnosis ---------------------------------------------------

    def run(self) -> list[Diagnostic]:
        for b in self.cfg.rpo():
            if b.bid not in self.parent:
                continue  # unreachable (or only via infeasible edges)
            facts = set(self.ins[b.bid])
            if infeasible(facts):
                continue  # contradictory join state: never executed
            for i in b.instrs:
                self._diagnose(i, facts, b.bid)
                self.transfer(self.dom, facts, i)
        return sorted(self.diags.values(),
                      key=lambda d: d.sort_key())

    def _emit(self, code: str, message: str, i: S.Instr, bid: int,
              check: str, site: int,
              fact: Optional[tuple] = None) -> None:
        loc = getattr(i, "loc", None) or ("<unknown>", 0)
        key = (code, loc[0], loc[1])
        old = self.diags.get(key)
        if old is not None and old.site <= (site if site >= 0
                                            else old.site):
            return  # keep the first check of the doomed source line
        d = Diagnostic(code=code, message=message, file=loc[0],
                       line=loc[1], function=self.fd.name,
                       check=check, site=site,
                       path=self._path(bid, fact))
        if self.blame is not None and isinstance(i, S.Check):
            d.blame = self.blame(i)
        self.diags[key] = d

    def _path(self, bid: int,
              fact: Optional[tuple]) -> list[PathStep]:
        """Branch decisions on the tree path from entry, then the
        violated fact's origin event."""
        edges = []
        cur = self.parent.get(bid)
        while cur is not None:
            edges.append(cur)
            cur = self.parent.get(cur.src.bid)
        steps: list[PathStep] = []
        for e in reversed(edges):
            for cond, pol, loc in e.conds:
                if loc is None:
                    continue
                steps.append(PathStep(
                    loc[0], loc[1],
                    f"taking the branch where ({cond!r}) is "
                    f"{'true' if pol else 'false'}"))
        if fact is not None and fact in self.origins:
            oloc, note = self.origins[fact]
            if oloc is not None:
                steps.append(PathStep(oloc[0], oloc[1], note))
        return steps

    def _diagnose(self, i: S.Instr, facts: FactSet,
                  bid: int) -> None:
        if isinstance(i, S.Check):
            self._diagnose_check(i, facts, bid)
        elif isinstance(i, S.Call) and callee_name(i.fn) == "free" \
                and i.args:
            self._diagnose_free(i, facts, bid)

    def _diagnose_check(self, c: S.Check, facts: FactSet,
                        bid: int) -> None:
        if not c.args:
            return
        kind = c.kind
        site = c.site if c.site is not None else -1
        name = kind.value
        # constant INDEX checks survive instrumentation only when the
        # index is provably outside the array
        if kind is S.CheckKind.INDEX:
            idx = strip_casts(c.args[0])
            if isinstance(idx, E.Const) and isinstance(idx.value, int) \
                    and c.size is not None \
                    and not (0 <= idx.value < c.size):
                self._emit("repro-E002",
                           f"index {idx.value} is outside the "
                           f"{c.size}-element array", c, bid,
                           name, site)
            return
        v, off = base_and_offset(c.args[0])
        if v is None:
            return
        usable = _DEREF | {S.CheckKind.ALIVE, S.CheckKind.FUNPTR}
        if ("uninit", v.vid) in facts and kind in usable:
            self._emit("repro-E005",
                       f"'{v.name}' is used here but is never "
                       "assigned on any path from function entry",
                       c, bid, name, site, ("uninit", v.vid))
            return
        if ("eqz", v.vid) in facts \
                and kind in (_DEREF | {S.CheckKind.FUNPTR}):
            verb = ("call through" if kind is S.CheckKind.FUNPTR
                    else "dereference of")
            self._emit("repro-E001",
                       f"{verb} '{v.name}', which is definitely "
                       "null here", c, bid, name, site,
                       ("eqz", v.vid))
            return
        if ("freed", v.vid) in facts \
                and kind in (_DEREF | {S.CheckKind.ALIVE}):
            self._emit("repro-E004",
                       f"use of '{v.name}' after the block it "
                       "points to was freed", c, bid, name, site,
                       ("freed", v.vid))
            return
        if kind in _BOUNDS and off is not None and c.size is not None:
            n = _inb_bytes(facts, v.vid)
            if n is not None:
                lo = off * c.size
                if lo < 0 or lo + c.size > n:
                    self._emit(
                        "repro-E002",
                        f"access of {c.size} byte(s) at offset "
                        f"{lo} overruns the {n}-byte object "
                        f"'{v.name}' points to", c, bid, name,
                        site, ("inb", v.vid, n))

    def _diagnose_free(self, i: S.Call, facts: FactSet,
                       bid: int) -> None:
        arg = strip_casts(i.args[0])
        if isinstance(arg, (E.AddrOf, E.StartOf)) \
                and isinstance(arg.lval.host, E.Var):
            hv = arg.lval.host.var
            where = "global" if hv.is_global else "stack local"
            self._emit("repro-E006",
                       f"free of the {where} '{hv.name}', which is "
                       "not a heap block", i, bid, "free", -1)
            return
        v, off = base_and_offset(arg)
        if v is None:
            return
        if ("uninit", v.vid) in facts:
            self._emit("repro-E005",
                       f"free of '{v.name}', which is never "
                       "assigned on any path from function entry",
                       i, bid, "free", -1, ("uninit", v.vid))
            return
        if off is not None and off != 0 \
                and ("heapstart", v.vid) in facts:
            self._emit("repro-E006",
                       f"free of '{v.name} + {off}', an interior "
                       "pointer into a heap block", i, bid,
                       "free", -1, ("heapstart", v.vid))
            return
        if off == 0 and ("freed", v.vid) in facts:
            self._emit("repro-E003",
                       f"second free of '{v.name}': the block is "
                       "already freed", i, bid, "free", -1,
                       ("freed", v.vid))


def _make_blame(cured) -> Optional[Callable]:
    """A ``Check -> blame chain JSON`` closure over the cured
    program's blame graph (None unless provenance was recorded)."""
    if not getattr(cured.options, "provenance", False):
        return None
    state: dict = {}

    def blame(c: S.Check) -> Optional[dict]:
        try:
            if not c.args:
                return None
            u = T.unroll(c.args[0].type())
            node = u.node if isinstance(u, T.TPtr) else None
            if node is None or not node.prov:
                return None
            graph = state.get("graph")
            if graph is None:
                from repro.obs.blame import BlameGraph
                graph = BlameGraph.from_cured(cured)
                state["graph"] = graph
            ch = graph.chain_of(node.id)
            return ch.to_json() if ch is not None else None
        except Exception:
            return None

    return blame


def _suppressed(d: Diagnostic, prog: Program) -> bool:
    """A ``repro-lint: ignore`` comment suppresses diagnostics on its
    own line or the line directly below it."""
    sup = prog.lint_suppressions
    return (d.file, d.line) in sup or (d.file, d.line - 1) in sup


def lint_cured(cured, name: Optional[str] = None) -> LintReport:
    """Lint an already-cured program (never mutates it)."""
    prog: Program = cured.prog
    blame = _make_blame(cured)
    diags: list[Diagnostic] = []
    functions = 0
    for fd in prog.fundecs():
        functions += 1
        diags.extend(_FunctionLint(fd, blame).run())
    kept: list[Diagnostic] = []
    suppressed = 0
    for d in diags:
        if _suppressed(d, prog):
            suppressed += 1
        else:
            kept.append(d)
    kept.sort(key=lambda d: d.sort_key())
    return LintReport(name=name or prog.name,
                      optimize=cured.optimize_level,
                      diagnostics=kept, suppressed=suppressed,
                      functions=functions)


def lint_source(source: str, name: str = "program", *,
                optimize: str = "flow", provenance: bool = True,
                temporal: bool = False,
                include_dirs=None) -> LintReport:
    """Cure C source text, then lint it."""
    from repro.core import CureOptions, cure
    cured = cure(source,
                 options=CureOptions(optimize=optimize,
                                     provenance=provenance,
                                     temporal=temporal),
                 name=name, include_dirs=include_dirs)
    return lint_cured(cured, name=name)


def lint_workload(w, *, optimize: str = "flow",
                  provenance: bool = True,
                  scale: Optional[int] = None) -> LintReport:
    """Lint one benchmark workload (shared pristine cure cache)."""
    from repro.bench.harness import pristine_cure
    from repro.core import CureOptions
    opts = CureOptions(optimize=optimize, provenance=provenance,
                       trust_bad_casts=w.trust_bad_casts)
    cured = pristine_cure(w, options=opts, scale=scale)
    return lint_cured(cured, name=w.name)
