"""Tests for the command-line driver."""

import pytest

from repro.cli import SAFETY_EXIT, main

HELLO = r'''
#include <stdio.h>
#include <string.h>
int main(int argc, char **argv) {
  char buf[8];
  if (argc > 1) strcpy(buf, argv[1]);
  else strcpy(buf, "hi");
  printf("%s\n", buf);
  return 0;
}
'''


@pytest.fixture
def hello_c(tmp_path):
    path = tmp_path / "hello.c"
    path.write_text(HELLO)
    return str(path)


class TestCure:
    def test_report(self, hello_c, capsys):
        assert main(["cure", hello_c, "--report"]) == 0
        out = capsys.readouterr().out
        assert "CCured report" in out
        assert "kinds:" in out

    def test_instrumented_output(self, hello_c, capsys):
        assert main(["cure", hello_c]) == 0
        out = capsys.readouterr().out
        assert "__SEQ" in out or "__SAFE" in out

    def test_plain_output(self, hello_c, capsys):
        assert main(["cure", hello_c, "--plain"]) == 0
        out = capsys.readouterr().out
        assert "__SAFE" not in out

    def test_ablation_flags(self, hello_c, capsys):
        assert main(["cure", hello_c, "--report", "--no-rtti",
                     "--no-physical", "--no-optimize"]) == 0

    def test_optimize_level_flag(self, hello_c, capsys):
        for level in ("none", "local", "flow"):
            assert main(["cure", hello_c, "--report",
                         "--optimize", level]) == 0
            capsys.readouterr()

    def test_bad_optimize_level_rejected(self, hello_c):
        with pytest.raises(SystemExit):
            main(["cure", hello_c, "--optimize", "super"])


class TestRun:
    def test_run_ok(self, hello_c, capsys):
        assert main(["run", hello_c, "world"]) == 0
        assert capsys.readouterr().out == "world\n"

    def test_run_overflow_exits_99(self, hello_c, capsys):
        status = main(["run", hello_c, "A" * 20])
        assert status == SAFETY_EXIT
        assert "BoundsError" in capsys.readouterr().err

    def test_run_raw(self, hello_c, capsys):
        assert main(["run", "--raw", hello_c, "ok"]) == 0
        assert capsys.readouterr().out == "ok\n"

    def test_run_stats(self, hello_c, capsys):
        assert main(["run", hello_c, "x", "--stats"]) == 0
        err = capsys.readouterr().err
        assert "cycles" in err

    def test_exit_status_propagates(self, tmp_path, capsys):
        p = tmp_path / "seven.c"
        p.write_text("int main(void) { return 7; }")
        assert main(["run", str(p)]) == 7


class TestAnalyze:
    def test_analyze_file_table(self, hello_c, capsys):
        assert main(["analyze", hello_c]) == 0
        out = capsys.readouterr().out
        assert "elided_flow" in out and "TOTAL" in out

    def test_analyze_workload_json(self, tmp_path, capsys):
        import json
        path = tmp_path / "stats.json"
        assert main(["analyze", "--workload", "olden_power",
                     "--scale", "2", "--json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert data["program"] == "olden_power"
        totals = data["totals"]
        assert totals["checks"] >= totals["elided_flow"] \
            >= totals["elided_local"] >= 0
        assert totals["blocks"] > 0 and totals["edges"] > 0

    def test_analyze_unknown_workload(self, capsys):
        assert main(["analyze", "--workload", "nope"]) == 2

    def test_analyze_without_target(self, capsys):
        assert main(["analyze"]) == 2


class TestBenchAndWorkloads:
    def test_workloads_listing(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "ftpd" in out and "Fig. 9" in out

    def test_bench_single(self, capsys):
        assert main(["bench", "olden_bisort",
                     "--tools", "ccured"]) == 0
        out = capsys.readouterr().out
        assert "ccured" in out and "1.00x" in out

    def test_bench_unknown(self, capsys):
        assert main(["bench", "nope"]) == 2
