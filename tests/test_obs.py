"""Tests for the observability layer: tracer, metrics, diff, CLI."""

import copy
import json

import pytest

from repro.cli import main
from repro.core import CureOptions, cure
from repro.interp import ENGINES, run_cured
from repro.obs import (SCHEMA, TRACER, Thresholds, collect_metrics,
                       collect_workload_metrics, diff_reports,
                       render_diff, render_report, round_floats,
                       site_table, stable_dumps)
from repro.obs.tracer import Tracer, phase_seconds_of
from repro.workloads import get

LOOPY = r'''
int main(void) {
  int a[8];
  int *p = a;
  int i;
  int sum = 0;
  for (i = 0; i < 8; i++) p[i] = i;
  for (i = 0; i < 8; i++) sum = sum + p[i];
  return sum == 28 ? 0 : 1;
}
'''


class TestTracer:
    def test_disabled_span_is_shared_singleton(self):
        t = Tracer()
        assert t.span("a") is t.span("b")
        with t.span("c"):
            pass
        assert t.records == []

    def test_enabled_spans_record_and_nest(self):
        t = Tracer()
        t.enable()
        with t.span("outer", tag=1):
            with t.span("inner"):
                pass
            with t.span("inner"):
                pass
        names = [(r.name, r.depth) for r in t.records]
        # children close (and record) before their parent
        assert names == [("inner", 1), ("inner", 1), ("outer", 0)]
        assert t.records[-1].attrs == {"tag": 1}
        assert all(r.duration >= 0 for r in t.records)

    def test_name_keyword_is_an_attribute(self):
        # span name is positional-only, so name= is a legal attr
        t = Tracer()
        t.enable()
        with t.span("parse", name="prog"):
            pass
        assert t.records[0].attrs == {"name": "prog"}

    def test_set_attaches_mid_span_attributes(self):
        t = Tracer()
        t.enable()
        with t.span("dataflow") as sp:
            sp.set(removed=7)
        assert t.records[0].attrs["removed"] == 7

    def test_span_recorded_even_when_body_raises(self):
        t = Tracer()
        t.enable()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError
        assert [r.name for r in t.records] == ["boom"]

    def test_capture_isolates_and_restores(self):
        t = Tracer()
        with t.capture() as records:
            with t.span("x"):
                pass
        assert [r.name for r in records] == ["x"]
        assert t.enabled is False
        assert t.records == []

    def test_phase_seconds_aggregation(self):
        t = Tracer()
        t.enable()
        with t.span("a"):
            with t.span("b"):
                pass
        with t.span("a"):
            pass
        secs = t.phase_seconds()
        assert set(secs) == {"a", "b"}
        top = phase_seconds_of(t.records, depth=0)
        assert set(top) == {"a"}

    def test_pipeline_emits_expected_phases(self):
        with TRACER.capture() as records:
            cure(LOOPY, options=CureOptions(optimize="flow"))
        names = {r.name for r in records}
        assert {"parse", "preprocess", "cure", "constraints",
                "solve", "split", "instrument", "optimize",
                "dataflow"} <= names

    def test_global_tracer_disabled_by_default(self):
        assert TRACER.enabled is False


class TestSiteHits:
    def test_site_hits_agree_across_engines(self):
        counts = {}
        for engine in ENGINES:
            cured = cure(LOOPY, options=CureOptions(optimize="none"))
            hits: dict[int, int] = {}
            res = run_cured(cured, engine=engine, site_hits=hits)
            assert res.status == 0
            assert sum(hits.values()) == res.checks_executed
            counts[engine] = hits
        assert counts["closures"] == counts["tree"]

    def test_site_table_covers_all_hit_sites(self):
        cured = cure(LOOPY, options=CureOptions(optimize="none"))
        hits: dict[int, int] = {}
        run_cured(cured, site_hits=hits)
        table = site_table(cured.prog)
        assert set(hits) <= set(table)
        assert all(fn == "main" for fn, _kind in table.values())

    def test_raw_run_counts_nothing(self):
        # a raw run of the *instrumented* tree skips its checks and
        # must not count any sites either
        from repro.interp.interp import Interpreter
        cured = cure(LOOPY, options=CureOptions(optimize="none"))
        hits: dict[int, int] = {}
        ip = Interpreter(cured.prog, cured=None, site_hits=hits)
        res = ip.run(None)
        assert res.status == 0
        assert hits == {}


class TestMetrics:
    @pytest.fixture(scope="class")
    def power_metrics(self):
        return collect_workload_metrics(get("olden_power"))

    def test_workload_metrics_consistency(self, power_metrics):
        wm = power_metrics
        assert wm.name == "olden_power"
        assert wm.checks_surviving == len(wm.sites)
        assert wm.checks_executed == sum(s.hits for s in wm.sites)
        assert wm.checks_executed == sum(wm.check_events.values())
        assert sum(wm.checks_emitted.values()) == (
            wm.checks_removed + wm.checks_surviving)
        assert wm.ccured_ratio > 1.0
        assert wm.phases == {}  # timing off by default

    def test_collection_is_deterministic(self):
        ws = [get("olden_power"), get("olden_treeadd")]
        blobs = []
        for _ in range(2):
            report = collect_metrics(ws)
            blobs.append(stable_dumps(report.to_json()))
        assert blobs[0] == blobs[1]
        payload = json.loads(blobs[0])
        assert payload["schema"] == SCHEMA
        assert [w["name"] for w in payload["workloads"]] == [
            "olden_power", "olden_treeadd"]

    def test_timing_excluded_from_default_serialization(self):
        wm = collect_workload_metrics(get("olden_power"), timing=True)
        assert wm.phases  # captured...
        assert "phases" not in wm.to_json()  # ...but not serialized
        assert "phases" in wm.to_json(include_timing=True)

    def test_render_report_table(self):
        report = collect_metrics([get("olden_power")])
        out = render_report(report)
        assert "olden_power" in out
        assert "TOTAL" in out
        assert "hottest" in out

    def test_round_floats(self):
        obj = {"a": [1.23456789, {"b": 2.0}], "c": "s"}
        assert round_floats(obj) == {"a": [1.234568, {"b": 2.0}],
                                     "c": "s"}

    def test_stable_dumps_sorted_with_newline(self):
        s = stable_dumps({"b": 1, "a": 2})
        assert s.index('"a"') < s.index('"b"')
        assert s.endswith("\n")


class TestDiff:
    @pytest.fixture(scope="class")
    def report_json(self):
        report = collect_metrics([get("olden_power"),
                                  get("olden_treeadd")])
        return report.to_json()

    def test_identical_reports_are_clean(self, report_json):
        res = diff_reports(report_json, report_json)
        assert res.ok
        assert res.findings == []
        assert "0 regression(s)" in render_diff(res)

    def test_checks_regression_detected(self, report_json):
        cur = copy.deepcopy(report_json)
        cur["workloads"][0]["checks_executed"] += 1
        res = diff_reports(report_json, cur)
        assert not res.ok
        assert any(f.metric == "checks_executed"
                   for f in res.regressions)

    def test_threshold_allows_small_growth(self, report_json):
        cur = copy.deepcopy(report_json)
        base = cur["workloads"][0]["checks_executed"]
        cur["workloads"][0]["checks_executed"] = int(base * 1.04)
        th = Thresholds(checks_pct=5.0)
        assert diff_reports(report_json, cur, th).ok
        th = Thresholds(checks_pct=1.0)
        assert not diff_reports(report_json, cur, th).ok

    def test_improvement_is_not_a_regression(self, report_json):
        cur = copy.deepcopy(report_json)
        cur["workloads"][0]["cured_cycles"] -= 1
        res = diff_reports(report_json, cur)
        assert res.ok
        assert any(f.severity == "improve" for f in res.findings)

    def test_elision_drop_regresses(self, report_json):
        cur = copy.deepcopy(report_json)
        cur["workloads"][0]["checks_removed"] -= 1
        res = diff_reports(report_json, cur)
        assert any(f.metric == "checks_removed"
                   for f in res.regressions)
        assert diff_reports(report_json, cur,
                            Thresholds(elided_drop=1)).ok

    def test_missing_workload_regresses(self, report_json):
        cur = copy.deepcopy(report_json)
        del cur["workloads"][0]
        res = diff_reports(report_json, cur)
        assert any(f.metric == "missing-workload"
                   for f in res.regressions)

    def test_new_workload_is_a_note(self, report_json):
        base = copy.deepcopy(report_json)
        del base["workloads"][0]
        res = diff_reports(base, report_json)
        assert res.ok
        assert any(f.metric == "new-workload" for f in res.findings)

    def test_new_check_site_is_a_note(self, report_json):
        cur = copy.deepcopy(report_json)
        cur["workloads"][0]["sites"].append(
            {"site": 999, "function": "brand_new",
             "kind": "CHECK_NULL", "hits": 0})
        res = diff_reports(report_json, cur,
                           Thresholds(checks_pct=100.0))
        assert any(f.metric == "new-check-site" for f in res.findings)

    def test_schema_mismatch_short_circuits(self, report_json):
        bad = copy.deepcopy(report_json)
        bad["schema"] = "something/else"
        res = diff_reports(report_json, bad)
        assert [f.metric for f in res.regressions] == ["schema"]

    def test_phase_gate_needs_both_sides(self, report_json):
        base = copy.deepcopy(report_json)
        cur = copy.deepcopy(report_json)
        cur["workloads"][0]["phases"] = {"cure": 1.0}
        assert diff_reports(base, cur).ok  # baseline has no timings
        base["workloads"][0]["phases"] = {"cure": 0.1}
        res = diff_reports(base, cur)
        assert any(f.metric == "phase:cure" for f in res.regressions)


class TestMetricsCLI:
    def test_table_output(self, capsys):
        assert main(["metrics", "--workload", "olden_power",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "olden_power" in out and "TOTAL" in out

    def test_json_deterministic_across_invocations(self, tmp_path,
                                                   capsys):
        paths = [str(tmp_path / f"m{i}.json") for i in range(2)]
        for p in paths:
            assert main(["metrics", "--workload", "olden_power",
                         "--json", p, "--quiet"]) == 0
        capsys.readouterr()
        a, b = (open(p).read() for p in paths)
        assert a == b
        assert json.loads(a)["schema"] == SCHEMA

    def test_unknown_workload_fails(self, capsys):
        assert main(["metrics", "--workload", "no_such"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_diff_gate_passes_then_fails(self, tmp_path, capsys):
        base = str(tmp_path / "base.json")
        assert main(["metrics", "--workload", "olden_power",
                     "--json", base, "--quiet"]) == 0
        assert main(["metrics", "diff", "--baseline", base,
                     "--current", base, "--fail-on-regress"]) == 0
        payload = json.load(open(base))
        payload["workloads"][0]["checks_executed"] += 50
        regressed = tmp_path / "regressed.json"
        regressed.write_text(json.dumps(payload))
        capsys.readouterr()
        assert main(["metrics", "diff", "--baseline", base,
                     "--current", str(regressed),
                     "--fail-on-regress"]) == 2
        out = capsys.readouterr()
        assert "REGRESS" in out.out
        assert "FAILED" in out.err
        # without the gate flag, regressions exit 1
        assert main(["metrics", "diff", "--baseline", base,
                     "--current", str(regressed)]) == 1


class TestCrossProcessSpans:
    """PR 10: pid/tid on records, the wall-clock wire format, and
    multi-process Chrome trace lanes."""

    def test_records_carry_pid_and_tid(self):
        import os
        import threading
        t = Tracer()
        with t.capture() as records:
            with t.span("parse"):
                pass
        assert records[0].pid == os.getpid()
        assert records[0].tid == threading.get_native_id()

    def test_wire_round_trip_rebases_onto_anchor(self):
        from repro.obs.tracer import spans_from_wire, spans_to_wire
        t = Tracer()
        with t.capture() as records:
            with t.span("cure", name="w"):
                pass
        wire = spans_to_wire(records, t)
        # rebasing onto the producing tracer's own epoch must
        # reproduce the original relative starts (within fp noise)
        back = spans_from_wire(wire, t.epoch_wall())
        assert len(back) == 1
        assert back[0].name == "cure"
        assert back[0].attrs == {"name": "w"}
        assert back[0].pid == records[0].pid
        assert back[0].tid == records[0].tid
        assert abs(back[0].start - records[0].start) < 0.05
        assert back[0].duration == records[0].duration

    def test_wire_tolerates_legacy_records(self):
        from repro.obs.tracer import SpanRecord, spans_from_wire
        back = spans_from_wire(
            [{"name": "exec", "depth": 0, "wall": 12.5,
              "duration": 0.25}], epoch_wall=10.0)
        assert back == [SpanRecord("exec", 0, 2.5, 0.25, {}, 0, 0)]

    def test_chrome_trace_renders_one_lane_per_process(self):
        import os
        from repro.obs.tracer import SpanRecord, chrome_trace
        here = os.getpid()
        records = [
            SpanRecord("dispatch", 0, 0.0, 1.0, {}, here, 7),
            SpanRecord("shard", 0, 0.1, 0.4, {}, 4242, 9),
            SpanRecord("cure", 1, 0.2, 0.2, {}, 4242, 9),
            SpanRecord("shard", 0, 0.1, 0.4, {}, 4243, 11),
        ]
        doc = chrome_trace(records)
        metas = [e for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"]
        by_pid = {m["pid"]: m["args"]["name"] for m in metas}
        assert set(by_pid) == {here, 4242, 4243}
        assert by_pid[here] == "repro"
        assert by_pid[4242] == "repro worker 4242"
        # the exporting process sorts first
        sort = {e["pid"]: e["args"]["sort_index"]
                for e in doc["traceEvents"]
                if e["ph"] == "M"
                and e["name"] == "process_sort_index"}
        assert sort[here] == 0
        # X events land on their recording pid/tid lane
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert {(e["pid"], e["tid"]) for e in xs} \
            == {(here, 7), (4242, 9), (4243, 11)}

    def test_chrome_trace_single_process_keeps_plain_label(self):
        import os
        from repro.obs.tracer import SpanRecord, chrome_trace
        doc = chrome_trace([SpanRecord("parse", 0, 0.0, 0.1, {},
                                       os.getpid(), 3)])
        metas = [e for e in doc["traceEvents"]
                 if e["ph"] == "M" and e["name"] == "process_name"]
        assert [m["args"]["name"] for m in metas] == ["repro"]
