"""Tests for the pycparser -> CIL lowering."""

import pytest

from repro.cil import expr as E
from repro.cil import stmt as S
from repro.cil import types as T
from repro.cil.printer import program_to_c
from repro.frontend import UnsupportedCError, parse_files, parse_program


def body_str(src: str, fn: str = "main") -> str:
    prog = parse_program(src)
    return program_to_c(prog)


class TestDeclarations:
    def test_global_variable(self):
        prog = parse_program("int g = 42;")
        assert "g" in prog.global_vars

    def test_typedef_expanded(self):
        prog = parse_program(
            "typedef int myint; myint x; int main(void){return x;}")
        var = prog.global_vars["x"]
        assert isinstance(T.unroll(var.type), T.TInt)

    def test_typedef_pointer_fresh_occurrences(self):
        # Two uses of a pointer typedef must have distinct TPtr objects
        # (each syntactic occurrence gets its own qualifier variable).
        prog = parse_program(
            "typedef int *ip; ip a; ip b;")
        ta = T.unroll(prog.global_vars["a"].type)
        tb = T.unroll(prog.global_vars["b"].type)
        assert isinstance(ta, T.TPtr) and isinstance(tb, T.TPtr)
        assert ta is not tb

    def test_struct_registration(self):
        prog = parse_program(
            "struct pt { int x; int y; }; struct pt p;")
        assert "pt" in prog.comps
        assert [f.name for f in prog.comps["pt"].fields] == ["x", "y"]

    def test_forward_struct_then_definition(self):
        prog = parse_program("""
        struct node;
        struct node { struct node *next; int v; };
        struct node n;
        """)
        comp = prog.comps["node"]
        assert comp.defined
        nxt = T.unroll(comp.field("next").type)
        assert isinstance(nxt, T.TPtr)
        assert T.unroll(nxt.base) == T.TComp(comp)

    def test_enum_constants(self):
        prog = parse_program("""
        enum color { RED, GREEN = 5, BLUE };
        int main(void) { return BLUE; }
        """)
        assert prog.enums["color"].items == [
            ("RED", 0), ("GREEN", 5), ("BLUE", 6)]

    def test_static_local_promoted_to_global(self):
        prog = parse_program("""
        int counter(void) { static int n = 0; n = n + 1; return n; }
        int main(void) { counter(); return counter(); }
        """)
        assert "__static_counter_n" in prog.global_vars

    def test_array_sized_by_initializer(self):
        prog = parse_program('char msg[] = "hey";')
        t = T.unroll(prog.global_vars["msg"].type)
        assert isinstance(t, T.TArray) and t.length == 4

    def test_array_dim_constant_folding(self):
        prog = parse_program("#define N 4\nint a[N * 2 + 1];")
        assert T.unroll(prog.global_vars["a"].type).length == 9

    def test_extern_goes_to_externals(self):
        prog = parse_program("extern int errno_ish;")
        assert "errno_ish" in prog.externals

    def test_bitfields_unsupported(self):
        with pytest.raises(UnsupportedCError):
            parse_program("struct f { int x : 3; };")

    def test_goto_unsupported(self):
        with pytest.raises(UnsupportedCError):
            parse_program(
                "int main(void){ goto end; end: return 0; }")


class TestExpressions:
    def test_pointer_index_becomes_arith(self):
        out = body_str("""
        int f(int *p) { return p[3]; }
        """)
        assert "(p + 3)" in out

    def test_array_lval_keeps_index_offset(self):
        out = body_str("""
        int main(void) { int a[4]; a[2] = 1; return a[2]; }
        """)
        assert "a[2] = 1;" in out

    def test_implicit_arith_conversion_explicit(self):
        out = body_str("""
        int main(void) { double d = 1; int i = 2; d = d + i;
          return (int)d; }
        """)
        assert "(double)" in out

    def test_implicit_void_star_conversion_is_cast(self):
        out = body_str("""
        int main(void) { int x; void *v = &x; return v != (void*)0; }
        """)
        assert "(void *)(&x)" in out.replace("  ", " ")

    def test_short_circuit_lowered_to_if(self):
        prog = parse_program("""
        int f(void) { return 1; }
        int main(void) { int a = 1; return a && f(); }
        """)
        out = program_to_c(prog)
        assert "if" in out  # && became control flow

    def test_ternary_lowered(self):
        out = body_str("""
        int main(void) { int a = 1; return a ? 2 : 3; }
        """)
        assert "__cil_cond" in out

    def test_postincrement_preserves_value(self):
        out = body_str("""
        int main(void) { int i = 5; int j = i++; return j * 10 + i; }
        """)
        assert "__cil_post" in out

    def test_compound_assignment(self):
        out = body_str("""
        int main(void) { int x = 1; x += 4; x <<= 2; return x; }
        """)
        assert "(x + 4)" in out and "(x << 2)" in out

    def test_comma_expression(self):
        out = body_str("""
        int main(void) { int a, b; a = (b = 2, b + 1); return a; }
        """)
        assert "b = 2;" in out

    def test_sizeof_type_and_expr(self):
        out = body_str("""
        int main(void) { int a[7]; return sizeof(a) + sizeof(int); }
        """)
        assert "sizeof(int [7])" in out and "sizeof(int)" in out

    def test_address_of_marks_variable(self):
        prog = parse_program("""
        int main(void) { int x = 1; int *p = &x; return *p; }
        """)
        fd = prog.function("main")
        xs = [v for v in fd.locals if v.name == "x"]
        assert xs and xs[0].address_taken

    def test_string_literal(self):
        prog = parse_program("""
        int main(void) { char *s = "hi\\n"; return s != (char*)0; }
        """)
        out = program_to_c(prog)
        assert '"hi\\n"' in out

    def test_char_constant(self):
        out = body_str("int main(void) { return 'A'; }")
        assert "65" in out

    def test_negative_and_hex_constants(self):
        # negated constants fold so their sign is visible statically
        out = body_str("int main(void) { return -0x10; }")
        assert "-16" in out

    def test_function_pointer_call(self):
        out = body_str("""
        int add1(int x) { return x + 1; }
        int main(void) {
          int (*fp)(int) = add1;
          return fp(4);
        }
        """)
        assert "fp" in out

    def test_struct_member_through_pointer(self):
        out = body_str("""
        struct p { int x; };
        int main(void) { struct p v; struct p *q = &v; q->x = 3;
          return q->x; }
        """)
        assert "q->x = 3;" in out


class TestStatements:
    def test_for_loop_shape(self):
        out = body_str("""
        int main(void) { int s = 0; int i;
          for (i = 0; i < 4; i++) s += i; return s; }
        """)
        assert "while (1)" in out and "break;" in out

    def test_do_while(self):
        out = body_str("""
        int main(void) { int i = 0;
          do { i++; } while (i < 3); return i; }
        """)
        assert "while (1)" in out

    def test_switch_chain(self):
        out = body_str("""
        int main(void) { int x = 2;
          switch (x) {
            case 1: return 10;
            case 2: case 3: return 20;
            default: return 30;
          } }
        """)
        assert "== 2" in out and "== 3" in out

    def test_switch_fallthrough_rejected(self):
        with pytest.raises(UnsupportedCError, match="fall-through"):
            parse_program("""
            int main(void) { int x = 1;
              switch (x) { case 1: x = 2; case 2: x = 3; break; }
              return x; }
            """)

    def test_break_continue(self):
        out = body_str("""
        int main(void) { int i, s = 0;
          for (i = 0; i < 10; i++) {
            if (i == 2) continue;
            if (i == 5) break;
            s += i;
          }
          return s; }
        """)
        assert "continue;" in out and out.count("break;") >= 2

    def test_local_compound_initializer(self):
        out = body_str("""
        struct pt { int x; int y; };
        int main(void) { struct pt p = { 1, 2 }; return p.x + p.y; }
        """)
        assert "p.x = 1;" in out and "p.y = 2;" in out

    def test_local_array_initializer(self):
        out = body_str("""
        int main(void) { int a[3] = { 7, 8, 9 }; return a[1]; }
        """)
        assert "a[0] = 7;" in out and "a[2] = 9;" in out

    def test_nested_blocks_scoping(self):
        prog = parse_program("""
        int main(void) {
          int x = 1;
          { int x = 2; if (x != 2) return 9; }
          return x;
        }
        """)
        fd = prog.function("main")
        assert sum(1 for v in fd.locals if v.name == "x") == 2


class TestMultiFile:
    def test_link_two_units(self):
        prog = parse_files([
            ("a.c", "int helper(int x) { return x * 2; }"),
            ("b.c", "extern int helper(int); "
                    "int main(void) { return helper(21); }"),
        ])
        assert "helper" in prog.functions
        assert "main" in prog.functions

    def test_shared_struct_across_units(self):
        prog = parse_files([
            ("a.c", "struct s { int v; }; "
                    "int get(struct s *p) { return p->v; }"),
            ("b.c", "struct s { int v; }; "
                    "int main(void) { struct s x; x.v = 1; "
                    "return 0; }"),
        ])
        assert len([c for c in prog.comps.values()
                    if c.name == "s"]) == 1


class TestTrustedCast:
    def test_trusted_cast_marks_cast(self):
        prog = parse_program("""
        #include <ccured.h>
        int main(void) { int x; int *p = &x;
          char *c = (char*)__trusted_cast(p); return c != (char*)0; }
        """)
        assert prog.trusted_cast_count == 1
