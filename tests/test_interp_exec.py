"""Interpreter correctness: C semantics, cured and raw agreeing.

Each test runs a program in both modes (via ``run_both``) and checks
the observable behaviour; cured/raw agreement on well-defined programs
is itself a soundness property of the instrumentation ("the cure does
not change the meaning of correct programs").
"""

import pytest

from helpers import cure_src, run_both

from repro.core import cure
from repro.interp import run_cured, run_raw
from repro.frontend import parse_program
from repro.runtime.checks import (InterpreterLimitError, ProgramAbort,
                                  ProgramExit)


class TestArithmetic:
    def test_integer_ops(self):
        rc, _ = run_both("""
        int main(void) {
          int a = 17, b = 5;
          return a / b * 100 + a % b * 10 + (a ^ b) % 10;
        }
        """)
        assert rc.status == (17 // 5) * 100 + (17 % 5) * 10 + \
            ((17 ^ 5) % 10)

    def test_c_division_truncates_toward_zero(self):
        rc, _ = run_both("""
        int main(void) { return (-7) / 2 + 10; }
        """)
        assert rc.status == -3 + 10

    def test_c_modulo_sign(self):
        rc, _ = run_both("int main(void) { return (-7) % 3 + 5; }")
        assert rc.status == -1 + 5

    def test_unsigned_wraparound(self):
        rc, _ = run_both("""
        int main(void) {
          unsigned int u = 0xFFFFFFFF;
          u = u + 2;
          return (int)u;
        }
        """)
        assert rc.status == 1

    def test_char_truncation(self):
        rc, _ = run_both("""
        int main(void) { char c = (char)300; return c; }
        """)
        assert rc.status == 300 - 256

    def test_signed_char_negative(self):
        rc, _ = run_both("""
        int main(void) { char c = (char)200; return c + 100; }
        """)
        assert rc.status == (200 - 256) + 100

    def test_shift_ops(self):
        rc, _ = run_both(
            "int main(void) { return (1 << 10) | (256 >> 4); }")
        assert rc.status == 1024 | 16

    def test_float_arithmetic(self):
        rc, _ = run_both("""
        int main(void) {
          double d = 1.5;
          float f = 2.5f;
          return (int)(d * f * 4.0);
        }
        """)
        assert rc.status == 15

    def test_division_by_zero_aborts(self):
        c = cure_src("int main(void) { int z = 0; return 5 / z; }")
        with pytest.raises(ProgramAbort):
            run_cured(c)

    def test_comparison_chain(self):
        rc, _ = run_both("""
        int main(void) {
          int a = 3, b = 7;
          return (a < b) * 8 + (a == b) * 4 + (a >= b) * 2 + (a != b);
        }
        """)
        assert rc.status == 9


class TestControlFlow:
    def test_nested_loops(self):
        rc, _ = run_both("""
        int main(void) {
          int i, j, s = 0;
          for (i = 0; i < 5; i++)
            for (j = 0; j < i; j++)
              s += j;
          return s;
        }
        """)
        assert rc.status == sum(j for i in range(5) for j in range(i))

    def test_while_and_do_while(self):
        rc, _ = run_both("""
        int main(void) {
          int i = 0, s = 0;
          while (i < 4) { s += i; i++; }
          do { s += 100; } while (0);
          return s;
        }
        """)
        assert rc.status == 6 + 100

    def test_continue_runs_for_post(self):
        rc, _ = run_both("""
        int main(void) {
          int i, s = 0;
          for (i = 0; i < 10; i++) {
            if (i % 2 == 0) continue;
            s += i;
          }
          return s;
        }
        """)
        assert rc.status == 1 + 3 + 5 + 7 + 9

    def test_break_in_switch_inside_loop(self):
        rc, _ = run_both("""
        int main(void) {
          int i, s = 0;
          for (i = 0; i < 5; i++) {
            switch (i) {
              case 2: s += 20; break;
              default: s += 1; break;
            }
          }
          return s;
        }
        """)
        assert rc.status == 24

    def test_short_circuit_skips_effects(self):
        rc, _ = run_both("""
        int calls = 0;
        int bump(void) { calls++; return 1; }
        int main(void) {
          int zero = 0;
          if (zero && bump()) return 99;
          if (1 || bump()) { }
          return calls;
        }
        """)
        assert rc.status == 0

    def test_recursion(self):
        rc, _ = run_both("""
        int fib(int n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
        int main(void) { return fib(12); }
        """)
        assert rc.status == 144

    def test_deep_recursion_limited(self):
        c = cure_src("""
        int down(int n) { return n == 0 ? 0 : down(n - 1); }
        int main(void) { return down(100000); }
        """)
        with pytest.raises(InterpreterLimitError):
            run_cured(c)

    def test_exit_status(self):
        c = cure_src("""
        #include <stdlib.h>
        int main(void) { exit(42); return 0; }
        """)
        assert run_cured(c).status == 42


class TestPointersAndMemory:
    def test_swap_through_pointers(self):
        rc, _ = run_both("""
        void swap(int *a, int *b) { int t = *a; *a = *b; *b = t; }
        int main(void) {
          int x = 3, y = 5;
          swap(&x, &y);
          return x * 10 + y;
        }
        """)
        assert rc.status == 53

    def test_pointer_iteration(self):
        rc, _ = run_both("""
        int main(void) {
          int a[6];
          int *p;
          int s = 0;
          for (p = a; p < a + 6; p++) *p = (int)(p - a);
          for (p = a; p < a + 6; p++) s += *p;
          return s;
        }
        """)
        assert rc.status == 15

    def test_struct_copy_assignment(self):
        rc, _ = run_both("""
        struct pair { int a; int b; };
        int main(void) {
          struct pair p = { 1, 2 };
          struct pair q;
          q = p;
          p.a = 99;
          return q.a * 10 + q.b;
        }
        """)
        assert rc.status == 12

    def test_struct_with_pointer_copied(self):
        rc, _ = run_both("""
        struct holder { int *p; };
        int main(void) {
          int x = 7;
          struct holder h1;
          struct holder h2;
          h1.p = &x;
          h2 = h1;
          return *h2.p;
        }
        """)
        assert rc.status == 7

    def test_nested_struct_access(self):
        rc, _ = run_both("""
        struct in { int v; };
        struct out { struct in first; struct in second; };
        int main(void) {
          struct out o;
          o.first.v = 3;
          o.second.v = 4;
          return o.first.v * 10 + o.second.v;
        }
        """)
        assert rc.status == 34

    def test_array_of_structs(self):
        rc, _ = run_both("""
        struct item { int k; int v; };
        int main(void) {
          struct item items[3];
          int i, s = 0;
          for (i = 0; i < 3; i++) { items[i].k = i; items[i].v = i*i; }
          for (i = 0; i < 3; i++) s += items[i].v;
          return s;
        }
        """)
        assert rc.status == 5

    def test_linked_list_on_heap(self):
        rc, _ = run_both("""
        #include <stdlib.h>
        struct node { int v; struct node *next; };
        int main(void) {
          struct node *head = 0;
          int i, s = 0;
          for (i = 0; i < 5; i++) {
            struct node *n = (struct node*)malloc(sizeof(struct node));
            n->v = i;
            n->next = head;
            head = n;
          }
          while (head) { s += head->v; head = head->next; }
          return s;
        }
        """)
        assert rc.status == 10

    def test_global_initializers(self):
        rc, _ = run_both("""
        int table[4] = { 2, 4, 6, 8 };
        struct cfg { int a; int b; } config = { 10, 20 };
        int main(void) {
          return table[0] + table[3] + config.a + config.b;
        }
        """)
        assert rc.status == 2 + 8 + 10 + 20

    def test_global_string_and_pointer(self):
        rc, _ = run_both("""
        #include <string.h>
        char greeting[] = "hello";
        char *name = "world";
        int main(void) {
          return (int)(strlen(greeting) + strlen(name));
        }
        """)
        assert rc.status == 10

    def test_pointer_to_pointer(self):
        rc, _ = run_both("""
        int main(void) {
          int x = 5;
          int *p = &x;
          int **pp = &p;
          **pp = 9;
          return x;
        }
        """)
        assert rc.status == 9

    def test_void_pointer_roundtrip(self):
        rc, _ = run_both("""
        int main(void) {
          int x = 21;
          void *v = &x;
          int *p = (int *)v;
          return *p * 2;
        }
        """)
        assert rc.status == 42

    def test_union_int_float_reinterpret(self):
        rc, _ = run_both("""
        union conv { int i; unsigned int u; };
        int main(void) {
          union conv c;
          c.i = -1;
          return c.u == 0xFFFFFFFF;
        }
        """)
        assert rc.status == 1

    def test_function_pointer_table(self):
        rc, _ = run_both("""
        int add(int a, int b) { return a + b; }
        int mul(int a, int b) { return a * b; }
        int main(void) {
          int (*ops[2])(int, int);
          ops[0] = add;
          ops[1] = mul;
          return ops[0](3, 4) * 100 + ops[1](3, 4);
        }
        """)
        assert rc.status == 712

    def test_argv_passing(self):
        c = cure_src("""
        #include <string.h>
        int main(int argc, char **argv) {
          if (argc != 3) return 1;
          return (int)(strlen(argv[1]) + strlen(argv[2]));
        }
        """)
        res = run_cured(c, args=["ab", "cde"])
        assert res.status == 5

    def test_stdin_reading(self):
        c = cure_src("""
        #include <stdio.h>
        int main(void) {
          int c2, n = 0;
          while ((c2 = getchar()) != EOF) n++;
          return n;
        }
        """)
        assert run_cured(c, stdin="hello").status == 5


class TestOutput:
    def test_printf_formats(self):
        rc, _ = run_both(r'''
        #include <stdio.h>
        int main(void) {
          printf("%d|%u|%x|%c|%s|%05d|%.2f|%%\n",
                 -5, 7, 255, 65, "str", 42, 3.14159, 0);
          return 0;
        }
        ''')
        assert rc.stdout == "-5|7|ff|A|str|00042|3.14|%\n"

    def test_puts_putchar(self):
        rc, _ = run_both("""
        #include <stdio.h>
        int main(void) { puts("line"); putchar('!'); return 0; }
        """)
        assert rc.stdout == "line\n!"

    def test_sprintf_roundtrip(self):
        rc, _ = run_both(r'''
        #include <stdio.h>
        #include <string.h>
        int main(void) {
          char buf[64];
          sprintf(buf, "n=%d s=%s", 7, "x");
          return (int)strlen(buf);
        }
        ''')
        assert rc.status == len("n=7 s=x")
