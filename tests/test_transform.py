"""Tests for the instrumentation pass: which checks are inserted where
(Figures 2 and 11 of the paper)."""

from helpers import cure_src

from repro.cil.stmt import CheckKind


def counts(src, **opts):
    return cure_src(src, **opts).check_counts


class TestDerefChecks:
    def test_safe_deref_gets_null_check(self):
        c = counts("""
        int main(void) { int x = 1; int *p = &x; return *p; }
        """)
        assert c[CheckKind.NULL] == 1
        assert CheckKind.SEQ_BOUNDS not in c

    def test_seq_deref_gets_bounds_check(self):
        c = counts("""
        int main(void) { int a[4]; int *p = a; return p[2]; }
        """)
        assert c[CheckKind.SEQ_BOUNDS] == 1

    def test_wild_deref_gets_wild_checks(self):
        c = counts("""
        int main(void) {
          int x = 1; int *p = &x;
          char *w = (char *)p;
          return *w;
        }
        """)
        assert c[CheckKind.WILD_BOUNDS] == 1

    def test_wild_pointer_read_gets_tag_check(self):
        c = counts("""
        int main(void) {
          int *slot[1];
          int **pp = slot;
          char *alias = (char *)pp;     /* WILD */
          int **wpp = (int **)alias;    /* WILD int** */
          int *inner = *wpp;            /* reads a pointer: tag check */
          return inner == (int *)0;
        }
        """)
        assert c[CheckKind.WILD_READ_TAG] >= 1

    def test_each_deref_checked_separately(self):
        c = counts("""
        int main(void) { int x = 2; int *p = &x; return *p + *p; }
        """)
        assert c[CheckKind.NULL] == 2


class TestIndexChecks:
    def test_variable_index_checked(self):
        c = counts("""
        int main(void) { int a[4]; int i = 1; a[i] = 2; return a[i]; }
        """)
        assert c[CheckKind.INDEX] == 2

    def test_constant_in_range_index_elided(self):
        # Static check elimination: a constant in-range index needs no
        # run-time check (CCured's "statically remove checks").
        c = counts("""
        int main(void) { int a[4]; a[2] = 5; return a[2]; }
        """)
        assert CheckKind.INDEX not in c

    def test_constant_oob_index_kept(self):
        c = counts("""
        int main(void) { int a[4]; return a[7]; }
        """)
        assert c[CheckKind.INDEX] == 1


class TestCastAndCallChecks:
    def test_rtti_downcast_checked(self, figure_circle_src):
        c = counts(figure_circle_src)
        assert c[CheckKind.RTTI_CAST] >= 1

    def test_funptr_call_checked(self, figure_circle_src):
        c = counts(figure_circle_src)
        assert c[CheckKind.FUNPTR] == 1

    def test_direct_calls_not_checked(self):
        c = counts("""
        int f(void) { return 1; }
        int main(void) { return f() + f(); }
        """)
        assert CheckKind.FUNPTR not in c

    def test_store_stack_ptr_on_heap_writes(self):
        c = counts("""
        #include <stdlib.h>
        int main(void) {
          int **cell = (int **)malloc(sizeof(int *));
          int x = 1;
          int *p = &x;
          *cell = p;
          return 0;
        }
        """)
        assert c[CheckKind.STORE_STACK_PTR] >= 1

    def test_scalar_stores_not_stack_checked(self):
        c = counts("""
        int g;
        int main(void) { g = 5; return g; }
        """)
        assert CheckKind.STORE_STACK_PTR not in c

    def test_seq_to_safe_conversion(self):
        c = counts("""
        int main(void) {
          int a[4];
          int *p = a;
          p = p + 1;
          int *q = p;   /* q SAFE: conversion check */
          return *q;
        }
        """)
        assert c[CheckKind.SEQ_TO_SAFE] >= 1

    def test_checks_disabled(self):
        c = counts("""
        int main(void) { int a[4]; int i = 2; return a[i]; }
        """, checks=False)
        assert not c


class TestAnnotatedOutput:
    def test_kind_annotations_printed(self, figure_circle_src):
        cured = cure_src(figure_circle_src)
        out = cured.to_c()
        assert "__RTTI" in out and "__SAFE" in out

    def test_check_calls_printed(self, figure_circle_src):
        cured = cure_src(figure_circle_src)
        out = cured.to_c()
        assert "__CHECK_RTTI_CAST" in out
        assert "__rttiOf(struct Circle)" in out

    def test_plain_output_has_no_annotations(self, figure_circle_src):
        cured = cure_src(figure_circle_src)
        out = cured.to_c(annotate_kinds=False)
        assert "__SAFE" not in out
