"""Tests for physical type equality and subtyping (paper Section 3.1).

These check the paper's equations literally:

* ``t ≈ t[1]``
* ``t[n1+n2] ≈ struct { t[n1]; t[n2]; }``
* ``struct { t1; void; } ≈ t1``
* struct associativity
* every type is a physical subtype of ``void``
* the SEQ cast rule ``t'[n'] ≈ t[n]`` at the least size multiple.
"""

import pytest

from repro.cil import types as T
from repro.core.physical import (flatten, matched_pointer_pairs,
                                 physical_equal, physical_subtype,
                                 seq_compatible)


def S(name, *fields):
    return T.TComp(T.CompInfo(
        True, name, [T.FieldInfo(n, t) for n, t in fields]))


def U(name, *fields):
    c = T.CompInfo(False, name)
    c.set_fields([T.FieldInfo(n, t) for n, t in fields])
    return T.TComp(c)


class TestEquality:
    def test_reflexive(self):
        assert physical_equal(T.int_t(), T.int_t())

    def test_scalar_mismatch(self):
        assert not physical_equal(T.int_t(), T.char_t())
        assert not physical_equal(T.int_t(), T.double_t())

    def test_t_equals_array_of_one(self):
        assert physical_equal(T.int_t(), T.array(T.int_t(), 1))

    def test_array_concatenation(self):
        # t[3+2] = struct { t[3]; t[2]; }
        lhs = T.array(T.int_t(), 5)
        rhs = S("cat", ("a", T.array(T.int_t(), 3)),
                ("b", T.array(T.int_t(), 2)))
        assert physical_equal(lhs, rhs)

    def test_void_is_empty_struct(self):
        # struct { t1; void-nothing } = t1 : a struct wrapping a single
        # field is physically the field itself.
        assert physical_equal(S("w", ("x", T.int_t())), T.int_t())

    def test_struct_associativity(self):
        a = S("a", ("x", T.int_t()),
              ("yz", S("in1", ("y", T.int_t()), ("z", T.int_t()))))
        b = S("b", ("xy", S("in2", ("x", T.int_t()), ("y", T.int_t()))),
              ("z", T.int_t()))
        assert physical_equal(a, b)

    def test_padding_matters(self):
        # {char; int} has 3 bytes padding; {char; char; char; char; int}
        # does not pad — physically different.
        padded = S("p", ("c", T.char_t()), ("i", T.int_t()))
        packed = S("q", ("a", T.char_t()), ("b", T.char_t()),
                   ("c", T.char_t()), ("d", T.char_t()),
                   ("i", T.int_t()))
        assert not physical_equal(padded, packed)

    def test_same_padding_equal(self):
        a = S("pa", ("c", T.char_t()), ("i", T.int_t()))
        b = S("pb", ("c", T.char_t()), ("i", T.int_t()))
        assert physical_equal(a, b)

    def test_pointer_atoms_by_base(self):
        assert physical_equal(T.ptr(T.int_t()), T.ptr(T.int_t()))
        assert not physical_equal(T.ptr(T.int_t()), T.ptr(T.char_t()))

    def test_unions_only_equal_themselves(self):
        u1 = U("u1", ("i", T.int_t()), ("f", T.float_t()))
        u2 = U("u2", ("i", T.int_t()), ("f", T.float_t()))
        assert physical_equal(u1, u1)
        assert not physical_equal(u1, u2)

    def test_different_sizes_never_equal(self):
        assert not physical_equal(T.array(T.int_t(), 2),
                                  T.array(T.int_t(), 3))

    def test_void_equal_void(self):
        assert physical_equal(T.void_t(), T.void_t())

    def test_multidim_flattening(self):
        assert physical_equal(T.array(T.array(T.int_t(), 2), 3),
                              T.array(T.int_t(), 6))


class TestSubtyping:
    def figure_circle(self):
        fun = T.ptr(T.TFun(T.double_t(), None))
        figure = S("Figure", ("area", fun))
        fun2 = T.ptr(T.TFun(T.double_t(), None))
        circle = S("Circle", ("area", fun2), ("radius", T.int_t()))
        return figure, circle

    def test_prefix_is_supertype(self):
        figure, circle = self.figure_circle()
        assert physical_subtype(circle, figure)
        assert not physical_subtype(figure, circle)

    def test_everything_below_void(self):
        figure, circle = self.figure_circle()
        for t in (T.int_t(), figure, circle, T.ptr(T.int_t())):
            assert physical_subtype(t, T.void_t())

    def test_void_only_below_void(self):
        assert physical_subtype(T.void_t(), T.void_t())
        assert not physical_subtype(T.void_t(), T.int_t())

    def test_reflexive(self):
        figure, _ = self.figure_circle()
        assert physical_subtype(figure, figure)

    def test_scalar_prefix(self):
        two = S("two", ("a", T.int_t()), ("b", T.int_t()))
        assert physical_subtype(two, T.int_t())
        assert not physical_subtype(T.int_t(), two)

    def test_wrong_leading_type_not_subtype(self):
        s = S("s", ("d", T.double_t()), ("i", T.int_t()))
        assert not physical_subtype(s, T.int_t())

    def test_array_prefix(self):
        assert physical_subtype(T.array(T.int_t(), 8),
                                T.array(T.int_t(), 3))
        assert not physical_subtype(T.array(T.int_t(), 3),
                                    T.array(T.int_t(), 8))

    def test_subtype_antisymmetry_on_distinct(self):
        figure, circle = self.figure_circle()
        assert not (physical_subtype(figure, circle)
                    and physical_subtype(circle, figure))


class TestSeqRule:
    """The paper: casting struct Circle * SEQ to struct Figure * SEQ is
    unsound, because (Figure*)cs + 1 re-slices the layout."""

    def test_circle_to_figure_seq_rejected(self):
        fun = T.ptr(T.TFun(T.double_t(), None))
        figure = S("FigureS", ("area", fun))
        circle = S("CircleS", ("area", T.ptr(T.TFun(T.double_t(),
                                                    None))),
                   ("radius", T.int_t()))
        assert physical_subtype(circle, figure)       # upcast ok SAFE
        assert not seq_compatible(circle, figure)     # but not SEQ

    def test_same_type_seq_ok(self):
        assert seq_compatible(T.int_t(), T.int_t())

    def test_multidim_rows(self):
        # int[4]* SEQ -> int* SEQ : int[4][1] = int[4] vs int[4]; lcm
        # works out: t[1] vs t'[4].
        assert seq_compatible(T.array(T.int_t(), 4), T.int_t())

    def test_commensurate_structs(self):
        pair = S("pairS", ("a", T.int_t()), ("b", T.int_t()))
        assert seq_compatible(pair, T.int_t())

    def test_incommensurate_rejected(self):
        mixed = S("mixedS", ("a", T.int_t()), ("d", T.double_t()))
        assert not seq_compatible(mixed, T.int_t())

    def test_void_seq_rejected(self):
        assert not seq_compatible(T.void_t(), T.int_t())


class TestFlattenAndMatching:
    def test_flatten_scalar(self):
        atoms = list(flatten(T.int_t()))
        assert len(atoms) == 1 and atoms[0].kind == "scalar"

    def test_flatten_struct_with_padding(self):
        s = S("fp", ("c", T.char_t()), ("i", T.int_t()))
        kinds = [a.kind for a in flatten(s)]
        assert kinds == ["scalar", "pad", "scalar"]

    def test_flatten_void_empty(self):
        assert list(flatten(T.void_t())) == []

    def test_matched_pointer_pairs(self):
        p1 = T.ptr(T.int_t())
        p2 = T.ptr(T.int_t())
        s1 = S("m1", ("p", p1), ("x", T.int_t()))
        s2 = S("m2", ("p", p2))
        pairs = matched_pointer_pairs(s1, s2)
        assert pairs == [(p1, p2)]

    def test_matched_pairs_stop_at_mismatch(self):
        p1 = T.ptr(T.int_t())
        p2 = T.ptr(T.int_t())
        s1 = S("m3", ("x", T.double_t()), ("p", p1))
        s2 = S("m4", ("x", T.int_t()), ("p", p2))
        assert matched_pointer_pairs(s1, s2) == []

    def test_recursive_struct_flatten_guard(self):
        # A struct containing a pointer to itself must not loop.
        c = T.CompInfo(True, "node")
        tc = T.TComp(c)
        c.set_fields([T.FieldInfo("next", T.ptr(tc)),
                      T.FieldInfo("v", T.int_t())])
        assert physical_equal(tc, tc)
        assert physical_subtype(tc, T.ptr(tc))
