"""Shared helper functions for the test suite."""

from repro.cil import types as T
from repro.core import CureOptions, cure
from repro.frontend import parse_program
from repro.interp import run_cured, run_raw


def cure_src(src: str, name: str = "t", **opts):
    """Cure a source snippet with options given as keywords."""
    return cure(src, options=CureOptions(**opts) if opts else None,
                name=name)


def kinds_of(cured, fn: str) -> dict[str, str]:
    """Map of variable name -> pointer kind for a function's formals
    and locals (pointers only)."""
    fd = cured.prog.function(fn)
    out = {}
    for v in fd.formals + fd.locals:
        u = T.unroll(v.type)
        if isinstance(u, T.TPtr) and u.node is not None:
            out[v.name] = u.node.kind.name
    return out


def run_both(src: str, name: str = "t", args=None, stdin=""):
    """Run a snippet cured and raw; assert matching observable
    behaviour; return (cured_result, raw_result)."""
    cured = cure_src(src, name)
    rc = run_cured(cured, args=args, stdin=stdin)
    rr = run_raw(parse_program(src, name + "_raw"), args=args,
                 stdin=stdin)
    assert rc.status == rr.status, (rc, rr)
    assert rc.stdout == rr.stdout
    return rc, rr
