"""Every MemorySafetyError subclass is reachable, under both engines.

One minimal program per error class; each must terminate the cured
run with exactly that subclass, identically under the closure compiler
and the tree-walking oracle, and carry a structured
:class:`~repro.runtime.checks.CheckFailure` record.
"""

import pytest

from repro.core import CureOptions, cure
from repro.frontend import parse_program
from repro.interp import run_cured
from repro.runtime import checks as C

#: error class -> (source, CureOptions kwargs, run_cured kwargs)
TAXONOMY = {
    C.NullDereferenceError: (
        "int main(void) { int *p = (int *)0; return *p; }", {}, {}),
    C.BoundsError: (
        "int main(void) { int a[4]; int *q = a; return q[4]; }",
        {}, {}),
    C.WildTagError: ("""
        int main(void) {
            int w;
            int *p = &w;
            int **pp = &p;
            int *alias = (int *)pp;
            *alias = 42;
            return **pp;
        }""", {}, {}),
    C.StackEscapeError: ("""
        int *leak(void) { int x = 5; return &x; }
        int main(void) { int *p = leak(); return *p; }""", {}, {}),
    C.RttiCastError: ("""
        struct small { int a; };
        struct big { int a; int b; int c; };
        int main(void) {
            struct small s;
            void *v = (void *)&s;
            struct big *b = (struct big *)v;
            b->c = 7;
            return 0;
        }""", {}, {}),
    C.DanglingPointerError: ("""
        extern int strlen(char *s);
        int main(void) {
            char *d = (char *)0x40040;
            return strlen(d);
        }""", {}, {}),
    C.UninitializedError: (
        "int main(void) { int *u; return *u; }",
        {}, {"detect_uninit": True}),
    C.CompatibilityError: ("""
        extern void *gethostbyname(char *name);
        int main(void) {
            int w = 65;
            int *ip = &w;
            char *name = (char *)ip;
            void *h = gethostbyname(name);
            return 0;
        }""", {}, {}),
    C.LinkError: ("""
        extern int no_such_function(int x);
        int main(void) { return no_such_function(1); }""", {}, {}),
    C.UseAfterFreeError: ("""
        extern void *malloc(int n);
        extern void free(void *p);
        int main(void) {
            int *p = (int *)malloc(4);
            *p = 1;
            free(p);
            return *p;
        }""", {"temporal": True}, {}),
    C.DoubleFreeError: ("""
        extern void *malloc(int n);
        extern void free(void *p);
        int main(void) {
            int *p = (int *)malloc(4);
            free(p);
            free(p);
            return 0;
        }""", {}, {}),
    C.InvalidFreeError: ("""
        extern void free(void *p);
        int main(void) {
            int x = 3;
            free(&x);
            return 0;
        }""", {}, {}),
}


@pytest.mark.parametrize("engine", ("closures", "tree"))
@pytest.mark.parametrize(
    "exc", TAXONOMY, ids=lambda e: e.__name__)
def test_subclass_reachable(exc, engine):
    src, copts, kwargs = TAXONOMY[exc]
    cured = cure(parse_program(src, name=exc.__name__),
                 options=CureOptions(**copts), name=exc.__name__)
    with pytest.raises(exc) as ei:
        run_cured(cured, engine=engine, **kwargs)
    assert type(ei.value) is exc  # the exact subclass, not a parent
    failure = C.CheckFailure.from_exception(ei.value)
    assert failure.error == exc.__name__
    assert failure.detail


@pytest.mark.parametrize(
    "exc", TAXONOMY, ids=lambda e: e.__name__)
def test_engines_identical_on_failure(exc):
    src, copts, kwargs = TAXONOMY[exc]
    outcomes = []
    for engine in ("closures", "tree"):
        cured = cure(parse_program(src, name=exc.__name__),
                     options=CureOptions(**copts), name=exc.__name__)
        with pytest.raises(exc) as ei:
            run_cured(cured, engine=engine, **kwargs)
        failure = C.CheckFailure.from_exception(ei.value)
        outcomes.append((str(ei.value), failure.to_json()))
    assert outcomes[0] == outcomes[1]


def test_check_failure_carries_site_and_kind():
    src = "int main(void) { int *p = (int *)0; return *p; }"
    cured = cure(parse_program(src, name="site"), name="site")
    with pytest.raises(C.NullDereferenceError) as ei:
        run_cured(cured)
    f = ei.value.failure
    assert f is not None
    assert f.check == "CHECK_NULL"
    assert f.pointer_kind == "SAFE"
    assert f.function == "main"
    assert isinstance(f.site, int) and f.site >= 1
    assert f.to_json()["error"] == "NullDereferenceError"


def test_detect_uninit_off_by_default():
    # Without the flag the poisoning must not exist: the local reads
    # as NULL and the null check fires instead.
    src = "int main(void) { int *u; return *u; }"
    cured = cure(parse_program(src, name="u"), name="u")
    with pytest.raises(C.NullDereferenceError):
        run_cured(cured)
