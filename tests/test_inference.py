"""Tests for pointer-kind inference (constraints + solver).

Each test states a pointer-usage pattern and checks the inferred kind,
following the rules of Sections 2, 3.1 and 3.2 of the paper.
"""

from helpers import cure_src, kinds_of

from repro.core import CureOptions, PointerKind, cure


class TestBasicKinds:
    def test_plain_deref_is_safe(self):
        c = cure_src("""
        int main(void) { int x = 1; int *p = &x; return *p; }
        """)
        assert kinds_of(c, "main")["p"] == "SAFE"

    def test_arithmetic_forces_seq(self):
        c = cure_src("""
        int main(void) { int a[4]; int *p = a; p = p + 1;
          return *p; }
        """)
        assert kinds_of(c, "main")["p"] == "SEQ"

    def test_indexing_pointer_forces_seq(self):
        c = cure_src("""
        int f(int *xs) { return xs[2]; }
        int main(void) { int a[4]; return f(a); }
        """)
        assert kinds_of(c, "f")["xs"] == "SEQ"

    def test_pointer_difference_forces_seq(self):
        c = cure_src("""
        int main(void) { int a[4]; int *p = a; int *q = a;
          return (int)(p - q); }
        """)
        ks = kinds_of(c, "main")
        assert ks["p"] == "SEQ" and ks["q"] == "SEQ"

    def test_bad_cast_forces_wild(self):
        c = cure_src("""
        int main(void) { int x; int *p = &x; char *q = (char*)p;
          return *q; }
        """)
        ks = kinds_of(c, "main")
        assert ks["p"] == "WILD" and ks["q"] == "WILD"

    def test_int_to_pointer_forces_seq(self):
        c = cure_src("""
        int main(void) { int *p = (int*)16; return p == (int*)0; }
        """)
        assert kinds_of(c, "main")["p"] in ("SEQ", "WILD")

    def test_unconstrained_formal_safe(self):
        c = cure_src("""
        int get(int *p) { return *p; }
        int main(void) { int x = 3; return get(&x); }
        """)
        assert kinds_of(c, "get")["p"] == "SAFE"


class TestWildSpreading:
    def test_wild_spreads_through_assignment(self):
        c = cure_src("""
        int main(void) {
          int x; int *p = &x; int *q;
          q = p;
          char *bad = (char*)q;   /* q wild -> p wild */
          return bad == (char*)0;
        }
        """)
        ks = kinds_of(c, "main")
        assert ks["p"] == "WILD" and ks["q"] == "WILD"

    def test_wild_spreads_into_base_type(self):
        # A WILD int** makes the inner int* WILD too (soundness
        # condition: nothing typed under an untyped pointer).
        c = cure_src("""
        int main(void) {
          int x; int *p = &x; int **pp = &p;
          char *bad = (char*)pp;
          return bad == (char*)0;
        }
        """)
        ks = kinds_of(c, "main")
        assert ks["pp"] == "WILD"
        assert ks["p"] == "WILD"

    def test_wild_spreads_through_struct_fields(self):
        # The paper: "Even a small number of casts ... can result in a
        # large number of WILD pointers."
        c = cure_src("""
        struct box { int *inner; };
        int main(void) {
          struct box b; int x;
          b.inner = &x;
          struct box *pb = &b;
          char *bad = (char*)pb;
          return bad == (char*)0;
        }
        """)
        ks = kinds_of(c, "main")
        assert ks["pb"] == "WILD"
        # the field's node must be wild too
        comp = c.prog.comps["box"]
        from repro.cil import types as T
        field_ptr = T.unroll(comp.field("inner").type)
        assert field_ptr.node.kind is PointerKind.WILD

    def test_wild_spreads_through_call(self):
        c = cure_src("""
        int use(int *p) { return *p; }
        int main(void) {
          int x; int *p = &x;
          char *bad = (char*)p;
          return use(p);
        }
        """)
        assert kinds_of(c, "use")["p"] == "WILD"

    def test_unrelated_pointers_stay_safe(self):
        c = cure_src("""
        int main(void) {
          int x; int *clean = &x;
          int y; int *dirty = &y;
          char *bad = (char*)dirty;
          return *clean;
        }
        """)
        ks = kinds_of(c, "main")
        assert ks["clean"] == "SAFE"
        assert ks["dirty"] == "WILD"


class TestPhysicalSubtyping:
    def test_upcast_stays_safe(self, figure_circle_src):
        c = cure_src(figure_circle_src)
        ks = kinds_of(c, "main")
        assert ks["f"] == "SAFE"

    def test_upcast_wild_without_physical(self, figure_circle_src):
        c = cure(figure_circle_src,
                 options=CureOptions(use_physical=False,
                                     use_rtti=False))
        ks = kinds_of(c, "main")
        assert ks["f"] == "WILD"

    def test_seq_upcast_incompatible_sizes_goes_wild(self):
        # Circle* SEQ -> Figure* SEQ is the paper's unsoundness
        # example; with arithmetic it must fall back to WILD.
        c = cure_src("""
        struct Fig { int tag; };
        struct Cir { int tag; double r; };
        int main(void) {
          struct Cir cs[4];
          struct Cir *c = cs;
          struct Fig *f = (struct Fig*)c;
          f = f + 1;           /* re-slices the layout: unsound */
          return f->tag;
        }
        """)
        ks = kinds_of(c, "main")
        assert ks["f"] == "WILD"
        assert ks["c"] == "WILD"

    def test_seq_cast_commensurate_ok(self):
        # int[2]* -> int* with arithmetic: allowed for SEQ.
        c = cure_src("""
        int main(void) {
          int grid[3][2];
          int *flat = (int*)grid;
          int i, s = 0;
          for (i = 0; i < 6; i++) s += flat[i];
          return s;
        }
        """)
        assert kinds_of(c, "main")["flat"] == "SEQ"


class TestRtti:
    def test_downcast_source_becomes_rtti(self, figure_circle_src):
        c = cure_src(figure_circle_src)
        assert kinds_of(c, "circle_area")["obj"] == "RTTI"

    def test_downcast_result_stays_safe(self, figure_circle_src):
        c = cure_src(figure_circle_src)
        assert kinds_of(c, "circle_area")["cir"] == "SAFE"

    def test_rtti_propagates_against_dataflow(self):
        # The paper's q1..q4 example: Circle* -> Figure* -> void* ->
        # Circle*.  q3 (void*) is RTTI because of the downcast; q2
        # (Figure*) becomes RTTI by backwards propagation; q1 stays
        # SAFE because Circle* has no subtypes; q4 is unconstrained.
        c = cure_src("""
        struct Figure { int tag; };
        struct Circle { int tag; int radius; };
        int main(void) {
          struct Circle cobj;
          struct Circle *q1 = &cobj;
          struct Figure *q2 = (struct Figure*)q1;
          void *q3 = (void*)q2;
          struct Circle *q4 = (struct Circle*)q3;
          return q4->radius;
        }
        """)
        ks = kinds_of(c, "main")
        assert ks["q3"] == "RTTI"
        assert ks["q2"] == "RTTI"
        assert ks["q1"] == "SAFE"
        assert ks["q4"] == "SAFE"

    def test_no_rtti_all_downcasts_wild(self, figure_circle_src):
        c = cure(figure_circle_src,
                 options=CureOptions(use_rtti=False))
        assert kinds_of(c, "circle_area")["obj"] == "WILD"

    def test_rtti_with_arith_conflict_goes_wild(self):
        # A pointer that is both a downcast source (needs RTTI) and
        # does pointer arithmetic (needs SEQ bounds) has no
        # representation: it falls back to WILD.
        c = cure_src("""
        struct A { int tag; };
        struct Sub { int tag; int extra; };
        int main(void) {
          struct A arr[4];
          struct A *p = arr;
          p = p + 1;                      /* arithmetic on p */
          struct Sub *s = (struct Sub*)p; /* downcast: p needs RTTI */
          return s == (struct Sub*)0;
        }
        """)
        ks = kinds_of(c, "main")
        assert ks["p"] == "WILD"

    def test_interior_pointer_keeps_rtti_conservatively(self):
        # Arithmetic through a *different* (char*) view does not force
        # the RTTI pointer WILD; the interior pointer simply carries a
        # conservative dynamic type.
        c = cure_src("""
        struct A { int x; };
        int main(void) {
          struct A arr[2];
          void *v = (void*)arr;
          struct A *a = (struct A*)v;  /* downcast: v needs RTTI */
          v = (char*)v + 4;            /* arith on the char* view */
          return a->x;
        }
        """)
        assert kinds_of(c, "main")["v"] == "RTTI"

    def test_wild_wins_over_rtti(self):
        c = cure_src("""
        struct A { int x; };
        int main(void) {
          struct A obj; int y;
          void *v = (void*)&obj;
          struct A *a = (struct A*)v;   /* downcast: RTTI */
          char *bad = (char*)&y;
          v = (void*)bad;               /* flows from WILD */
          return a->x;
        }
        """)
        ks = kinds_of(c, "main")
        assert ks["bad"] == "WILD"
        assert ks["v"] == "WILD"


class TestStatistics:
    def test_declaration_percentages_sum_to_one(self, figure_circle_src):
        c = cure_src(figure_circle_src)
        pct = c.kind_percentages()
        total = sum(pct.values())
        assert abs(total - 1.0) < 1e-9

    def test_report_contains_kinds(self, figure_circle_src):
        c = cure_src(figure_circle_src)
        rep = c.report()
        assert "safe=" in rep and "casts:" in rep

    def test_solver_idempotent_kinds(self, figure_circle_src):
        c1 = cure_src(figure_circle_src)
        c2 = cure_src(figure_circle_src)
        assert kinds_of(c1, "main") == kinds_of(c2, "main")

    def test_checks_disabled_option(self):
        c = cure("int main(void){ int a[3]; int *p = a; return p[1]; }",
                 options=CureOptions(checks=False))
        assert not c.check_counts
