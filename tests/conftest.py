"""Shared test fixtures (helper functions live in helpers.py)."""

import pytest


@pytest.fixture
def figure_circle_src() -> str:
    """The paper's Section 3 running example."""
    return r'''
struct Figure { double (*area)(struct Figure *obj); };
struct Circle { double (*area)(struct Figure *obj); int radius; };
double circle_area(struct Figure *obj) {
  struct Circle *cir = (struct Circle *)obj;
  return 3.0 * cir->radius * cir->radius;
}
int main(void) {
  struct Circle c;
  c.radius = 5;
  c.area = circle_area;
  struct Figure *f = (struct Figure *)&c;
  double a = f->area(f);
  return (int)a;
}
'''
