"""Shared test fixtures (helper functions live in helpers.py)."""

import pytest


@pytest.fixture(autouse=True, scope="session")
def _hermetic_cure_cache(tmp_path_factory):
    """Point the on-disk cure cache at a per-session temp directory,
    so tests never read (or pollute) the developer's warm cache and
    every run starts from deterministic cold-cache counters."""
    import os
    if "REPRO_CACHE_DIR" not in os.environ:
        os.environ["REPRO_CACHE_DIR"] = str(
            tmp_path_factory.mktemp("cure-cache"))
    yield


@pytest.fixture
def figure_circle_src() -> str:
    """The paper's Section 3 running example."""
    return r'''
struct Figure { double (*area)(struct Figure *obj); };
struct Circle { double (*area)(struct Figure *obj); int radius; };
double circle_area(struct Figure *obj) {
  struct Circle *cir = (struct Circle *)obj;
  return 3.0 * cir->radius * cir->radius;
}
int main(void) {
  struct Circle c;
  c.radius = 5;
  c.area = circle_area;
  struct Figure *f = (struct Figure *)&c;
  double a = f->area(f);
  return (int)a;
}
'''
